"""ABL2 — ablation: the three answer sources on the paper's own program.

Runs the Figure 4 debugging session with every combination of answer
sources (assertions / test database / slicing) and reports user-question
counts — quantifying how much each component of GADT contributes.

Expected shape (Figure 4 program, top-down):

* pure AD: 8 questions;
* + tests: arrsum auto-answered (7);
* + slicing: sum1/increment pruned after the partialsums answer (7);
* + assertions on partialsums: one more question saved;
* full GADT: the paper's 6 (tests + slicing) or fewer with assertions.
Measures: the full-GADT session.
"""

import itertools

import pytest

from benchmarks.helpers import build_arrsum_lookup, build_figure4_system, debug_with
from repro.core import AssertionStore
from repro.workloads import FIGURE4_FIXED_SOURCE


@pytest.fixture(scope="module")
def system():
    return build_figure4_system()


@pytest.fixture(scope="module")
def lookup(system):
    return build_arrsum_lookup(system.analysis)


def make_assertions() -> AssertionStore:
    store = AssertionStore()
    # The user's partial specification of partialsums (paper §3's
    # assertion mechanism, [Drabent et al. 88]).
    store.assert_unit(
        "partialsums",
        "(s1 = y * (y + 1) div 2) and (s2 = (y - 1) * y div 2)",
    )
    return store


def run_matrix(system, lookup):
    results = {}
    for use_assertions, use_tests, use_slicing in itertools.product(
        (False, True), repeat=3
    ):
        result = debug_with(
            system.trace,
            FIGURE4_FIXED_SOURCE,
            assertions=make_assertions() if use_assertions else None,
            test_lookup=lookup if use_tests else None,
            enable_slicing=use_slicing,
        )
        assert result.bug_unit == "decrement"
        key = (use_assertions, use_tests, use_slicing)
        results[key] = result.user_questions
    return results


def test_abl_sources(benchmark, system, lookup):
    results = run_matrix(system, lookup)

    pure = results[(False, False, False)]
    gadt = results[(False, True, True)]
    full = results[(True, True, True)]
    assert pure == 8
    assert gadt == 6  # the paper's session
    assert full <= gadt
    for key, questions in results.items():
        assert questions <= pure

    print("\n[ABL2] user questions by answer-source combination "
          "(Figure 4 program):")
    print("  assertions  tests  slicing  questions")
    for (a, t, s), questions in sorted(results.items()):
        print(
            f"  {str(a):>10}  {str(t):>5}  {str(s):>7}  {questions:>9}"
        )
    print(f"[ABL2] pure AD {pure} -> GADT (tests+slicing) {gadt} "
          f"-> with assertions {full}")

    def run_full():
        return debug_with(
            system.trace,
            FIGURE4_FIXED_SOURCE,
            assertions=make_assertions(),
            test_lookup=lookup,
            enable_slicing=True,
        )

    result = benchmark(run_full)
    assert result.bug_unit == "decrement"
    benchmark.extra_info["matrix"] = {
        f"assert={a},tests={t},slice={s}": q
        for (a, t, s), q in results.items()
    }
