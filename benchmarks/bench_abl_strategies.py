"""ABL1 — ablation: execution-tree search strategies.

The paper uses top-down and remarks that "generally it doesn't matter
which traversal method is used" for correctness. This ablation measures
what *does* differ: the number of questions each strategy asks on deep
chains and balanced trees.

Expected shape: divide-and-query and dq-optimal ~ log2(n) on chains,
top-down ~ n; dq-optimal never asks more than divide-and-query; every
strategy localizes the same bug.
Measures: a divide-and-query session on the deepest chain.
"""

from benchmarks.helpers import debug_with
from repro.tracing import trace_source
from repro.workloads import (
    CallChainSpec,
    CallTreeSpec,
    generate_call_chain_program,
    generate_call_tree_program,
)

STRATEGIES = ("top-down", "bottom-up", "divide-and-query", "dq-optimal")
CHAIN_DEPTHS = [4, 8, 16, 32]


def chain_curves():
    curves = {strategy: [] for strategy in STRATEGIES}
    for depth in CHAIN_DEPTHS:
        generated = generate_call_chain_program(CallChainSpec(depth=depth))
        trace = trace_source(generated.source)
        for strategy in STRATEGIES:
            result = debug_with(
                trace, generated.fixed_source, strategy=strategy
            )
            assert result.bug_unit == generated.buggy_unit, (strategy, depth)
            curves[strategy].append(result.user_questions)
    return curves


def tree_row(depth=4, buggy_leaf=11):
    generated = generate_call_tree_program(
        CallTreeSpec(depth=depth, buggy_leaf=buggy_leaf)
    )
    trace = trace_source(generated.source)
    row = {}
    for strategy in STRATEGIES:
        result = debug_with(trace, generated.fixed_source, strategy=strategy)
        assert result.bug_unit == generated.buggy_unit
        row[strategy] = result.user_questions
    return row


def test_abl_strategies(benchmark):
    curves = chain_curves()
    tree = tree_row()

    # Shape: D&Q sublinear on chains, top-down linear; dq-optimal at
    # least as frugal as classic D&Q at every depth.
    assert curves["divide-and-query"][-1] < curves["top-down"][-1]
    assert curves["top-down"][-1] >= CHAIN_DEPTHS[-1] - 1
    assert curves["divide-and-query"][-1] <= 2 * (CHAIN_DEPTHS[-1].bit_length())
    assert all(
        optimal <= classic
        for optimal, classic in zip(
            curves["dq-optimal"], curves["divide-and-query"]
        )
    )

    print("\n[ABL1] questions to localize a leaf bug on a call chain:")
    print("  depth:            " + "".join(f"{d:>6}" for d in CHAIN_DEPTHS))
    for strategy in STRATEGIES:
        row = "".join(f"{q:>6}" for q in curves[strategy])
        print(f"  {strategy:>17}: {row}")
    print("[ABL1] balanced tree (depth 4, 16 leaves, bug in leaf 11):")
    for strategy, questions in tree.items():
        print(f"  {strategy:>17}: {questions}")
    print("[ABL1] shape: divide-and-query ~ log n on chains; "
          "all strategies localize the same unit")

    generated = generate_call_chain_program(
        CallChainSpec(depth=CHAIN_DEPTHS[-1])
    )
    trace = trace_source(generated.source)

    def run_dq():
        return debug_with(
            trace, generated.fixed_source, strategy="divide-and-query"
        )

    result = benchmark(run_dq)
    assert result.bug_unit == generated.buggy_unit
    benchmark.extra_info["chain_curves"] = curves
    benchmark.extra_info["tree_row"] = tree
