"""FIG1 — Figure 1: the arrsum test specification through T-GEN.

Regenerates: frame set, script assignment (script_1 = the two mixed
frames the paper lists), executable cases, and the test-report database.
Measures: full spec -> frames -> cases -> reports pipeline time.
"""

from repro.pascal import analyze_source
from repro.tgen import (
    CaseRunner,
    Verdict,
    frames_by_script,
    generate_frames,
    instantiate_cases,
    parse_spec,
)
from repro.workloads import ARRSUM_SOURCE
from repro.workloads.arrsum_spec import ARRSUM_SPEC_TEXT, arrsum_instantiator


def run_tgen_pipeline():
    spec = parse_spec(ARRSUM_SPEC_TEXT)
    frames = generate_frames(spec)
    analysis = analyze_source(ARRSUM_SOURCE)
    cases = instantiate_cases(spec, frames, arrsum_instantiator)
    database = CaseRunner(analysis).run_all(cases)
    return spec, frames, database


def test_fig1_tgen(benchmark):
    spec, frames, database = benchmark(run_tgen_pipeline)

    by_script = frames_by_script(spec, frames)
    script_1 = {frame.render() for frame in by_script["script_1"]}
    assert script_1 == {"(more, mixed, large)", "(more, mixed, average)"}
    assert len(frames) == 8
    assert all(r.verdict is Verdict.PASS for r in database.all_reports())

    print("\n[FIG1] generated frames:")
    for frame in frames:
        print(f"  {frame.render()}")
    print(f"[FIG1] script_1 = {sorted(script_1)}   (paper: exactly these two)")
    print(f"[FIG1] reports: {len(database)} run, all pass")

    benchmark.extra_info["frames"] = len(frames)
    benchmark.extra_info["script_1"] = sorted(script_1)
