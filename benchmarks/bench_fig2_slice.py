"""FIG2 — Figure 2: static slice of program p on variable mul.

Regenerates: the paper's published slice (read(x,y); mul := 0; the
else-branch assignment), with z/sum declarations dropped.
Measures: static-slice computation plus program extraction.
"""

from repro.pascal import analyze_source, print_program
from repro.slicing import StaticCriterion, static_slice
from repro.workloads import FIGURE2_SOURCE


def compute_slice():
    analysis = analyze_source(FIGURE2_SOURCE)
    computed = static_slice(
        analysis, StaticCriterion.at_routine_exit("p", "mul")
    )
    return computed, print_program(computed.extract_program())


def test_fig2_slice(benchmark):
    computed, text = benchmark(compute_slice)

    assert "read(x, y)" in text
    assert "mul := 0" in text
    assert "mul := x * y" in text
    assert "sum" not in text
    assert "read(z)" not in text

    print("\n[FIG2] slice of p on mul (paper Figure 2(b)):")
    for line in text.splitlines():
        print(f"  {line}")

    from repro.pascal import ast_nodes as ast

    total = sum(
        1
        for node in computed.analysis.program.walk()
        if isinstance(node, ast.Stmt)
        and not isinstance(node, (ast.Compound, ast.EmptyStmt))
    )
    kept = computed.statement_count()
    declared = len(computed.analysis.program.block.variables)
    remaining = len(computed.extract_program().block.variables)
    print(f"[FIG2] statements kept: {kept}/{total} ({kept / total:.0%}); "
          f"variable declarations: {remaining}/{declared}")
    benchmark.extra_info["statements_kept"] = kept
    benchmark.extra_info["statements_total"] = total
