"""FIG4_7 — Figure 4 program traced into the Figure 7 execution tree.

Regenerates: the execution tree with the paper's exact node annotations
(e.g. ``computs(In y: 3, Out r1: 12, Out r2: 9)``).
Measures: the tracing phase (transformation excluded; see SEC9 bench).
"""

from repro.tracing import trace_source
from repro.workloads import FIGURE4_SOURCE

EXPECTED_HEADS = [
    "Main",
    "sqrtest(In ary: [1,2], In n: 2, Out isok: false)",
    "arrsum(In a: [1,2], In n: 2, Out b: 3)",
    "computs(In y: 3, Out r1: 12, Out r2: 9)",
    "comput1(In y: 3, Out r1: 12)",
    "partialsums(In y: 3, Out s1: 6, Out s2: 6)",
    "sum1(In y: 3, Out s1: 6)",
    "increment(In y: 3)=4",
    "sum2(In y: 3, Out s2: 6)",
    "decrement(In y: 3)=4",
    "add(In s1: 6, In s2: 6, Out r1: 12)",
    "comput2(In y: 3, Out r2: 9)",
    "square(In y: 3, Out r2: 9)",
    "test(In r1: 12, In r2: 9, Out isok: false)",
]


def build_tree():
    return trace_source(FIGURE4_SOURCE)


def test_fig7_execution_tree(benchmark):
    trace = benchmark(build_tree)

    heads = [node.render_head() for node in trace.tree.walk()]
    assert heads == EXPECTED_HEADS
    assert trace.tree.size() == 14

    print("\n[FIG7] execution tree:")
    for line in trace.tree.render().splitlines():
        print(f"  {line}")
    print(f"[FIG7] {trace.tree.size()} nodes, "
          f"{len(trace.dependence_graph)} dynamic occurrences recorded")
    benchmark.extra_info["tree_nodes"] = trace.tree.size()
    benchmark.extra_info["occurrences"] = len(trace.dependence_graph)
