"""FIG8 — first slicing step: computs' first output variable (r1).

Regenerates: the pruned execution tree of Figure 8 (only the left
subtree of computs remains).
Measures: dynamic slice + tree pruning on an existing trace.
"""

import pytest

from repro.slicing import DynamicCriterion, prune_tree
from repro.tracing import trace_source
from repro.workloads import FIGURE4_SOURCE


@pytest.fixture(scope="module")
def figure4_trace():
    return trace_source(FIGURE4_SOURCE)


def test_fig8_slice(benchmark, figure4_trace):
    computs = figure4_trace.tree.find("computs")

    view = benchmark(
        prune_tree, figure4_trace, DynamicCriterion.output_position(computs, 1)
    )

    names = sorted(node.unit_name for node in view.walk())
    assert names == [
        "add",
        "comput1",
        "computs",
        "decrement",
        "increment",
        "partialsums",
        "sum1",
        "sum2",
    ]
    assert view.size() == 8
    subtree = sum(1 for _ in computs.walk())

    print("\n[FIG8] sliced execution tree (criterion: r1 at computs):")
    for line in view.render().splitlines():
        print(f"  {line}")
    print(f"[FIG8] kept {view.size()} of {subtree} activations; "
          "comput2/square pruned (paper: only the left subtree remains)")
    benchmark.extra_info["kept"] = view.size()
    benchmark.extra_info["subtree"] = subtree
