"""FIG9 — second slicing step: partialsums' second output variable (s2).

Regenerates: the pruned execution tree of Figure 9 (partialsums ->
sum2 -> decrement only).
Measures: the second dynamic slice on the same trace.
"""

import pytest

from repro.slicing import DynamicCriterion, prune_tree
from repro.tracing import trace_source
from repro.workloads import FIGURE4_SOURCE


@pytest.fixture(scope="module")
def figure4_trace():
    return trace_source(FIGURE4_SOURCE)


def test_fig9_slice(benchmark, figure4_trace):
    partialsums = figure4_trace.tree.find("partialsums")

    view = benchmark(
        prune_tree,
        figure4_trace,
        DynamicCriterion.output_position(partialsums, 2),
    )

    names = sorted(node.unit_name for node in view.walk())
    assert names == ["decrement", "partialsums", "sum2"]

    print("\n[FIG9] sliced execution tree (criterion: s2 at partialsums):")
    for line in view.render().splitlines():
        print(f"  {line}")
    print("[FIG9] kept 3 of 5 activations; sum1/increment pruned "
          "(paper: only the right subtree remains)")
    benchmark.extra_info["kept"] = view.size()
