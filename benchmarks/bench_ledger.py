"""LEDGER — a realistic multi-layer workload through the whole pipeline.

The paper's long-range goal is debugging "non-trivial programs". This
benchmark drives the ledger workload (global arrays, loops, four call
layers, three plantable bugs) through transformation, tracing, and a
full GADT session per bug, checking localization and reporting the
interaction counts.

Measures: the complete pipeline (transform + trace + debug) for the
call-site bug, the most interesting localization case.
"""

from repro.core import GadtSystem, ReferenceOracle
from repro.tgen import CaseRunner, TestCaseLookup, generate_frames, instantiate_cases
from repro.workloads.ledger import (
    fee_frame_selector,
    fee_instantiator,
    fee_spec,
    ledger_program,
)


def build_lookup(analysis) -> TestCaseLookup:
    spec = fee_spec()
    cases = instantiate_cases(spec, generate_frames(spec), fee_instantiator)
    database = CaseRunner(analysis).run_all(cases)
    lookup = TestCaseLookup(database=database)
    lookup.register(spec, fee_frame_selector)
    return lookup


def run_session(bug: str):
    generated = ledger_program(bug)
    system = GadtSystem.from_source(generated.source)
    lookup = build_lookup(system.analysis)
    oracle = ReferenceOracle.from_source(generated.fixed_source)
    result = system.debugger(oracle, test_lookup=lookup).debug()
    return generated, result


def test_ledger_sessions(benchmark):
    rows = {}
    for bug in ("fee", "transfer", "interest"):
        generated, result = run_session(bug)
        assert result.bug_unit.startswith(generated.buggy_unit), bug
        rows[bug] = {
            "localized": result.bug_unit,
            "user": result.user_questions,
            "auto": result.auto_answers,
            "slices": result.slices,
        }

    print("\n[LEDGER] GADT sessions on a non-trivial program:")
    print(f"  {'bug':>10} {'localized in':>22} {'user':>6} {'auto':>6} {'slices':>7}")
    for bug, row in rows.items():
        print(
            f"  {bug:>10} {row['localized']:>22} {row['user']:>6} "
            f"{row['auto']:>6} {row['slices']:>7}"
        )
    print("[LEDGER] the call-site bug localizes to the *caller* (transfer),")
    print("         the loop bug to the loop unit — the paper's §5.3.3/§6.1 cases.")

    result = benchmark(lambda: run_session("transfer")[1])
    assert result.bug_unit == "transfer"
    benchmark.extra_info["sessions"] = rows
