"""MUT1 — localization accuracy under systematic fault injection.

The paper plants one bug by hand (an operator mutation in `decrement`).
This experiment applies every single-token operator/constant fault to
the Figure 4 program and the ledger workload, and measures, over all
behaviour-changing mutants, how often the debugger blames exactly the
mutated routine and how many questions it needs.

Expected: 100% localization accuracy (the algorithmic-debugging
soundness argument: with a truthful oracle, the search ends at a unit
whose behaviour is wrong while all its sub-computations are right —
which is the mutated unit or a loop unit inside it).

Measures: the full evaluation sweep over the Figure 4 mutants.
"""

import statistics

from repro.workloads import FIGURE4_FIXED_SOURCE
from repro.workloads.ledger import ledger_program
from repro.workloads.mutants import accuracy, evaluate_mutants, generate_mutants


def sweep(source: str):
    mutants = generate_mutants(source)
    outcomes = evaluate_mutants(source, mutants)
    return mutants, outcomes


def test_mutation_accuracy(benchmark):
    rows = {}
    for name, source in (
        ("figure4", FIGURE4_FIXED_SOURCE),
        ("ledger", ledger_program(None).source),
    ):
        mutants, outcomes = sweep(source)
        correct, debuggable = accuracy(outcomes)
        questions = [
            outcome.user_questions
            for outcome in outcomes
            if outcome.status == "localized"
        ]
        rows[name] = {
            "mutants": len(mutants),
            "debuggable": debuggable,
            "correct": correct,
            "equivalent": sum(1 for o in outcomes if o.status == "equivalent"),
            "crashed": sum(1 for o in outcomes if o.status == "crashed"),
            "mean_questions": statistics.mean(questions) if questions else 0.0,
        }
        assert correct == debuggable, name  # 100% accuracy

    print("\n[MUT1] localization accuracy under systematic fault injection:")
    print(f"  {'program':>10} {'mutants':>8} {'debuggable':>11} "
          f"{'correct':>8} {'equiv':>6} {'crash':>6} {'mean q':>7}")
    for name, row in rows.items():
        print(
            f"  {name:>10} {row['mutants']:>8} {row['debuggable']:>11} "
            f"{row['correct']:>8} {row['equivalent']:>6} {row['crashed']:>6} "
            f"{row['mean_questions']:>7.1f}"
        )
    print("[MUT1] every behaviour-changing fault is blamed on exactly the "
          "mutated routine.")

    result = benchmark(lambda: sweep(FIGURE4_FIXED_SOURCE))
    benchmark.extra_info["rows"] = rows
