"""PERF1 — wall-time scalability of the pipeline stages.

Not a paper figure (the paper reports no timings): this series records
how plain execution, tracing, dynamic slicing, and a full debugging
session scale with program size on this implementation, so regressions
are visible from PR to PR.

The measurement logic lives in :func:`measure_series` /
:func:`collect_perf_report` so the standalone runner
(``benchmarks/run_perf.py``) can emit ``BENCH_perf.json`` — the
repeatable per-stage record the performance trajectory is tracked
against — while the pytest-benchmark test below keeps exercising the
largest tree.

Stages, per call-tree depth (2**depth leaves):

* ``run_s``    — un-traced ``run_source`` (null-hook fast path);
* ``trace_s``  — tracing: execution tree + dynamic dependence graph;
* ``slice_s``  — dynamic backward slice from the program's output;
* ``debug_s``  — a full divide-and-query debugging session against a
  reference oracle;

plus one mutation sweep (``mutants``) over the paper's Figure 4 program,
the machine cost of the MUT1 accuracy experiment.

Since the ``bench_perf/3`` schema the stage series is recorded once per
execution backend (``interp``/``compiled``, see ``docs/COMPILER.md``);
each row carries its ``backend``, the report carries ``speedup_trace``
(interp ``trace_s`` over compiled ``trace_s`` per depth — the tentpole
number) and ``python``/``platform`` metadata, and tree/occurrence/edge
counts are asserted identical across backends before the report is
written.

``bench_perf/4`` adds a ``profile`` section: one hot-spot-profiled
trace per backend (``hotspots/1`` reports, see
:mod:`repro.obs.profiler`), so per-unit self-time and step attribution
travel with the timings.

``bench_perf/5`` adds ``questions_curve``: user questions per strategy
over call chains of depth 2–12 (:func:`measure_questions`). Question
counts are machine-independent, so ``benchmarks/check_regress.py``
gates them exactly — a strategy asking even one more question than the
committed baseline fails CI — alongside the normalized stage timings.
"""

import platform as platform_mod
import sys
import time

from benchmarks.helpers import debug_with
from repro.cache import cache_stats, clear_caches
from repro.slicing import DynamicCriterion, dynamic_slice
from repro.tracing import trace_source
from repro.pascal import run_source
from repro.workloads import (
    FIGURE4_FIXED_SOURCE,
    CallChainSpec,
    CallTreeSpec,
    generate_call_chain_program,
    generate_call_tree_program,
)

#: 4, 16, 64, 256 leaves — depth 8 is the "deep tree" tier added with
#: the fast-path engine; keep 6 as the cross-PR comparison point.
DEPTHS = [2, 4, 6, 8]

#: chain depths for the questions-vs-depth series: top-down pays one
#: question per level, so the chain family makes the strategy gap
#: visible at modest sizes.
QUESTION_DEPTHS = list(range(2, 13))


def _best_of(repeats, fn):
    """Best-of-N wall time plus the last return value (repeatable runs)."""
    best = None
    value = None
    for _ in range(repeats):
        started = time.perf_counter()
        value = fn()
        elapsed = time.perf_counter() - started
        if best is None or elapsed < best:
            best = elapsed
    return best, value


def measure_series(depths=DEPTHS, repeats=1, backend=None):
    """Per-depth, per-stage wall times over the call-tree family.

    ``backend`` picks the execution engine for the run and trace stages
    (``None`` defers to ``REPRO_BACKEND``); slicing and debugging
    consume the trace and are backend-independent.
    """
    rows = []
    for depth in depths:
        generated = generate_call_tree_program(CallTreeSpec(depth=depth))

        # warm the content caches so stage timings measure the stage,
        # not one-off lex/parse/analyze/compile (run_perf reports cold
        # separately)
        run_source(generated.source, backend=backend)
        trace_source(generated.source, backend=backend)

        run_seconds, _ = _best_of(
            repeats, lambda: run_source(generated.source, backend=backend)
        )
        trace_seconds, trace = _best_of(
            repeats, lambda: trace_source(generated.source, backend=backend)
        )

        criterion = DynamicCriterion.output_position(trace.root, 1)
        slice_seconds, sliced = _best_of(
            repeats, lambda: dynamic_slice(trace, criterion)
        )

        debug_seconds, result = _best_of(
            repeats,
            lambda: debug_with(
                trace, generated.fixed_source, strategy="divide-and-query"
            ),
        )
        assert result.bug_unit == generated.buggy_unit

        rows.append(
            {
                "backend": backend or "interp",
                "depth": depth,
                "leaves": 2**depth,
                "tree_nodes": trace.tree.size(),
                "occurrences": len(trace.dependence_graph),
                "dep_edges": trace.dependence_graph.edge_count(),
                "slice_occurrences": len(sliced),
                "run_s": run_seconds,
                "trace_s": trace_seconds,
                "slice_s": slice_seconds,
                "debug_s": debug_seconds,
                "questions": result.user_questions,
            }
        )
    return rows


def measure_questions(depths=QUESTION_DEPTHS):
    """Questions-vs-depth, every strategy, leaf-bug call chains.

    The number of oracle questions is a *property of the strategy*, not
    of the machine, so the rows carry no timings and the asserts are
    exact: top-down pays one question per level (O(depth)) while
    dq-optimal keeps halving the suspect weight (~O(log n)) and must ask
    strictly fewer questions than top-down from depth 8 up.
    """
    from math import ceil, log2

    from repro.core.strategies import available_strategies

    rows = []
    for depth in depths:
        generated = generate_call_chain_program(CallChainSpec(depth=depth))
        trace = trace_source(generated.source)
        for strategy in available_strategies():
            result = debug_with(
                trace, generated.fixed_source, strategy=strategy
            )
            assert result.bug_unit == generated.buggy_unit, (
                f"{strategy} localized {result.bug_unit!r} at depth {depth}"
            )
            rows.append(
                {
                    "strategy": strategy,
                    "depth": depth,
                    "tree_nodes": trace.tree.size(),
                    "questions": result.user_questions,
                }
            )

    questions = {(row["strategy"], row["depth"]): row["questions"] for row in rows}
    for depth in depths:
        top_down = questions[("top-down", depth)]
        optimal = questions[("dq-optimal", depth)]
        assert top_down == depth, (
            f"top-down asked {top_down} questions on a depth-{depth} chain"
        )
        # dq-optimal never beyond ~2*log2(depth): the O(log n) claim
        assert optimal <= 2 * ceil(log2(depth)) + 1, (
            f"dq-optimal asked {optimal} questions at depth {depth}"
        )
        if depth >= 8:
            assert optimal < top_down, (
                f"dq-optimal must ask strictly fewer questions than "
                f"top-down at depth {depth}: {optimal} vs {top_down}"
            )
        assert questions[("dq-optimal", depth)] <= questions[
            ("divide-and-query", depth)
        ], f"dq-optimal asked more than divide-and-query at depth {depth}"
    return {"depths": list(depths), "series": rows}


def measure_mutants(workers=None, repeats=1):
    """Wall time of the Figure 4 mutation sweep (the MUT1 machine cost)."""
    from repro.workloads.mutants import (
        accuracy,
        evaluate_mutants,
        generate_mutants,
        summarize,
    )

    mutants = generate_mutants(FIGURE4_FIXED_SOURCE)
    seconds, outcomes = _best_of(
        repeats,
        lambda: evaluate_mutants(FIGURE4_FIXED_SOURCE, mutants, workers=workers),
    )
    correct, debuggable = accuracy(outcomes)
    return {
        "mutants": len(mutants),
        "workers": workers or 1,
        "seconds": seconds,
        "correct": correct,
        "debuggable": debuggable,
        "by_status": summarize(outcomes),
    }


def measure_fast_path(depth=6, repeats=3):
    """Cold vs warm un-traced execution: the null-hook fast path plus the
    analysis cache is what plain ``run_source`` pays for."""
    generated = generate_call_tree_program(CallTreeSpec(depth=depth))
    clear_caches()
    cold, _ = _best_of(1, lambda: run_source(generated.source))
    warm, _ = _best_of(repeats, lambda: run_source(generated.source))
    return {"depth": depth, "cold_s": cold, "warm_s": warm}


def measure_obs(depth=6):
    """One instrumented trace+debug: the obs metrics and the per-session
    answer-source accounting embedded into ``BENCH_perf.json``.

    Runs *after* the timed stages (observability stays off while wall
    times are measured) on the warm cross-PR comparison depth.
    """
    from repro import obs

    generated = generate_call_tree_program(CallTreeSpec(depth=depth))
    obs.reset()
    obs.enable()
    try:
        trace = trace_source(generated.source)
        result = debug_with(
            trace, generated.fixed_source, strategy="divide-and-query"
        )
        assert result.bug_unit == generated.buggy_unit
        return {
            "depth": depth,
            "metrics": obs.snapshot(),
            "session": result.report(),
        }
    finally:
        obs.disable()
        obs.reset()


def measure_profile(depth=6, top=5):
    """One hot-spot-profiled trace per backend (``hotspots/1``): where
    the generated call-tree program spends its steps and self-time."""
    from repro.obs.profiler import HotspotProfiler, hotspot_report
    from repro.core import GadtSystem

    generated = generate_call_tree_program(CallTreeSpec(depth=depth))
    reports = {}
    for backend in ("interp", "compiled"):
        profiler = HotspotProfiler()
        system = GadtSystem.from_source(
            generated.source, backend=backend, profiler=profiler
        )
        reports[backend] = hotspot_report(
            system.trace, profiler=profiler, top=top
        )
    return {"depth": depth, "reports": reports}


def _series_conformance(by_backend):
    """Assert backend-independent trace shape, then the speedup table."""
    counts = ("tree_nodes", "occurrences", "dep_edges", "questions")
    reference = by_backend[0]
    for series in by_backend[1:]:
        for expected, row in zip(reference, series):
            for key in counts:
                assert row[key] == expected[key], (
                    f"backend divergence at depth {row['depth']}: "
                    f"{key} {row[key]} != {expected[key]} "
                    f"({row['backend']} vs {expected['backend']})"
                )
    trace_by = {
        series[0]["backend"]: {row["depth"]: row["trace_s"] for row in series}
        for series in by_backend
    }
    if "interp" not in trace_by or "compiled" not in trace_by:
        return {}
    return {
        str(depth): round(trace_by["interp"][depth] / trace_by["compiled"][depth], 2)
        for depth in trace_by["interp"]
        if trace_by["compiled"].get(depth)
    }


def collect_perf_report(
    depths=DEPTHS, repeats=1, workers=None, backends=("interp", "compiled")
):
    """The full ``BENCH_perf.json`` payload (see benchmarks/run_perf.py)."""
    clear_caches()
    by_backend = [
        measure_series(depths=depths, repeats=repeats, backend=backend)
        for backend in backends
    ]
    speedup = _series_conformance(by_backend)
    series = [row for backend_rows in by_backend for row in backend_rows]
    report = {
        "schema": "bench_perf/5",
        "python": platform_mod.python_version(),
        "platform": platform_mod.platform(),
        "depths": list(depths),
        "repeats": repeats,
        "backends": list(backends),
        "series": series,
        "speedup_trace": speedup,
        "questions_curve": measure_questions(),
        "mutants": measure_mutants(workers=workers, repeats=repeats),
        "fast_path": measure_fast_path(),
        "obs": measure_obs(depth=min(6, max(depths))),
        "profile": measure_profile(depth=min(6, max(depths))),
        "cache": cache_stats(),
    }
    return report


def test_perf_scale(benchmark):
    rows = measure_series()

    print("\n[PERF1] wall-time scaling (divide-and-query debugging):")
    print(f"  {'leaves':>7} {'nodes':>6} {'occs':>6} "
          f"{'run(s)':>9} {'trace(s)':>9} {'slice(s)':>9} "
          f"{'debug(s)':>9} {'questions':>10}")
    for row in rows:
        print(
            f"  {row['leaves']:>7} {row['tree_nodes']:>6} "
            f"{row['occurrences']:>6} {row['run_s']:>9.4f} "
            f"{row['trace_s']:>9.4f} {row['slice_s']:>9.4f} "
            f"{row['debug_s']:>9.4f} {row['questions']:>10}"
        )
    print("[PERF1] tracing grows linearly with executed statements; "
          "divide-and-query questions grow ~logarithmically.")

    # questions sublinear in leaves
    assert rows[-1]["questions"] < rows[-1]["leaves"]

    generated = generate_call_tree_program(CallTreeSpec(depth=6))

    def run():
        trace = trace_source(generated.source)
        return debug_with(
            trace, generated.fixed_source, strategy="divide-and-query"
        )

    result = benchmark(run)
    assert result.bug_unit == generated.buggy_unit
    benchmark.extra_info["series"] = rows
