"""PERF1 — wall-time scalability of the pipeline stages.

Not a paper figure (the paper reports no timings): this series records
how tracing, dynamic slicing, and a full debugging session scale with
program size on this implementation, so regressions are visible.

Measures: trace+debug on the largest call tree.
"""

import time

from benchmarks.helpers import debug_with
from repro.pascal import analyze_source
from repro.tracing import trace_source
from repro.workloads import (
    CallTreeSpec,
    generate_call_tree_program,
)

DEPTHS = [2, 4, 6]  # 4, 16, 64 leaves


def measure_series():
    rows = []
    for depth in DEPTHS:
        generated = generate_call_tree_program(CallTreeSpec(depth=depth))
        started = time.perf_counter()
        trace = trace_source(generated.source)
        trace_seconds = time.perf_counter() - started

        started = time.perf_counter()
        result = debug_with(
            trace, generated.fixed_source, strategy="divide-and-query"
        )
        debug_seconds = time.perf_counter() - started
        assert result.bug_unit == generated.buggy_unit

        rows.append(
            {
                "leaves": 2**depth,
                "tree_nodes": trace.tree.size(),
                "occurrences": len(trace.dependence_graph),
                "trace_s": trace_seconds,
                "debug_s": debug_seconds,
                "questions": result.user_questions,
            }
        )
    return rows


def test_perf_scale(benchmark):
    rows = measure_series()

    print("\n[PERF1] wall-time scaling (divide-and-query debugging):")
    print(f"  {'leaves':>7} {'nodes':>6} {'occs':>6} "
          f"{'trace(s)':>9} {'debug(s)':>9} {'questions':>10}")
    for row in rows:
        print(
            f"  {row['leaves']:>7} {row['tree_nodes']:>6} "
            f"{row['occurrences']:>6} {row['trace_s']:>9.4f} "
            f"{row['debug_s']:>9.4f} {row['questions']:>10}"
        )
    print("[PERF1] tracing grows linearly with executed statements; "
          "divide-and-query questions grow ~logarithmically.")

    # questions sublinear in leaves
    assert rows[-1]["questions"] < rows[-1]["leaves"]

    generated = generate_call_tree_program(CallTreeSpec(depth=DEPTHS[-1]))

    def run():
        trace = trace_source(generated.source)
        return debug_with(
            trace, generated.fixed_source, strategy="divide-and-query"
        )

    result = benchmark(run)
    assert result.bug_unit == generated.buggy_unit
    benchmark.extra_info["series"] = rows
