"""SCALE1 — the paper's central claim, quantified.

User interactions needed to localize a planted bug, as the number of
*irrelevant* procedures grows (the paper's Figure 5 scenario), for:

* pure algorithmic debugging (top-down),
* AD + dynamic slicing,
* AD + test-case lookup (workers verified by tests),
* full GADT (slicing + tests).

Expected shape: pure AD grows linearly with the worker count; slicing
makes the count flat (irrelevant workers pruned); tests also flatten it
(workers auto-answered); GADT is at least as good as either.
Measures: a full GADT session at the largest size.
"""

import pytest

from benchmarks.helpers import debug_with
from repro.core import GadtSystem
from repro.pascal import analyze_source
from repro.pascal.values import UNDEFINED
from repro.tgen import (
    CaseRunner,
    TestCase,
    TestCaseLookup,
    frame_for_choices,
    parse_spec,
)
from repro.tgen.frames import generate_frames
from repro.workloads import generate_irrelevant_siblings_program

WORKER_COUNTS = [2, 6, 12, 20]

WORKER_SPEC = """
test {name};
category magnitude;
  small : ;
  large : if BIG property BIG;
"""


def build_worker_lookup(system, workers: int) -> TestCaseLookup:
    """Category-partition specs + passing reports for every worker."""
    runner = CaseRunner(system.analysis)
    from repro.tgen.reports import TestReportDatabase

    database = TestReportDatabase()
    lookup = TestCaseLookup(database=database)
    for index in range(1, workers + 1):
        name = f"work{index}"
        spec = parse_spec(f"test {name}; category magnitude; small : ; ")
        frame = frame_for_choices(spec, {"magnitude": "small"})
        case = TestCase(
            frame=frame,
            args=[2, UNDEFINED],
            expected={"v": 2 * index},
        )
        database.add(runner.run(case))
        lookup.register(
            spec, lambda inputs, f=frame: f  # every input maps to the frame
        )
    return lookup


def localization_curves():
    curves = {"pure": [], "slicing": [], "tests": [], "gadt": []}
    for workers in WORKER_COUNTS:
        generated = generate_irrelevant_siblings_program(workers=workers)
        system = GadtSystem.from_source(generated.source)
        lookup = build_worker_lookup(system, workers)

        configs = {
            "pure": dict(),
            "slicing": dict(enable_slicing=True),
            "tests": dict(test_lookup=lookup),
            "gadt": dict(test_lookup=lookup, enable_slicing=True),
        }
        for key, kwargs in configs.items():
            result = debug_with(system.trace, generated.fixed_source, **kwargs)
            assert result.bug_unit == generated.buggy_unit, (key, workers)
            curves[key].append(result.user_questions)
    return curves


def test_scale_interactions(benchmark):
    curves = localization_curves()

    # Shape assertions: pure AD grows with workers; slicing and GADT flat.
    assert curves["pure"][-1] > curves["pure"][0]
    assert curves["slicing"][-1] == curves["slicing"][0]
    assert curves["gadt"][-1] == curves["gadt"][0]
    for index in range(len(WORKER_COUNTS)):
        assert curves["gadt"][index] <= curves["pure"][index]
        assert curves["slicing"][index] <= curves["pure"][index]
        assert curves["tests"][index] <= curves["pure"][index]

    print("\n[SCALE1] user questions vs irrelevant workers:")
    header = "  workers: " + "".join(f"{w:>6}" for w in WORKER_COUNTS)
    print(header)
    for key in ("pure", "tests", "slicing", "gadt"):
        row = "".join(f"{q:>6}" for q in curves[key])
        print(f"  {key:>8}: {row}")
    print("[SCALE1] shape: pure AD linear in noise; slicing/GADT flat "
          "(paper: slicing removes irrelevant procedures from the search)")

    # Time the flagship configuration at the largest size.
    generated = generate_irrelevant_siblings_program(workers=WORKER_COUNTS[-1])
    system = GadtSystem.from_source(generated.source)
    lookup = build_worker_lookup(system, WORKER_COUNTS[-1])

    def run_gadt():
        return debug_with(
            system.trace,
            generated.fixed_source,
            test_lookup=lookup,
            enable_slicing=True,
        )

    result = benchmark(run_gadt)
    assert result.bug_unit == generated.buggy_unit
    benchmark.extra_info["curves"] = curves
