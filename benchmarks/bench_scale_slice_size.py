"""SCALE2 — slicing payoff: slice size vs program size.

The paper (§1): "in practice, a slice is often much smaller than the
original program, especially for block-structured languages."

Regenerates: static-slice sizes (statements kept / total) on generated
sibling programs as the irrelevant fraction grows, plus dynamic-slice
activation ratios on the same programs.
Measures: static slicing at the largest program size.
"""

from repro.pascal import ast_nodes as ast
from repro.pascal import analyze_source
from repro.slicing import DynamicCriterion, StaticCriterion, dynamic_slice, static_slice
from repro.tracing import trace_source
from repro.workloads import generate_irrelevant_siblings_program

WORKER_COUNTS = [2, 6, 12, 20]


def statement_total(analysis) -> int:
    count = 0
    for info in analysis.all_routines():
        for stmt in ast.iter_statements(info.block.body):
            if not isinstance(stmt, ast.Compound):
                count += 1
    return count


def measure():
    rows = []
    for workers in WORKER_COUNTS:
        generated = generate_irrelevant_siblings_program(workers=workers)
        analysis = analyze_source(generated.source)
        computed = static_slice(
            analysis, StaticCriterion.at_routine_exit("siblings", "y")
        )
        total = statement_total(analysis)
        kept = computed.statement_count()

        trace = trace_source(generated.source)
        p_node = trace.tree.find("p")
        dyn = dynamic_slice(trace, DynamicCriterion(node=p_node, variable="y"))
        activations = sum(1 for _ in p_node.walk())
        relevant = len(dyn.relevant_node_ids)
        rows.append((workers, kept, total, relevant, activations))
    return rows


def test_scale_slice_size(benchmark):
    rows = measure()

    # Shape: the kept fraction falls as irrelevant code grows.
    first_ratio = rows[0][1] / rows[0][2]
    last_ratio = rows[-1][1] / rows[-1][2]
    assert last_ratio < first_ratio
    assert last_ratio < 0.5  # much smaller than the program

    print("\n[SCALE2] slice size vs program size (criterion: y at exit):")
    print("  workers   static kept/total    dynamic kept/activations")
    for workers, kept, total, relevant, activations in rows:
        print(
            f"  {workers:7d}   {kept:4d}/{total:<4d} ({kept / total:5.0%})"
            f"      {relevant:4d}/{activations:<4d} ({relevant / activations:5.0%})"
        )
    print("[SCALE2] shape: slice fraction shrinks as irrelevant code grows "
          "(paper: 'a slice is often much smaller than the original program')")

    generated = generate_irrelevant_siblings_program(workers=WORKER_COUNTS[-1])
    analysis = analyze_source(generated.source)

    def run_slice():
        return static_slice(
            analysis, StaticCriterion.at_routine_exit("siblings", "y")
        )

    computed = benchmark(run_slice)
    assert computed.statement_count() > 0
    benchmark.extra_info["rows"] = [
        {"workers": w, "static": f"{k}/{t}", "dynamic": f"{r}/{a}"}
        for w, k, t, r, a in rows
    ]
