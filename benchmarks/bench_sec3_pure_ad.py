"""SEC3 — the §3 P/Q/R dialogue: pure algorithmic debugging.

Regenerates: the three-question session localizing the bug in R.
Measures: trace + debug time for the minimal example.
"""

from repro.core import AlgorithmicDebugger, ReferenceOracle
from repro.pascal import analyze_source
from repro.tracing import trace_source
from repro.workloads import SECTION3_SOURCE
from repro.workloads.paper_programs import SECTION3_FIXED_SOURCE


def run_session():
    trace = trace_source(SECTION3_SOURCE)
    oracle = ReferenceOracle(analyze_source(SECTION3_FIXED_SOURCE))
    return AlgorithmicDebugger(trace, oracle).debug()


def test_sec3_pure_ad(benchmark):
    result = benchmark(run_session)

    assert result.bug_unit == "r"
    assert result.user_questions == 3  # P? no; Q? yes; R? no

    print("\n[SEC3] interaction session:")
    for line in result.session.render().splitlines():
        print(f"  {line}")
    print(f"[SEC3] user questions: {result.user_questions} (paper: 3)")
    benchmark.extra_info["user_questions"] = result.user_questions
    benchmark.extra_info["bug_unit"] = result.bug_unit
