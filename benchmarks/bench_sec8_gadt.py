"""SEC8 — the paper's full GADT walkthrough.

Regenerates: the §8 session — 6 user questions (arrsum answered by the
test database, never shown), 2 slicing steps, bug localized in
``decrement`` — and the pure-AD baseline (8 questions) it improves on.
Measures: one complete debugging phase (answer chain + slicing) on a
pre-built trace and test database.
"""

import pytest

from benchmarks.helpers import build_arrsum_lookup, build_figure4_system, debug_with
from repro.workloads import FIGURE4_FIXED_SOURCE


@pytest.fixture(scope="module")
def system():
    return build_figure4_system()


@pytest.fixture(scope="module")
def lookup(system):
    return build_arrsum_lookup(system.analysis)


def test_sec8_gadt_session(benchmark, system, lookup):
    def run():
        return debug_with(
            system.trace,
            FIGURE4_FIXED_SOURCE,
            test_lookup=lookup,
            enable_slicing=True,
        )

    result = benchmark(run)

    assert result.bug_unit == "decrement"
    assert result.user_questions == 6
    assert result.auto_answers == 1
    assert result.slices == 2

    baseline = debug_with(system.trace, FIGURE4_FIXED_SOURCE)
    assert baseline.user_questions == 8

    print("\n[SEC8] GADT session transcript:")
    for line in result.session.render().splitlines():
        print(f"  {line}")
    print(
        f"[SEC8] user questions: GADT={result.user_questions} "
        f"vs pure AD={baseline.user_questions} "
        "(paper: greatly reduced number of interactions)"
    )
    benchmark.extra_info["gadt_questions"] = result.user_questions
    benchmark.extra_info["pure_ad_questions"] = baseline.user_questions
    benchmark.extra_info["slices"] = result.slices
