"""SEC9 — §9's implementation-status claim:

"Small procedures usually grow less than a factor of two after
transformations."

Regenerates: per-procedure growth factors over a corpus of typical
procedures (global access, global gotos, loops) — the median must stay
below 2×; only goto-dense outliers exceed it.
Measures: full transformation-pipeline time over the corpus.
"""

import statistics

from repro.transform import transform_source

CORPUS = {
    "accumulator": """
        program a;
        var total: integer;
        procedure add(n: integer);
        begin total := total + n end;
        procedure double;
        begin total := total * 2 end;
        begin total := 0; add(3); double; writeln(total) end.
    """,
    "reader": """
        program b;
        var cursor: integer;
        procedure advance(steps: integer);
        begin cursor := cursor + steps end;
        function at_end(limit: integer): boolean;
        begin at_end := cursor >= limit end;
        begin cursor := 0; advance(5); writeln(at_end(4)) end.
    """,
    "looping": """
        program c;
        var acc: integer;
        procedure sum_to(n: integer);
        var i: integer;
        begin
          acc := 0;
          for i := 1 to n do acc := acc + i
        end;
        begin sum_to(5); writeln(acc) end.
    """,
    "exiting": """
        program d;
        label 9;
        var hits: integer;
        procedure probe(n: integer);
        begin
          hits := hits + 1;
          if n > 2 then goto 9
        end;
        begin hits := 0; probe(1); probe(3); probe(1); 9: writeln(hits) end.
    """,
    "nested": """
        program e;
        procedure outer;
        var x: integer;
          procedure inner;
          begin x := x + 1 end;
        begin x := 0; inner; inner; writeln(x) end;
        begin outer end.
    """,
}


def transform_corpus():
    factors: dict[str, float] = {}
    for name, source in CORPUS.items():
        transformed = transform_source(source, instrument=False)
        for routine, factor in transformed.routine_growth_factors().items():
            factors[f"{name}.{routine}"] = factor
    return factors


def test_sec9_growth(benchmark):
    factors = benchmark(transform_corpus)

    values = sorted(factors.values())
    median = statistics.median(values)
    under_two = sum(1 for factor in values if factor < 2.0)

    assert median < 2.0
    assert under_two / len(values) >= 0.6  # "usually"

    print("\n[SEC9] per-procedure growth factors (lines, post-transform):")
    for name, factor in sorted(factors.items()):
        marker = "" if factor < 2.0 else "   <-- above 2x"
        print(f"  {name:30s} {factor:4.2f}{marker}")
    print(
        f"[SEC9] median {median:.2f}, {under_two}/{len(values)} under 2.0 "
        "(paper: 'usually grow less than a factor of two')"
    )
    benchmark.extra_info["median_growth"] = median
    benchmark.extra_info["fraction_under_two"] = under_two / len(values)
