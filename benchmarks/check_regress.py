"""CI perf-regression gate: compare a fresh ``BENCH_perf.json`` against
the committed baseline.

Usage::

    PYTHONPATH=src python benchmarks/check_regress.py BENCH_perf.json \
        BENCH_perf_fresh.json [--tolerance 0.5] [--min-seconds 0.005]

Exit 0 when every compared stage timing is within the tolerance band,
1 on a regression, 2 on unusable inputs.

Raw wall times are not comparable across machines (the committed
baseline comes from a developer box; CI runners differ widely), so the
gate first computes a **machine factor** — the median ratio of fresh to
baseline ``run_s`` across all series rows (plain un-traced execution is
the stage least affected by this repo's changes) — and then requires,
for every ``(backend, depth)`` pair present in both reports::

    fresh_stage_s <= baseline_stage_s * machine_factor * (1 + tolerance)

for the ``trace_s`` and ``debug_s`` stages (the two the pipeline's own
code dominates). Timings below ``--min-seconds`` in the baseline are
skipped — at sub-5ms scale the noise floor drowns any signal.

Question counts are a different animal: they are a pure property of
the search strategy, identical on every machine, so the gate compares
them **exactly** — both the per-depth ``questions`` column of the
stage series and, under ``bench_perf/5``, every
``(strategy, depth)`` row of the ``questions_curve`` section. A fresh
run asking even one more question than the committed baseline is a
strategy regression and fails CI outright.

The default tolerance is deliberately loose (50%): the gate exists to
catch order-of-magnitude instrumentation accidents (an always-on hook
on the hot path, an O(n^2) slip), not 10% jitter.
"""

from __future__ import annotations

import argparse
import json
import sys
from pathlib import Path

#: stages the gate compares (dominated by this repo's code)
GATED_STAGES = ("trace_s", "debug_s")

#: schemas the gate understands (series rows are compatible across them)
KNOWN_SCHEMAS = ("bench_perf/3", "bench_perf/4", "bench_perf/5")


def _load(path: str) -> dict:
    try:
        report = json.loads(Path(path).read_text())
    except (OSError, json.JSONDecodeError) as error:
        raise SystemExit(f"error: {path}: {error}")
    schema = report.get("schema")
    if schema not in KNOWN_SCHEMAS:
        raise SystemExit(
            f"error: {path}: unknown schema {schema!r} "
            f"(expected one of {', '.join(KNOWN_SCHEMAS)})"
        )
    return report


def _series_index(report: dict) -> dict:
    return {
        (row.get("backend", "interp"), row["depth"]): row
        for row in report.get("series", [])
    }


def _median(values: list[float]) -> float:
    ordered = sorted(values)
    middle = len(ordered) // 2
    if len(ordered) % 2:
        return ordered[middle]
    return (ordered[middle - 1] + ordered[middle]) / 2


def _curve_index(report: dict) -> dict:
    """``(strategy, depth) -> questions`` from the ``questions_curve``
    section (empty for pre-``bench_perf/5`` reports)."""
    curve = report.get("questions_curve") or {}
    return {
        (row["strategy"], row["depth"]): row["questions"]
        for row in curve.get("series", [])
    }


def machine_factor(baseline: dict, fresh: dict) -> float:
    """Median fresh/baseline ratio of plain-execution times: how much
    faster or slower this machine is, independent of repo changes."""
    base_rows = _series_index(baseline)
    ratios = [
        row["run_s"] / base_rows[key]["run_s"]
        for key, row in _series_index(fresh).items()
        if key in base_rows and base_rows[key]["run_s"] > 0 and row["run_s"] > 0
    ]
    if not ratios:
        return 1.0
    return _median(ratios)


def check(
    baseline: dict,
    fresh: dict,
    tolerance: float = 0.5,
    min_seconds: float = 0.005,
) -> list[str]:
    """Regression messages (empty means the gate passes)."""
    factor = machine_factor(baseline, fresh)
    base_rows = _series_index(baseline)
    fresh_rows = _series_index(fresh)
    compared = 0
    problems = []
    for key in sorted(set(base_rows) & set(fresh_rows)):
        backend, depth = key
        for stage in GATED_STAGES:
            base_s = base_rows[key].get(stage)
            fresh_s = fresh_rows[key].get(stage)
            if base_s is None or fresh_s is None or base_s < min_seconds:
                continue
            compared += 1
            allowed = base_s * factor * (1 + tolerance)
            if fresh_s > allowed:
                problems.append(
                    f"{backend}/depth {depth} {stage}: {fresh_s:.4f}s exceeds "
                    f"{allowed:.4f}s (baseline {base_s:.4f}s x machine factor "
                    f"{factor:.2f} x {1 + tolerance:.2f})"
                )
    for key in sorted(set(base_rows) & set(fresh_rows)):
        backend, depth = key
        base_q = base_rows[key].get("questions")
        fresh_q = fresh_rows[key].get("questions")
        if base_q is None or fresh_q is None:
            continue
        compared += 1
        if fresh_q > base_q:
            problems.append(
                f"{backend}/depth {depth} questions: {fresh_q} exceeds "
                f"baseline {base_q} (question counts are machine-"
                f"independent; any increase is a strategy regression)"
            )
    base_curve = _curve_index(baseline)
    fresh_curve = _curve_index(fresh)
    for key in sorted(set(base_curve) & set(fresh_curve)):
        strategy, depth = key
        compared += 1
        if fresh_curve[key] > base_curve[key]:
            problems.append(
                f"{strategy}/depth {depth} questions: {fresh_curve[key]} "
                f"exceeds baseline {base_curve[key]} (question counts are "
                f"machine-independent; any increase is a strategy "
                f"regression)"
            )
    if not compared:
        # An empty comparison must not silently pass: it means the fresh
        # run used depths/backends disjoint from the baseline, or every
        # baseline timing sits under the noise floor.
        problems.append(
            "no stage timings were comparable "
            "(disjoint series or all below --min-seconds)"
        )
    return problems


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("baseline", help="committed BENCH_perf.json")
    parser.add_argument("fresh", help="freshly measured BENCH_perf.json")
    parser.add_argument(
        "--tolerance",
        type=float,
        default=0.5,
        help="allowed fractional slowdown after machine normalization "
        "(default: %(default)s)",
    )
    parser.add_argument(
        "--min-seconds",
        type=float,
        default=0.005,
        help="skip baseline timings below this (noise floor; "
        "default: %(default)s)",
    )
    args = parser.parse_args(argv)

    baseline = _load(args.baseline)
    fresh = _load(args.fresh)
    factor = machine_factor(baseline, fresh)
    problems = check(
        baseline, fresh, tolerance=args.tolerance, min_seconds=args.min_seconds
    )
    print(
        f"perf gate: machine factor {factor:.2f}, "
        f"tolerance {args.tolerance:.0%}"
    )
    if problems:
        for problem in problems:
            print(f"REGRESSION: {problem}", file=sys.stderr)
        return 1
    print("perf gate: no regression")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
