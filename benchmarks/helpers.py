"""Shared fixtures and builders for the benchmark harness.

Each benchmark regenerates one of the paper's figures/examples (the
qualitative result, checked by assertions and echoed to stdout) and
measures the runtime of the corresponding pipeline stage with
pytest-benchmark.
"""

from __future__ import annotations

from repro.core import (
    AlgorithmicDebugger,
    AssertionStore,
    GadtSystem,
    ReferenceOracle,
)
from repro.pascal import analyze_source
from repro.tgen import (
    CaseRunner,
    TestCaseLookup,
    generate_frames,
    instantiate_cases,
)
from repro.tracing import TraceResult, trace_source
from repro.workloads import FIGURE4_FIXED_SOURCE, FIGURE4_SOURCE
from repro.workloads.arrsum_spec import (
    arrsum_frame_selector,
    arrsum_spec,
    make_arrsum_instantiator,
)


def build_figure4_system() -> GadtSystem:
    return GadtSystem.from_source(FIGURE4_SOURCE)


def build_arrsum_lookup(analysis) -> TestCaseLookup:
    """The §5.3.2 setup: spec + executed cases + report DB + selector."""
    spec = arrsum_spec()
    frames = generate_frames(spec)
    cases = instantiate_cases(spec, frames, make_arrsum_instantiator(2))
    database = CaseRunner(analysis).run_all(cases)
    lookup = TestCaseLookup(database=database)
    lookup.register(spec, arrsum_frame_selector)
    return lookup


def figure4_reference_oracle() -> ReferenceOracle:
    return ReferenceOracle(analyze_source(FIGURE4_FIXED_SOURCE))


def debug_with(
    trace: TraceResult,
    fixed_source: str,
    *,
    test_lookup=None,
    enable_slicing=False,
    strategy="top-down",
    assertions: AssertionStore | None = None,
):
    """One full debugging session with a fresh reference oracle."""
    oracle = ReferenceOracle(analyze_source(fixed_source))
    debugger = AlgorithmicDebugger(
        trace,
        oracle,
        strategy=strategy,
        assertions=assertions,
        test_lookup=test_lookup,
        enable_slicing=enable_slicing,
    )
    return debugger.debug()


def question_counts(result) -> dict[str, int]:
    return {
        "user": result.user_questions,
        "auto": result.auto_answers,
        "slices": result.slices,
    }
