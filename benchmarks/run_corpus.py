"""Differential sweep over the adversarial goto corpus.

For every seed the checker verifies, on the program emitted by
:func:`repro.tgen.corpus.generate_program`:

1. **transform equivalence** — the transformed program produces the
   same output and the same final global values as the original;
2. **backend conformance** — every registered execution backend agrees
   with the interpreter (output and step count) on the *transformed*
   program, whose surviving gotos are the irreducible taxonomy cases;
3. **debug invariance** — with a deterministic single-fault mutation
   injected, every search strategy localizes the same unit, and
   ``dq-optimal`` asks no more questions than classic divide-and-query
   (Insa & Silva's optimality claim).

Run it directly for the full parallel sweep (crash-isolated via
``repro.resilience.pool``)::

    PYTHONPATH=src python benchmarks/run_corpus.py --count 1000 --workers 8

On failure the offending program and seed are written to
``--fail-dir`` so the exact text can be replayed and minimized (see
docs/CORPUS.md). ``tests/test_corpus_differential.py`` imports
:func:`check_seed` for the in-suite smoke version of the same checks.
"""

from __future__ import annotations

import argparse
import json
import sys
import time
from pathlib import Path
from random import Random

from repro.compile import BACKENDS
from repro.core import AlgorithmicDebugger, ReferenceOracle
from repro.core.strategies import available_strategies
from repro.pascal import analyze_source, print_program, run_source
from repro.resilience.pool import run_isolated
from repro.tgen.corpus import CorpusConfig, generate_program
from repro.tracing import trace_source
from repro.transform import transform_source
from repro.workloads.mutants import generate_mutants

#: cap on interpreter steps for one corpus program (generated programs
#: finish in far fewer; the cap catches termination bugs diagnosably)
STEP_LIMIT = 500_000

#: how many candidate mutants to probe before giving up on a seed's
#: debug-invariance check (most probes hit on the first try)
MUTANT_PROBES = 10


class CorpusCheckFailure(AssertionError):
    """One seed failed; carries the program text for artifact dumps."""

    def __init__(self, seed: int, stage: str, detail: str, source: str):
        super().__init__(f"seed {seed} [{stage}]: {detail}")
        self.seed = seed
        self.stage = stage
        self.detail = detail
        self.source = source


def _final_globals(result, names):
    return {name: result.global_value(name) for name in names}


def check_seed(
    seed: int,
    config: CorpusConfig | None = None,
    with_strategies: bool = True,
) -> dict:
    """Run all differential checks for one seed; returns sweep stats."""
    source = generate_program(seed, config)
    stats: dict = {"seed": seed}

    # 1. transform equivalence --------------------------------------
    original = run_source(source, step_limit=STEP_LIMIT)
    transformed = transform_source(source, cached=False)
    transformed_text = print_program(transformed.program)
    after = run_source(transformed_text, step_limit=STEP_LIMIT)
    if original.output != after.output:
        raise CorpusCheckFailure(
            seed,
            "transform",
            f"output diverged:\n--- original\n{original.output}"
            f"--- transformed\n{after.output}",
            source,
        )
    global_names = [
        decl.name
        for decl in analyze_source(source).program.block.variables
    ]
    before_state = _final_globals(original, global_names)
    after_state = _final_globals(after, global_names)
    if before_state != after_state:
        raise CorpusCheckFailure(
            seed,
            "transform",
            f"final globals diverged: {before_state} != {after_state}",
            source,
        )
    stats["goto_cases"] = transformed.goto_cases
    stats["goto_eliminated"] = transformed.goto_eliminated
    stats["warnings"] = len(transformed.warnings)

    # 2. backend conformance on the transformed program -------------
    for backend in sorted(BACKENDS):
        if backend == "interp":
            continue
        run = run_source(transformed_text, step_limit=STEP_LIMIT, backend=backend)
        if run.output != after.output or run.steps != after.steps:
            raise CorpusCheckFailure(
                seed,
                f"backend:{backend}",
                f"output/steps diverged from interpreter "
                f"({run.steps} vs {after.steps} steps)",
                transformed_text,
            )

    # 3. debug-outcome invariance under an injected fault ------------
    if with_strategies:
        stats["strategy"] = _check_strategies(seed, source, original.output)
    return stats


def _pick_mutant(seed: int, source: str, baseline: str):
    """A deterministic single-fault mutant that visibly misbehaves."""
    mutants = generate_mutants(source, include_constants=True)
    Random(seed).shuffle(mutants)
    for mutant in mutants[:MUTANT_PROBES]:
        try:
            output = run_source(mutant.source, step_limit=STEP_LIMIT).output
        except Exception:
            continue  # crashing mutants are out of scope here
        if output != baseline:
            return mutant
    return None


def _check_strategies(seed: int, source: str, baseline: str) -> dict:
    mutant = _pick_mutant(seed, source, baseline)
    if mutant is None:
        return {"checked": False}
    trace = trace_source(mutant.source, step_limit=STEP_LIMIT)
    oracle = ReferenceOracle(analyze_source(source))
    blamed: dict[str, str | None] = {}
    questions: dict[str, int] = {}
    for strategy in available_strategies():
        result = AlgorithmicDebugger(
            trace, oracle, strategy=strategy
        ).debug()
        blamed[strategy] = result.bug_unit
        questions[strategy] = result.user_questions
    if len(set(blamed.values())) != 1:
        raise CorpusCheckFailure(
            seed,
            "strategy",
            f"strategies disagree on {mutant.description!r}: {blamed}",
            mutant.source,
        )
    if questions["dq-optimal"] > questions["divide-and-query"]:
        raise CorpusCheckFailure(
            seed,
            "strategy",
            f"dq-optimal asked {questions['dq-optimal']} > "
            f"divide-and-query {questions['divide-and-query']} "
            f"on {mutant.description!r}",
            mutant.source,
        )
    return {
        "checked": True,
        "mutant": mutant.description,
        "unit": blamed["top-down"],
        "questions": questions,
    }


# ----------------------------------------------------------------------
# parallel sweep


def _check_payload(payload, attempt: int) -> dict:
    seed, strategy_every = payload
    try:
        return check_seed(seed, with_strategies=seed % strategy_every == 0)
    except CorpusCheckFailure as failure:
        # TaskResult values must survive pickling; carry the artifact
        # fields, not the exception object.
        return {
            "seed": failure.seed,
            "failed": failure.stage,
            "detail": failure.detail,
            "source": failure.source,
        }


def _merge_counts(total: dict[str, int], extra: dict[str, int]) -> None:
    for key, value in extra.items():
        total[key] = total.get(key, 0) + value


def sweep(
    count: int,
    start: int = 0,
    workers: int = 1,
    strategy_every: int = 1,
    fail_dir: Path | None = None,
) -> dict:
    payloads = [(seed, strategy_every) for seed in range(start, start + count)]
    started = time.perf_counter()
    if workers > 1:
        results = run_isolated(
            _check_payload, payloads, workers=workers, timeout_s=300.0
        )
        values = [r.value if r.status == "ok" else {"seed": payloads[r.index][0], "failed": r.status, "detail": r.error or "", "source": ""} for r in results]
    else:
        values = [_check_payload(payload, 0) for payload in payloads]
    elapsed = time.perf_counter() - started

    failures = [v for v in values if v.get("failed")]
    cases: dict[str, int] = {}
    eliminated: dict[str, int] = {}
    questions_ok = 0
    strategy_checked = 0
    for value in values:
        if value.get("failed"):
            continue
        _merge_counts(cases, value.get("goto_cases", {}))
        _merge_counts(eliminated, value.get("goto_eliminated", {}))
        strategy = value.get("strategy")
        if strategy and strategy.get("checked"):
            strategy_checked += 1
            questions_ok += 1
    if fail_dir is not None and failures:
        fail_dir.mkdir(parents=True, exist_ok=True)
        for failure in failures:
            stem = fail_dir / f"seed_{failure['seed']}"
            stem.with_suffix(".pas").write_text(failure.get("source", ""))
            stem.with_suffix(".txt").write_text(
                f"stage: {failure['failed']}\n{failure.get('detail', '')}\n"
            )
    return {
        "count": count,
        "start": start,
        "elapsed_s": round(elapsed, 2),
        "failures": [
            {k: v for k, v in f.items() if k != "source"} for f in failures
        ],
        "goto_cases": cases,
        "goto_eliminated": eliminated,
        "strategy_checked": strategy_checked,
    }


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--count", type=int, default=200)
    parser.add_argument("--start", type=int, default=0)
    parser.add_argument("--workers", type=int, default=1)
    parser.add_argument(
        "--strategy-every",
        type=int,
        default=1,
        metavar="N",
        help="run the 4-strategy debug check on every Nth seed (default all)",
    )
    parser.add_argument("--output", type=Path, default=Path("BENCH_corpus.json"))
    parser.add_argument(
        "--fail-dir",
        type=Path,
        default=Path("corpus_failures"),
        help="where offending programs are written on failure",
    )
    args = parser.parse_args(argv)

    report = sweep(
        count=args.count,
        start=args.start,
        workers=args.workers,
        strategy_every=args.strategy_every,
        fail_dir=args.fail_dir,
    )
    args.output.write_text(json.dumps(report, indent=2) + "\n")
    print(
        f"corpus sweep: {report['count']} seeds in {report['elapsed_s']}s, "
        f"{len(report['failures'])} failure(s), "
        f"{report['strategy_checked']} strategy check(s)"
    )
    print(f"goto cases seen: {report['goto_cases']}")
    print(f"goto eliminated: {report['goto_eliminated']}")
    if report["failures"]:
        for failure in report["failures"]:
            print(f"  FAILED seed {failure['seed']}: {failure['failed']}")
        print(f"artifacts in {args.fail_dir}/")
        return 1
    return 0


if __name__ == "__main__":
    sys.exit(main())
