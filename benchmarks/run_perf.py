"""Standalone perf runner: emits ``BENCH_perf.json``.

Usage::

    PYTHONPATH=src python benchmarks/run_perf.py [--depths 2,4,6,8]
        [--repeats 3] [--workers N] [--backend both]
        [--output BENCH_perf.json]

Runs the PERF1 stage series (un-traced run, trace, dynamic slice,
debug, mutation sweep) from :mod:`benchmarks.bench_perf_scale` and
writes one JSON document so the performance trajectory is tracked in a
stable, diffable artifact from PR to PR. Smoke mode (``--depths 2``) is
what CI runs; the full series is for local measurement.

``--backend both`` (the default) records the stage series once per
execution backend and a per-depth ``speedup_trace`` table; since
``bench_perf/4`` the artifact also embeds one ``hotspots/1`` per-unit
self-time report per backend, and since ``bench_perf/5`` a
``questions_curve`` section: user questions per strategy over call
chains of depth 2–12, demonstrating the ~O(log n) behaviour of
``dq-optimal`` against top-down's O(depth).
``benchmarks/check_regress.py`` compares a fresh artifact against the
committed one and fails CI on regression — timings normalized by a
machine factor, question counts exactly.
"""

from __future__ import annotations

import argparse
import json
import sys
from pathlib import Path

# allow `python benchmarks/run_perf.py` from the repo root without -m
sys.path.insert(0, str(Path(__file__).resolve().parent.parent))

from benchmarks.bench_perf_scale import DEPTHS, collect_perf_report


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument(
        "--depths",
        default=",".join(str(d) for d in DEPTHS),
        help="comma-separated call-tree depths (default: %(default)s)",
    )
    parser.add_argument(
        "--repeats",
        type=int,
        default=3,
        help="best-of-N repeats per stage (default: %(default)s)",
    )
    parser.add_argument(
        "--workers",
        type=int,
        default=None,
        help="worker processes for the mutation sweep (default: sequential)",
    )
    parser.add_argument(
        "--backend",
        choices=["interp", "compiled", "both"],
        default="both",
        help="execution backend(s) for the stage series (default: %(default)s)",
    )
    parser.add_argument(
        "--output",
        default="BENCH_perf.json",
        help="output path (default: %(default)s)",
    )
    args = parser.parse_args(argv)

    depths = [int(part) for part in args.depths.split(",") if part.strip()]
    backends = (
        ("interp", "compiled") if args.backend == "both" else (args.backend,)
    )
    report = collect_perf_report(
        depths=depths, repeats=args.repeats, workers=args.workers,
        backends=backends,
    )

    output = Path(args.output)
    output.write_text(json.dumps(report, indent=2) + "\n")

    print(f"wrote {output}")
    print(f"  {'backend':>9} {'leaves':>7} {'run(s)':>9} {'trace(s)':>9} "
          f"{'slice(s)':>9} {'debug(s)':>9} {'questions':>10}")
    for row in report["series"]:
        print(
            f"  {row['backend']:>9} {row['leaves']:>7} "
            f"{row['run_s']:>9.4f} {row['trace_s']:>9.4f} "
            f"{row['slice_s']:>9.4f} {row['debug_s']:>9.4f} "
            f"{row['questions']:>10}"
        )
    if report.get("speedup_trace"):
        pairs = ", ".join(
            f"depth {depth}: {ratio:.1f}x"
            for depth, ratio in report["speedup_trace"].items()
        )
        print(f"  compiled trace speedup: {pairs}")
    curve = report.get("questions_curve")
    if curve:
        by_strategy: dict[str, dict[int, int]] = {}
        for row in curve["series"]:
            by_strategy.setdefault(row["strategy"], {})[row["depth"]] = row[
                "questions"
            ]
        print("  questions to localize a leaf bug on a call chain:")
        print(
            f"  {'depth':>18}:"
            + "".join(f"{d:>4}" for d in curve["depths"])
        )
        for strategy in sorted(by_strategy):
            cells = "".join(
                f"{by_strategy[strategy].get(d, '-'):>4}"
                for d in curve["depths"]
            )
            print(f"  {strategy:>18}:{cells}")
    mutants = report["mutants"]
    by_status = ", ".join(
        f"{status} {count}" for status, count in mutants["by_status"].items()
    )
    print(
        f"  mutation sweep: {mutants['mutants']} mutants in "
        f"{mutants['seconds']:.3f}s ({mutants['workers']} worker(s)), "
        f"{mutants['correct']}/{mutants['debuggable']} localized ({by_status})"
    )
    fast = report["fast_path"]
    print(
        f"  un-traced run (depth {fast['depth']}): cold {fast['cold_s']:.4f}s, "
        f"warm {fast['warm_s']:.4f}s"
    )
    session = report["obs"]["session"]
    sources = ", ".join(
        f"{source} {count}"
        for source, count in session["queries"]["by_source"].items()
    )
    print(
        f"  obs (depth {report['obs']['depth']}): "
        f"{session['queries']['total']} queries ({sources}), "
        f"{session['interactions_saved']} interactions saved"
    )
    for backend, hotspots in report["profile"]["reports"].items():
        hottest = hotspots["units"][0] if hotspots["units"] else None
        if hottest is not None:
            print(
                f"  hotspots ({backend}, depth {report['profile']['depth']}): "
                f"{hottest['unit']} leads with {hottest['steps']} steps, "
                f"{hottest['self_s']:.4f}s self time"
            )
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
