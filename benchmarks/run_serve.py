"""Load-generator benchmark for the debug service: emits ``BENCH_serve.json``.

Usage::

    PYTHONPATH=src python benchmarks/run_serve.py [--sessions 100]
        [--workers 4] [--executor thread|process] [--duration 5]
        [--overload 2.0] [--fault serve.worker] [--output BENCH_serve.json]

Two phases against one in-process :class:`repro.serve.DebugService`
multiplexed over one shared sharded test-report store:

1. **calibration** — a low-concurrency warm pass measures the mean
   service time of the job mix, giving the sustainable rate
   (``workers / mean_serve_s``);
2. **overload** — ``--sessions`` concurrent sessions (default 100)
   offer jobs at ``--overload``× the sustainable rate (default 2×) for
   ``--duration`` seconds. The service is expected to shed the excess
   explicitly, keep latency bounded for the jobs it accepts, and lose
   nothing: the run **fails** (exit 1) if any submitted job fails to
   receive a terminal response — the zero-lost-jobs acceptance check.

``--fault serve.worker`` additionally injects a raise-mode fault into
every job's first execution attempt, so the overload run doubles as a
retry-path soak: throughput drops, but the invariant must hold. CI
(the ``serve-smoke`` job) runs exactly that configuration.

The artifact (``bench_serve/1``) records throughput, wait/latency
percentiles (p50/p95/p99), per-status counts, and the shed rate, so
service capacity is tracked PR over PR alongside ``BENCH_perf.json``.
"""

from __future__ import annotations

import argparse
import asyncio
import json
import sys
import tempfile
import time
from pathlib import Path

sys.path.insert(0, str(Path(__file__).resolve().parent.parent / "src"))

from repro.resilience import faults
from repro.resilience.faults import FaultPlan, FaultSpec
from repro.serve import DebugService, ServeConfig
from repro.store import ShardedReportStore
from repro.tgen.reports import TestReport, Verdict
from repro.workloads import FIGURE4_SOURCE

#: a modest job: ~10k interpreter steps, long enough to queue behind
WORK_SOURCE = """\
program work;
var i, acc : integer;
begin
  i := 0;
  acc := 0;
  while i < 3000 do
  begin
    acc := acc + i;
    i := i + 1
  end;
  writeln(acc)
end.
"""

JOB_MIX = (
    {"op": "run", "source": WORK_SOURCE},
    {"op": "run", "source": FIGURE4_SOURCE},
    {"op": "answer",
     "queries": [{"unit": "arrsum", "inputs": {}}]},
)


def seed_store(root: Path) -> str:
    """A small shared test-report store for the ``answer`` jobs."""
    store = ShardedReportStore(root / "testdb", shards=4)
    for n in range(32):
        store.add(TestReport(
            unit="arrsum",
            frame_key=("more", "positive", "small"),
            verdict=Verdict.PASS,
        ))
    store.flush()
    return str(root / "testdb")


def percentile(values: list[float], fraction: float) -> float:
    if not values:
        return 0.0
    ordered = sorted(values)
    index = min(len(ordered) - 1, int(fraction * len(ordered)))
    return ordered[index]


async def calibrate(service: DebugService, jobs: int = 24) -> dict:
    """Mean service time of the job mix at gentle concurrency."""
    started = time.monotonic()
    responses = await asyncio.gather(*(
        service.submit({
            "id": f"cal-{n}", **dict(JOB_MIX[n % len(JOB_MIX)]),
            "use_testdb": True,
        })
        for n in range(jobs)
    ))
    elapsed = time.monotonic() - started
    served = [r for r in responses if r.status in ("completed", "degraded")]
    mean_serve = (
        sum(r.serve_s for r in served) / len(served) if served else 0.01
    )
    return {
        "jobs": jobs,
        "elapsed_s": round(elapsed, 4),
        "mean_serve_s": round(mean_serve, 6),
        "sustainable_rate": round(
            service.config.workers / max(mean_serve, 1e-4), 2
        ),
    }


async def overload_run(
    service: DebugService,
    sessions: int,
    offered_rate: float,
    duration_s: float,
) -> dict:
    """``sessions`` concurrent clients offering ``offered_rate`` jobs/s
    total for ``duration_s``; every submission must come back terminal."""
    interarrival = sessions / max(offered_rate, 0.1)
    responses = []
    submitted = 0

    async def session(index: int) -> None:
        nonlocal submitted
        deadline = time.monotonic() + duration_s
        n = 0
        while time.monotonic() < deadline:
            job = dict(JOB_MIX[(index + n) % len(JOB_MIX)])
            job["id"] = f"s{index}-{n}"
            job["tenant"] = f"tenant-{index % 8}"
            job["use_testdb"] = True
            submitted += 1
            arrived = time.monotonic()
            response = await service.submit(job)
            responses.append((response, time.monotonic() - arrived))
            n += 1
            pause = interarrival - (time.monotonic() - arrived)
            if pause > 0:
                await asyncio.sleep(pause)

    started = time.monotonic()
    await asyncio.gather(*(session(index) for index in range(sessions)))
    elapsed = time.monotonic() - started

    statuses: dict[str, int] = {}
    for response, _ in responses:
        statuses[response.status] = statuses.get(response.status, 0) + 1
    served = [
        latency for response, latency in responses
        if response.status in ("completed", "degraded")
    ]
    waits = [response.wait_s for response, _ in responses]
    lost = submitted - len(responses)
    return {
        "sessions": sessions,
        "offered_rate": round(offered_rate, 2),
        "duration_s": round(elapsed, 3),
        "submitted": submitted,
        "responded": len(responses),
        "lost_jobs": lost,
        "throughput": round(len(served) / max(elapsed, 1e-9), 2),
        "statuses": statuses,
        "shed_rate": round(
            statuses.get("shed", 0) / max(len(responses), 1), 4
        ),
        "latency_s": {
            "p50": round(percentile(served, 0.50), 5),
            "p95": round(percentile(served, 0.95), 5),
            "p99": round(percentile(served, 0.99), 5),
        },
        "wait_s": {
            "p50": round(percentile(waits, 0.50), 5),
            "p95": round(percentile(waits, 0.95), 5),
            "p99": round(percentile(waits, 0.99), 5),
        },
    }


async def collect(args: argparse.Namespace, testdb: str) -> dict:
    config = ServeConfig(
        workers=args.workers,
        executor=args.executor,
        max_queue=args.max_queue,
        default_deadline_s=10.0,
        retries=2,
        backoff_base_s=0.005,
        backoff_max_s=0.05,
        testdb=testdb,
    )
    service = DebugService(config)
    await service.start()
    calibration = await calibrate(service)
    overload = await overload_run(
        service,
        sessions=args.sessions,
        offered_rate=args.overload * calibration["sustainable_rate"],
        duration_s=args.duration,
    )
    summary = await service.drain()
    await service.close()

    stats = summary["stats"]
    accounted = stats["submitted"] == (
        stats["completed"] + stats["degraded"] + stats["shed"]
        + stats["timed_out"] + stats["failed"]
    )
    return {
        "schema": "bench_serve/1",
        "config": {
            "workers": args.workers,
            "executor": args.executor,
            "max_queue": args.max_queue,
            "sessions": args.sessions,
            "overload_factor": args.overload,
            "fault": args.fault,
        },
        "calibration": calibration,
        "overload": overload,
        "service_stats": stats,
        "zero_lost_jobs": overload["lost_jobs"] == 0 and accounted,
    }


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--sessions", type=int, default=100,
                        help="concurrent sessions (default: %(default)s)")
    parser.add_argument("--workers", type=int, default=4)
    parser.add_argument("--executor", choices=["thread", "process"],
                        default="thread")
    parser.add_argument("--max-queue", type=int, default=32)
    parser.add_argument("--duration", type=float, default=5.0,
                        help="overload-phase seconds (default: %(default)s)")
    parser.add_argument("--overload", type=float, default=2.0,
                        help="offered rate as a multiple of sustainable")
    parser.add_argument("--fault", choices=["serve.worker"], default=None,
                        help="inject a raise fault into every first attempt")
    parser.add_argument("--output", default="BENCH_serve.json")
    args = parser.parse_args(argv)

    if args.fault == "serve.worker":
        faults.install(FaultPlan([
            FaultSpec(point="serve.worker", match="@0", times=-1),
        ]))

    with tempfile.TemporaryDirectory() as tmp:
        testdb = seed_store(Path(tmp))
        report = asyncio.run(collect(args, testdb))
    faults.clear()

    Path(args.output).write_text(json.dumps(report, indent=2) + "\n")
    overload = report["overload"]
    print(f"wrote {args.output}")
    print(
        f"  sessions {overload['sessions']}, offered "
        f"{overload['offered_rate']}/s for {overload['duration_s']}s"
    )
    print(
        f"  throughput {overload['throughput']}/s, shed rate "
        f"{overload['shed_rate']:.1%}, statuses {overload['statuses']}"
    )
    latency = overload["latency_s"]
    print(
        f"  latency p50 {latency['p50']}s p95 {latency['p95']}s "
        f"p99 {latency['p99']}s"
    )
    if not report["zero_lost_jobs"]:
        print("LOST JOBS: a submission got no terminal response",
              file=sys.stderr)
        return 1
    print("  zero lost jobs: every submission got one terminal response")
    return 0


if __name__ == "__main__":
    sys.exit(main())
