"""Category-partition testing with T-GEN (paper §2, Figure 1).

Writes a test specification for `arrsum`, generates frames and scripts,
executes the cases against both a correct and a buggy implementation,
and shows how the report database answers debugging queries.

Run:  python examples/category_partition_testing.py
"""

from repro.pascal import analyze_source
from repro.pascal.values import ArrayValue
from repro.tgen import (
    CaseRunner,
    TestCaseLookup,
    Verdict,
    frames_by_script,
    generate_frames,
    instantiate_cases,
)
from repro.workloads import ARRSUM_SOURCE
from repro.workloads.arrsum_spec import (
    ARRSUM_SPEC_TEXT,
    arrsum_frame_selector,
    arrsum_instantiator,
    arrsum_spec,
)

BUGGY_ARRSUM = ARRSUM_SOURCE.replace("b := 0;", "b := 1;")


def main() -> None:
    print("=== The test specification (paper Figure 1) ===")
    print(ARRSUM_SPEC_TEXT)

    spec = arrsum_spec()
    frames = generate_frames(spec)
    print(f"=== {len(frames)} generated frames ===")
    for frame in frames:
        single = (
            " (SINGLE)" if frame.choices[0] in ("zero", "one") else ""
        )
        print(f"  {frame.render()}{single}")

    print("\n=== Frames grouped into test scripts ===")
    for script, members in frames_by_script(spec, frames).items():
        print(f"  {script}:")
        for frame in members:
            print(f"    {frame.render()}")

    print("\n=== Executing cases against the CORRECT arrsum ===")
    correct = analyze_source(ARRSUM_SOURCE)
    cases = instantiate_cases(spec, frames, arrsum_instantiator)
    good_db = CaseRunner(correct).run_all(cases)
    for report in good_db.all_reports():
        print(f"  {report.render()}")

    print("\n=== Executing cases against a BUGGY arrsum (b starts at 1) ===")
    buggy = analyze_source(BUGGY_ARRSUM)
    bad_db = CaseRunner(buggy).run_all(cases)
    failures = sum(
        1 for report in bad_db.all_reports() if report.verdict is Verdict.FAIL
    )
    for report in bad_db.all_reports():
        print(f"  {report.render()}")
    print(f"  -> {failures}/{len(bad_db.all_reports())} cases fail")

    print("\n=== Test-case lookup during debugging (paper §5.3.2) ===")
    lookup = TestCaseLookup(database=good_db)
    lookup.register(spec, arrsum_frame_selector)
    inputs = {"a": ArrayValue.from_values([1, 2]), "n": 2}
    outcome = lookup.consult("arrsum", inputs)
    print(f"  query inputs a=[1,2], n=2 -> frame {outcome.frame.render()}")
    print(f"  status: {outcome.status.value} ({outcome.detail})")
    print("  => the debugger answers 'yes' without asking the user")


if __name__ == "__main__":
    main()
