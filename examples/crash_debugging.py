"""Debugging a program that crashes (extension).

The paper's debugger runs after "an externally visible symptom of a
bug"; a crash is the most visible symptom there is. Tolerant tracing
turns a failing run into a *partial* execution tree — activations open
at the moment of the crash are closed with their values as of that
moment — and the ordinary GADT search then localizes the crashing unit.

Run:  python examples/crash_debugging.py
"""

from repro import GadtSystem, ReferenceOracle

CRASHING = """
program inventory;
var report: integer;

function lookup(i: integer): integer;
var stock: array[1..3] of integer;
begin
  stock[1] := 12; stock[2] := 7; stock[3] := 30;
  lookup := stock[i + 1]   (* bug: off-by-one, crashes for i = 3 *)
end;

procedure tally(var total: integer);
var i: integer;
begin
  total := 0;
  for i := 1 to 3 do
    total := total + lookup(i)
end;

begin
  tally(report);
  writeln(report)
end.
"""

FIXED = CRASHING.replace(
    "lookup := stock[i + 1]   (* bug: off-by-one, crashes for i = 3 *)",
    "lookup := stock[i]",
)


def main() -> None:
    system = GadtSystem.from_source(CRASHING, tolerate_errors=True)

    print("The program crashed:")
    print(f"  {system.trace.error}")
    print(f"  while executing unit: {system.trace.crash_unit}")
    print()
    print("Partial execution tree (note the incomplete last activation):")
    print(system.trace.tree.render())

    oracle = ReferenceOracle.from_source(FIXED)
    result = system.debugger(oracle).debug()
    print(result.session.render())
    print(system.show_bug(result))


if __name__ == "__main__":
    main()
