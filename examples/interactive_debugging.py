"""Interactive algorithmic debugging at the terminal.

Debug a small buggy program yourself: answer each question with
``yes``, ``no``, ``no <k>`` (error on the k-th output), ``no <name>``,
``assert <expr>`` (e.g. ``assert s = n * (n + 1) div 2``), or ``?``.

With ``--demo`` (or when stdin is not a terminal) a scripted user
replays a plausible session instead.

Run:  python examples/interactive_debugging.py [--demo]
"""

import sys

from repro import GadtSystem, InteractiveOracle, ScriptedOracle
from repro.core import Answer

BUGGY_STATS = """
program stats;
var total, count, mean: integer;

procedure accumulate(value: integer; var total: integer; var count: integer);
begin
  total := total + value;
  count := count + 1
end;

function average(total, count: integer): integer;
begin
  average := total div count + 1 (* bug: stray + 1 *)
end;

procedure summarize(a, b, c: integer; var mean: integer);
var total, count: integer;
begin
  total := 0;
  count := 0;
  accumulate(a, total, count);
  accumulate(b, total, count);
  accumulate(c, total, count);
  mean := average(total, count)
end;

begin
  summarize(10, 20, 30, mean);
  writeln(mean)
end.
"""

DEMO_SCRIPT = [
    ("summarize", Answer.no()),
    ("accumulate", Answer.yes()),
    ("accumulate", Answer.yes()),
    ("accumulate", Answer.yes()),
    ("average", Answer.no()),
]


def main() -> None:
    system = GadtSystem.from_source(BUGGY_STATS)

    print("The program prints the mean of 10, 20, 30 — it should be 20:")
    print(f"  observed output: {system.trace.execution.output.strip()}")
    print("\nExecution tree:")
    print(system.trace.tree.render())

    demo = "--demo" in sys.argv or not sys.stdin.isatty()
    if demo:
        print("(demo mode: a scripted user answers)\n")
        oracle = ScriptedOracle(script=list(DEMO_SCRIPT))
    else:
        print("Answer each question (yes / no / no <k> / assert <expr> / ?):\n")
        oracle = InteractiveOracle(output=sys.stdout)

    result = system.debugger(oracle).debug()

    print()
    print(result.session.render())
    print(f"=> The bug is inside '{result.bug_unit}' "
          f"(it adds 1 to every average).")


if __name__ == "__main__":
    main()
