"""Debugging a non-trivial program: a banking ledger.

The ledger has global state, arrays, loops, and four call layers — the
kind of program the paper's method is aimed at. Three different bugs can
be planted; each session shows a different aspect of GADT:

* ``fee``      — a wrong tier in the fee computation; the category-
                 partition test suite for `fee` catches it *before*
                 debugging even starts, and during debugging its failed
                 reports point straight at the unit;
* ``transfer`` — a wrong *argument* at a call site: every callee answers
                 "yes", so the bug is correctly localized to the caller
                 (exactly the paper's §5.3.3 misnamed-argument case);
* ``interest`` — a bug inside a loop body, localized to the loop unit
                 via per-iteration questions (paper §6.1).

Run:  python examples/ledger_debugging.py
"""

from repro import GadtSystem, ReferenceOracle
from repro.pascal import analyze_source
from repro.tgen import CaseRunner, TestCaseLookup, Verdict, generate_frames, instantiate_cases
from repro.workloads.ledger import (
    fee_frame_selector,
    fee_instantiator,
    fee_spec,
    ledger_program,
)


def build_fee_lookup(analysis) -> TestCaseLookup:
    spec = fee_spec()
    cases = instantiate_cases(spec, generate_frames(spec), fee_instantiator)
    database = CaseRunner(analysis).run_all(cases)
    lookup = TestCaseLookup(database=database)
    lookup.register(spec, fee_frame_selector)
    return lookup


def debug_variant(bug: str) -> None:
    print("=" * 72)
    print(f"Planted bug: {bug}")
    print("=" * 72)
    generated = ledger_program(bug)
    system = GadtSystem.from_source(generated.source)

    correct = analyze_source(generated.fixed_source)
    buggy_lookup = build_fee_lookup(system.analysis)
    failed = [
        report
        for report in buggy_lookup.database.all_reports()
        if report.verdict is not Verdict.PASS
    ]
    if failed:
        print("The fee test suite already fails on this build:")
        for report in failed:
            print(f"  {report.render()}")
    else:
        print("The fee test suite passes on this build; its reports will")
        print("answer fee queries during debugging.")
    print()

    oracle = ReferenceOracle.from_source(generated.fixed_source)
    result = system.debugger(oracle, test_lookup=buggy_lookup).debug()
    print(result.session.render())
    print(system.show_bug(result))
    print(
        f"user questions: {result.user_questions}, "
        f"auto: {result.auto_answers}, slices: {result.slices}\n"
    )


def main() -> None:
    for bug in ("fee", "transfer", "interest"):
        debug_variant(bug)


if __name__ == "__main__":
    main()
