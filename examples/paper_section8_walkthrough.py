"""The paper's §8 walkthrough, step by step.

Reproduces the complete GADT example: the Figure 7 execution tree, the
test-database answer for arrsum, both slicing steps (Figures 8 and 9),
and the exact six-question user dialogue ending at `decrement`.

Run:  python examples/paper_section8_walkthrough.py
"""

from repro import GadtSystem, ScriptedOracle
from repro.core import Answer
from repro.slicing import DynamicCriterion, prune_tree
from repro.tgen import (
    CaseRunner,
    TestCaseLookup,
    frames_by_script,
    generate_frames,
    instantiate_cases,
)
from repro.workloads import FIGURE4_SOURCE
from repro.workloads.arrsum_spec import (
    arrsum_frame_selector,
    arrsum_spec,
    make_arrsum_instantiator,
)


def main() -> None:
    print("Step 0 — Phases I and II: transform and trace the program.")
    system = GadtSystem.from_source(FIGURE4_SOURCE)
    print(system.trace.tree.render())

    print("Step 0b — T-GEN: spec, frames, scripts, and a test-report DB")
    print("(paper §2 / Figure 1; §5.3.2).")
    spec = arrsum_spec()
    frames = generate_frames(spec)
    for script, members in frames_by_script(spec, frames).items():
        rendered = ", ".join(frame.render() for frame in members)
        print(f"  {script}: {rendered}")
    cases = instantiate_cases(spec, frames, make_arrsum_instantiator(2))
    database = CaseRunner(system.analysis).run_all(cases)
    print(f"  executed {len(cases)} cases -> {len(database)} reports, all pass\n")
    lookup = TestCaseLookup(database=database)
    lookup.register(spec, arrsum_frame_selector)

    print("Steps 1-5 — the debugging phase. The user gives exactly the")
    print("paper's answers; arrsum is answered by the test database and")
    print("never shown; two error indications trigger slicing.\n")

    # Show the two sliced trees the session will pass through.
    computs = system.trace.tree.find("computs")
    print("-- Figure 8: the tree after slicing on computs' first output --")
    print(prune_tree(system.trace, DynamicCriterion.output_position(computs, 1)).render())
    partialsums = system.trace.tree.find("partialsums")
    print("-- Figure 9: the tree after slicing on partialsums' second output --")
    print(
        prune_tree(
            system.trace, DynamicCriterion.output_position(partialsums, 2)
        ).render()
    )

    oracle = ScriptedOracle(
        script=[
            ("sqrtest", Answer.no()),
            ("computs", Answer.no_error_on(position=1)),
            ("comput1", Answer.no()),
            ("partialsums", Answer.no_error_on(position=2)),
            ("sum2", Answer.no()),
            ("decrement", Answer.no()),
        ]
    )
    result = system.debugger(oracle, test_lookup=lookup).debug()

    print("-- the session transcript --")
    print(result.session.render())
    print(
        f"Localized: {result.bug_unit} | user questions: "
        f"{result.user_questions} | auto answers: {result.auto_answers} | "
        f"slices: {result.slices}"
    )
    assert result.bug_unit == "decrement"
    assert result.user_questions == 6


if __name__ == "__main__":
    main()
