"""Quickstart: debug the paper's Figure 4 program in ~20 lines.

The program computes the square of the sum of [1, 2] in two ways and
compares them; a planted bug in the function `decrement` makes the
comparison fail. We let a simulated user (backed by the corrected
program) answer the debugger's questions and watch GADT localize the bug.

Run:  python examples/quickstart.py
"""

from repro import GadtSystem, ReferenceOracle
from repro.pascal import analyze_source
from repro.workloads import FIGURE4_FIXED_SOURCE, FIGURE4_SOURCE


def main() -> None:
    # Phases I + II: transform the program and trace one execution.
    system = GadtSystem.from_source(FIGURE4_SOURCE)

    print("=== Execution tree (paper Figure 7) ===")
    print(system.trace.tree.render())

    # Phase III: search the tree. The ReferenceOracle answers the way a
    # perfectly knowledgeable user would, by consulting the fixed program.
    oracle = ReferenceOracle(analyze_source(FIGURE4_FIXED_SOURCE))
    result = system.debugger(oracle).debug()

    print("=== Debugging session ===")
    print(result.session.render())
    print(f"Bug localized in: {result.bug_unit}")
    print(f"User questions:   {result.user_questions}")
    print(f"Slicing steps:    {result.slices}")

    assert result.bug_unit == "decrement"


if __name__ == "__main__":
    main()
