"""Program slicing, static and dynamic (paper §4 and §7).

Part 1 reproduces Figure 2: the static slice of a small program on
variable `mul` is itself a runnable program. Part 2 shows dynamic
slicing pruning an execution tree: a procedure calls ten irrelevant
workers before the one relevant computation, and the slice removes all
of them.

Run:  python examples/slicing_demo.py
"""

from repro import DynamicCriterion, StaticCriterion, prune_tree, static_slice
from repro.pascal import analyze_source, print_program, run_source
from repro.slicing import ForwardCriterion, forward_static_slice
from repro.tracing import trace_source
from repro.workloads import FIGURE2_SOURCE, generate_irrelevant_siblings_program


def static_part() -> None:
    print("=== Part 1: static slicing (paper Figure 2) ===")
    print("Original program:")
    print(FIGURE2_SOURCE)

    analysis = analyze_source(FIGURE2_SOURCE)
    computed = static_slice(analysis, StaticCriterion.at_routine_exit("p", "mul"))
    sliced_text = print_program(computed.extract_program())
    print("Slice on variable mul at the last line:")
    print(sliced_text)

    print("The slice is an independent program; on any input it computes")
    print("the same value for mul:")
    for inputs in ([5, 7, 9], [1, 4]):
        full = run_source(FIGURE2_SOURCE, inputs=list(inputs) + [0])
        part = run_source(sliced_text, inputs=list(inputs) + [0])
        print(
            f"  inputs {inputs}: full mul={full.global_value('mul')}, "
            f"slice mul={part.global_value('mul')}"
        )


def dynamic_part() -> None:
    print("\n=== Part 2: dynamic slicing on the execution tree (paper §7) ===")
    generated = generate_irrelevant_siblings_program(workers=10)
    trace = trace_source(generated.source)
    p_node = trace.tree.find("p")

    print(f"The procedure p calls 10 independent workers, then the one")
    print(f"relevant computation. Its subtree has "
          f"{sum(1 for _ in p_node.walk())} activations:")
    print(trace.tree.render(root=p_node, max_depth=1))

    view = prune_tree(trace, DynamicCriterion(node=p_node, variable="y"))
    print(f"Slicing on the erroneous output y keeps {view.size()} of them:")
    print(view.render())
    print("Every worker disappeared: the debugger will never ask about them.")


def forward_part() -> None:
    print("\n=== Part 3: forward slicing — impact analysis after a fix ===")
    source = """
    program p;
    var base, scaled, shifted, unrelated: integer;
    begin
      base := 10;
      scaled := base * 3;
      shifted := scaled + 1;
      unrelated := 99;
      writeln(shifted);
      writeln(unrelated)
    end.
    """
    print(source)
    analysis = analyze_source(source)
    first = analysis.program.block.body.statements[0]  # base := 10
    computed = forward_static_slice(
        analysis, ForwardCriterion.at_statement("p", first.node_id, "base")
    )
    print("If 'base := 10' changes, these statements are affected:")
    from repro.pascal import ast_nodes as ast
    from repro.pascal.pretty import print_statement

    for node in analysis.program.walk():
        if (
            isinstance(node, ast.Stmt)
            and not isinstance(node, ast.Compound)
            and computed.contains_stmt(node)
        ):
            print(f"  {print_statement(node).strip()}")
    print("('unrelated := 99' is untouched — safe to leave alone)")


def main() -> None:
    static_part()
    dynamic_part()
    forward_part()


if __name__ == "__main__":
    main()
