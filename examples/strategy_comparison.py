"""Comparing execution-tree search strategies on growing programs.

Pits top-down (the paper's choice), bottom-up single-stepping,
Shapiro's divide-and-query, and the Insa–Silva optimal variant
(``dq-optimal``) against each other on call chains and call trees of
growing size, and shows how slicing changes the picture when most of
the program is irrelevant. See docs/STRATEGIES.md for the selection
rules.

Run:  python examples/strategy_comparison.py
"""

from repro import AlgorithmicDebugger, GadtSystem, ReferenceOracle
from repro.pascal import analyze_source
from repro.tracing import trace_source
from repro.workloads import (
    CallChainSpec,
    CallTreeSpec,
    generate_call_chain_program,
    generate_call_tree_program,
    generate_irrelevant_siblings_program,
)

STRATEGIES = ("top-down", "bottom-up", "divide-and-query", "dq-optimal")


def questions(trace, fixed_source, strategy, enable_slicing=False):
    oracle = ReferenceOracle(analyze_source(fixed_source))
    debugger = AlgorithmicDebugger(
        trace, oracle, strategy=strategy, enable_slicing=enable_slicing
    )
    result = debugger.debug()
    return result.user_questions, result.bug_unit


def chains() -> None:
    print("=== Call chains (bug at the deepest procedure) ===")
    print(f"{'depth':>8} " + "".join(f"{s:>18}" for s in STRATEGIES))
    for depth in (4, 8, 16, 32):
        generated = generate_call_chain_program(CallChainSpec(depth=depth))
        trace = trace_source(generated.source)
        row = []
        for strategy in STRATEGIES:
            count, bug = questions(trace, generated.fixed_source, strategy)
            assert bug == generated.buggy_unit
            row.append(count)
        print(f"{depth:>8} " + "".join(f"{count:>18}" for count in row))
    print("(divide-and-query needs ~log n; top-down walks the chain)\n")


def trees() -> None:
    print("=== Balanced call trees (bug in one leaf) ===")
    print(f"{'leaves':>8} " + "".join(f"{s:>18}" for s in STRATEGIES))
    for depth in (2, 3, 4):
        generated = generate_call_tree_program(
            CallTreeSpec(depth=depth, buggy_leaf=2**depth - 1)
        )
        trace = trace_source(generated.source)
        row = []
        for strategy in STRATEGIES:
            count, bug = questions(trace, generated.fixed_source, strategy)
            assert bug == generated.buggy_unit
            row.append(count)
        print(f"{2 ** depth:>8} " + "".join(f"{count:>18}" for count in row))
    print()


def with_slicing() -> None:
    print("=== Irrelevant siblings: what slicing adds (paper Figure 5) ===")
    print(f"{'workers':>8} {'top-down':>12} {'top-down + slicing':>22}")
    for workers in (4, 10, 20):
        generated = generate_irrelevant_siblings_program(workers=workers)
        system = GadtSystem.from_source(generated.source)
        plain, bug_a = questions(
            system.trace, generated.fixed_source, "top-down"
        )
        sliced, bug_b = questions(
            system.trace, generated.fixed_source, "top-down", enable_slicing=True
        )
        assert bug_a == bug_b == generated.buggy_unit
        print(f"{workers:>8} {plain:>12} {sliced:>22}")
    print("(slicing keeps the question count flat as the noise grows)")


def main() -> None:
    chains()
    trees()
    with_slicing()


if __name__ == "__main__":
    main()
