"""A tour of the transformation phase (paper §5.1 and §6).

Shows, for each construct that conflicts with algorithmic debugging, the
original program and the equivalent side-effect-free form the pipeline
produces: globals become in/out/var parameters, global gotos become exit
parameters, gotos out of loops become flag-guarded exits, loops become
traceable units, and trace actions are inserted.

Run:  python examples/transformation_tour.py
"""

from repro.pascal import print_program, run_source
from repro.pascal.interpreter import Interpreter, PascalIO
from repro.transform import transform_source

GLOBALS_EXAMPLE = """
program bank;
var balance: integer;
procedure deposit(amount: integer);
begin
  balance := balance + amount
end;
function current: integer;
begin
  current := balance
end;
begin
  balance := 100;
  deposit(50);
  writeln(current())
end.
"""

GOTO_EXAMPLE = """
program search;
label 9;
var found: integer;
procedure probe(n: integer);
begin
  if n * n > 20 then begin found := n; goto 9 end
end;
var i: integer;
begin
  found := 0;
  probe(2);
  probe(3);
  probe(5);
  probe(7);
  writeln(-1);
  9: writeln(found)
end.
"""

LOOP_GOTO_EXAMPLE = """
program scan;
label 9;
var i, hit: integer;
begin
  hit := 0;
  for i := 1 to 100 do begin
    if i * i = 49 then begin hit := i; goto 9 end
  end;
  9: writeln(hit)
end.
"""


def show(title: str, source: str) -> None:
    print("=" * 72)
    print(title)
    print("=" * 72)
    print("--- original ---")
    print(source.strip())
    transformed = transform_source(source)
    print("\n--- transformed (+ trace actions) ---")
    print(print_program(transformed.instrumented_program).strip())

    original_output = run_source(source).output
    new_output = Interpreter(transformed.analysis, io=PascalIO()).run().output
    assert original_output == new_output, "transformation must preserve behaviour"
    print(f"\nboth print: {original_output!r}")
    if transformed.added_params:
        print(f"globals converted: {transformed.added_params}")
    if transformed.exit_params:
        print(f"exit parameters:   {transformed.exit_params}")
    if transformed.loop_units:
        units = [unit.name for unit in transformed.loop_units.values()]
        print(f"loop units:        {units}")
    print(f"growth factor:     {transformed.growth_factor():.2f}\n")


def main() -> None:
    show("1. Global variables become in/out/var parameters", GLOBALS_EXAMPLE)
    show("2. Global gotos become exit parameters + local gotos", GOTO_EXAMPLE)
    show("3. Gotos out of loops become flag-guarded exits", LOOP_GOTO_EXAMPLE)


if __name__ == "__main__":
    main()
