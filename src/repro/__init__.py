"""GADT: Generalized Algorithmic Debugging and Testing.

A from-scratch reproduction of Fritzson, Gyimothy, Kamkar & Shahmehri,
"Generalized Algorithmic Debugging and Testing" (PLDI 1991): algorithmic
debugging for imperative programs with side effects, integrated with
interprocedural dynamic program slicing and category-partition testing
(T-GEN).

Quickstart::

    from repro import GadtSystem, ReferenceOracle
    from repro.workloads import FIGURE4_SOURCE, FIGURE4_FIXED_SOURCE
    from repro.pascal import analyze_source

    system = GadtSystem.from_source(FIGURE4_SOURCE)
    oracle = ReferenceOracle(analyze_source(FIGURE4_FIXED_SOURCE))
    result = system.debugger(oracle).debug()
    assert result.bug_unit == "decrement"

Packages:

* :mod:`repro.pascal` — the Mini-Pascal substrate (lexer → parser →
  semantic analysis → interpreter with hooks, pretty printer);
* :mod:`repro.analysis` — CFGs, dataflow, Banning-style side-effect
  analysis, dependence graphs;
* :mod:`repro.transform` — the transformation phase (globals→params,
  goto restructuring, loop units, trace instrumentation, source maps);
* :mod:`repro.tracing` — the tracing phase (execution trees, dynamic
  dependences);
* :mod:`repro.slicing` — static and dynamic interprocedural slicing,
  execution-tree pruning;
* :mod:`repro.tgen` — category-partition testing (specs, frames,
  scripts, cases, reports, lookup);
* :mod:`repro.core` — the debugger itself (queries, oracles, assertions,
  strategies, the pure algorithmic debugger, and the integrated GADT
  debugger);
* :mod:`repro.workloads` — the paper's example programs and synthetic
  program generators for the scaling experiments.
"""

from repro.core import (
    AlgorithmicDebugger,
    Answer,
    AnswerKind,
    AnswerSource,
    Assertion,
    AssertionStore,
    DebugResult,
    FunctionOracle,
    GadtDebugger,
    GadtSystem,
    InteractiveOracle,
    Query,
    ReferenceOracle,
    ScriptedOracle,
    Session,
)
from repro.slicing import (
    DynamicCriterion,
    StaticCriterion,
    TreeView,
    dynamic_slice,
    prune_tree,
    static_slice,
)
from repro.tracing import ExecutionTree, TraceResult, trace_program, trace_source
from repro.transform import TransformedProgram, transform_program, transform_source

__version__ = "1.0.0"

__all__ = [
    "AlgorithmicDebugger",
    "Answer",
    "AnswerKind",
    "AnswerSource",
    "Assertion",
    "AssertionStore",
    "DebugResult",
    "DynamicCriterion",
    "ExecutionTree",
    "FunctionOracle",
    "GadtDebugger",
    "GadtSystem",
    "InteractiveOracle",
    "Query",
    "ReferenceOracle",
    "ScriptedOracle",
    "Session",
    "StaticCriterion",
    "TraceResult",
    "TransformedProgram",
    "TreeView",
    "dynamic_slice",
    "prune_tree",
    "static_slice",
    "trace_program",
    "trace_source",
    "transform_program",
    "transform_source",
    "__version__",
]
