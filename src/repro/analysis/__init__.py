"""Static analyses over Mini-Pascal: CFGs, dataflow, side effects, dependences.

These are the foundations the paper's transformation phase and slicing
component stand on (paper §5.1: "Global data-flow and alias analysis is
performed in order to detect possible side-effects"; §4: slicing "by
analyzing their data flow and control flow").
"""

from repro.analysis.callgraph import CallGraph, build_call_graph
from repro.analysis.cfg import CFG, CFGNode, NodeKind, build_cfg, build_all_cfgs
from repro.analysis.dataflow import (
    live_variables,
    reaching_definitions,
)
from repro.analysis.defuse import DefUse, def_use_for_node, expression_uses
from repro.analysis.dependence import (
    ProgramDependenceGraph,
    build_pdg,
    control_dependences,
)
from repro.analysis.sideeffects import SideEffects, analyze_side_effects

__all__ = [
    "CFG",
    "CFGNode",
    "CallGraph",
    "DefUse",
    "NodeKind",
    "ProgramDependenceGraph",
    "SideEffects",
    "analyze_side_effects",
    "build_all_cfgs",
    "build_call_graph",
    "build_cfg",
    "build_pdg",
    "control_dependences",
    "def_use_for_node",
    "expression_uses",
    "live_variables",
    "reaching_definitions",
]
