"""Call graph construction.

Nodes are routines (including the main pseudo-routine); edges carry the
syntactic call sites, which the side-effect analysis needs to bind
formals to actuals per site.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.pascal import ast_nodes as ast
from repro.pascal.semantics import AnalyzedProgram, RoutineInfo
from repro.pascal.symbols import Symbol


@dataclass(frozen=True)
class CallSite:
    """One syntactic call: the AST node (ProcCall or FuncCall), its
    enclosing routine, and the resolved callee."""

    node: ast.Node
    caller: Symbol
    callee: Symbol

    @property
    def args(self) -> list[ast.Expr]:
        assert isinstance(self.node, (ast.ProcCall, ast.FuncCall))
        return self.node.args


@dataclass
class CallGraph:
    analysis: AnalyzedProgram
    sites: list[CallSite] = field(default_factory=list)
    callees: dict[Symbol, set[Symbol]] = field(default_factory=dict)
    callers: dict[Symbol, set[Symbol]] = field(default_factory=dict)
    sites_by_caller: dict[Symbol, list[CallSite]] = field(default_factory=dict)
    sites_by_callee: dict[Symbol, list[CallSite]] = field(default_factory=dict)

    def reachable_from(self, root: Symbol) -> set[Symbol]:
        """Routines transitively callable from ``root`` (including it)."""
        seen = {root}
        stack = [root]
        while stack:
            current = stack.pop()
            for callee in self.callees.get(current, ()):
                if callee not in seen:
                    seen.add(callee)
                    stack.append(callee)
        return seen

    def bottom_up_order(self) -> list[Symbol]:
        """Routines ordered callees-first (SCCs broken arbitrarily).

        Recursion makes a true topological order impossible; the
        side-effect fixpoint only uses this as a good iteration order.
        """
        order: list[Symbol] = []
        visited: set[Symbol] = set()

        def visit(symbol: Symbol) -> None:
            if symbol in visited:
                return
            visited.add(symbol)
            for callee in sorted(self.callees.get(symbol, ()), key=lambda s: s.uid):
                visit(callee)
            order.append(symbol)

        for info in self.analysis.all_routines():
            visit(info.symbol)
        return order

    def is_recursive(self, symbol: Symbol) -> bool:
        """True if the routine can (transitively) call itself."""
        return symbol in self.reachable_from(symbol) and any(
            symbol in self.callees.get(other, ())
            for other in self.reachable_from(symbol)
        )


def build_call_graph(analysis: AnalyzedProgram) -> CallGraph:
    graph = CallGraph(analysis=analysis)
    for info in analysis.all_routines():
        graph.callees.setdefault(info.symbol, set())
        graph.callers.setdefault(info.symbol, set())
        graph.sites_by_caller.setdefault(info.symbol, [])
        graph.sites_by_callee.setdefault(info.symbol, [])
    for info in analysis.all_routines():
        for node, callee in info.call_sites:
            site = CallSite(node=node, caller=info.symbol, callee=callee)
            graph.sites.append(site)
            graph.callees[info.symbol].add(callee)
            graph.callers.setdefault(callee, set()).add(info.symbol)
            graph.sites_by_caller[info.symbol].append(site)
            graph.sites_by_callee.setdefault(callee, []).append(site)
    return graph
