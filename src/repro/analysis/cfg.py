"""Intraprocedural control-flow graphs.

One CFG per routine (the main body included). Nodes:

* ``ENTRY`` / ``EXIT`` — unique boundary nodes,
* ``STMT`` — an atomic statement (assignment, call, goto, empty),
* ``PRED`` — the predicate evaluation of an if/while/repeat,
* ``FOR_INIT`` / ``FOR_PRED`` / ``FOR_STEP`` — the three implicit
  program points of a for-statement (initialization, bound test,
  increment).

Local gotos produce direct edges to the labelled statement's node;
*global* gotos (exit side effects) edge to ``EXIT`` and are marked so
dataflow stays conservative. The builder restricts goto targets the same
way the interpreter does: a label must sit on a statement directly
contained in a statement list.
"""

from __future__ import annotations

import enum
import itertools
from dataclasses import dataclass, field

from repro.pascal import ast_nodes as ast
from repro.pascal.semantics import AnalyzedProgram, RoutineInfo
from repro.pascal.symbols import Symbol

_NODE_COUNTER = itertools.count(1)


class NodeKind(enum.Enum):
    ENTRY = "entry"
    EXIT = "exit"
    STMT = "stmt"
    PRED = "pred"
    FOR_INIT = "for_init"
    FOR_PRED = "for_pred"
    FOR_STEP = "for_step"


@dataclass(eq=False)
class CFGNode:
    kind: NodeKind
    stmt: ast.Stmt | None = None
    uid: int = field(default_factory=lambda: next(_NODE_COUNTER))

    def __hash__(self) -> int:
        return self.uid

    def __repr__(self) -> str:
        if self.stmt is None:
            return f"<{self.kind.value}#{self.uid}>"
        return f"<{self.kind.value}#{self.uid} @{self.stmt.location}>"


class CFG:
    def __init__(self, routine: RoutineInfo, analysis: AnalyzedProgram):
        self.routine = routine
        self.analysis = analysis
        self.entry = CFGNode(NodeKind.ENTRY)
        self.exit = CFGNode(NodeKind.EXIT)
        self.nodes: list[CFGNode] = [self.entry, self.exit]
        self.successors: dict[CFGNode, list[CFGNode]] = {self.entry: [], self.exit: []}
        self.predecessors: dict[CFGNode, list[CFGNode]] = {
            self.entry: [],
            self.exit: [],
        }
        #: statement node_id -> primary CFG node (PRED for structured stmts)
        self.node_of_stmt: dict[int, CFGNode] = {}
        #: all CFG nodes belonging to a statement node_id (for-loops have 3)
        self.nodes_of_stmt: dict[int, list[CFGNode]] = {}
        #: goto statements that leave the routine (exit side effects)
        self.global_goto_nodes: list[CFGNode] = []

    def add_node(self, kind: NodeKind, stmt: ast.Stmt | None = None) -> CFGNode:
        node = CFGNode(kind, stmt)
        self.nodes.append(node)
        self.successors[node] = []
        self.predecessors[node] = []
        if stmt is not None:
            self.node_of_stmt.setdefault(stmt.node_id, node)
            self.nodes_of_stmt.setdefault(stmt.node_id, []).append(node)
        return node

    def add_edge(self, source: CFGNode, target: CFGNode) -> None:
        if target not in self.successors[source]:
            self.successors[source].append(target)
            self.predecessors[target].append(source)

    def reverse_postorder(self) -> list[CFGNode]:
        """Nodes in reverse postorder from entry (good for forward dataflow)."""
        order: list[CFGNode] = []
        visited: set[CFGNode] = set()

        def visit(node: CFGNode) -> None:
            visited.add(node)
            for succ in self.successors[node]:
                if succ not in visited:
                    visit(succ)
            order.append(node)

        visit(self.entry)
        for node in self.nodes:  # unreachable nodes last
            if node not in visited:
                visit(node)
        order.reverse()
        return order


class _CFGBuilder:
    def __init__(self, routine: RoutineInfo, analysis: AnalyzedProgram):
        self.cfg = CFG(routine, analysis)
        self.analysis = analysis
        #: label name -> node of the labelled statement
        self._label_nodes: dict[str, CFGNode] = {}
        #: local gotos waiting for their target label's node
        self._pending_gotos: list[tuple[CFGNode, str]] = []

    def build(self) -> CFG:
        body = self.cfg.routine.block.body
        exits = self._build_stmt(body, [self.cfg.entry])
        for node in exits:
            self.cfg.add_edge(node, self.cfg.exit)
        for goto_node, label in self._pending_gotos:
            target = self._label_nodes.get(label)
            if target is None:
                # Label exists in the routine but not at statement-list level
                # (unsupported jump target) — treat as an exit edge.
                self.cfg.add_edge(goto_node, self.cfg.exit)
            else:
                self.cfg.add_edge(goto_node, target)
        return self.cfg

    # ------------------------------------------------------------------

    def _register_label(self, stmt: ast.Stmt, node: CFGNode) -> None:
        if stmt.label is not None:
            self._label_nodes[stmt.label] = node

    def _build_stmt(self, stmt: ast.Stmt, preds: list[CFGNode]) -> list[CFGNode]:
        """Wire ``stmt`` after ``preds``; return the frontier of exit nodes."""
        cfg = self.cfg
        if isinstance(stmt, (ast.EmptyStmt, ast.Assign, ast.ProcCall)):
            node = cfg.add_node(NodeKind.STMT, stmt)
            self._register_label(stmt, node)
            for pred in preds:
                cfg.add_edge(pred, node)
            return [node]

        if isinstance(stmt, ast.Goto):
            node = cfg.add_node(NodeKind.STMT, stmt)
            self._register_label(stmt, node)
            for pred in preds:
                cfg.add_edge(pred, node)
            if self.analysis.goto_is_global.get(stmt.node_id, False):
                cfg.add_edge(node, cfg.exit)
                cfg.global_goto_nodes.append(node)
            else:
                self._pending_gotos.append((node, stmt.target))
            return []  # control never falls through a goto

        if isinstance(stmt, ast.Compound):
            start_index = len(cfg.nodes)
            current = preds
            for child in stmt.statements:
                current = self._build_stmt(child, current)
            if stmt.label is not None and len(cfg.nodes) > start_index:
                # The compound's own label lands on its first inner node.
                self._label_nodes[stmt.label] = cfg.nodes[start_index]
            return current

        if isinstance(stmt, ast.If):
            pred_node = cfg.add_node(NodeKind.PRED, stmt)
            self._register_label(stmt, pred_node)
            for pred in preds:
                cfg.add_edge(pred, pred_node)
            then_exits = self._build_stmt(stmt.then_branch, [pred_node])
            if stmt.else_branch is not None:
                else_exits = self._build_stmt(stmt.else_branch, [pred_node])
            else:
                else_exits = [pred_node]
            return then_exits + else_exits

        if isinstance(stmt, ast.While):
            pred_node = cfg.add_node(NodeKind.PRED, stmt)
            self._register_label(stmt, pred_node)
            for pred in preds:
                cfg.add_edge(pred, pred_node)
            body_exits = self._build_stmt(stmt.body, [pred_node])
            for node in body_exits:
                cfg.add_edge(node, pred_node)
            return [pred_node]

        if isinstance(stmt, ast.Repeat):
            start_index = len(cfg.nodes)
            current = preds
            for child in stmt.body:
                current = self._build_stmt(child, current)
            pred_node = cfg.add_node(NodeKind.PRED, stmt)
            self._register_label(stmt, pred_node)
            for node in current:
                cfg.add_edge(node, pred_node)
            # Back edge: repeat re-enters at the first node of its body
            # (or spins on the predicate if the body generated no nodes).
            body_nodes = cfg.nodes[start_index:-1]
            loop_head = body_nodes[0] if body_nodes else pred_node
            cfg.add_edge(pred_node, loop_head)
            return [pred_node]

        if isinstance(stmt, ast.For):
            init_node = cfg.add_node(NodeKind.FOR_INIT, stmt)
            self._register_label(stmt, init_node)
            pred_node = cfg.add_node(NodeKind.FOR_PRED, stmt)
            step_node = cfg.add_node(NodeKind.FOR_STEP, stmt)
            for pred in preds:
                cfg.add_edge(pred, init_node)
            cfg.add_edge(init_node, pred_node)
            body_exits = self._build_stmt(stmt.body, [pred_node])
            for node in body_exits:
                cfg.add_edge(node, step_node)
            cfg.add_edge(step_node, pred_node)
            return [pred_node]

        raise TypeError(f"cannot build CFG for {type(stmt).__name__}")


def build_cfg(routine: RoutineInfo, analysis: AnalyzedProgram) -> CFG:
    """Build the control-flow graph of one routine."""
    return _CFGBuilder(routine, analysis).build()


def build_all_cfgs(analysis: AnalyzedProgram) -> dict[Symbol, CFG]:
    """Build CFGs for every routine, keyed by routine symbol."""
    return {
        info.symbol: build_cfg(info, analysis) for info in analysis.all_routines()
    }
