"""Classic iterative dataflow on CFGs: reaching definitions and liveness.

Both analyses run at symbol granularity with the interprocedural
side-effect summaries folded into call-node def/use sets, which is what
Weiser-style slicing and the loop-unit extraction need.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.analysis.cfg import CFG, CFGNode, NodeKind
from repro.analysis.defuse import (
    DefUse,
    def_use_for_node,
    entry_def_use,
    exit_def_use,
)
from repro.analysis.sideeffects import SideEffects
from repro.pascal.symbols import Symbol


def node_def_use(
    cfg: CFG, node: CFGNode, side_effects: SideEffects | None = None
) -> DefUse:
    """Def/use for any node of ``cfg``, boundary nodes included."""
    if node.kind is NodeKind.ENTRY:
        return entry_def_use(cfg, side_effects)
    if node.kind is NodeKind.EXIT:
        return exit_def_use(cfg, side_effects)
    return def_use_for_node(node, cfg.analysis, side_effects)


def all_def_use(
    cfg: CFG, side_effects: SideEffects | None = None
) -> dict[CFGNode, DefUse]:
    """Def/use sets for every node of a CFG."""
    return {node: node_def_use(cfg, node, side_effects) for node in cfg.nodes}


@dataclass
class ReachingDefinitions:
    """Result of reaching-definitions analysis.

    A *definition* is a (symbol, node) pair. ``in_sets[n]`` holds the
    definitions that may reach the start of node ``n``.
    """

    cfg: CFG
    def_use: dict[CFGNode, DefUse]
    in_sets: dict[CFGNode, set[tuple[Symbol, CFGNode]]] = field(default_factory=dict)
    out_sets: dict[CFGNode, set[tuple[Symbol, CFGNode]]] = field(default_factory=dict)

    def reaching_defs_of(self, node: CFGNode, symbol: Symbol) -> set[CFGNode]:
        """Nodes whose definition of ``symbol`` may reach ``node``."""
        return {
            def_node
            for def_symbol, def_node in self.in_sets.get(node, ())
            if def_symbol is symbol
        }

    def def_use_chains(self) -> dict[CFGNode, set[tuple[Symbol, CFGNode]]]:
        """For each node: the (symbol, defining-node) pairs it uses."""
        chains: dict[CFGNode, set[tuple[Symbol, CFGNode]]] = {}
        for node in self.cfg.nodes:
            uses = self.def_use[node].uses
            chains[node] = {
                (symbol, def_node)
                for symbol, def_node in self.in_sets.get(node, ())
                if symbol in uses
            }
        return chains


def reaching_definitions(
    cfg: CFG, side_effects: SideEffects | None = None
) -> ReachingDefinitions:
    """Iterative forward may-analysis for reaching definitions.

    Array-element stores and call-site writes are *preserving*
    definitions (the def/use layer already marks them as uses too), so a
    definition is killed only by nodes that define the same symbol; this
    keeps the analysis sound for partial updates because the old
    definition still flows in as a use of the new one.
    """
    def_use = all_def_use(cfg, side_effects)
    gen: dict[CFGNode, set[tuple[Symbol, CFGNode]]] = {}
    defined_symbols: dict[CFGNode, set[Symbol]] = {}
    for node in cfg.nodes:
        gen[node] = {(symbol, node) for symbol in def_use[node].defs}
        defined_symbols[node] = set(def_use[node].defs)

    result = ReachingDefinitions(cfg=cfg, def_use=def_use)
    in_sets: dict[CFGNode, set[tuple[Symbol, CFGNode]]] = {
        node: set() for node in cfg.nodes
    }
    out_sets: dict[CFGNode, set[tuple[Symbol, CFGNode]]] = {
        node: set(gen[node]) for node in cfg.nodes
    }

    worklist = cfg.reverse_postorder()
    pending = set(worklist)
    while worklist:
        node = worklist.pop(0)
        pending.discard(node)
        new_in: set[tuple[Symbol, CFGNode]] = set()
        for pred in cfg.predecessors[node]:
            new_in |= out_sets[pred]
        in_sets[node] = new_in
        kills = defined_symbols[node]
        new_out = gen[node] | {
            (symbol, def_node) for symbol, def_node in new_in if symbol not in kills
        }
        if new_out != out_sets[node]:
            out_sets[node] = new_out
            for succ in cfg.successors[node]:
                if succ not in pending:
                    worklist.append(succ)
                    pending.add(succ)

    result.in_sets = in_sets
    result.out_sets = out_sets
    return result


@dataclass
class LiveVariables:
    """Result of live-variable analysis: symbols live before/after nodes."""

    cfg: CFG
    def_use: dict[CFGNode, DefUse]
    live_in: dict[CFGNode, set[Symbol]] = field(default_factory=dict)
    live_out: dict[CFGNode, set[Symbol]] = field(default_factory=dict)


def live_variables(
    cfg: CFG, side_effects: SideEffects | None = None
) -> LiveVariables:
    """Iterative backward may-analysis for live variables."""
    def_use = all_def_use(cfg, side_effects)
    result = LiveVariables(cfg=cfg, def_use=def_use)
    live_in: dict[CFGNode, set[Symbol]] = {node: set() for node in cfg.nodes}
    live_out: dict[CFGNode, set[Symbol]] = {node: set() for node in cfg.nodes}

    worklist = list(reversed(cfg.reverse_postorder()))
    pending = set(worklist)
    while worklist:
        node = worklist.pop(0)
        pending.discard(node)
        new_out: set[Symbol] = set()
        for succ in cfg.successors[node]:
            new_out |= live_in[succ]
        live_out[node] = new_out
        new_in = def_use[node].uses | (new_out - def_use[node].defs)
        if new_in != live_in[node]:
            live_in[node] = new_in
            for pred in cfg.predecessors[node]:
                if pred not in pending:
                    worklist.append(pred)
                    pending.add(pred)

    result.live_in = live_in
    result.live_out = live_out
    return result
