"""Def/use sets at symbol granularity.

Variables are tracked as whole symbols: an assignment to ``a[i]`` is a
*preserving* definition of ``a`` (the array is both defined and used),
the standard conservative treatment for slicing. Uses include every
variable read by an expression, including array index expressions and
the arguments of embedded function calls.

Two levels are provided:

* *direct* def/use — the effects of the statement's own code, treating
  calls as black boxes (used to bootstrap the side-effect analysis), and
* *full* def/use — direct effects plus the callee effects at every call,
  folded in from a :class:`~repro.analysis.sideeffects.SideEffects`
  result (used by dataflow and slicing).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import TYPE_CHECKING

from repro.pascal import ast_nodes as ast
from repro.pascal.semantics import (
    AnalyzedProgram,
    BUILTIN_FUNCTIONS,
    IO_PROCEDURES,
    TRACE_PROCEDURES,
)
from repro.pascal.symbols import Symbol, SymbolKind

if TYPE_CHECKING:  # pragma: no cover
    from repro.analysis.cfg import CFG, CFGNode
    from repro.analysis.sideeffects import SideEffects


@dataclass
class DefUse:
    """Symbols defined and used by one program point."""

    defs: set[Symbol] = field(default_factory=set)
    uses: set[Symbol] = field(default_factory=set)
    calls: list[ast.Node] = field(default_factory=list)

    def update(self, other: "DefUse") -> None:
        self.defs |= other.defs
        self.uses |= other.uses
        self.calls.extend(other.calls)


def _is_variable(symbol: Symbol) -> bool:
    return symbol.kind in (
        SymbolKind.VARIABLE,
        SymbolKind.PARAMETER,
        SymbolKind.RESULT,
    )


def expression_uses(expr: ast.Expr, analysis: AnalyzedProgram) -> set[Symbol]:
    """Variables read when evaluating ``expr`` (callee effects excluded)."""
    uses: set[Symbol] = set()
    for node in expr.walk():
        if isinstance(node, ast.VarRef):
            symbol = analysis.ref_symbol.get(node.node_id)
            if symbol is not None and _is_variable(symbol):
                uses.add(symbol)
    return uses


def expression_calls(expr: ast.Expr, analysis: AnalyzedProgram) -> list[ast.FuncCall]:
    """User-routine function calls embedded in ``expr``."""
    return [
        node
        for node in expr.walk()
        if isinstance(node, ast.FuncCall) and node.name not in BUILTIN_FUNCTIONS
    ]


def target_root(target: ast.Expr, analysis: AnalyzedProgram) -> Symbol:
    """The variable symbol ultimately assigned by an lvalue."""
    node = target
    while isinstance(node, ast.IndexedRef):
        node = node.base
    if not isinstance(node, ast.VarRef):
        raise TypeError(f"not an lvalue: {target!r}")
    return analysis.ref_symbol[node.node_id]


def _target_def_use(target: ast.Expr, analysis: AnalyzedProgram) -> DefUse:
    """Def/use of storing into an lvalue (element stores preserve the array)."""
    result = DefUse()
    root = target_root(target, analysis)
    result.defs.add(root)
    node = target
    while isinstance(node, ast.IndexedRef):
        result.uses |= expression_uses(node.index, analysis)
        result.calls.extend(expression_calls(node.index, analysis))
        node = node.base
    if isinstance(target, ast.IndexedRef):
        result.uses.add(root)  # partial update reads the old array
    return result


def direct_def_use(
    stmt: ast.Stmt,
    analysis: AnalyzedProgram,
    side_effects: "SideEffects | None" = None,
) -> DefUse:
    """Effects of one *atomic* statement or a call statement.

    Without ``side_effects``, calls are treated conservatively: every
    reference argument is both defined and used, callee globals unknown.
    With ``side_effects``, reference arguments and callee globals are
    resolved precisely (including function calls embedded in expressions).
    Structured statements (if/while/...) contribute through their CFG
    predicate nodes, not here.
    """
    result = DefUse()
    if isinstance(stmt, ast.Assign):
        result.update(_target_def_use(stmt.target, analysis))
        result.uses |= expression_uses(stmt.value, analysis)
        result.calls.extend(expression_calls(stmt.value, analysis))
    elif isinstance(stmt, ast.ProcCall):
        result = _proc_call_def_use(stmt, analysis, side_effects)
    elif isinstance(stmt, (ast.EmptyStmt, ast.Goto)):
        return result
    else:
        raise TypeError(f"not an atomic statement: {type(stmt).__name__}")
    if side_effects is not None:
        _fold_function_call_effects(result, analysis, side_effects)
    return result


def _proc_call_def_use(
    stmt: ast.ProcCall,
    analysis: AnalyzedProgram,
    side_effects: "SideEffects | None",
) -> DefUse:
    result = DefUse()
    if stmt.name in ("read", "readln"):
        for arg in stmt.args:
            result.update(_target_def_use(arg, analysis))
        return result
    if stmt.name in ("write", "writeln") or stmt.name in TRACE_PROCEDURES:
        for arg in stmt.args:
            result.uses |= expression_uses(arg, analysis)
            result.calls.extend(expression_calls(arg, analysis))
        return result
    target = analysis.call_target.get(stmt.node_id)
    result.calls.append(stmt)
    if target is None:
        for arg in stmt.args:
            result.uses |= expression_uses(arg, analysis)
        return result
    effects = side_effects.of(target) if side_effects is not None else None
    for param, arg in zip(target.params, stmt.args):
        if param.param_mode in (ast.ParamMode.VAR, ast.ParamMode.OUT):
            root = target_root(arg, analysis)
            node = arg
            while isinstance(node, ast.IndexedRef):
                result.uses |= expression_uses(node.index, analysis)
                node = node.base
            if effects is None:
                result.defs.add(root)
                result.uses.add(root)
            else:
                if param in effects.mod_params:
                    result.defs.add(root)
                    if isinstance(arg, ast.IndexedRef):
                        result.uses.add(root)  # partial update
                if param in effects.ref_params:
                    result.uses.add(root)
        else:
            result.uses |= expression_uses(arg, analysis)
            result.calls.extend(expression_calls(arg, analysis))
    if effects is not None:
        result.uses |= {s for s in effects.gref if _is_variable(s)}
        result.defs |= {s for s in effects.gmod if _is_variable(s)}
    return result


def condition_def_use(
    expr: ast.Expr,
    analysis: AnalyzedProgram,
    side_effects: "SideEffects | None" = None,
) -> DefUse:
    """Def/use of evaluating a predicate expression."""
    result = DefUse()
    result.uses |= expression_uses(expr, analysis)
    result.calls.extend(expression_calls(expr, analysis))
    if side_effects is not None:
        _fold_function_call_effects(result, analysis, side_effects)
    return result


def def_use_for_node(
    node: "CFGNode",
    analysis: AnalyzedProgram,
    side_effects: "SideEffects | None" = None,
) -> DefUse:
    """Def/use sets of one CFG node.

    ENTRY defines the routine's parameters (and, when side-effect facts
    are available, the non-locals it may read — the incoming state);
    EXIT uses everything observable on return (writable parameters, the
    function result, written non-locals).
    """
    from repro.analysis.cfg import NodeKind

    result = DefUse()
    if node.kind is NodeKind.ENTRY or node.kind is NodeKind.EXIT:
        raise ValueError(
            "entry/exit def/use depends on the owning CFG; "
            "use entry_def_use/exit_def_use"
        )
    stmt = node.stmt
    assert stmt is not None
    if node.kind is NodeKind.STMT:
        return direct_def_use(stmt, analysis, side_effects)
    if node.kind is NodeKind.PRED:
        condition = getattr(stmt, "condition")
        return condition_def_use(condition, analysis, side_effects)
    if node.kind is NodeKind.FOR_INIT:
        assert isinstance(stmt, ast.For)
        result.defs.add(analysis.for_symbol[stmt.node_id])
        result.uses |= expression_uses(stmt.start, analysis)
        result.uses |= expression_uses(stmt.stop, analysis)
        result.calls.extend(expression_calls(stmt.start, analysis))
        result.calls.extend(expression_calls(stmt.stop, analysis))
        if side_effects is not None:
            _fold_function_call_effects(result, analysis, side_effects)
        return result
    if node.kind is NodeKind.FOR_PRED:
        assert isinstance(stmt, ast.For)
        result.uses.add(analysis.for_symbol[stmt.node_id])
        return result
    if node.kind is NodeKind.FOR_STEP:
        assert isinstance(stmt, ast.For)
        symbol = analysis.for_symbol[stmt.node_id]
        result.defs.add(symbol)
        result.uses.add(symbol)
        return result
    raise ValueError(f"unknown node kind {node.kind}")


def entry_def_use(
    cfg: "CFG", side_effects: "SideEffects | None" = None
) -> DefUse:
    """ENTRY defines the incoming state: parameters and read non-locals."""
    result = DefUse()
    result.defs |= set(cfg.routine.params)
    if side_effects is not None and not cfg.routine.is_main:
        result.defs |= {
            s
            for s in side_effects.of(cfg.routine.symbol).gref
            if _is_variable(s)
        }
    return result


def exit_def_use(
    cfg: "CFG", side_effects: "SideEffects | None" = None
) -> DefUse:
    """EXIT uses the observable outputs of the routine."""
    result = DefUse()
    routine = cfg.routine
    if routine.result_symbol is not None:
        result.uses.add(routine.result_symbol)
    if side_effects is not None and not routine.is_main:
        effects = side_effects.of(routine.symbol)
        result.uses |= set(effects.mod_params)
        result.uses |= {s for s in effects.gmod if _is_variable(s)}
    else:
        result.uses |= {
            p
            for p in routine.params
            if p.param_mode in (ast.ParamMode.VAR, ast.ParamMode.OUT)
        }
    return result


def _fold_function_call_effects(
    result: DefUse, analysis: AnalyzedProgram, side_effects: "SideEffects"
) -> None:
    """Fold global effects of function calls embedded in expressions."""
    for call in result.calls:
        if not isinstance(call, ast.FuncCall):
            continue
        callee = analysis.call_target.get(call.node_id)
        if callee is None or callee.kind is not SymbolKind.ROUTINE:
            continue
        effects = side_effects.of(callee)
        result.uses |= {s for s in effects.gref if _is_variable(s)}
        result.defs |= {s for s in effects.gmod if _is_variable(s)}
        for param, arg in zip(callee.params, call.args):
            if param.param_mode in (ast.ParamMode.VAR, ast.ParamMode.OUT):
                root = target_root(arg, analysis)
                if param in effects.mod_params:
                    result.defs.add(root)
                if param in effects.ref_params:
                    result.uses.add(root)
