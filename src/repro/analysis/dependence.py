"""Control dependence and program dependence graphs.

Control dependences follow Ferrante/Ottenstein/Warren via postdominator
sets; data dependences are the def-use chains of the reaching-definitions
analysis. The resulting per-routine PDG is the workhorse of the static
slicer (paper §4) and supplies the static control-dependence relation the
dynamic slicer consults at run time (paper §7).
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.analysis.cfg import CFG, CFGNode
from repro.analysis.dataflow import ReachingDefinitions, reaching_definitions
from repro.analysis.sideeffects import SideEffects
from repro.pascal.symbols import Symbol


def postdominators(cfg: CFG) -> dict[CFGNode, set[CFGNode]]:
    """Postdominator sets via iterative intersection (exit postdominates all)."""
    all_nodes = set(cfg.nodes)
    postdom: dict[CFGNode, set[CFGNode]] = {
        node: ({node} if node is cfg.exit else set(all_nodes)) for node in cfg.nodes
    }
    changed = True
    order = list(reversed(cfg.reverse_postorder()))
    while changed:
        changed = False
        for node in order:
            if node is cfg.exit:
                continue
            succs = cfg.successors[node]
            if succs:
                new_set = set.intersection(*(postdom[s] for s in succs)) | {node}
            else:
                # No successors and not exit (e.g. a stuck goto): only itself.
                new_set = {node}
            if new_set != postdom[node]:
                postdom[node] = new_set
                changed = True
    return postdom


def control_dependences(cfg: CFG) -> dict[CFGNode, set[CFGNode]]:
    """Map each node to the set of predicate nodes it is control dependent on.

    A node ``n`` is control dependent on ``p`` iff ``p`` has a successor
    from which ``n`` is always reached (n postdominates it) and another
    successor from which it may be avoided (n does not postdominate p).
    """
    postdom = postdominators(cfg)
    deps: dict[CFGNode, set[CFGNode]] = {node: set() for node in cfg.nodes}
    for source in cfg.nodes:
        succs = cfg.successors[source]
        if len(succs) < 2:
            continue
        for succ in succs:
            for node in postdom[succ]:
                # n postdominates this successor but does not strictly
                # postdominate the branch point (loop predicates may be
                # control dependent on themselves).
                if node is source or node not in postdom[source]:
                    deps[node].add(source)
    return deps


@dataclass
class ProgramDependenceGraph:
    """Per-routine PDG: data and control dependence edges between CFG nodes."""

    cfg: CFG
    reaching: ReachingDefinitions
    #: node -> set of (symbol, defining node) data dependences
    data_deps: dict[CFGNode, set[tuple[Symbol, CFGNode]]] = field(default_factory=dict)
    #: node -> set of controlling predicate nodes
    control_deps: dict[CFGNode, set[CFGNode]] = field(default_factory=dict)

    def dependences_of(self, node: CFGNode) -> set[CFGNode]:
        """All nodes this node directly depends on (data + control)."""
        result = {def_node for _, def_node in self.data_deps.get(node, ())}
        result |= self.control_deps.get(node, set())
        return result

    def backward_closure(self, seeds: set[CFGNode]) -> set[CFGNode]:
        """Transitive closure of dependences starting from ``seeds``."""
        visited = set(seeds)
        stack = list(seeds)
        while stack:
            node = stack.pop()
            for dep in self.dependences_of(node):
                if dep not in visited:
                    visited.add(dep)
                    stack.append(dep)
        return visited


def build_pdg(
    cfg: CFG, side_effects: SideEffects | None = None
) -> ProgramDependenceGraph:
    """Build the program dependence graph of one routine."""
    reaching = reaching_definitions(cfg, side_effects)
    pdg = ProgramDependenceGraph(cfg=cfg, reaching=reaching)
    pdg.data_deps = reaching.def_use_chains()
    pdg.control_deps = control_dependences(cfg)
    return pdg
