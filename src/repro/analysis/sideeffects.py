"""Interprocedural side-effect analysis in the style of Banning (POPL'79).

The paper follows Banning's definition of side effects: *variable side
effects* (a routine reads or writes a variable not locally declared) and
*exit side effects* (a routine performs a global goto). This module
computes, by a fixpoint over the call graph:

* ``mod_params`` / ``ref_params`` — which formal parameters a routine may
  (transitively) write / read,
* ``gmod`` / ``gref`` — which non-local variables a routine may
  (transitively) write / read, expressed relative to that routine's own
  scope,
* ``exit_labels`` — labels targeted by (transitive) global gotos, and
* alias warnings for the situations Banning's alias analysis flags
  (reference arguments aliasing each other or a global the callee
  touches).

The transformation phase consumes ``gmod``/``gref`` to decide which
globals become ``in``/``out`` parameters, and ``exit_labels`` to break
global gotos; dataflow and slicing consume all of it for call-site
def/use sets.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.analysis.callgraph import CallGraph, CallSite, build_call_graph
from repro.analysis.defuse import expression_uses, target_root
from repro.pascal import ast_nodes as ast
from repro.pascal.semantics import AnalyzedProgram, RoutineInfo
from repro.pascal.symbols import Symbol, SymbolKind


@dataclass
class RoutineEffects:
    """Side-effect summary for one routine."""

    routine: Symbol
    mod_params: set[Symbol] = field(default_factory=set)
    ref_params: set[Symbol] = field(default_factory=set)
    gmod: set[Symbol] = field(default_factory=set)
    gref: set[Symbol] = field(default_factory=set)
    exit_labels: set[Symbol] = field(default_factory=set)

    @property
    def has_variable_side_effects(self) -> bool:
        return bool(self.gmod or self.gref)

    @property
    def has_exit_side_effects(self) -> bool:
        return bool(self.exit_labels)

    @property
    def is_side_effect_free(self) -> bool:
        return not (self.has_variable_side_effects or self.has_exit_side_effects)


@dataclass(frozen=True)
class AliasWarning:
    """A potential alias that would make globals-to-parameters unsound in a
    copy-based implementation (our shared-cell semantics stays correct, but
    the paper's method expects these to be detected and reported)."""

    site: ast.Node
    callee: Symbol
    description: str


@dataclass
class SideEffects:
    """Analysis result: per-routine effect summaries plus alias warnings."""

    analysis: AnalyzedProgram
    call_graph: CallGraph
    effects: dict[Symbol, RoutineEffects] = field(default_factory=dict)
    alias_warnings: list[AliasWarning] = field(default_factory=list)

    def of(self, routine: Symbol) -> RoutineEffects:
        return self.effects[routine]

    def of_info(self, info: RoutineInfo) -> RoutineEffects:
        return self.effects[info.symbol]

    def routines_with_side_effects(self) -> list[Symbol]:
        return [
            symbol
            for symbol, effect in self.effects.items()
            if not effect.is_side_effect_free
        ]


def _is_local_to(symbol: Symbol, routine: Symbol, main: Symbol) -> bool:
    """Is ``symbol`` declared by ``routine`` (params, locals, its result)?"""
    if routine is main:
        # Relative to the main program body every global is "local";
        # gmod/gref of main is defined to be empty.
        return symbol.owner is None or symbol.owner is main
    return symbol.owner is routine


def analyze_side_effects(
    analysis: AnalyzedProgram, call_graph: CallGraph | None = None
) -> SideEffects:
    graph = call_graph if call_graph is not None else build_call_graph(analysis)
    result = SideEffects(analysis=analysis, call_graph=graph)
    main = analysis.main.symbol

    # Seed with direct effects gathered by the semantic analyzer.
    for info in analysis.all_routines():
        effect = RoutineEffects(routine=info.symbol)
        if not info.is_main:
            effect.gmod |= info.nonlocal_writes
            effect.gref |= info.nonlocal_reads
            effect.mod_params |= _direct_param_writes(info, analysis)
            effect.ref_params |= _direct_param_reads(info, analysis)
            for goto in info.global_gotos:
                effect.exit_labels.add(analysis.goto_target[goto.node_id])
        result.effects[info.symbol] = effect

    # Fixpoint: propagate effects through call sites.
    changed = True
    order = graph.bottom_up_order()
    while changed:
        changed = False
        for caller in order:
            caller_effect = result.effects[caller]
            for site in graph.sites_by_caller.get(caller, ()):
                if _propagate_site(site, caller_effect, result, main):
                    changed = True

    _detect_aliases(result)
    return result


def _direct_param_writes(info: RoutineInfo, analysis: AnalyzedProgram) -> set[Symbol]:
    """Formals of ``info`` that its own body assigns (or reads into)."""
    written: set[Symbol] = set()
    params = set(info.params)
    for stmt in ast.iter_statements(info.block.body):
        if isinstance(stmt, ast.Assign):
            root = target_root(stmt.target, analysis)
            if root in params:
                written.add(root)
        elif isinstance(stmt, ast.ProcCall) and stmt.name in ("read", "readln"):
            for arg in stmt.args:
                root = target_root(arg, analysis)
                if root in params:
                    written.add(root)
        elif isinstance(stmt, ast.For):
            symbol = analysis.for_symbol.get(stmt.node_id)
            if symbol in params:
                written.add(symbol)  # type: ignore[arg-type]
    return written


def _direct_param_reads(info: RoutineInfo, analysis: AnalyzedProgram) -> set[Symbol]:
    """Formals of ``info`` whose value its own body may read."""
    read: set[Symbol] = set()
    params = set(info.params)

    def note_expr(expr: ast.Expr) -> None:
        read.update(expression_uses(expr, analysis) & params)

    for stmt in ast.iter_statements(info.block.body):
        if isinstance(stmt, ast.Assign):
            note_expr(stmt.value)
            node = stmt.target
            while isinstance(node, ast.IndexedRef):
                note_expr(node.index)
                node = node.base
            if isinstance(stmt.target, ast.IndexedRef):
                root = target_root(stmt.target, analysis)
                if root in params:
                    read.add(root)
        elif isinstance(stmt, ast.ProcCall):
            if stmt.name in ("read", "readln"):
                pass
            else:
                # Reference arguments are not direct reads; whether the
                # callee reads them propagates through the fixpoint.
                target = analysis.call_target.get(stmt.node_id)
                formals = target.params if target is not None else []
                for position, arg in enumerate(stmt.args):
                    mode = (
                        formals[position].param_mode
                        if position < len(formals)
                        else ast.ParamMode.VALUE
                    )
                    if mode in (ast.ParamMode.VAR, ast.ParamMode.OUT):
                        node = arg
                        while isinstance(node, ast.IndexedRef):
                            note_expr(node.index)
                            node = node.base
                    else:
                        note_expr(arg)
        elif isinstance(stmt, ast.If):
            note_expr(stmt.condition)
        elif isinstance(stmt, ast.While):
            note_expr(stmt.condition)
        elif isinstance(stmt, ast.Repeat):
            note_expr(stmt.condition)
        elif isinstance(stmt, ast.For):
            note_expr(stmt.start)
            note_expr(stmt.stop)
    return read


def _propagate_site(
    site: CallSite,
    caller_effect: RoutineEffects,
    result: SideEffects,
    main: Symbol,
) -> bool:
    """Flow callee effects through one call site; returns True on change."""
    analysis = result.analysis
    callee_effect = result.effects.get(site.callee)
    if callee_effect is None:  # builtin
        return False
    caller = site.caller
    changed = False

    def add(collection: set[Symbol], symbol: Symbol) -> None:
        nonlocal changed
        if symbol not in collection:
            collection.add(symbol)
            changed = True

    # 1. Reference-parameter bindings: callee writes/reads its formal ->
    #    the caller's actual is written/read here.
    callee = site.callee
    for param, arg in zip(callee.params, site.args):
        if param.param_mode not in (
            ast.ParamMode.VAR,
            ast.ParamMode.OUT,
            ast.ParamMode.IN_,
        ):
            continue
        root = target_root(arg, analysis)
        if param in callee_effect.mod_params:
            _classify_effect(root, caller, main, caller_effect, add, write=True)
        if param in callee_effect.ref_params:
            _classify_effect(root, caller, main, caller_effect, add, write=False)

    # 2. Callee's non-local effects that are also non-local to the caller.
    for symbol in callee_effect.gmod:
        _classify_effect(symbol, caller, main, caller_effect, add, write=True)
    for symbol in callee_effect.gref:
        _classify_effect(symbol, caller, main, caller_effect, add, write=False)

    # 3. Exit side effects: callee gotos escaping past the caller.
    caller_info = analysis.routines[caller]
    for label in callee_effect.exit_labels:
        label_owner = label.owner
        caller_owner = None if caller_info.is_main else caller
        if label_owner is not caller_owner:
            add(caller_effect.exit_labels, label)
    return changed


def _classify_effect(
    symbol: Symbol,
    caller: Symbol,
    main: Symbol,
    caller_effect: RoutineEffects,
    add,
    write: bool,
) -> None:
    """Record an inherited effect on ``symbol`` relative to the caller.

    If the symbol is the caller's own formal, it lands in
    mod/ref_params; if it's local to the caller, the effect is contained;
    otherwise it is a non-local effect of the caller too.
    """
    if symbol.kind is SymbolKind.PARAMETER and symbol.owner is caller:
        add(caller_effect.mod_params if write else caller_effect.ref_params, symbol)
        return
    if _is_local_to(symbol, caller, main):
        return  # contained within the caller's frame
    add(caller_effect.gmod if write else caller_effect.gref, symbol)


def _detect_aliases(result: SideEffects) -> None:
    """Flag reference-argument aliasing the paper's method must report."""
    analysis = result.analysis
    for site in result.call_graph.sites:
        callee_effect = result.effects.get(site.callee)
        if callee_effect is None:
            continue
        ref_roots: dict[Symbol, str] = {}
        for param, arg in zip(site.callee.params, site.args):
            if param.param_mode not in (
                ast.ParamMode.VAR,
                ast.ParamMode.OUT,
                ast.ParamMode.IN_,
            ):
                continue
            root = target_root(arg, analysis)
            if root in ref_roots:
                result.alias_warnings.append(
                    AliasWarning(
                        site=site.node,
                        callee=site.callee,
                        description=(
                            f"'{root.name}' bound to both parameters "
                            f"'{ref_roots[root]}' and '{param.name}' of {site.callee.name}"
                        ),
                    )
                )
            else:
                ref_roots[root] = param.name
            if root in callee_effect.gmod or root in callee_effect.gref:
                result.alias_warnings.append(
                    AliasWarning(
                        site=site.node,
                        callee=site.callee,
                        description=(
                            f"'{root.name}' passed by reference to {site.callee.name}, "
                            "which also accesses it non-locally"
                        ),
                    )
                )
