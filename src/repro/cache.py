"""Content-addressed caches for analysis and transformation results.

Benchmarks, mutation sweeps, and reference oracles repeatedly feed the
*same* source text through lex → parse → analyze (and the transformation
pipeline). Those stages are pure functions of the source, so their
results are cached here keyed on the SHA-256 of the text: an identical
source returns the identical result object; any edit — even one
character — produces a different digest and therefore a fresh build.

Sharing a result object is safe because every consumer treats analyzed
programs as immutable: the transformation passes are *copying* rewriters
(:mod:`repro.transform.rewriter`), the interpreter only reads the
resolution tables, and the mutation generator restores every flip before
returning. Tracing and debugging state always lives in per-run objects
(trees, dependence graphs), never in the analysis.

Caches are bounded LRU (a mutation sweep over thousands of distinct
mutant sources must not retain every analysis), can be disabled globally
with :func:`set_enabled`, cleared with :func:`clear_caches`, and report
hit/miss counters through :func:`cache_stats` so the benchmark harness
can show what the cache is doing.

**Crash safety** (see ``docs/ROBUSTNESS.md``): an optional on-disk
layer (:class:`DiskCacheBackend`, attached per cache or for all caches
via :func:`enable_persistence`) persists entries across processes.
Disk writes are atomic — a temp file in the cache directory published
with ``os.replace`` — so a crash mid-write can never leave a torn
entry. Every entry carries a SHA-256 checksum of its payload;
corruption detected on read (or injected via the ``cache.read`` fault
point) quarantines the entry to ``*.corrupt``, counts it in the
``corrupt`` stat (and the ``cache.corrupt_entries`` metric), and
treats the lookup as a miss — corruption is never a crash.
"""

from __future__ import annotations

import hashlib
import os
import pickle
import sys
import tempfile
from collections import OrderedDict
from pathlib import Path
from typing import Any, Callable

#: global switch — when False every lookup misses and nothing is stored
_ENABLED = True


def _fire_read_fault(cache_name: str):
    """Consult the fault-injection plan, if the resilience layer is even
    loaded (``sys.modules`` probe: the substrate must not import upward,
    and an unloaded fault module cannot hold an installed plan)."""
    faults = sys.modules.get("repro.resilience.faults")
    if faults is None:
        return None
    return faults.fire("cache.read", key=cache_name)


def _count_corrupt_metric(amount: int = 1) -> None:
    obs = sys.modules.get("repro.obs")
    if obs is not None:
        obs.add("cache.corrupt_entries", amount)


def _journal_lookup(cache_name: str, outcome: str) -> None:
    """Journal one cache lookup (``hit`` / ``disk-hit`` / ``miss``) —
    phase-granular, so the flight recorder shows what each stage paid."""
    obs = sys.modules.get("repro.obs")
    if obs is not None:
        obs.emit("cache", cache=cache_name, outcome=outcome)


def set_enabled(enabled: bool) -> None:
    """Turn all content caches on or off (off → every lookup rebuilds)."""
    global _ENABLED
    _ENABLED = enabled


def source_key(source: str, *extra: object) -> tuple:
    """Cache key for ``source``: content digest plus option fingerprint."""
    digest = hashlib.sha256(source.encode("utf-8")).hexdigest()
    return (digest, *extra)


class ContentCache:
    """A named, bounded, LRU content cache with hit/miss counters and an
    optional crash-safe on-disk layer."""

    __slots__ = (
        "name", "max_entries", "hits", "misses", "disk_hits",
        "corrupt_entries", "persist", "persistable", "_store",
    )

    def __init__(
        self,
        name: str,
        max_entries: int = 256,
        persist: "DiskCacheBackend | None" = None,
        persistable: bool = True,
    ):
        self.name = name
        self.persistable = persistable
        self.max_entries = max_entries
        self.hits = 0
        self.misses = 0
        self.disk_hits = 0
        #: entries dropped as corrupted (injected or detected on disk)
        self.corrupt_entries = 0
        self.persist = persist
        self._store: OrderedDict[tuple, Any] = OrderedDict()

    def get_or_build(self, key: tuple, build: Callable[[], Any]) -> Any:
        """The cached value for ``key``, building (and storing) on miss.

        A corrupted entry — detected by the disk layer's checksum or
        injected at the ``cache.read`` fault point — is quarantined and
        counted, then treated as an ordinary miss: the value rebuilds.
        """
        if not _ENABLED:
            return build()
        corrupt_injected = _fire_read_fault(self.name) is not None
        corrupted = False
        store = self._store
        value = store.get(key, _MISSING)
        if value is not _MISSING:
            if corrupt_injected:
                del store[key]
                corrupted = True
            else:
                self.hits += 1
                store.move_to_end(key)
                _journal_lookup(self.name, "hit")
                return value
        if self.persist is not None:
            value = self.persist.load(key, force_corrupt=corrupt_injected)
            if value is _CORRUPT:
                corrupted = True
            elif value is not _MISSING:
                self.disk_hits += 1
                self._put(key, value)
                _journal_lookup(self.name, "disk-hit")
                return value
        if corrupted or (corrupt_injected and value is _MISSING):
            # One logical corrupted read, however many layers it hit
            # (an injected fault with no entry anywhere still counts:
            # the injection simulates the entry having been damaged).
            self._note_corrupt()
        self.misses += 1
        _journal_lookup(self.name, "miss")
        value = build()
        self._put(key, value)
        if self.persist is not None:
            self.persist.store(key, value)
        return value

    def _put(self, key: tuple, value: Any) -> None:
        self._store[key] = value
        if len(self._store) > self.max_entries:
            self._store.popitem(last=False)

    def _note_corrupt(self) -> None:
        self.corrupt_entries += 1
        _count_corrupt_metric()

    def clear(self) -> None:
        self._store.clear()

    def __len__(self) -> int:
        return len(self._store)

    def stats(self) -> dict[str, int]:
        return {
            "entries": len(self._store),
            "hits": self.hits,
            "misses": self.misses,
            "corrupt": self.corrupt_entries,
        }


_MISSING = object()
_CORRUPT = object()


# ----------------------------------------------------------------------
# crash-safe file machinery, shared with the persistent test-report
# store (:mod:`repro.store`): checksummed payload framing, atomic
# publication, and quarantine of damaged files.


def seal_payload(payload: bytes) -> bytes:
    """Frame ``payload`` for crash-safe storage: 64 hex chars of SHA-256
    over the payload, a newline, then the payload itself."""
    header = hashlib.sha256(payload).hexdigest().encode("ascii")
    return header + b"\n" + payload


def open_sealed(blob: bytes) -> bytes | None:
    """The payload of a sealed ``blob``, or None when the checksum (or
    the framing itself) does not verify — the caller quarantines."""
    header, sep, payload = blob.partition(b"\n")
    if not sep:
        return None
    if header.decode("ascii", "replace") != hashlib.sha256(payload).hexdigest():
        return None
    return payload


def atomic_write_bytes(path: Path, blob: bytes) -> None:
    """Publish ``blob`` at ``path`` atomically: a temp file in the same
    directory, then ``os.replace`` — readers see the old file, the new
    file, or nothing, never a torn write. OSErrors propagate after the
    temp file is cleaned up."""
    fd, tmp_name = tempfile.mkstemp(dir=path.parent, suffix=".tmp")
    try:
        with os.fdopen(fd, "wb") as handle:
            handle.write(blob)
        os.replace(tmp_name, path)
    except OSError:
        try:
            os.unlink(tmp_name)
        except OSError:
            pass
        raise


def quarantine_file(path: Path) -> None:
    """Move a damaged file aside as ``<name>.corrupt`` (best effort)."""
    try:
        os.replace(path, path.with_suffix(".corrupt"))
    except OSError:
        pass


class DiskCacheBackend:
    """Content-addressed on-disk entries with atomic writes and checksum
    verification (one file per entry, named by the key's digest).

    File format: 64 hex chars of SHA-256 over the payload, a newline,
    then the pickled payload. Writes go to a temp file in the same
    directory and are published with ``os.replace`` — readers see either
    the old entry, the new entry, or nothing, never a torn write. A
    checksum mismatch (or unreadable pickle) quarantines the file as
    ``<name>.corrupt`` and reads as a miss.
    """

    def __init__(self, directory: str | os.PathLike, name: str):
        self.directory = Path(directory) / name
        self.directory.mkdir(parents=True, exist_ok=True)

    def _path(self, key: tuple) -> Path:
        digest = hashlib.sha256(repr(key).encode("utf-8")).hexdigest()
        return self.directory / f"{digest}.entry"

    def load(self, key: tuple, force_corrupt: bool = False) -> Any:
        """The stored value, ``_MISSING``, or ``_CORRUPT`` (after
        quarantining). ``force_corrupt`` treats an existing entry as
        damaged (the injection path)."""
        path = self._path(key)
        try:
            blob = path.read_bytes()
        except FileNotFoundError:
            return _MISSING
        except OSError:
            return _MISSING
        if not force_corrupt:
            payload = open_sealed(blob)
            if payload is not None:
                try:
                    return pickle.loads(payload)
                except Exception:
                    pass  # checksum ok but unpicklable: quarantine below
        self._quarantine(path)
        return _CORRUPT

    def store(self, key: tuple, value: Any) -> None:
        """Atomically persist ``value``; unpicklable values are skipped
        (the in-memory layer still serves them)."""
        try:
            payload = pickle.dumps(value)
        except Exception:
            return
        try:
            atomic_write_bytes(self._path(key), seal_payload(payload))
        except OSError:
            pass  # the in-memory layer still serves the value

    def _quarantine(self, path: Path) -> None:
        quarantine_file(path)

    def clear(self) -> None:
        for path in self.directory.glob("*.entry"):
            try:
                path.unlink()
            except OSError:
                pass

#: every cache created via :func:`register`, by name
_CACHES: dict[str, ContentCache] = {}


def register(
    name: str, max_entries: int = 256, persistable: bool = True
) -> ContentCache:
    """Create (or fetch) the named cache. Module-level singletons.

    ``persistable=False`` marks caches whose values are process-local
    (e.g. compiled closures keyed by object identity) — they never get a
    disk layer, even when persistence is enabled globally.
    """
    cache = _CACHES.get(name)
    if cache is None:
        cache = ContentCache(name, max_entries=max_entries, persistable=persistable)
        if persistable and _PERSIST_DIR is not None:
            cache.persist = DiskCacheBackend(_PERSIST_DIR, name)
        _CACHES[name] = cache
    return cache


def clear_caches() -> None:
    """Drop every cached in-memory entry (counters and disk entries are
    kept; use :meth:`DiskCacheBackend.clear` to drop persisted ones)."""
    for cache in _CACHES.values():
        cache.clear()


def enable_persistence(directory: str | os.PathLike) -> None:
    """Attach a crash-safe disk layer under ``directory`` to every
    registered cache (and to caches registered later)."""
    global _PERSIST_DIR
    _PERSIST_DIR = Path(directory)
    for cache in _CACHES.values():
        if cache.persistable:
            cache.persist = DiskCacheBackend(_PERSIST_DIR, cache.name)


def disable_persistence() -> None:
    """Detach the disk layer everywhere (entries on disk are kept)."""
    global _PERSIST_DIR
    _PERSIST_DIR = None
    for cache in _CACHES.values():
        cache.persist = None


_PERSIST_DIR: Path | None = None


def cache_stats() -> dict[str, dict[str, int]]:
    """Per-cache entry/hit/miss counts, keyed by cache name."""
    return {name: cache.stats() for name, cache in sorted(_CACHES.items())}
