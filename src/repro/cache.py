"""Content-addressed caches for analysis and transformation results.

Benchmarks, mutation sweeps, and reference oracles repeatedly feed the
*same* source text through lex → parse → analyze (and the transformation
pipeline). Those stages are pure functions of the source, so their
results are cached here keyed on the SHA-256 of the text: an identical
source returns the identical result object; any edit — even one
character — produces a different digest and therefore a fresh build.

Sharing a result object is safe because every consumer treats analyzed
programs as immutable: the transformation passes are *copying* rewriters
(:mod:`repro.transform.rewriter`), the interpreter only reads the
resolution tables, and the mutation generator restores every flip before
returning. Tracing and debugging state always lives in per-run objects
(trees, dependence graphs), never in the analysis.

Caches are bounded LRU (a mutation sweep over thousands of distinct
mutant sources must not retain every analysis), can be disabled globally
with :func:`set_enabled`, cleared with :func:`clear_caches`, and report
hit/miss counters through :func:`cache_stats` so the benchmark harness
can show what the cache is doing.
"""

from __future__ import annotations

import hashlib
from collections import OrderedDict
from typing import Any, Callable

#: global switch — when False every lookup misses and nothing is stored
_ENABLED = True


def set_enabled(enabled: bool) -> None:
    """Turn all content caches on or off (off → every lookup rebuilds)."""
    global _ENABLED
    _ENABLED = enabled


def source_key(source: str, *extra: object) -> tuple:
    """Cache key for ``source``: content digest plus option fingerprint."""
    digest = hashlib.sha256(source.encode("utf-8")).hexdigest()
    return (digest, *extra)


class ContentCache:
    """A named, bounded, LRU content cache with hit/miss counters."""

    __slots__ = ("name", "max_entries", "hits", "misses", "_store")

    def __init__(self, name: str, max_entries: int = 256):
        self.name = name
        self.max_entries = max_entries
        self.hits = 0
        self.misses = 0
        self._store: OrderedDict[tuple, Any] = OrderedDict()

    def get_or_build(self, key: tuple, build: Callable[[], Any]) -> Any:
        """The cached value for ``key``, building (and storing) on miss."""
        if not _ENABLED:
            return build()
        store = self._store
        value = store.get(key, _MISSING)
        if value is not _MISSING:
            self.hits += 1
            store.move_to_end(key)
            return value
        self.misses += 1
        value = build()
        store[key] = value
        if len(store) > self.max_entries:
            store.popitem(last=False)
        return value

    def clear(self) -> None:
        self._store.clear()

    def __len__(self) -> int:
        return len(self._store)

    def stats(self) -> dict[str, int]:
        return {
            "entries": len(self._store),
            "hits": self.hits,
            "misses": self.misses,
        }


_MISSING = object()

#: every cache created via :func:`register`, by name
_CACHES: dict[str, ContentCache] = {}


def register(name: str, max_entries: int = 256) -> ContentCache:
    """Create (or fetch) the named cache. Module-level singletons."""
    cache = _CACHES.get(name)
    if cache is None:
        cache = ContentCache(name, max_entries=max_entries)
        _CACHES[name] = cache
    return cache


def clear_caches() -> None:
    """Drop every cached entry (counters are kept)."""
    for cache in _CACHES.values():
        cache.clear()


def cache_stats() -> dict[str, dict[str, int]]:
    """Per-cache entry/hit/miss counts, keyed by cache name."""
    return {name: cache.stats() for name, cache in sorted(_CACHES.items())}
