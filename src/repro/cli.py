"""Command-line interface to the GADT system.

    python -m repro run PROGRAM [--input V ...]
    python -m repro trace PROGRAM [--input V ...]
    python -m repro transform PROGRAM [--instrumented]
    python -m repro slice PROGRAM --variable V [--routine R | --unit U [--occurrence N]]
    python -m repro debug PROGRAM [--reference FIXED] [--strategy S]
                                  [--no-slicing] [--input V ...]
    python -m repro frames SPECFILE
    python -m repro mutate PROGRAM [--evaluate]
    python -m repro stats PROGRAM [--reference FIXED] [--json]
    python -m repro profile PROGRAM [--hotspots N] [--json]
    python -m repro replay JOURNAL [--backend B]
    python -m repro export JOURNAL [--format perfetto] [-o OUT]
    python -m repro testdb import DB_DIR REPORTS.jsonl [--shards N]
    python -m repro testdb stats DB_DIR [--per-shard] [--json]
    python -m repro testdb compact DB_DIR
    python -m repro serve --socket PATH | --stdio [--workers N] [--rate R]
    python -m repro serve --drain --socket PATH

`debug` without ``--reference`` runs an interactive session: you answer
the questions (yes / no / no <k> / no <name> / assert <expr> / ?); with
``--reference`` a simulated user backed by the fixed program answers.
With ``--testdb DIR`` (plus ``--spec FILE`` per tested unit) queries
are first answered from the persistent sharded test-report store at
``DIR`` — see ``docs/TESTDB.md`` and the ``testdb`` subcommands that
maintain such a store.

The ``run``, ``trace``, ``debug``, ``mutate``, and ``stats`` subcommands
take ``--profile`` (print a phase/metric summary on stderr after the
command), ``--events PATH`` (stream observability events as JSONL), and
``--journal PATH`` (record a schema-versioned session journal that
``repro replay`` re-runs deterministically and ``repro export`` turns
into a Perfetto/Chrome trace); see ``docs/OBSERVABILITY.md``. The same subcommands take ``--backend
{interp,compiled}`` to pick the execution engine (default: the
``REPRO_BACKEND`` environment variable, else the interpreter); see
``docs/COMPILER.md``.

``run``, ``trace``, ``debug``, and ``mutate`` take ``--deadline S`` (a
wall-clock budget for program execution; a blown budget exits 2 — or,
with ``--degrade`` on the tracing commands, salvages a partial trace
and keeps going). ``mutate`` additionally takes ``--retries N`` for
crash-isolated parallel sweeps; see ``docs/ROBUSTNESS.md``.

``serve`` runs the fault-tolerant multi-session debug service: many
concurrent run/trace/debug/answer jobs as newline-delimited JSON over
a Unix socket (``--socket``) or stdio (``--stdio``), multiplexed over
one shared test-report store and a fixed pool of crash-isolated
workers, with admission control, per-tenant rate limits and circuit
breakers, deadlines, retries with jittered backoff, and graceful
degradation under load. ``serve --drain --socket PATH`` asks a running
server to finish in-flight jobs and shut down; see ``docs/SERVE.md``.

Exit codes are uniform across subcommands: **0** success, **1** the
command ran but the outcome is negative (bug not localized, mutation
accuracy below 100%), **2** usage or input errors (bad flags, missing or
unparsable files, unknown criteria).
"""

from __future__ import annotations

import argparse
import os
import sys
from pathlib import Path

from repro import obs
from repro.core import (
    AlgorithmicDebugger,
    GadtSystem,
    InteractiveOracle,
    ReferenceOracle,
    available_strategies,
)
from repro.pascal import analyze_source, print_program, run_source
from repro.pascal.errors import PascalError
from repro.slicing import DynamicCriterion, StaticCriterion, prune_tree, static_slice
from repro.store import StoreError
from repro.tgen import frames_by_script, generate_frames
from repro.tgen.spec_parser import SpecError, parse_spec
from repro.tracing import trace_source
from repro.transform import transform_source


def _read(path: str) -> str:
    return Path(path).read_text()


def _parse_inputs(values: list[str] | None) -> list[object]:
    inputs: list[object] = []
    for raw in values or []:
        lowered = raw.lower()
        if lowered in ("true", "false"):
            inputs.append(lowered == "true")
        else:
            inputs.append(int(raw))
    return inputs


# ----------------------------------------------------------------------
# subcommands


def _budget(args: argparse.Namespace):
    """A started :class:`repro.resilience.Budget` for ``--deadline``,
    or None when no resource flag was given."""
    deadline = getattr(args, "deadline", None)
    if deadline is None:
        return None
    from repro.resilience import Budget

    return Budget.started(deadline_s=deadline)


def cmd_run(args: argparse.Namespace) -> int:
    result = run_source(
        _read(args.program),
        inputs=_parse_inputs(args.input),
        budget=_budget(args),
    )
    sys.stdout.write(result.output)
    return 0


def cmd_trace(args: argparse.Namespace) -> int:
    trace = trace_source(
        _read(args.program),
        inputs=_parse_inputs(args.input),
        budget=_budget(args),
        degrade=getattr(args, "degrade", False),
    )
    if trace.degraded:
        print(
            f"warning: trace degraded ({trace.degraded_reason}); "
            f"{trace.truncated_nodes} activation(s) dropped",
            file=sys.stderr,
        )
    if args.json:
        from repro.tracing.serialize import dump_tree

        sys.stdout.write(dump_tree(trace.tree) + "\n")
    else:
        sys.stdout.write(trace.tree.render())
    return 0


def cmd_transform(args: argparse.Namespace) -> int:
    transformed = transform_source(_read(args.program))
    program = (
        transformed.instrumented_program
        if args.instrumented and transformed.instrumented_program is not None
        else transformed.program
    )
    sys.stdout.write(print_program(program))
    for warning in transformed.warnings:
        print(f"warning: {warning}", file=sys.stderr)
    return 0


def cmd_slice(args: argparse.Namespace) -> int:
    source = _read(args.program)
    if args.unit:
        # Dynamic slice: criterion is an output of a unit activation.
        system = GadtSystem.from_source(
            source, program_inputs=_parse_inputs(args.input)
        )
        node = system.trace.tree.find(args.unit, occurrence=args.occurrence)
        view = prune_tree(
            system.trace, DynamicCriterion(node=node, variable=args.variable)
        )
        sys.stdout.write(view.render())
        return 0
    analysis = analyze_source(source)
    routine = args.routine or analysis.program.name
    computed = static_slice(
        analysis, StaticCriterion.at_routine_exit(routine, args.variable)
    )
    sys.stdout.write(print_program(computed.extract_program()))
    return 0


def _testdb_lookup(args: argparse.Namespace, interactive: bool):
    """The store-backed test lookup for ``debug --testdb``, or None."""
    testdb = getattr(args, "testdb", None)
    if testdb is None:
        return None
    import repro.workloads.arrsum_spec  # noqa: F401  (registers its selector)
    from repro.tgen import FRAME_SELECTORS, TerminalMenu

    specs = [parse_spec(_read(path)) for path in args.spec or []]
    menu = TerminalMenu(output=sys.stdout) if interactive else None
    return GadtSystem.store_lookup(
        testdb, specs=specs, selectors=dict(FRAME_SELECTORS), menu=menu
    )


def cmd_debug(args: argparse.Namespace) -> int:
    source = _read(args.program)
    system = GadtSystem.from_source(
        source,
        program_inputs=_parse_inputs(args.input),
        budget=_budget(args),
        degrade=getattr(args, "degrade", False),
    )
    if not args.quiet:
        print("Execution tree:")
        print(system.trace.tree.render())

    if args.reference:
        oracle = ReferenceOracle.from_source(
            _read(args.reference), program_inputs=_parse_inputs(args.input)
        )
    else:
        oracle = InteractiveOracle(output=sys.stdout)

    debugger = system.debugger(
        oracle,
        strategy=args.strategy,
        test_lookup=_testdb_lookup(args, interactive=not args.reference),
        enable_slicing=not args.no_slicing,
    )
    result = debugger.debug(assume_symptom=not args.query_symptom)

    print(result.session.render())
    if result.partial:
        print(
            f"warning: result is partial — trace degraded "
            f"({result.degraded_reason})",
            file=sys.stderr,
        )
    if result.bug_node is not None:
        print(system.explain_bug(result))
    print(
        f"questions: {result.user_questions} user, "
        f"{result.auto_answers} automatic; slices: {result.slices}"
    )
    if getattr(args, "profile", False):
        print(obs.report.render_answer_sources(result.report()))
    return 0 if result.localized else 1


def cmd_mutate(args: argparse.Namespace) -> int:
    from repro.workloads.mutants import (
        accuracy,
        evaluate_mutants,
        generate_mutants,
        summarize,
    )

    source = _read(args.program)
    mutants = generate_mutants(
        source, include_constants=not args.operators_only
    )
    if not args.evaluate:
        print(f"{len(mutants)} mutants")
        for index, mutant in enumerate(mutants, start=1):
            print(f"  {index:3d}. [{mutant.kind}] {mutant.description}")
        return 0
    outcomes = evaluate_mutants(
        source,
        mutants,
        workers=args.workers,
        deadline_s=args.deadline,
        retries=args.retries,
        degrade=args.degrade,
    )
    for outcome in outcomes:
        detail = (
            f"-> {outcome.localized_unit} ({outcome.user_questions} questions)"
            if outcome.status in ("localized", "mislocalized")
            else ""
        )
        print(f"  {outcome.status:>13}  {outcome.mutant.description} {detail}")
    counts = summarize(outcomes)
    print(
        "outcomes: "
        + ", ".join(f"{status} {count}" for status, count in counts.items())
    )
    correct, debuggable = accuracy(outcomes)
    print(f"localization accuracy: {correct}/{debuggable}")
    return 0 if correct == debuggable else 1


def cmd_frames(args: argparse.Namespace) -> int:
    spec = parse_spec(_read(args.spec))
    frames = generate_frames(spec)
    print(f"test {spec.unit}: {len(frames)} frames")
    for frame in frames:
        print(f"  {frame.render()}")
    if spec.scripts:
        print("scripts:")
        for script, members in frames_by_script(spec, frames).items():
            print(f"  {script}: {len(members)} frame(s)")
            for frame in members:
                print(f"    {frame.render()}")
    return 0


def cmd_stats(args: argparse.Namespace) -> int:
    """Run the pipeline (and optionally a reference-oracle debug session)
    with observability forced on; print the full metric summary."""
    source = _read(args.program)
    system = GadtSystem.from_source(
        source, program_inputs=_parse_inputs(args.input)
    )
    result = None
    if args.reference:
        oracle = ReferenceOracle.from_source(
            _read(args.reference), program_inputs=_parse_inputs(args.input)
        )
        result = system.debugger(oracle, strategy=args.strategy).debug()
    if getattr(args, "json", False):
        import json

        payload = {
            "program": system.analysis.program.name,
            "backend": system.trace.backend,
            "tree_nodes": system.trace.tree.size(),
            "occurrences": len(system.trace.dependence_graph),
            "dep_edges": system.trace.dependence_graph.edge_count(),
            "metrics": obs.snapshot(),
        }
        if result is not None:
            payload["session"] = result.report()
        print(json.dumps(payload, indent=2, default=str))
        return 0
    print(f"program: {system.analysis.program.name}")
    print(f"backend: {system.trace.backend}")
    print(f"tree: {system.trace.tree.size()} activation(s)")
    print(
        f"dependences: {len(system.trace.dependence_graph)} occurrence(s), "
        f"{system.trace.dependence_graph.edge_count()} edge(s)"
    )
    if result is not None:
        print(f"localized: {result.bug_unit or 'no'}")
        print(obs.report.render_answer_sources(result.report()))
    snapshot = obs.snapshot()
    goto_case_counters = {
        name: value
        for name, value in sorted(snapshot.get("counters", {}).items())
        if name.startswith("transform.goto.case.")
    }
    if goto_case_counters:
        print(
            "goto cases: "
            + ", ".join(
                f"{n.removeprefix('transform.goto.case.')} {v}"
                for n, v in goto_case_counters.items()
            )
        )
    goto_elim_counters = {
        name: value
        for name, value in sorted(snapshot.get("counters", {}).items())
        if name.startswith("transform.goto.eliminated.")
    }
    if goto_elim_counters:
        print(
            "goto eliminated: "
            + ", ".join(
                f"{n.removeprefix('transform.goto.eliminated.')} {v}"
                for n, v in goto_elim_counters.items()
            )
        )
    compile_counters = {
        name: value
        for name, value in sorted(snapshot.get("counters", {}).items())
        if name.startswith("compile.")
    }
    if compile_counters:
        print(
            "compile: "
            + ", ".join(f"{n.removeprefix('compile.')} {v}" for n, v in compile_counters.items())
        )
    serve_counters = {
        name: value
        for name, value in sorted(snapshot.get("counters", {}).items())
        if name.startswith("serve.")
    }
    if serve_counters:
        print(
            "serve: "
            + ", ".join(f"{n.removeprefix('serve.')} {v}" for n, v in serve_counters.items())
        )
    print(obs.report.render_summary(snapshot))
    return 0


def cmd_profile(args: argparse.Namespace) -> int:
    """Trace with the hot-spot profiler attached; print where the
    execution spent its steps and self-time (per transformed unit)."""
    from repro.obs.profiler import HotspotProfiler, hotspot_report, render_hotspots

    profiler = HotspotProfiler()
    system = GadtSystem.from_source(
        _read(args.program),
        program_inputs=_parse_inputs(args.input),
        backend=getattr(args, "backend", None),
        profiler=profiler,
    )
    report = hotspot_report(system.trace, profiler=profiler, top=args.hotspots)
    if args.json:
        import json

        print(json.dumps(report, indent=2))
    else:
        print(f"program: {system.analysis.program.name}")
        print(render_hotspots(report))
    return 0


def cmd_replay(args: argparse.Namespace) -> int:
    """Re-run a recorded session from its journal; exit 1 on divergence."""
    from repro.core.replay import replay_file
    from repro.obs.journal import JournalError

    try:
        report = replay_file(args.journal, backend=getattr(args, "backend", None))
    except JournalError as error:
        print(f"error: {error}", file=sys.stderr)
        return 2
    print(report.render())
    return 0 if report.ok else 1


def cmd_export(args: argparse.Namespace) -> int:
    """Convert a session journal to a Perfetto/Chrome trace file."""
    from repro.obs.export import export_journal
    from repro.obs.journal import JournalError

    try:
        output = export_journal(
            args.journal, output_path=args.output, fmt=args.format
        )
    except (JournalError, ValueError) as error:
        print(f"error: {error}", file=sys.stderr)
        return 2
    print(f"wrote {output}")
    return 0


def cmd_serve(args: argparse.Namespace) -> int:
    """Run (or drain / inspect) the multi-session debug service."""
    import asyncio

    from repro.serve import (
        DebugService,
        ServeClient,
        ServeConfig,
        ServeServer,
        serve_stdio,
    )

    if args.drain or args.serve_stats:
        if not args.socket:
            print("error: --drain/--stats need --socket PATH", file=sys.stderr)
            return 2
        try:
            with ServeClient(args.socket) as client:
                if args.drain:
                    summary = client.drain()
                    stats = summary.get("stats", {})
                    print(
                        "drained: "
                        + ", ".join(
                            f"{key} {stats.get(key, 0)}"
                            for key in (
                                "submitted", "completed", "degraded",
                                "shed", "timed_out", "failed",
                            )
                        )
                    )
                else:
                    import json

                    print(json.dumps(client.stats(), indent=2, default=str))
        except (OSError, Exception) as error:  # noqa: BLE001 - surface cleanly
            print(f"error: {error}", file=sys.stderr)
            return 2
        return 0

    if not args.socket and not args.stdio:
        print("error: serve needs --socket PATH or --stdio", file=sys.stderr)
        return 2
    config = ServeConfig(
        workers=args.workers,
        executor=args.executor,
        max_queue=args.max_queue,
        queue_timeout_s=args.queue_timeout,
        default_deadline_s=args.job_deadline,
        rate=args.rate,
        burst=args.burst,
        retries=args.retries,
        testdb=args.testdb,
        spec_texts=tuple(_read(path) for path in args.spec or []),
    )
    service = DebugService(config)
    if args.stdio:
        summary = asyncio.run(serve_stdio(service))
        stats = summary.get("stats", {})
        print(
            f"served {stats.get('submitted', 0)} job(s), "
            f"{stats.get('shed', 0)} shed, {stats.get('failed', 0)} failed",
            file=sys.stderr,
        )
        return 0
    socket_path = Path(args.socket)
    if socket_path.exists():
        socket_path.unlink()  # stale socket from a dead server

    async def _serve() -> None:
        server = ServeServer(service, socket_path=args.socket)
        await server.start()
        print(f"serving on {args.socket}", file=sys.stderr)
        await server.run_until_drained()

    try:
        asyncio.run(_serve())
    finally:
        if socket_path.exists():
            socket_path.unlink()
    return 0


def cmd_testdb_import(args: argparse.Namespace) -> int:
    """Bulk-load a JSONL report dump into a sharded store."""
    import json

    from repro.store import CodecError, ShardedReportStore, report_from_dict

    reports = []
    for line_no, line in enumerate(
        Path(args.reports).read_text().splitlines(), start=1
    ):
        if not line.strip():
            continue
        try:
            reports.append(report_from_dict(json.loads(line)))
        except (json.JSONDecodeError, CodecError) as error:
            print(f"error: {args.reports}:{line_no}: {error}", file=sys.stderr)
            return 2
    with ShardedReportStore(args.database, shards=args.shards) as store:
        count = store.import_reports(reports, budget=_budget(args))
        stats = store.stats()
    print(
        f"imported {count} report(s) into {stats['shards']} shard(s) "
        f"({stats['segments']} segment(s), {stats['reports']} total)"
    )
    return 0


def cmd_testdb_stats(args: argparse.Namespace) -> int:
    from repro.store import ShardedReportStore

    store = ShardedReportStore(args.database)
    if getattr(args, "json", False):
        import json

        payload = dict(store.stats())
        if args.per_shard:
            payload["per_shard"] = [
                {"shard": index, **row}
                for index, row in store.iter_shard_stats()
            ]
        print(json.dumps(payload, indent=2))
        return 0
    print(obs.report.render_store_stats(store.stats()))
    if args.per_shard:
        for index, row in store.iter_shard_stats():
            print(
                f"  shard {index:03d}: {row['reports']} report(s) in "
                f"{row['segments']} segment(s), {row['frames']} frame(s), "
                f"{row['quarantined']} quarantined"
            )
    return 0


def cmd_testdb_compact(args: argparse.Namespace) -> int:
    from repro.store import ShardedReportStore

    with ShardedReportStore(args.database) as store:
        merged = store.compact(budget=_budget(args))
    print(
        f"compacted {merged['segments_before']} segment(s) "
        f"into {merged['segments_after']}"
    )
    return 0


# ----------------------------------------------------------------------


def build_parser() -> argparse.ArgumentParser:
    from repro import __version__

    parser = argparse.ArgumentParser(
        prog="repro",
        description="GADT: generalized algorithmic debugging and testing",
    )
    parser.add_argument(
        "--version", action="version", version=f"repro {__version__}"
    )
    sub = parser.add_subparsers(dest="command", required=True)

    # observability flags shared by the pipeline-running subcommands
    obs_parent = argparse.ArgumentParser(add_help=False)
    obs_parent.add_argument(
        "--profile",
        action="store_true",
        help="print a phase/metric summary on stderr after the command",
    )
    obs_parent.add_argument(
        "--events",
        metavar="PATH",
        help="stream observability events to PATH as JSON lines",
    )
    obs_parent.add_argument(
        "--journal",
        dest="journal_out",
        metavar="PATH",
        help="record a session flight-recorder journal to PATH "
        "(replayable with `repro replay`, exportable with `repro export`)",
    )

    # resource-budget flags shared by the executing subcommands
    # (see docs/ROBUSTNESS.md)
    budget_parent = argparse.ArgumentParser(add_help=False)
    budget_parent.add_argument(
        "--deadline",
        type=float,
        default=None,
        metavar="S",
        help="wall-clock budget in seconds for program execution",
    )
    degrade_parent = argparse.ArgumentParser(add_help=False)
    degrade_parent.add_argument(
        "--degrade",
        action="store_true",
        help="on a blown budget, salvage a partial trace instead of failing",
    )

    # search-strategy flag shared by debug and stats; the choice list
    # comes from the strategy registry so new strategies show up in
    # --help and error messages without touching this module
    strategy_parent = argparse.ArgumentParser(add_help=False)
    strategy_parent.add_argument(
        "--strategy",
        default="top-down",
        choices=available_strategies(),
        help="execution-tree search strategy (see docs/STRATEGIES.md)",
    )

    # execution-backend flag shared by the executing subcommands
    backend_parent = argparse.ArgumentParser(add_help=False)
    backend_parent.add_argument(
        "--backend",
        choices=["interp", "compiled"],
        default=None,
        help="execution engine (default: $REPRO_BACKEND, else interp)",
    )

    run_parser = sub.add_parser(
        "run",
        parents=[obs_parent, budget_parent, backend_parent],
        help="execute a Mini-Pascal program",
    )
    run_parser.add_argument("program")
    run_parser.add_argument("--input", action="append", metavar="V")
    run_parser.set_defaults(func=cmd_run)

    trace_parser = sub.add_parser(
        "trace",
        parents=[obs_parent, budget_parent, degrade_parent, backend_parent],
        help="print the execution tree",
    )
    trace_parser.add_argument("program")
    trace_parser.add_argument("--input", action="append", metavar="V")
    trace_parser.add_argument(
        "--json", action="store_true", help="emit the tree as JSON"
    )
    trace_parser.set_defaults(func=cmd_trace)

    transform_parser = sub.add_parser(
        "transform", help="print the side-effect-free transformed program"
    )
    transform_parser.add_argument("program")
    transform_parser.add_argument(
        "--instrumented",
        action="store_true",
        help="include the inserted trace actions",
    )
    transform_parser.set_defaults(func=cmd_transform)

    slice_parser = sub.add_parser(
        "slice", help="static slice (program) or dynamic slice (tree)"
    )
    slice_parser.add_argument("program")
    slice_parser.add_argument("--variable", required=True)
    slice_parser.add_argument(
        "--routine", help="static: routine owning the criterion (default: main)"
    )
    slice_parser.add_argument(
        "--unit", help="dynamic: unit activation to slice at"
    )
    slice_parser.add_argument("--occurrence", type=int, default=1)
    slice_parser.add_argument("--input", action="append", metavar="V")
    slice_parser.set_defaults(func=cmd_slice)

    debug_parser = sub.add_parser(
        "debug",
        parents=[obs_parent, budget_parent, degrade_parent, backend_parent, strategy_parent],
        help="run a debugging session",
    )
    debug_parser.add_argument("program")
    debug_parser.add_argument(
        "--reference", help="bug-free program; simulates the user's answers"
    )
    debug_parser.add_argument("--no-slicing", action="store_true")
    debug_parser.add_argument(
        "--testdb",
        metavar="DIR",
        help="answer queries from the persistent test-report store at DIR",
    )
    debug_parser.add_argument(
        "--spec",
        action="append",
        metavar="FILE",
        help="T-GEN specification for a tested unit (repeatable; "
        "used with --testdb to map query inputs to test frames)",
    )
    debug_parser.add_argument(
        "--query-symptom",
        action="store_true",
        help="query the root instead of assuming it erroneous; a 'yes' "
        "ends the session with no bug localized (exit code 1)",
    )
    debug_parser.add_argument("--quiet", action="store_true")
    debug_parser.add_argument("--input", action="append", metavar="V")
    debug_parser.set_defaults(func=cmd_debug)

    frames_parser = sub.add_parser(
        "frames", help="generate test frames from a T-GEN specification"
    )
    frames_parser.add_argument("spec")
    frames_parser.set_defaults(func=cmd_frames)

    mutate_parser = sub.add_parser(
        "mutate",
        parents=[obs_parent, budget_parent, degrade_parent, backend_parent],
        help="fault-injection sweep: list or evaluate mutants",
    )
    mutate_parser.add_argument("program")
    mutate_parser.add_argument(
        "--evaluate",
        action="store_true",
        help="debug every behaviour-changing mutant and report accuracy",
    )
    mutate_parser.add_argument("--operators-only", action="store_true")
    mutate_parser.add_argument(
        "--workers",
        type=int,
        default=None,
        help="worker processes for --evaluate (default: sequential)",
    )
    mutate_parser.add_argument(
        "--retries",
        type=int,
        default=1,
        metavar="N",
        help="retry a mutant whose worker died up to N times "
        "before recording infra_error (parallel sweeps)",
    )
    mutate_parser.set_defaults(func=cmd_mutate)

    stats_parser = sub.add_parser(
        "stats",
        parents=[obs_parent, backend_parent, strategy_parent],
        help="run the pipeline with observability on and print its metrics",
    )
    stats_parser.add_argument("program")
    stats_parser.add_argument(
        "--reference", help="bug-free program; also run and account a debug session"
    )
    stats_parser.add_argument("--input", action="append", metavar="V")
    stats_parser.add_argument(
        "--json",
        action="store_true",
        help="emit the stats as machine-readable JSON instead of text",
    )
    stats_parser.set_defaults(func=cmd_stats, needs_obs=True)

    profile_parser = sub.add_parser(
        "profile",
        parents=[backend_parent],
        help="trace with the hot-spot profiler; print per-unit self time",
    )
    profile_parser.add_argument("program")
    profile_parser.add_argument("--input", action="append", metavar="V")
    profile_parser.add_argument(
        "--hotspots",
        type=int,
        default=None,
        metavar="N",
        help="show only the N hottest units (default: all)",
    )
    profile_parser.add_argument(
        "--json",
        action="store_true",
        help="emit the hotspots/1 report as JSON instead of a table",
    )
    profile_parser.set_defaults(func=cmd_profile)

    replay_parser = sub.add_parser(
        "replay",
        parents=[backend_parent],
        help="re-run a recorded session journal; exit 1 on any divergence",
    )
    replay_parser.add_argument("journal", help="journal recorded with --journal")
    replay_parser.set_defaults(func=cmd_replay)

    export_parser = sub.add_parser(
        "export",
        help="convert a session journal to a Perfetto/Chrome trace",
    )
    export_parser.add_argument("journal", help="journal recorded with --journal")
    export_parser.add_argument(
        "--format",
        default="perfetto",
        choices=["perfetto", "chrome"],
        help="output flavour (both emit Chrome trace-event JSON)",
    )
    export_parser.add_argument(
        "-o",
        "--output",
        default=None,
        metavar="OUT",
        help="output path (default: JOURNAL.perfetto.json)",
    )
    export_parser.set_defaults(func=cmd_export)

    testdb_parser = sub.add_parser(
        "testdb",
        help="maintain a persistent sharded test-report store",
    )
    testdb_sub = testdb_parser.add_subparsers(dest="testdb_command", required=True)

    testdb_import = testdb_sub.add_parser(
        "import",
        parents=[budget_parent],
        help="bulk-load a JSONL report dump into the store",
    )
    testdb_import.add_argument("database", help="store directory")
    testdb_import.add_argument("reports", help="JSONL file, one report per line")
    testdb_import.add_argument(
        "--shards",
        type=int,
        default=8,
        help="shard count when creating a new store (ignored on reopen)",
    )
    testdb_import.set_defaults(func=cmd_testdb_import)

    testdb_stats = testdb_sub.add_parser(
        "stats", help="shard/segment/report counts, hit rate, quarantine"
    )
    testdb_stats.add_argument("database", help="store directory")
    testdb_stats.add_argument(
        "--per-shard", action="store_true", help="also print one row per shard"
    )
    testdb_stats.add_argument(
        "--json",
        action="store_true",
        help="emit the stats as machine-readable JSON instead of text",
    )
    testdb_stats.set_defaults(func=cmd_testdb_stats)

    testdb_compact = testdb_sub.add_parser(
        "compact",
        parents=[budget_parent],
        help="merge each shard's segments, dropping duplicate rows",
    )
    testdb_compact.add_argument("database", help="store directory")
    testdb_compact.set_defaults(func=cmd_testdb_compact)

    serve_parser = sub.add_parser(
        "serve",
        parents=[obs_parent],
        help="multi-session debug service over a Unix socket or stdio",
    )
    serve_parser.add_argument(
        "--socket", metavar="PATH", help="Unix socket path to listen on"
    )
    serve_parser.add_argument(
        "--stdio",
        action="store_true",
        help="serve newline-delimited JSON over stdin/stdout until EOF",
    )
    serve_parser.add_argument(
        "--drain",
        action="store_true",
        help="client mode: ask the server at --socket to drain and exit",
    )
    serve_parser.add_argument(
        "--stats",
        dest="serve_stats",
        action="store_true",
        help="client mode: print the server's stats op as JSON",
    )
    serve_parser.add_argument(
        "--workers", type=int, default=2, help="worker slots (default 2)"
    )
    serve_parser.add_argument(
        "--executor",
        default="process",
        choices=["process", "thread"],
        help="worker isolation: crash-isolated processes or fast threads",
    )
    serve_parser.add_argument(
        "--max-queue",
        type=int,
        default=64,
        help="admission queue bound; beyond it jobs shed as overloaded",
    )
    serve_parser.add_argument(
        "--queue-timeout",
        type=float,
        default=30.0,
        metavar="S",
        help="max seconds a job may wait for a worker before timed_out",
    )
    serve_parser.add_argument(
        "--job-deadline",
        type=float,
        default=30.0,
        metavar="S",
        help="default per-job deadline (queue wait + execution)",
    )
    serve_parser.add_argument(
        "--rate",
        type=float,
        default=None,
        metavar="R",
        help="per-tenant token-bucket refill rate, jobs/s (default off)",
    )
    serve_parser.add_argument(
        "--burst",
        type=float,
        default=10.0,
        metavar="B",
        help="per-tenant token-bucket burst size",
    )
    serve_parser.add_argument(
        "--retries",
        type=int,
        default=2,
        metavar="N",
        help="infra-failure retries per job before failed/infra_error",
    )
    serve_parser.add_argument(
        "--testdb",
        metavar="DIR",
        help="sharded test-report store shared by every worker",
    )
    serve_parser.add_argument(
        "--spec",
        action="append",
        metavar="FILE",
        help="T-GEN spec file(s) registered for answer-op selectors",
    )
    serve_parser.set_defaults(func=cmd_serve, needs_obs=True)

    return parser


def _journal_meta(args: argparse.Namespace, argv: list[str] | None) -> dict:
    """The journal header metadata: everything ``repro replay`` needs to
    rebuild the session from scratch (source text, inputs, backend,
    strategy, slicing) plus provenance (command line)."""
    meta: dict[str, object] = {
        "command": getattr(args, "command", None),
        "argv": list(argv) if argv is not None else sys.argv[1:],
        "backend": getattr(args, "backend", None)
        or os.environ.get("REPRO_BACKEND"),
    }
    program = getattr(args, "program", None)
    if program:
        meta["program"] = program
        try:
            meta["source"] = _read(program)
        except OSError:
            pass  # the command itself will report the missing file
    if getattr(args, "input", None) is not None:
        try:
            meta["inputs"] = _parse_inputs(args.input)
        except ValueError:
            pass  # the command itself will report the bad input
    if hasattr(args, "strategy"):
        meta["strategy"] = args.strategy
    if hasattr(args, "no_slicing"):
        meta["enable_slicing"] = not args.no_slicing
    if hasattr(args, "query_symptom"):
        meta["assume_symptom"] = not args.query_symptom
    if getattr(args, "reference", None):
        meta["reference"] = args.reference
    return meta


def main(argv: list[str] | None = None) -> int:
    parser = build_parser()
    try:
        args = parser.parse_args(argv)
    except SystemExit as exc:
        # argparse exits 2 on usage errors and 0 for --version/--help;
        # return instead so every caller sees one consistent code path.
        code = exc.code
        return code if isinstance(code, int) else 2

    # export --backend to the environment so worker processes spawned
    # during the command inherit it; restored on exit so embedded calls
    # (tests, library use) do not leak the choice process-wide
    backend = getattr(args, "backend", None)
    prior_backend = os.environ.get("REPRO_BACKEND")
    if backend is not None:
        os.environ["REPRO_BACKEND"] = backend

    profiling = getattr(args, "profile", False)
    events_path = getattr(args, "events", None)
    journal_path = getattr(args, "journal_out", None)
    observing = (
        profiling
        or events_path
        or journal_path
        or getattr(args, "needs_obs", False)
    )
    event_sink: obs.JsonlFileSink | None = None
    journal_sink = None
    if observing:
        obs.reset()
        obs.enable()
        if events_path:
            event_sink = obs.add_sink(obs.JsonlFileSink(events_path))
        if journal_path:
            from repro.obs.journal import JournalWriter

            journal_sink = obs.add_sink(
                JournalWriter(journal_path, meta=_journal_meta(args, argv))
            )
    try:
        return args.func(args)
    except (PascalError, SpecError) as error:
        print(f"error: {error}", file=sys.stderr)
        return 2
    except StoreError as error:
        print(f"error: {error}", file=sys.stderr)
        return 2
    except FileNotFoundError as error:
        print(f"error: {error}", file=sys.stderr)
        return 2
    except KeyError as error:
        print(f"error: {error.args[0]}", file=sys.stderr)
        return 2
    finally:
        if backend is not None:
            if prior_backend is None:
                os.environ.pop("REPRO_BACKEND", None)
            else:
                os.environ["REPRO_BACKEND"] = prior_backend
        if observing:
            if profiling:
                print(obs.report.render_summary(obs.snapshot()), file=sys.stderr)
            if event_sink is not None:
                obs.remove_sink(event_sink)
                event_sink.close()
            if journal_sink is not None:
                obs.remove_sink(journal_sink)
                journal_sink.close()
            obs.disable()


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
