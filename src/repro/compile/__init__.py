"""``repro.compile`` — the compiled execution backend.

Compiles a mini-Pascal :class:`~repro.pascal.semantics.AnalyzedProgram`
into Python closures once, then runs the closures with trace events
emitted inline (see :mod:`repro.compile.compiler` and
:mod:`repro.compile.emit`). The tree-walking interpreter in
:mod:`repro.pascal.interpreter` stays as the conformance oracle; both
backends sit behind ``run_source(..., backend=...)`` /
``trace_source(..., backend=...)`` and the CLI's ``--backend`` flag,
with the ``REPRO_BACKEND`` environment variable as the process default.

Compiled programs are content-addressed in :mod:`repro.cache` (cache
name ``"compile"``): within a process, re-tracing the same analyzed
program — the mutant sweep's hot pattern is hundreds of traces over a
handful of programs — skips compilation entirely. The cache is marked
non-persistable: closures capture symbol objects and analysis tables by
identity, so they are meaningless outside the process that built them.
"""

from __future__ import annotations

import os

from repro import cache, obs

BACKENDS = ("interp", "compiled")
ENV_VAR = "REPRO_BACKEND"

_COMPILE_CACHE = cache.register("compile", max_entries=64, persistable=False)


def default_backend() -> str:
    """The process-wide default backend (``REPRO_BACKEND`` or interp)."""
    raw = os.environ.get(ENV_VAR)
    if raw is None:
        return "interp"
    backend = raw.strip().lower()
    if backend not in BACKENDS:
        raise ValueError(
            f"invalid {ENV_VAR}={raw!r}: expected one of {', '.join(BACKENDS)}"
        )
    return backend


def resolve_backend(backend: str | None) -> str:
    """Validate an explicit backend choice, or fall back to the default."""
    if backend is None:
        return default_backend()
    if backend not in BACKENDS:
        raise ValueError(
            f"unknown backend {backend!r}: expected one of {', '.join(BACKENDS)}"
        )
    return backend


def _loop_fingerprint(loop_units) -> tuple:
    """A hashable identity for the loop-unit registration, which changes
    the traced code the compiler emits."""
    if not loop_units:
        return ()
    return tuple(
        sorted(
            (
                stmt_id,
                unit.name,
                tuple(symbol.uid for symbol in unit.inputs),
                tuple(symbol.uid for symbol in unit.outputs),
            )
            for stmt_id, unit in loop_units.items()
        )
    )


def compile_program(analysis, side_effects=None, loop_units=None):
    """The :class:`~repro.compile.compiler.CompiledProgram` for an
    analyzed program, compiled at most once per (analysis, loop-unit)
    pair per process."""
    from repro.compile.compiler import compile_analysis

    key = (id(analysis), _loop_fingerprint(loop_units))
    hits_before = _COMPILE_CACHE.hits

    def build():
        with obs.span("compile.time", program=analysis.program.name):
            program = compile_analysis(
                analysis, side_effects=side_effects, loop_units=loop_units
            )
        obs.add("compile.programs")
        return program

    program = _COMPILE_CACHE.get_or_build(key, build)
    if _COMPILE_CACHE.hits > hits_before:
        obs.add("compile.cache_hits")
    return program


def run_compiled(
    analysis, io=None, step_limit: int = 2_000_000, budget=None
):
    """Plain (untraced) compiled execution; the compiled counterpart of
    ``Interpreter(...).run()``."""
    from repro.compile.runtime import Runtime

    program = compile_program(analysis)
    return Runtime(program, io=io, step_limit=step_limit, budget=budget).run()


def compiled_trace_session(
    analysis,
    inputs=None,
    side_effects=None,
    loop_units=None,
    step_limit: int = 2_000_000,
    budget=None,
    max_tree_nodes: int | None = None,
    profiler=None,
):
    """A ready-to-run :class:`~repro.compile.emit.TraceSession` — the
    compiled counterpart of a ``(Tracer, Interpreter)`` pair."""
    from repro.compile.emit import TraceSession
    from repro.pascal.interpreter import PascalIO

    program = compile_program(
        analysis, side_effects=side_effects, loop_units=loop_units
    )
    return TraceSession(
        program,
        io=PascalIO(inputs),
        step_limit=step_limit,
        budget=budget,
        max_tree_nodes=max_tree_nodes,
        profiler=profiler,
    )
