"""The mini-Pascal closure compiler (the compiled backend's front half).

One :class:`Compiler` pass walks the analyzed AST and emits a tree of
Python closures — one per statement/expression — specialized on
everything the analysis already knows: symbol→slot assignments, static
``up``-link hop counts for nested routines, operator identity, loop-unit
membership, binding plans. Two passes run per program (``traced=False``
and ``traced=True``), producing the two entry points bundled in
:class:`CompiledProgram`.

Traced closures carry their event emission *inline*: the statement
prologue (:func:`repro.compile.emit.enter_stmt`) allocates the
occurrence and its control edge, stores append writer ids into per-cell
maps, reads append data edges straight onto the occurrence's adjacency
list, and call/loop closures drive the session's activation methods.
There is no hook indirection anywhere on the hot path.

Conformance: closure bodies replicate the interpreter's handlers
statement-for-statement — same evaluation order, same step accounting
(statements tick before any hook-equivalent work; loop iterations tick
separately), same error messages/locations, same goto-unwinding
behavior (occurrence-stack pops are skipped while unwinding, statement
lists catch :class:`GotoSignal` for their own labels only).
"""

from __future__ import annotations

from repro.analysis.sideeffects import analyze_side_effects
from repro.pascal import ast_nodes as ast
from repro.pascal.errors import PascalRuntimeError, UndefinedValueError
from repro.pascal.interpreter import GotoSignal
from repro.pascal.semantics import (
    AnalyzedProgram,
    IO_PROCEDURES,
    TRACE_PROCEDURES,
)
from repro.pascal.symbols import ArrayTypeInfo, SymbolKind
from repro.pascal.values import ArrayValue, UNDEFINED, copy_value, format_value
from repro.compile import ops
from repro.compile.emit import LoopPlan, RoutinePlan, enter_stmt
from repro.compile.runtime import CCell, CFrame, adapt_value, tick


class CompiledProgram:
    """Both compiled forms of one analyzed program (plain and traced),
    plus everything a :class:`~repro.compile.runtime.Runtime` needs to
    set up a run. Holds a strong reference to its analysis so the
    ``id(analysis)``-keyed compile cache can never alias a reused id."""

    __slots__ = (
        "analysis",
        "side_effects",
        "loop_units",
        "global_symbols",
        "plain_main",
        "traced_main",
    )

    def __init__(self, analysis, side_effects, loop_units, plain_main, traced_main):
        self.analysis = analysis
        self.side_effects = side_effects
        self.loop_units = loop_units
        self.global_symbols = list(analysis.main.locals)
        self.plain_main = plain_main
        self.traced_main = traced_main


def compile_analysis(
    analysis: AnalyzedProgram, side_effects=None, loop_units=None
) -> CompiledProgram:
    """Compile an analyzed program into both backend forms."""
    if side_effects is None:
        side_effects = analyze_side_effects(analysis)
    loop_units = dict(loop_units) if loop_units else {}
    plain_main = Compiler(analysis, side_effects, loop_units, traced=False).compile_main()
    traced_main = Compiler(analysis, side_effects, loop_units, traced=True).compile_main()
    return CompiledProgram(analysis, side_effects, loop_units, plain_main, traced_main)


def _lex_depth(routine_symbol) -> int:
    """Lexical nesting depth of a routine (top-level = 0)."""
    depth = 0
    owner = routine_symbol.owner
    while owner is not None:
        depth += 1
        owner = owner.owner
    return depth


class _Layout:
    """Slot assignment for one routine's frame: parameters, then locals,
    then (for functions) the result cell."""

    __slots__ = ("slot_of", "local_symbols", "result_slot", "lex_depth")

    def __init__(self, info):
        slot_of = {}
        index = 0
        for param in info.params:
            slot_of[param] = index
            index += 1
        self.local_symbols = list(info.locals)
        for local in self.local_symbols:
            slot_of[local] = index
            index += 1
        self.result_slot = None
        if info.result_symbol is not None:
            slot_of[info.result_symbol] = index
            self.result_slot = index
        self.slot_of = slot_of
        self.lex_depth = _lex_depth(info.symbol)


class _Ctx:
    """Where a statement is being compiled: which routine (``owner`` is
    None for the main body) and at what lexical depth."""

    __slots__ = ("info", "owner", "lex_depth")

    def __init__(self, info, owner, lex_depth):
        self.info = info
        self.owner = owner
        self.lex_depth = lex_depth


def _local_cell_factory(symbol):
    value_type = symbol.type
    if isinstance(value_type, ArrayTypeInfo):
        low, high = value_type.low, value_type.high
        from repro.pascal.values import ArrayValue

        return lambda: CCell(ArrayValue(low, high), symbol)
    return lambda: CCell(UNDEFINED, symbol)


class Compiler:
    def __init__(self, analysis, side_effects, loop_units, traced: bool):
        self.analysis = analysis
        self.side_effects = side_effects
        self.loop_units = loop_units
        self.traced = traced
        self.global_slot: dict = {}
        self.layouts: dict = {}
        self.body_refs: dict = {}
        self.plans: dict = {}
        self._entry_live_cache: dict = {}

    # ------------------------------------------------------------------
    # program assembly

    def compile_main(self):
        main = self.analysis.main
        for index, symbol in enumerate(main.locals):
            self.global_slot[symbol] = index
        routines = [
            (symbol, info)
            for symbol, info in self.analysis.routines.items()
            if not info.is_main
        ]
        for symbol, info in routines:
            self.layouts[symbol] = _Layout(info)
            self.body_refs[symbol] = [None]
        for symbol, info in routines:
            ctx = _Ctx(info, owner=symbol, lex_depth=self.layouts[symbol].lex_depth)
            self.body_refs[symbol][0] = self.compile_stmt(ctx, info.block.body)
        main_ctx = _Ctx(main, owner=None, lex_depth=0)
        return self.compile_stmt(main_ctx, main.block.body)

    # ------------------------------------------------------------------
    # storage access

    def cell_accessor(self, ctx: _Ctx, symbol):
        """Compile symbol access to a ``(rt, frame) -> CCell`` closure:
        a globals-slab index, an own-frame slot, or a static-link walk."""
        owner = symbol.owner
        if owner is None:
            index = self.global_slot[symbol]
            return lambda rt, f: rt.gslots[index]
        layout = self.layouts[owner]
        index = layout.slot_of[symbol]
        hops = ctx.lex_depth - layout.lex_depth
        if hops == 0:
            return lambda rt, f: f.slots[index]
        if hops == 1:
            return lambda rt, f: f.up.slots[index]

        def walk(rt, f):
            frame = f
            remaining = hops
            while remaining:
                frame = frame.up
                remaining -= 1
            return frame.slots[index]

        return walk

    def _safe_accessor(self, ctx: _Ctx, symbol):
        """An accessor for binding plans; None when the symbol has no
        storage reachable from this context (the tracer snapshots such
        bindings as UNDEFINED rather than failing)."""
        try:
            return self.cell_accessor(ctx, symbol)
        except KeyError:
            return None

    def _up_getter(self, ctx: _Ctx, target):
        """Static link for a frame of ``target`` created from ``ctx``."""
        owner = target.owner
        if owner is None:
            return lambda f: None
        hops = ctx.lex_depth - self.layouts[owner].lex_depth
        if hops == 0:
            return lambda f: f
        if hops == 1:
            return lambda f: f.up

        def walk(f):
            frame = f
            remaining = hops
            while remaining:
                frame = frame.up
                remaining -= 1
            return frame

        return walk

    # ------------------------------------------------------------------
    # binding plans (traced mode)

    def _entry_live(self, info):
        cached = self._entry_live_cache.get(info.symbol)
        if cached is not None:
            return cached
        from repro.analysis.cfg import build_cfg
        from repro.analysis.dataflow import live_variables

        cfg = build_cfg(info, self.analysis)
        live = live_variables(cfg, self.side_effects)
        result = set(live.live_out[cfg.entry])
        self._entry_live_cache[info.symbol] = result
        return result

    def plan_of(self, target) -> RoutinePlan:
        plan = self.plans.get(target)
        if plan is None:
            plan = self._build_plan(target)
            self.plans[target] = plan
        return plan

    def _build_plan(self, target) -> RoutinePlan:
        info = self.analysis.routines[target]
        layout = self.layouts[target]
        callee_ctx = _Ctx(info, owner=target, lex_depth=layout.lex_depth)
        effects = self.side_effects.of(target)
        entry_live = self._entry_live(info)
        input_entries = []
        for param in info.params:
            if param.param_mode in (ast.ParamMode.VALUE, ast.ParamMode.IN_):
                input_entries.append(
                    (param.name, False, self._safe_accessor(callee_ctx, param))
                )
            elif param in effects.ref_params and param in entry_live:
                input_entries.append(
                    (param.name, False, self._safe_accessor(callee_ctx, param))
                )
        for symbol in sorted(effects.gref, key=lambda s: s.name):
            if symbol in entry_live:
                input_entries.append(
                    (symbol.name, True, self._safe_accessor(callee_ctx, symbol))
                )
        output_entries = []
        for param in info.params:
            if param.param_mode in (ast.ParamMode.VAR, ast.ParamMode.OUT):
                if param in effects.mod_params:
                    output_entries.append(
                        (param.name, False, self._safe_accessor(callee_ctx, param))
                    )
        for symbol in sorted(effects.gmod, key=lambda s: s.name):
            output_entries.append(
                (symbol.name, True, self._safe_accessor(callee_ctx, symbol))
            )
        return RoutinePlan(
            unit_name=info.name,
            routine=info.symbol,
            input_entries=input_entries,
            output_entries=output_entries,
            result_slot=layout.result_slot,
        )

    def _loop_plan(self, ctx: _Ctx, unit) -> LoopPlan:
        return LoopPlan(
            stmt_id=unit.stmt_id,
            name=unit.name,
            input_entries=[
                (symbol.name, self._safe_accessor(ctx, symbol))
                for symbol in unit.inputs
            ],
            output_entries=[
                (symbol.name, self._safe_accessor(ctx, symbol))
                for symbol in unit.outputs
            ],
        )

    # ------------------------------------------------------------------
    # calls

    def compile_call(self, ctx: _Ctx, call, args):
        """Compile a routine call (procedure statement body or function
        expression) to a ``(rt, frame) -> result`` closure."""
        target = self.analysis.call_target[call.node_id]
        info = self.analysis.routines[target]
        layout = self.layouts[target]
        body_ref = self.body_refs[target]
        binders = [
            self._param_binder(ctx, param, arg)
            for param, arg in zip(info.params, args)
        ]
        up_getter = self._up_getter(ctx, target)
        local_factories = [
            _local_cell_factory(symbol) for symbol in layout.local_symbols
        ]
        result_slot = layout.result_slot
        result_symbol = info.result_symbol
        name = info.name
        decl_location = info.decl.location

        if not self.traced:

            def run_call_plain(rt, f):
                slots = [binder(rt, f) for binder in binders]
                if rt.depth >= rt.max_depth:
                    raise PascalRuntimeError(f"call depth exceeded in {name}")
                for make in local_factories:
                    slots.append(make())
                if result_slot is not None:
                    slots.append(CCell(UNDEFINED, result_symbol))
                frame = CFrame(slots, up_getter(f))
                rt.depth += 1
                try:
                    body_ref[0](rt, frame)
                finally:
                    rt.depth -= 1
                if result_slot is not None:
                    value = slots[result_slot].value
                    if value is UNDEFINED:
                        raise UndefinedValueError(
                            f"function {name} returned without assigning a result",
                            decl_location,
                        )
                    return value
                return None

            return run_call_plain

        plan = self.plan_of(target)
        param_attrib = [
            (index, param.param_mode == ast.ParamMode.VALUE)
            for index, param in enumerate(info.params)
        ]
        call_site_id = call.node_id

        def run_call(rt, f):
            slots = [binder(rt, f) for binder in binders]
            if rt.depth >= rt.max_depth:
                raise PascalRuntimeError(f"call depth exceeded in {name}")
            for make in local_factories:
                slots.append(make())
            if result_slot is not None:
                slots.append(CCell(UNDEFINED, result_symbol))
            frame = CFrame(slots, up_getter(f))
            rt.depth += 1
            prev = rt.enter_call(plan, frame, call_site_id)
            # Attribute incoming parameter values to the call occurrence.
            ost = rt.occ_stack
            if ost:
                call_occ = ost[-1]
                for index, is_value in param_attrib:
                    cell = slots[index]
                    if is_value:
                        cell.writers = {None: call_occ}
                    else:
                        writers = cell.writers
                        if writers is None:
                            # First sight of a by-reference cell.
                            cell.writers = {None: call_occ}
                        elif None not in writers:
                            writers[None] = call_occ
            via_goto = None
            try:
                body_ref[0](rt, frame)
            except GotoSignal as signal:
                via_goto = signal.label
                raise
            finally:
                rt.exit_call(plan, frame, prev, via_goto)
                rt.depth -= 1
            if result_slot is not None:
                value = slots[result_slot].value
                if value is UNDEFINED:
                    raise UndefinedValueError(
                        f"function {name} returned without assigning a result",
                        decl_location,
                    )
                return value
            return None

        return run_call

    def _param_binder(self, ctx: _Ctx, param, arg):
        """Compile one argument to a ``(rt, f) -> CCell`` closure."""
        if param.param_mode in (ast.ParamMode.VAR, ast.ParamMode.OUT, ast.ParamMode.IN_):
            if isinstance(arg, ast.VarRef):
                symbol = self.analysis.ref_symbol[arg.node_id]
                if symbol.kind is SymbolKind.CONSTANT:
                    const_name = symbol.name
                    location = arg.location

                    def constant_ref(rt, f):
                        raise PascalRuntimeError(
                            f"'{const_name}' is a constant", location
                        )

                    return constant_ref
                return self.cell_accessor(ctx, symbol)
            resolver = ops.compile_resolver(self, ctx, arg)
            location = arg.location

            def element_ref(rt, f):
                cell, index = resolver(rt, f)
                if index is not None:
                    raise PascalRuntimeError(
                        "array elements cannot be passed by reference", location
                    )
                return cell

            return element_ref
        evaluate = ops.compile_expr(self, ctx, arg)
        param_type = param.type
        if isinstance(param_type, ArrayTypeInfo):

            def bind_array_value(rt, f):
                return CCell(
                    adapt_value(copy_value(evaluate(rt, f)), param_type), param
                )

            return bind_array_value

        def bind_value(rt, f):
            return CCell(evaluate(rt, f), param)

        return bind_value

    # ------------------------------------------------------------------
    # stores

    def compile_store(self, ctx: _Ctx, target):
        """Compile an lvalue to a ``(rt, f, value) -> None`` store closure
        (resolution happens at store time, i.e. after the assigned value
        was computed — the interpreter's order)."""
        if isinstance(target, ast.VarRef):
            symbol = self.analysis.ref_symbol[target.node_id]
            if symbol.kind is SymbolKind.CONSTANT:
                const_name = symbol.name
                location = target.location

                def constant_store(rt, f, value):
                    raise PascalRuntimeError(
                        f"'{const_name}' is a constant", location
                    )

                return constant_store
            acc = self.cell_accessor(ctx, symbol)
            target_type = self.analysis.expr_type.get(target.node_id)
            adapts = isinstance(target_type, ArrayTypeInfo)
            if not self.traced:
                if adapts:

                    def store_plain_array(rt, f, value):
                        acc(rt, f).value = adapt_value(copy_value(value), target_type)

                    return store_plain_array

                def store_plain(rt, f, value):
                    acc(rt, f).value = value

                return store_plain
            if adapts:

                def store_array(rt, f, value):
                    cell = acc(rt, f)
                    cell.value = adapt_value(copy_value(value), target_type)
                    ost = rt.occ_stack
                    if ost:
                        writers = cell.writers
                        if writers is None:
                            cell.writers = {None: ost[-1]}
                        else:
                            # A whole write supersedes element writes.
                            writers.clear()
                            writers[None] = ost[-1]

                return store_array

            def store(rt, f, value):
                cell = acc(rt, f)
                cell.value = value
                ost = rt.occ_stack
                if ost:
                    writers = cell.writers
                    if writers is None:
                        cell.writers = {None: ost[-1]}
                    else:
                        writers.clear()
                        writers[None] = ost[-1]

            return store

        if isinstance(target, ast.IndexedRef):
            resolver = ops.compile_resolver(self, ctx, target)
            location = target.location
            if not self.traced:

                def store_element_plain(rt, f, value):
                    cell, index = resolver(rt, f)
                    array = cell.value
                    if not isinstance(array, ArrayValue):
                        raise PascalRuntimeError(
                            "indexed store into non-array", location
                        )
                    if not (array.low <= index <= array.high):
                        raise PascalRuntimeError(
                            f"index {index} out of bounds [{array.low}..{array.high}]",
                            location,
                        )
                    array.elements[index - array.low] = value

                return store_element_plain

            def store_element(rt, f, value):
                cell, index = resolver(rt, f)
                array = cell.value
                if not isinstance(array, ArrayValue):
                    raise PascalRuntimeError("indexed store into non-array", location)
                if not (array.low <= index <= array.high):
                    raise PascalRuntimeError(
                        f"index {index} out of bounds [{array.low}..{array.high}]",
                        location,
                    )
                array.elements[index - array.low] = value
                ost = rt.occ_stack
                if ost:
                    writers = cell.writers
                    if writers is None:
                        cell.writers = {index: ost[-1]}
                    else:
                        writers[index] = ost[-1]

            return store_element

        location = target.location

        def bad_store(rt, f, value):
            raise PascalRuntimeError("expression is not a variable", location)

        return bad_store

    # ------------------------------------------------------------------
    # statements

    def compile_stmt(self, ctx: _Ctx, stmt):
        factory = self._STMT_FACTORIES.get(stmt.__class__)
        if factory is None:
            for klass, candidate in list(self._STMT_FACTORIES.items()):
                if isinstance(stmt, klass):
                    self._STMT_FACTORIES[stmt.__class__] = candidate
                    factory = candidate
                    break
            else:
                raise PascalRuntimeError(
                    f"cannot execute {type(stmt).__name__}", stmt.location
                )
        return factory(self, ctx, stmt)

    def compile_stmt_list(self, ctx: _Ctx, statements):
        closures = [self.compile_stmt(ctx, stmt) for stmt in statements]
        labels = {
            stmt.label: position
            for position, stmt in enumerate(statements)
            if stmt.label is not None
        }
        count = len(closures)
        if not labels:
            if count == 1:
                return closures[0]

            def run_list(rt, f):
                for closure in closures:
                    closure(rt, f)

            return run_list
        frame_owner = ctx.owner

        def run_list_with_labels(rt, f):
            position = 0
            while position < count:
                try:
                    closures[position](rt, f)
                except GotoSignal as signal:
                    label = signal.label
                    if label.owner is frame_owner and label.name in labels:
                        position = labels[label.name]
                        continue
                    raise
                position += 1

        return run_list_with_labels

    def _stmt_empty(self, ctx: _Ctx, stmt):
        location = stmt.location
        if not self.traced:
            _tick = tick

            def empty_plain(rt, f):
                _tick(rt, location)

            return empty_plain
        enter = enter_stmt
        stmt_id = stmt.node_id
        line = location.line

        def empty(rt, f):
            enter(rt, stmt_id, line, location)
            rt.occ_stack.pop()

        return empty

    def _stmt_compound(self, ctx: _Ctx, stmt):
        body = self.compile_stmt_list(ctx, stmt.statements)
        location = stmt.location
        if not self.traced:
            _tick = tick

            def compound_plain(rt, f):
                _tick(rt, location)
                body(rt, f)

            return compound_plain
        enter = enter_stmt
        stmt_id = stmt.node_id
        line = location.line

        def compound(rt, f):
            enter(rt, stmt_id, line, location)
            body(rt, f)
            rt.occ_stack.pop()

        return compound

    def _stmt_assign(self, ctx: _Ctx, stmt):
        evaluate = ops.compile_expr(self, ctx, stmt.value)
        store = self.compile_store(ctx, stmt.target)
        location = stmt.location
        if not self.traced:
            _tick = tick

            def assign_plain(rt, f):
                _tick(rt, location)
                store(rt, f, evaluate(rt, f))

            return assign_plain
        enter = enter_stmt
        stmt_id = stmt.node_id
        line = location.line

        def assign(rt, f):
            enter(rt, stmt_id, line, location)
            store(rt, f, evaluate(rt, f))
            rt.occ_stack.pop()

        return assign

    def _stmt_if(self, ctx: _Ctx, stmt):
        condition = ops.compile_expr(self, ctx, stmt.condition)
        then_closure = self.compile_stmt(ctx, stmt.then_branch)
        else_closure = (
            self.compile_stmt(ctx, stmt.else_branch)
            if stmt.else_branch is not None
            else None
        )
        location = stmt.location
        if not self.traced:
            _tick = tick
            if else_closure is None:

                def if_plain(rt, f):
                    _tick(rt, location)
                    if condition(rt, f):
                        then_closure(rt, f)

                return if_plain

            def if_else_plain(rt, f):
                _tick(rt, location)
                if condition(rt, f):
                    then_closure(rt, f)
                else:
                    else_closure(rt, f)

            return if_else_plain
        enter = enter_stmt
        stmt_id = stmt.node_id
        line = location.line
        if else_closure is None:

            def if_stmt(rt, f):
                enter(rt, stmt_id, line, location)
                if condition(rt, f):
                    then_closure(rt, f)
                rt.occ_stack.pop()

            return if_stmt

        def if_else(rt, f):
            enter(rt, stmt_id, line, location)
            if condition(rt, f):
                then_closure(rt, f)
            else:
                else_closure(rt, f)
            rt.occ_stack.pop()

        return if_else

    def _stmt_goto(self, ctx: _Ctx, stmt):
        label = self.analysis.goto_target[stmt.node_id]
        location = stmt.location
        if not self.traced:
            _tick = tick

            def goto_plain(rt, f):
                _tick(rt, location)
                raise GotoSignal(label, location)

            return goto_plain
        enter = enter_stmt
        stmt_id = stmt.node_id
        line = location.line

        def goto(rt, f):
            enter(rt, stmt_id, line, location)
            raise GotoSignal(label, location)

        return goto

    def _stmt_proc_call(self, ctx: _Ctx, stmt):
        if stmt.name in IO_PROCEDURES:
            return self._stmt_io(ctx, stmt)
        if stmt.name in TRACE_PROCEDURES:
            return self._stmt_trace_action(ctx, stmt)
        call = self.compile_call(ctx, stmt, stmt.args)
        location = stmt.location
        if not self.traced:
            _tick = tick

            def proc_call_plain(rt, f):
                _tick(rt, location)
                call(rt, f)

            return proc_call_plain
        enter = enter_stmt
        stmt_id = stmt.node_id
        line = location.line

        def proc_call(rt, f):
            enter(rt, stmt_id, line, location)
            call(rt, f)
            rt.occ_stack.pop()

        return proc_call

    def _stmt_trace_action(self, ctx: _Ctx, stmt):
        evaluators = [
            ops.compile_expr(self, ctx, arg)
            for arg in stmt.args
            if not isinstance(arg, ast.StringLiteral)
        ]
        location = stmt.location
        if not self.traced:
            _tick = tick

            def trace_action_plain(rt, f):
                _tick(rt, location)
                for evaluate in evaluators:
                    evaluate(rt, f)

            return trace_action_plain
        enter = enter_stmt
        stmt_id = stmt.node_id
        line = location.line

        def trace_action(rt, f):
            enter(rt, stmt_id, line, location)
            for evaluate in evaluators:
                evaluate(rt, f)
            rt.occ_stack.pop()

        return trace_action

    def _stmt_io(self, ctx: _Ctx, stmt):
        location = stmt.location
        if stmt.name in ("write", "writeln"):
            evaluators = [ops.compile_expr(self, ctx, arg) for arg in stmt.args]
            newline = stmt.name == "writeln"
            if not self.traced:
                _tick = tick
                _format = format_value

                def write_plain(rt, f):
                    _tick(rt, location)
                    chunks = rt.io.output_chunks
                    for evaluate in evaluators:
                        value = evaluate(rt, f)
                        chunks.append(
                            value if isinstance(value, str) else _format(value)
                        )
                    if newline:
                        chunks.append("\n")

                return write_plain
            enter = enter_stmt
            stmt_id = stmt.node_id
            line = location.line
            _format = format_value

            def write(rt, f):
                enter(rt, stmt_id, line, location)
                ost = rt.occ_stack
                current = ost[-1]
                chunks = rt.io.output_chunks
                print_occs = rt.print_occs
                for evaluate in evaluators:
                    value = evaluate(rt, f)
                    chunks.append(value if isinstance(value, str) else _format(value))
                    print_occs.add(current)
                if newline:
                    chunks.append("\n")
                    print_occs.add(current)
                ost.pop()

            return write
        # read / readln
        stores = [self.compile_store(ctx, arg) for arg in stmt.args]
        if not self.traced:
            _tick = tick

            def read_plain(rt, f):
                _tick(rt, location)
                read_value = rt.io.read_value
                for store in stores:
                    store(rt, f, read_value(location))

            return read_plain
        enter = enter_stmt
        stmt_id = stmt.node_id
        line = location.line

        def read(rt, f):
            enter(rt, stmt_id, line, location)
            read_value = rt.io.read_value
            for store in stores:
                store(rt, f, read_value(location))
            rt.occ_stack.pop()

        return read

    # ------------------------------------------------------------------
    # loops

    def _stmt_while(self, ctx: _Ctx, stmt):
        condition = ops.compile_expr(self, ctx, stmt.condition)
        body = self.compile_stmt(ctx, stmt.body)
        location = stmt.location
        _tick = tick
        if not self.traced:

            def while_plain(rt, f):
                _tick(rt, location)
                while True:
                    _tick(rt, location)
                    if not condition(rt, f):
                        break
                    body(rt, f)

            return while_plain
        enter = enter_stmt
        stmt_id = stmt.node_id
        line = location.line
        unit = self.loop_units.get(stmt_id)
        if unit is None:

            def while_stmt(rt, f):
                enter(rt, stmt_id, line, location)
                while True:
                    _tick(rt, location)
                    if not condition(rt, f):
                        break
                    body(rt, f)
                rt.occ_stack.pop()

            return while_stmt
        plan = self._loop_plan(ctx, unit)

        def while_unit(rt, f):
            enter(rt, stmt_id, line, location)
            prev = rt.cur_node
            loop_node = rt.loop_enter(plan, f)
            iter_node = None
            iterations = 0
            try:
                while True:
                    _tick(rt, location)
                    if not condition(rt, f):
                        break
                    iterations += 1
                    iter_node = rt.loop_iteration(
                        plan, f, loop_node, iter_node, iterations
                    )
                    body(rt, f)
            finally:
                rt.loop_exit(plan, f, loop_node, iter_node, prev)
            rt.occ_stack.pop()

        return while_unit

    def _stmt_repeat(self, ctx: _Ctx, stmt):
        body = self.compile_stmt_list(ctx, stmt.body)
        condition = ops.compile_expr(self, ctx, stmt.condition)
        location = stmt.location
        _tick = tick
        if not self.traced:

            def repeat_plain(rt, f):
                _tick(rt, location)
                while True:
                    _tick(rt, location)
                    body(rt, f)
                    if condition(rt, f):
                        break

            return repeat_plain
        enter = enter_stmt
        stmt_id = stmt.node_id
        line = location.line
        unit = self.loop_units.get(stmt_id)
        if unit is None:

            def repeat_stmt(rt, f):
                enter(rt, stmt_id, line, location)
                while True:
                    _tick(rt, location)
                    body(rt, f)
                    if condition(rt, f):
                        break
                rt.occ_stack.pop()

            return repeat_stmt
        plan = self._loop_plan(ctx, unit)

        def repeat_unit(rt, f):
            enter(rt, stmt_id, line, location)
            prev = rt.cur_node
            loop_node = rt.loop_enter(plan, f)
            iter_node = None
            iterations = 0
            try:
                while True:
                    _tick(rt, location)
                    iterations += 1
                    iter_node = rt.loop_iteration(
                        plan, f, loop_node, iter_node, iterations
                    )
                    body(rt, f)
                    if condition(rt, f):
                        break
            finally:
                rt.loop_exit(plan, f, loop_node, iter_node, prev)
            rt.occ_stack.pop()

        return repeat_unit

    def _stmt_for(self, ctx: _Ctx, stmt):
        symbol = self.analysis.for_symbol[stmt.node_id]
        acc = self.cell_accessor(ctx, symbol)
        start_ev = ops.compile_expr(self, ctx, stmt.start)
        stop_ev = ops.compile_expr(self, ctx, stmt.stop)
        start_loc = stmt.start.location
        stop_loc = stmt.stop.location
        location = stmt.location
        step = -1 if stmt.downto else 1
        if stmt.downto:
            keeps_going = lambda current, stop: current >= stop  # noqa: E731
        else:
            keeps_going = lambda current, stop: current <= stop  # noqa: E731
        _tick = tick
        _expect_int = ops.expect_int
        if not self.traced:

            def for_plain(rt, f):
                _tick(rt, location)
                cell = acc(rt, f)
                start = start_ev(rt, f)
                if type(start) is not int:
                    start = _expect_int(start, start_loc)
                stop = stop_ev(rt, f)
                if type(stop) is not int:
                    stop = _expect_int(stop, stop_loc)
                current = start
                while keeps_going(current, stop):
                    _tick(rt, location)
                    cell.value = current
                    body(rt, f)
                    current += step

            body = self.compile_stmt(ctx, stmt.body)
            return for_plain
        body = self.compile_stmt(ctx, stmt.body)
        enter = enter_stmt
        stmt_id = stmt.node_id
        line = location.line
        unit = self.loop_units.get(stmt_id)
        if unit is None:

            def for_stmt(rt, f):
                enter(rt, stmt_id, line, location)
                cell = acc(rt, f)
                start = start_ev(rt, f)
                if type(start) is not int:
                    start = _expect_int(start, start_loc)
                stop = stop_ev(rt, f)
                if type(stop) is not int:
                    stop = _expect_int(stop, stop_loc)
                ost = rt.occ_stack
                current = start
                while keeps_going(current, stop):
                    _tick(rt, location)
                    cell.value = current
                    writers = cell.writers
                    if writers is None:
                        cell.writers = {None: ost[-1]}
                    else:
                        writers.clear()
                        writers[None] = ost[-1]
                    body(rt, f)
                    current += step
                ost.pop()

            return for_stmt
        plan = self._loop_plan(ctx, unit)

        def for_unit(rt, f):
            enter(rt, stmt_id, line, location)
            cell = acc(rt, f)
            start = start_ev(rt, f)
            if type(start) is not int:
                start = _expect_int(start, start_loc)
            stop = stop_ev(rt, f)
            if type(stop) is not int:
                stop = _expect_int(stop, stop_loc)
            ost = rt.occ_stack
            prev = rt.cur_node
            loop_node = rt.loop_enter(plan, f)
            iter_node = None
            iterations = 0
            try:
                current = start
                while keeps_going(current, stop):
                    _tick(rt, location)
                    iterations += 1
                    cell.value = current
                    writers = cell.writers
                    if writers is None:
                        cell.writers = {None: ost[-1]}
                    else:
                        writers.clear()
                        writers[None] = ost[-1]
                    iter_node = rt.loop_iteration(
                        plan, f, loop_node, iter_node, iterations
                    )
                    body(rt, f)
                    current += step
            finally:
                rt.loop_exit(plan, f, loop_node, iter_node, prev)
            ost.pop()

        return for_unit


Compiler._STMT_FACTORIES = {
    ast.EmptyStmt: Compiler._stmt_empty,
    ast.Compound: Compiler._stmt_compound,
    ast.Assign: Compiler._stmt_assign,
    ast.ProcCall: Compiler._stmt_proc_call,
    ast.If: Compiler._stmt_if,
    ast.While: Compiler._stmt_while,
    ast.Repeat: Compiler._stmt_repeat,
    ast.For: Compiler._stmt_for,
    ast.Goto: Compiler._stmt_goto,
}
