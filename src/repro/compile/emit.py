"""Inline trace emission for the compiled backend.

The interpreter backend routes every observable event through the
:class:`~repro.pascal.interpreter.ExecutionHooks` protocol — one or two
Python calls per statement before any work happens. The compiled
backend inverts this: statement closures emitted by
:mod:`repro.compile.compiler` write occurrences, dependence edges, and
execution-tree bookkeeping *directly* into the :class:`TraceSession`
(via :func:`enter_stmt` and the inlined read/write recording in
:mod:`repro.compile.ops`), and the session's ``enter_call``/``exit_call``
methods replace the tracer's routine hooks.

Binding snapshots are driven by *plans* precomputed at compile time
(:class:`RoutinePlan`, :class:`LoopPlan`): side-effect sets, entry
liveness, and the sorted-global order are resolved once per routine
into lists of ``(name, is_global, cell-accessor)`` entries, so entering
or leaving an activation is a short loop over prepared accessors — the
tracer recomputes liveness and rescans its writer map on every
activation instead.

The session exposes the same result surface as the tracer
(``result()``, ``last_active_node_id``, ``_tree_index``) so
:func:`repro.tracing.tracer.trace_program` can drive either backend
through one code path, including degraded-trace salvage.
"""

from __future__ import annotations

from repro.pascal.errors import PascalRuntimeError, StepLimitExceeded
from repro.pascal.interpreter import (
    _RecursionHeadroom,
    ExecutionResult,
    GotoSignal,
)
from repro.pascal.values import copy_value, UNDEFINED
from repro.tracing.dynamic_deps import DynamicDependenceGraph, Occurrence
from repro.tracing.execution_tree import (
    Binding,
    BindingMode,
    ExecNode,
    ExecutionTree,
    NodeKind,
)
from repro.compile.runtime import _DEADLINE_MASK, Runtime


class RoutinePlan:
    """Compile-time recipe for one routine's execution-tree bindings."""

    __slots__ = (
        "unit_name",
        "routine",
        "input_entries",
        "output_entries",
        "result_slot",
    )

    def __init__(self, unit_name, routine, input_entries, output_entries, result_slot):
        self.unit_name = unit_name
        self.routine = routine
        #: ``(name, is_global, accessor-or-None)`` in binding order
        self.input_entries = input_entries
        self.output_entries = output_entries
        self.result_slot = result_slot


class LoopPlan:
    """Compile-time recipe for one loop unit's bindings."""

    __slots__ = ("stmt_id", "name", "input_entries", "output_entries")

    def __init__(self, stmt_id, name, input_entries, output_entries):
        self.stmt_id = stmt_id
        self.name = name
        #: ``(name, accessor-or-None)`` in LoopUnitInfo order
        self.input_entries = input_entries
        self.output_entries = output_entries


def enter_stmt(rt: "TraceSession", stmt_id: int, line: int, location) -> None:
    """Traced statement prologue: step/deadline accounting plus a new
    occurrence (with its control edge) pushed on the occurrence stack.
    The matching epilogue is ``rt.occ_stack.pop()``, which statement
    closures skip when unwinding — exactly like the interpreter's
    ``after_stmt`` hook, so goto-unwinding quirks replicate."""
    steps = rt.steps + 1
    rt.steps = steps
    if steps > rt.step_limit:
        raise StepLimitExceeded(
            f"execution exceeded {rt.step_limit} steps", location
        )
    if rt.budget is not None and not steps & _DEADLINE_MASK:
        rt.budget.check(location)
    node = rt.cur_node
    rt.last_active_node_id = node.node_id
    occ = rt.occ_count + 1
    rt.occ_count = occ
    rt.occurrences[occ] = Occurrence(occ, stmt_id, node.node_id, line)
    ost = rt.occ_stack
    # Control/nesting dependence on the enclosing occurrence.
    rt.adj.append([ost[-1]] if ost else [])
    node.occurrence_ids.append(occ)
    ost.append(occ)


class TraceSession(Runtime):
    """Runtime state for one traced compiled run.

    Doubles as the collector: ``run()`` executes the program's traced
    closures, ``result(execution)`` packages the same
    :class:`~repro.tracing.tracer.TraceResult` a :class:`Tracer` would.
    """

    __slots__ = (
        "ddg",
        "occurrences",
        "adj",
        "occ_count",
        "occ_stack",
        "cur_node",
        "print_occs",
        "node_count",
        "max_tree_nodes",
        "last_active_node_id",
        "prof",
        "_root",
        "_tree_index",
        "_output_writers",
    )

    def __init__(
        self,
        program,
        io=None,
        step_limit: int = 2_000_000,
        budget=None,
        max_tree_nodes: int | None = None,
        profiler=None,
    ):
        super().__init__(program, io=io, step_limit=step_limit, budget=budget)
        ddg = DynamicDependenceGraph()
        self.ddg = ddg
        # Aliases written directly by the compiled closures.
        self.occurrences = ddg.occurrences
        self.adj = ddg._adj
        self.occ_count = 0
        self.occ_stack: list[int] = []
        self.cur_node: ExecNode | None = None
        self.print_occs: set[int] = set()
        self.node_count = 0
        self.max_tree_nodes = max_tree_nodes
        self.last_active_node_id = 0
        #: optional hot-spot profiler; one None-test per activation, the
        #: per-statement closures never see it (cheap slot counters —
        #: steps per unit/line — are derived post hoc from occurrences)
        self.prof = profiler
        self._root: ExecNode | None = None
        self._tree_index: dict[int, ExecNode] = {}
        self._output_writers: dict[tuple[int, str], set[int]] = {}

    # ------------------------------------------------------------------
    # entry point / result

    def run(self) -> ExecutionResult:
        frame = self.globals_frame
        self._enter_main()
        with _RecursionHeadroom():
            try:
                self.program.traced_main(self, frame)
            except GotoSignal as signal:
                raise PascalRuntimeError(
                    f"goto {signal.label.name} escaped the program", signal.location
                )
            finally:
                self._exit_main()
        return ExecutionResult(io=self.io, globals_frame=frame, steps=self.steps)

    def result(self, execution: ExecutionResult):
        from repro.tracing.tracer import TraceResult

        assert self._root is not None, "no traced run"
        tree = ExecutionTree(root=self._root)
        tree_index = self._tree_index
        tree.occurrence_owner = {
            occ_id: tree_index[occ.exec_node_id]
            for occ_id, occ in self.ddg.occurrences.items()
            if occ.exec_node_id in tree_index
        }
        tree.output_writers = dict(self._output_writers)
        return TraceResult(
            analysis=self.program.analysis,
            side_effects=self.program.side_effects,
            tree=tree,
            dependence_graph=self.ddg,
            execution=execution,
        )

    # ------------------------------------------------------------------
    # activations

    def _count_node(self) -> None:
        self.node_count += 1
        if self.max_tree_nodes is not None and self.node_count > self.max_tree_nodes:
            from repro.resilience.errors import TraceAborted

            raise TraceAborted(
                f"execution tree exceeded {self.max_tree_nodes} activations",
                reason="tree-nodes",
            )

    def _enter_main(self) -> None:
        self._count_node()
        info = self.program.analysis.main
        node = ExecNode(kind=NodeKind.MAIN, unit_name=info.name, routine=info.symbol)
        self._root = node
        self._tree_index[node.node_id] = node
        self.cur_node = node
        if self.prof is not None:
            self.prof.enter_unit(info.name)

    def _exit_main(self) -> None:
        if self.prof is not None:
            self.prof.exit_unit()
        node = self.cur_node
        text = self.io.text
        if text:
            node.outputs = [Binding("output", BindingMode.OUT, text)]
            self._output_writers[(node.node_id, "output")] = set(self.print_occs)
        self.cur_node = None

    def enter_call(self, plan: RoutinePlan, frame, call_site_id: int) -> ExecNode:
        """Open a CALL activation; returns the previous current node for
        the caller to restore in its ``finally``."""
        self._count_node()
        node = ExecNode(
            kind=NodeKind.CALL,
            unit_name=plan.unit_name,
            routine=plan.routine,
            call_site_id=call_site_id,
        )
        parent = self.cur_node
        parent.add_child(node)
        self._tree_index[node.node_id] = node
        inputs = []
        for name, is_global, acc in plan.input_entries:
            value = UNDEFINED if acc is None else copy_value(acc(self, frame).value)
            inputs.append(Binding(name, BindingMode.IN, value, is_global))
        node.inputs = inputs
        self.cur_node = node
        if self.prof is not None:
            self.prof.enter_unit(plan.unit_name)
        return parent

    def exit_call(self, plan: RoutinePlan, frame, prev: ExecNode, via_goto) -> None:
        """Close the current CALL activation: snapshot outputs, record
        their writer sets, restore the caller's node, and attribute the
        function-result read to the caller's occurrence."""
        if self.prof is not None:
            self.prof.exit_unit()
        node = self.cur_node
        node.via_goto = via_goto.name if via_goto is not None else None
        node_id = node.node_id
        output_writers = self._output_writers
        outputs = []
        for name, is_global, acc in plan.output_entries:
            if acc is None:
                outputs.append(Binding(name, BindingMode.OUT, UNDEFINED, is_global))
                continue
            cell = acc(self, frame)
            outputs.append(
                Binding(name, BindingMode.OUT, copy_value(cell.value), is_global)
            )
            writers = cell.writers
            output_writers[(node_id, name)] = set(writers.values()) if writers else set()
        result_slot = plan.result_slot
        if result_slot is not None:
            cell = frame.slots[result_slot]
            outputs.append(
                Binding(plan.unit_name, BindingMode.RESULT, copy_value(cell.value))
            )
            writers = cell.writers
            output_writers[(node_id, plan.unit_name)] = (
                set(writers.values()) if writers else set()
            )
        node.outputs = outputs
        self.cur_node = prev
        if result_slot is not None:
            # Reading the function result happens at the caller's occurrence.
            ost = self.occ_stack
            if ost:
                writers = frame.slots[result_slot].writers
                writer = writers.get(None) if writers else None
                if writer is not None:
                    current = ost[-1]
                    if writer != current:
                        edges = self.adj[current]
                        if writer not in edges:
                            edges.append(writer)

    # ------------------------------------------------------------------
    # loop units

    def loop_enter(self, plan: LoopPlan, frame) -> ExecNode:
        self._count_node()
        node = ExecNode(kind=NodeKind.LOOP, unit_name=plan.name, loop_stmt_id=plan.stmt_id)
        node.inputs = self._loop_bindings(plan.input_entries, frame, BindingMode.IN)
        parent = self.cur_node
        parent.add_child(node)
        self._tree_index[node.node_id] = node
        self.cur_node = node
        if self.prof is not None:
            self.prof.enter_unit(plan.name)
        return node

    def loop_iteration(
        self, plan: LoopPlan, frame, loop_node: ExecNode, prev_iter, iteration: int
    ) -> ExecNode:
        self._count_node()
        if prev_iter is not None:
            self._close_iteration(plan, prev_iter, frame, loop_node)
        node = ExecNode(
            kind=NodeKind.ITERATION,
            unit_name=plan.name,
            loop_stmt_id=plan.stmt_id,
            iteration=iteration,
        )
        node.inputs = self._loop_bindings(plan.input_entries, frame, BindingMode.IN)
        loop_node.add_child(node)
        self._tree_index[node.node_id] = node
        self.cur_node = node
        return node

    def loop_exit(
        self, plan: LoopPlan, frame, loop_node: ExecNode, last_iter, prev: ExecNode
    ) -> None:
        if self.prof is not None:
            self.prof.exit_unit()
        if last_iter is not None:
            self._close_iteration(plan, last_iter, frame, loop_node)
        loop_node.outputs = self._loop_bindings(
            plan.output_entries, frame, BindingMode.OUT
        )
        output_writers = self._output_writers
        node_id = loop_node.node_id
        for name, acc in plan.output_entries:
            if acc is None:
                continue
            writers = acc(self, frame).writers
            output_writers[(node_id, name)] = set(writers.values()) if writers else set()
        self.cur_node = prev

    def _close_iteration(self, plan: LoopPlan, iter_node: ExecNode, frame, loop_node):
        iter_node.outputs = self._loop_bindings(
            plan.output_entries, frame, BindingMode.OUT
        )
        self.cur_node = loop_node

    def _loop_bindings(self, entries, frame, mode: BindingMode) -> list[Binding]:
        return [
            Binding(
                name,
                mode,
                UNDEFINED if acc is None else copy_value(acc(self, frame).value),
            )
            for name, acc in entries
        ]
