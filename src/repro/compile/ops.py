"""Expression compilation for the compiled backend.

Every expression node compiles, once, to a Python closure
``(rt, frame) -> value``. The closure is specialized at compile time on
everything that is static — which cell a name resolves to, which
operator a ``BinaryOp`` carries, whether the backend is tracing — so at
run time there is no dispatch, no symbol lookup, and (in plain mode) no
tracing residue at all. In traced mode, read-dependence edges are
emitted inline: a variable read appends its cell's last writer directly
to the current occurrence's adjacency list.

Conformance contract: evaluation order, error messages, error
locations, and arithmetic semantics (64-bit overflow checks, truncating
``div``/``mod``, eager ``and``/``or`` with the interpreter's
short-circuited *bool check* on the right operand) replicate
:class:`repro.pascal.interpreter.Interpreter` exactly.
"""

from __future__ import annotations

from repro.pascal import ast_nodes as ast
from repro.pascal.errors import PascalRuntimeError, UndefinedValueError
from repro.pascal.interpreter import MAX_INT, MIN_INT
from repro.pascal.semantics import BUILTIN_FUNCTIONS
from repro.pascal.symbols import SymbolKind
from repro.pascal.values import ArrayValue, UNDEFINED, format_value


def expect_int(value: object, location) -> int:
    """Raise unless ``value`` is a Pascal integer (bools excluded)."""
    if isinstance(value, bool) or not isinstance(value, int):
        raise PascalRuntimeError(
            f"expected an integer, got {format_value(value)}", location
        )
    return value


def expect_bool(value: object, location) -> bool:
    if not isinstance(value, bool):
        raise PascalRuntimeError(
            f"expected a boolean, got {format_value(value)}", location
        )
    return value


# ----------------------------------------------------------------------
# lvalue resolution


def compile_resolver(C, ctx, expr):
    """Compile an lvalue to ``(rt, f) -> (cell, element-index-or-None)``,
    mirroring ``Interpreter._resolve_reference`` (including evaluation
    order: base first, multi-dimension check, then the index)."""
    if isinstance(expr, ast.VarRef):
        symbol = C.analysis.ref_symbol[expr.node_id]
        if symbol.kind is SymbolKind.CONSTANT:
            name = symbol.name
            location = expr.location

            def constant_lvalue(rt, f):
                raise PascalRuntimeError(f"'{name}' is a constant", location)

            return constant_lvalue
        acc = C.cell_accessor(ctx, symbol)
        return lambda rt, f: (acc(rt, f), None)
    if isinstance(expr, ast.IndexedRef):
        base = compile_resolver(C, ctx, expr.base)
        index_ev = compile_expr(C, ctx, expr.index)
        index_loc = expr.index.location
        location = expr.location

        def resolve(rt, f):
            cell, index = base(rt, f)
            if index is not None:
                raise PascalRuntimeError(
                    "multi-dimensional arrays are not supported", location
                )
            element = index_ev(rt, f)
            if type(element) is not int:
                element = expect_int(element, index_loc)
            return cell, element

        return resolve
    location = expr.location

    def not_a_variable(rt, f):
        raise PascalRuntimeError("expression is not a variable", location)

    return not_a_variable


# ----------------------------------------------------------------------
# expression factories


def _literal(C, ctx, expr):
    value = expr.value
    return lambda rt, f: value


def _array_literal(C, ctx, expr):
    element_evs = [compile_expr(C, ctx, element) for element in expr.elements]
    from_values = ArrayValue.from_values
    return lambda rt, f: from_values(ev(rt, f) for ev in element_evs)


def _var_ref(C, ctx, expr):
    symbol = C.analysis.ref_symbol[expr.node_id]
    if symbol.kind is SymbolKind.CONSTANT:
        value = symbol.const_value
        return lambda rt, f: value
    acc = C.cell_accessor(ctx, symbol)
    name = symbol.name
    location = expr.location
    if not C.traced:

        def evaluate_plain(rt, f):
            value = acc(rt, f).value
            if value is UNDEFINED:
                raise UndefinedValueError(
                    f"'{name}' used before assignment", location
                )
            return value

        return evaluate_plain

    def evaluate(rt, f):
        cell = acc(rt, f)
        writers = cell.writers
        if writers is not None:
            ost = rt.occ_stack
            if ost:
                writer = writers.get(None)
                if writer is not None:
                    current = ost[-1]
                    if writer != current:
                        edges = rt.adj[current]
                        if writer not in edges:
                            edges.append(writer)
        value = cell.value
        if value is UNDEFINED:
            raise UndefinedValueError(f"'{name}' used before assignment", location)
        return value

    return evaluate


def _indexed_ref(C, ctx, expr):
    resolver = compile_resolver(C, ctx, expr)
    location = expr.location
    if not C.traced:

        def evaluate_plain(rt, f):
            cell, index = resolver(rt, f)
            array = cell.value
            if not isinstance(array, ArrayValue):
                raise PascalRuntimeError("indexing a non-array value", location)
            if not (array.low <= index <= array.high):
                raise PascalRuntimeError(
                    f"index {index} out of bounds [{array.low}..{array.high}]",
                    location,
                )
            value = array.elements[index - array.low]
            if value is UNDEFINED:
                raise UndefinedValueError(
                    f"array element [{index}] used before assignment", location
                )
            return value

        return evaluate_plain

    def evaluate(rt, f):
        cell, index = resolver(rt, f)
        array = cell.value
        if not isinstance(array, ArrayValue):
            raise PascalRuntimeError("indexing a non-array value", location)
        if not (array.low <= index <= array.high):
            raise PascalRuntimeError(
                f"index {index} out of bounds [{array.low}..{array.high}]",
                location,
            )
        writers = cell.writers
        if writers is not None:
            ost = rt.occ_stack
            if ost:
                current = ost[-1]
                edges = rt.adj[current]
                writer = writers.get(index)
                if writer is not None and writer != current and writer not in edges:
                    edges.append(writer)
                # An element read also depends on whole-array writes.
                whole = writers.get(None)
                if whole is not None and whole != current and whole not in edges:
                    edges.append(whole)
        value = array.elements[index - array.low]
        if value is UNDEFINED:
            raise UndefinedValueError(
                f"array element [{index}] used before assignment", location
            )
        return value

    return evaluate


def _func_call(C, ctx, expr):
    if expr.name in BUILTIN_FUNCTIONS:
        return _builtin_call(C, ctx, expr)
    return C.compile_call(ctx, expr, expr.args)


def _builtin_call(C, ctx, expr):
    arg_evs = [compile_expr(C, ctx, arg) for arg in expr.args]
    arg_locs = [arg.location for arg in expr.args]
    location = expr.location
    name = expr.name
    if name == "abs":
        ev, aloc = arg_evs[0], arg_locs[0]

        def call_abs(rt, f):
            value = ev(rt, f)
            if type(value) is not int:
                value = expect_int(value, aloc)
            result = -value if value < 0 else value
            if result > MAX_INT:
                raise PascalRuntimeError("integer overflow", location)
            return result

        return call_abs
    if name == "sqr":
        ev, aloc = arg_evs[0], arg_locs[0]

        def call_sqr(rt, f):
            value = ev(rt, f)
            if type(value) is not int:
                value = expect_int(value, aloc)
            result = value * value
            if result > MAX_INT:
                raise PascalRuntimeError("integer overflow", location)
            return result

        return call_sqr
    if name == "odd":
        ev, aloc = arg_evs[0], arg_locs[0]

        def call_odd(rt, f):
            value = ev(rt, f)
            if type(value) is not int:
                value = expect_int(value, aloc)
            return value % 2 != 0

        return call_odd
    if name in ("min", "max"):
        left_ev, right_ev = arg_evs
        left_loc, right_loc = arg_locs
        pick = min if name == "min" else max

        def call_minmax(rt, f):
            a = left_ev(rt, f)
            if type(a) is not int:
                a = expect_int(a, left_loc)
            b = right_ev(rt, f)
            if type(b) is not int:
                b = expect_int(b, right_loc)
            return pick(a, b)

        return call_minmax

    def call_unknown(rt, f):
        for ev, aloc in zip(arg_evs, arg_locs):
            value = ev(rt, f)
            if type(value) is not int:
                expect_int(value, aloc)
        raise PascalRuntimeError(f"unknown builtin {name}")

    return call_unknown


def _unary_op(C, ctx, expr):
    operand_ev = compile_expr(C, ctx, expr.operand)
    operand_loc = expr.operand.location
    op = expr.op
    if op == "-":

        def negate(rt, f):
            value = operand_ev(rt, f)
            if type(value) is not int:
                value = expect_int(value, operand_loc)
            return -value

        return negate
    if op == "not":

        def invert(rt, f):
            value = operand_ev(rt, f)
            if type(value) is not bool:
                expect_bool(value, operand_loc)
            return not value

        return invert
    location = expr.location

    def unknown_unary(rt, f):
        operand_ev(rt, f)
        raise PascalRuntimeError(f"unknown unary operator {op}", location)

    return unknown_unary


def _binary_op(C, ctx, expr):
    op = expr.op
    # 'and'/'or' evaluate both operands eagerly, as in classic Pascal.
    left_ev = compile_expr(C, ctx, expr.left)
    right_ev = compile_expr(C, ctx, expr.right)
    left_loc = expr.left.location
    right_loc = expr.right.location
    location = expr.location

    if op == "+":

        def add(rt, f):
            a = left_ev(rt, f)
            b = right_ev(rt, f)
            if type(a) is not int:
                a = expect_int(a, left_loc)
            if type(b) is not int:
                b = expect_int(b, right_loc)
            result = a + b
            if result > MAX_INT or result < MIN_INT:
                raise PascalRuntimeError("integer overflow", location)
            return result

        return add
    if op == "-":

        def sub(rt, f):
            a = left_ev(rt, f)
            b = right_ev(rt, f)
            if type(a) is not int:
                a = expect_int(a, left_loc)
            if type(b) is not int:
                b = expect_int(b, right_loc)
            result = a - b
            if result > MAX_INT or result < MIN_INT:
                raise PascalRuntimeError("integer overflow", location)
            return result

        return sub
    if op == "*":

        def mul(rt, f):
            a = left_ev(rt, f)
            b = right_ev(rt, f)
            if type(a) is not int:
                a = expect_int(a, left_loc)
            if type(b) is not int:
                b = expect_int(b, right_loc)
            result = a * b
            if result > MAX_INT or result < MIN_INT:
                raise PascalRuntimeError("integer overflow", location)
            return result

        return mul
    if op in ("div", "/", "mod"):
        is_mod = op == "mod"

        def divide(rt, f):
            a = left_ev(rt, f)
            b = right_ev(rt, f)
            if type(a) is not int:
                a = expect_int(a, left_loc)
            if type(b) is not int:
                b = expect_int(b, right_loc)
            if b == 0:
                raise PascalRuntimeError("division by zero", location)
            # Truncating division, like classic Pascal (Python floors).
            quotient = abs(a) // abs(b)
            if (a >= 0) != (b >= 0):
                quotient = -quotient
            if is_mod:
                return a - quotient * b
            return quotient

        return divide
    if op == "and":

        def logical_and(rt, f):
            a = left_ev(rt, f)
            b = right_ev(rt, f)
            if type(a) is not bool:
                expect_bool(a, left_loc)
            # The interpreter's `expect_bool(a) and expect_bool(b)`
            # short-circuits the *check* on b when a is False.
            if not a:
                return a
            if type(b) is not bool:
                expect_bool(b, right_loc)
            return b

        return logical_and
    if op == "or":

        def logical_or(rt, f):
            a = left_ev(rt, f)
            b = right_ev(rt, f)
            if type(a) is not bool:
                expect_bool(a, left_loc)
            if a:
                return a
            if type(b) is not bool:
                expect_bool(b, right_loc)
            return b

        return logical_or
    if op == "=":

        def equal(rt, f):
            return left_ev(rt, f) == right_ev(rt, f)

        return equal
    if op == "<>":

        def not_equal(rt, f):
            return not (left_ev(rt, f) == right_ev(rt, f))

        return not_equal
    if op in ("<", "<=", ">", ">="):
        if op == "<":
            compare = lambda a, b: a < b  # noqa: E731
        elif op == "<=":
            compare = lambda a, b: a <= b  # noqa: E731
        elif op == ">":
            compare = lambda a, b: a > b  # noqa: E731
        else:
            compare = lambda a, b: a >= b  # noqa: E731

        def relational(rt, f):
            a = left_ev(rt, f)
            b = right_ev(rt, f)
            if type(a) is not int:
                a = expect_int(a, left_loc)
            if type(b) is not int:
                b = expect_int(b, right_loc)
            return compare(a, b)

        return relational

    def unknown_binary(rt, f):
        left_ev(rt, f)
        right_ev(rt, f)
        raise PascalRuntimeError(f"unknown operator {op}", location)

    return unknown_binary


_EXPR_FACTORIES = {
    ast.IntLiteral: _literal,
    ast.BoolLiteral: _literal,
    ast.StringLiteral: _literal,
    ast.VarRef: _var_ref,
    ast.IndexedRef: _indexed_ref,
    ast.ArrayLiteral: _array_literal,
    ast.FuncCall: _func_call,
    ast.UnaryOp: _unary_op,
    ast.BinaryOp: _binary_op,
}


def compile_expr(C, ctx, expr):
    """Compile one expression node to a ``(rt, frame) -> value`` closure."""
    factory = _EXPR_FACTORIES.get(expr.__class__)
    if factory is None:
        for klass, candidate in list(_EXPR_FACTORIES.items()):
            if isinstance(expr, klass):
                _EXPR_FACTORIES[expr.__class__] = candidate
                factory = candidate
                break
        else:
            raise PascalRuntimeError(
                f"cannot evaluate {type(expr).__name__}", expr.location
            )
    return factory(C, ctx, expr)
