"""Runtime objects for the compiled execution backend.

The compiled backend (see :mod:`repro.compile`) turns the mini-Pascal
AST into Python closures once per program; this module supplies the
mutable state those closures run against:

* :class:`CCell` — interpreter-compatible storage cells extended with a
  per-cell ``writers`` map (element index → last writing occurrence id),
  replacing the tracer's global ``(id(cell), index)`` dictionary. A
  whole write clears the map; "all writers of this cell" is then simply
  ``set(writers.values())`` instead of a scan over every key the trace
  ever produced.
* :class:`CFrame` — a slot-addressed activation record. Variable
  references are compiled to direct list indexing (own frame, a static
  ``up``-link hop for nested routines, or the shared globals slab), so
  there is no per-access dict lookup or frame-stack scan.
* :class:`Runtime` — the per-run state (io, step counter, budget, call
  depth, globals) plus the plain ``run()`` entry point. The traced
  variant lives in :mod:`repro.compile.emit`.

Conformance: every limit check reproduces the interpreter byte for
byte — same messages, same source locations, same check ordering — so
differential tests can compare error strings across backends.
"""

from __future__ import annotations

from repro.pascal.errors import PascalRuntimeError, StepLimitExceeded
from repro.pascal.interpreter import (
    _MAX_DEPTH,
    _RecursionHeadroom,
    Cell,
    ExecutionResult,
    Frame,
    GotoSignal,
    PascalIO,
)
from repro.pascal.symbols import ArrayTypeInfo
from repro.pascal.values import ArrayValue, UNDEFINED, default_value

#: deadline checks fire when ``steps & _DEADLINE_MASK == 0`` (mirrors
#: the interpreter / repro.resilience.budget.DEADLINE_CHECK_MASK)
_DEADLINE_MASK = 0x3FF


class CCell(Cell):
    """A storage cell that carries its own dependence bookkeeping.

    ``writers`` is ``None`` until the traced backend records a write;
    afterwards it maps element index (``None`` = whole cell) to the
    occurrence id that last wrote that location. Keeping the map on the
    cell makes write attribution O(1) and writer enumeration O(live
    writers) — the tracer's global map pays a full scan per output
    binding instead.
    """

    __slots__ = ("writers",)

    def __init__(self, value: object = UNDEFINED, symbol=None):
        self.value = value
        self.symbol = symbol
        self.writers: dict[int | None, int] | None = None


class CFrame:
    """A compiled activation record: cells in compiler-assigned slots
    (parameters, then locals, then the function result cell), plus the
    static link ``up`` to the enclosing routine's frame for non-local
    access from nested routines."""

    __slots__ = ("slots", "up")

    def __init__(self, slots: list[CCell], up: "CFrame | None"):
        self.slots = slots
        self.up = up


def tick(rt: "Runtime", location) -> None:
    """One step of the step/deadline accounting (statement prologue in
    plain mode; loop-iteration tick in both modes). Mirrors
    ``Interpreter._tick`` exactly."""
    steps = rt.steps + 1
    rt.steps = steps
    if steps > rt.step_limit:
        raise StepLimitExceeded(
            f"execution exceeded {rt.step_limit} steps", location
        )
    if rt.budget is not None and not steps & _DEADLINE_MASK:
        rt.budget.check(location)


def adapt_value(value: object, target_type: object) -> object:
    """Widen an array value to a larger declared array type (mirrors
    ``Interpreter._adapt_value``, including the location-less error)."""
    if (
        isinstance(target_type, ArrayTypeInfo)
        and isinstance(value, ArrayValue)
        and (value.low, value.high) != (target_type.low, target_type.high)
    ):
        if len(value.elements) > target_type.length:
            raise PascalRuntimeError(
                f"array value with {len(value.elements)} elements does not "
                f"fit array[{target_type.low}..{target_type.high}]"
            )
        widened = ArrayValue(target_type.low, target_type.high)
        for offset, element in enumerate(value.elements):
            widened.elements[offset] = element
        return widened
    return value


class Runtime:
    """Per-run state for the compiled backend (plain, untraced mode).

    Matches the interpreter's construction contract: a budget tightens
    the step limit and call depth and is armed on construction if not
    already started. ``globals_frame`` is a real interpreter
    :class:`Frame` (so :class:`ExecutionResult` consumers see the same
    shape) whose cells are additionally exposed positionally through
    ``gslots`` for compiled global access.
    """

    __slots__ = (
        "program",
        "io",
        "steps",
        "step_limit",
        "budget",
        "depth",
        "max_depth",
        "gslots",
        "globals_frame",
    )

    def __init__(self, program, io=None, step_limit: int = 2_000_000, budget=None):
        self.program = program
        self.io = io if io is not None else PascalIO()
        if budget is not None:
            step_limit = budget.effective_step_limit(step_limit)
            self.max_depth = budget.effective_call_depth(_MAX_DEPTH)
            if budget.deadline_at is None:
                budget.start()
        else:
            self.max_depth = _MAX_DEPTH
        self.budget = budget
        self.step_limit = step_limit
        self.steps = 0
        frame = Frame(routine=program.analysis.main)
        cells = frame.cells
        gslots: list[CCell] = []
        for symbol in program.global_symbols:
            cell = CCell(default_value(symbol.type), symbol)
            cells[symbol] = cell
            gslots.append(cell)
        self.gslots = gslots
        self.globals_frame = frame
        #: Pascal frame count, globals frame included (the interpreter's
        #: depth guard compares ``len(self._frames)``, which starts at 1)
        self.depth = 1

    def run(self) -> ExecutionResult:
        """Execute the whole program from its (compiled) main body."""
        frame = self.globals_frame
        with _RecursionHeadroom():
            try:
                self.program.plain_main(self, frame)
            except GotoSignal as signal:
                raise PascalRuntimeError(
                    f"goto {signal.label.name} escaped the program", signal.location
                )
        return ExecutionResult(io=self.io, globals_frame=frame, steps=self.steps)
