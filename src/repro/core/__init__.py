"""The GADT debugger (paper §3, §5.3, §7, §8) — the primary contribution.

* :mod:`repro.core.queries` — queries and answers in the paper's dialogue
  format (``computs(In y: 3, Out r1: 12, Out r2: 9)? no, error on first
  output variable``);
* :mod:`repro.core.oracle` — oracle implementations standing in for the
  user: interactive, scripted (replays the paper's dialogues), and a
  reference-program oracle that simulates a perfectly knowledgeable user
  so interaction counts can be *measured*;
* :mod:`repro.core.assertions` — partial-specification assertions
  ([Drabent et al.]) that answer queries without user interaction;
* :mod:`repro.core.strategies` — execution-tree search strategies
  (top-down as in the paper, plus bottom-up, Shapiro's divide-and-query
  and Insa & Silva's optimal divide-and-query — see docs/STRATEGIES.md);
* :mod:`repro.core.algorithmic` — the pure algorithmic debugger;
* :mod:`repro.core.gadt` — the integrated debugger: assertions → test
  lookup → user, with dynamic slicing on error indications;
* :mod:`repro.core.session` — interaction transcripts;
* :mod:`repro.core.replay` — deterministic re-runs of recorded session
  journals (the flight-recorder's verification half).
"""

from repro.core.queries import Answer, AnswerKind, AnswerSource, Query
from repro.core.oracle import (
    FunctionOracle,
    InteractiveOracle,
    Oracle,
    ReferenceOracle,
    ScriptedOracle,
)
from repro.core.assertions import Assertion, AssertionStore
from repro.core.strategies import (
    OptimalDivideAndQueryStrategy,
    Strategy,
    WeightIndex,
    available_strategies,
    make_strategy,
    step_weight,
)
from repro.core.algorithmic import AlgorithmicDebugger, DebugResult
from repro.core.gadt import GadtDebugger, GadtSystem
from repro.core.postmortem import ContributingStatement, contributing_statements
from repro.core.replay import (
    ReplayDebugger,
    ReplayDivergence,
    ReplayReport,
    replay_file,
    replay_journal,
)
from repro.core.session import Interaction, Session
from repro.core.transparency import TransparencyMap, UnitSource

__all__ = [
    "AlgorithmicDebugger",
    "Answer",
    "AnswerKind",
    "AnswerSource",
    "Assertion",
    "AssertionStore",
    "ContributingStatement",
    "DebugResult",
    "contributing_statements",
    "FunctionOracle",
    "GadtDebugger",
    "GadtSystem",
    "Interaction",
    "InteractiveOracle",
    "OptimalDivideAndQueryStrategy",
    "Oracle",
    "Query",
    "ReferenceOracle",
    "ReplayDebugger",
    "ReplayDivergence",
    "ReplayReport",
    "ScriptedOracle",
    "replay_file",
    "replay_journal",
    "Session",
    "Strategy",
    "TransparencyMap",
    "UnitSource",
    "WeightIndex",
    "available_strategies",
    "make_strategy",
    "step_weight",
]
