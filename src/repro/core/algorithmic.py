"""The algorithmic debugger core (paper §3, §5.3.1).

The debugger traverses the execution tree asking whether each unit
activation matches the intended behaviour. The search maintains:

* the *currently suspected* unit — known (or assumed, for the root
  symptom) to behave incorrectly, and
* a judgement map over activations.

"The search finally ends, and a bug is localized in a procedure p when
one of the following holds: procedure p contains no procedure calls;
all procedure calls performed from the body of procedure p fulfill the
user's expectations."

Before consulting the oracle (the user), each query runs through the
answer chain: the answer cache, stored assertions, and the test-case
lookup (paper Figure 3) — only unanswered queries cost an interaction.
A ``no, error on <output>`` answer activates the slicing component,
which restricts the remaining search to the pruned execution tree
(paper §5.3.3, §7).
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field

from repro import obs
from repro.core.assertions import AssertionStore
from repro.core.oracle import Oracle
from repro.core.queries import Answer, AnswerKind, AnswerSource, Query
from repro.core.session import Session
from repro.core.strategies import Strategy, make_strategy
from repro.slicing.criteria import DynamicCriterion
from repro.slicing.tree_pruning import TreeView, prune_tree
from repro.tgen.lookup import TestCaseLookup
from repro.tracing.execution_tree import ExecNode
from repro.tracing.tracer import TraceResult

#: answer-source labels used in per-session accounting. The first four
#: map :class:`AnswerSource` values; ``slice-pruned`` counts activations
#: the search never had to ask about because a dynamic slice exonerated
#: them (paper §7 — the mechanism behind "fewer user interactions").
SOURCE_LABELS = {
    AnswerSource.USER: "user",
    AnswerSource.ASSERTION: "assertion",
    AnswerSource.TEST_DATABASE: "test-db",
    AnswerSource.CACHE: "cache",
}
SLICE_PRUNED = "slice-pruned"


@dataclass
class DebugResult:
    """Outcome of one debugging session."""

    bug_node: ExecNode | None
    session: Session
    user_questions: int = 0
    auto_answers: int = 0
    slices: int = 0
    uncertain_nodes: list[ExecNode] = field(default_factory=list)
    #: activations judged correct during the search (dicing material)
    correct_nodes: list[ExecNode] = field(default_factory=list)
    used_test_answers: bool = False
    #: query count per answer source ("user" / "assertion" / "test-db" /
    #: "cache" / "slice-pruned"); see :data:`SOURCE_LABELS`
    queries_by_source: dict[str, int] = field(default_factory=dict)
    #: activations removed from the search space by dynamic slices
    slice_pruned: int = 0
    #: wall time of the debugging search (always measured)
    elapsed_s: float = 0.0
    #: the session ran over a degraded (budget-salvaged, depth-capped)
    #: partial trace: the localization is valid for the traced prefix
    #: but the bug may live in an activation the trace never recorded
    partial: bool = False
    degraded_reason: str | None = None
    #: search strategy that drove the session (docs/STRATEGIES.md)
    strategy: str | None = None

    @property
    def bug_unit(self) -> str | None:
        return self.bug_node.unit_name if self.bug_node is not None else None

    @property
    def localized(self) -> bool:
        return self.bug_node is not None

    @property
    def total_questions(self) -> int:
        return self.user_questions + self.auto_answers

    def report(self) -> dict:
        """Structured per-session accounting (JSON-ready).

        ``queries.total`` counts every resolved query — explicit ones
        (answered by the user, an assertion, the test database, or the
        answer cache) plus the activations a dynamic slice pruned out of
        the search, which a sliceless top-down session would have had to
        ask about. ``by_source`` always sums to ``total``;
        ``interactions_saved`` is ``total`` minus the queries that cost
        a user interaction.
        """
        by_source = {
            label: self.queries_by_source.get(label, 0)
            for label in (*SOURCE_LABELS.values(), SLICE_PRUNED)
        }
        total = sum(by_source.values())
        return {
            "schema": "gadt_session/1",
            "localized": self.localized,
            "bug_unit": self.bug_unit,
            "strategy": self.strategy,
            "queries": {"total": total, "by_source": by_source},
            "user_questions": self.user_questions,
            "auto_answers": self.auto_answers,
            "interactions_saved": total - by_source["user"],
            "slices": self.slices,
            "uncertain": len(self.uncertain_nodes),
            "elapsed_s": self.elapsed_s,
            "partial": self.partial,
            "degraded_reason": self.degraded_reason,
        }


class AlgorithmicDebugger:
    """Algorithmic debugging over a traced execution.

    With the default arguments this is *pure* algorithmic debugging:
    every query goes to the oracle and slicing is off. Supplying an
    assertion store, a test lookup, and ``enable_slicing=True`` yields
    the full GADT behaviour (see :class:`~repro.core.gadt.GadtDebugger`).
    """

    def __init__(
        self,
        trace: TraceResult,
        oracle: Oracle,
        strategy: Strategy | str = "top-down",
        assertions: AssertionStore | None = None,
        test_lookup: TestCaseLookup | None = None,
        enable_slicing: bool = False,
    ):
        self.trace = trace
        self.oracle = oracle
        self.strategy = (
            make_strategy(strategy) if isinstance(strategy, str) else strategy
        )
        self.assertions = assertions if assertions is not None else AssertionStore()
        self.test_lookup = test_lookup
        self.enable_slicing = enable_slicing
        self._answer_cache: dict[int, Answer] = {}

    # ------------------------------------------------------------------

    def debug(
        self, start: ExecNode | None = None, assume_symptom: bool = True
    ) -> DebugResult:
        """Localize a bug, starting from ``start`` (default: the root).

        Per the paper, the debugger "can be invoked by the user after
        noticing an externally visible symptom of a bug", so the start
        node is assumed erroneous. With ``assume_symptom=False`` the
        start node is queried first, and a "yes" ends the session with
        no bug localized (``result.bug_node is None``).
        """
        started = time.perf_counter()
        visits_before = getattr(self.strategy, "node_visits", None)
        with obs.span("debug.session", strategy=type(self.strategy).__name__):
            result = self._search(start, assume_symptom)
        result.elapsed_s = time.perf_counter() - started
        result.strategy = getattr(self.strategy, "name", None)
        if self.trace.degraded:
            # Degraded tracing (blown budget, salvaged partial tree):
            # the session still localizes, but only over the traced
            # prefix — the result is explicitly partial.
            result.partial = True
            result.degraded_reason = self.trace.degraded_reason
            result.session.note(
                f"trace degraded ({self.trace.degraded_reason}); "
                "result is partial"
            )
        if obs.enabled():
            obs.add("debug.sessions")
            obs.add("debug.slices", result.slices)
            visits_after = getattr(self.strategy, "node_visits", None)
            if visits_after is not None:
                # weighted strategies report how many tree-node touches
                # the search cost — the incremental-index health metric
                obs.add(
                    "debug.strategy_node_visits",
                    visits_after - (visits_before or 0),
                )
            for source, count in result.queries_by_source.items():
                obs.add(f"debug.queries.{source}", count)
            obs.emit("session", report=result.report())
        return result

    def _search(
        self, start: ExecNode | None, assume_symptom: bool
    ) -> DebugResult:
        session = Session()
        result = DebugResult(bug_node=None, session=session)

        current = start if start is not None else self.trace.tree.root
        view = TreeView.full(current)
        judgements: dict[int, bool] = {}

        if not assume_symptom:
            answer = self._answer_query(Query(current), session, result)
            if answer.is_correct or answer.kind is AnswerKind.DONT_KNOW:
                session.note(
                    f"{current.unit_name} behaves as intended; nothing to localize"
                )
                self._verdict(current, "no-symptom")
                return result
            error_variable = answer.resolve_error_variable(current)
            if self.enable_slicing and error_variable is not None:
                view = self._slice(current, error_variable, view, session, result)
        else:
            session.note(
                f"debugging started at {current.unit_name} (symptom assumed)"
            )

        while True:
            candidate = self.strategy.next_query(view, current, judgements)
            if candidate is None:
                result.bug_node = current
                session.localized(current.unit_name)
                self._verdict(current, "bug-localized")
                return result

            answer = self._answer_query(Query(candidate), session, result)

            if answer.kind is AnswerKind.DONT_KNOW:
                judgements[candidate.node_id] = True  # cannot refute: move on
                result.uncertain_nodes.append(candidate)
                self._verdict(candidate, "uncertain")
                continue
            if answer.is_correct:
                judgements[candidate.node_id] = True
                result.correct_nodes.append(candidate)
                self._verdict(candidate, "correct")
                continue

            # Incorrect: the search descends into this activation.
            judgements[candidate.node_id] = False
            self._verdict(candidate, "incorrect")
            current = candidate
            error_variable = answer.resolve_error_variable(candidate)
            if (
                self.enable_slicing
                and error_variable is not None
                and answer.kind is AnswerKind.NO_WITH_ERROR
            ):
                view = self._slice(candidate, error_variable, view, session, result)

    # ------------------------------------------------------------------

    def _slice(
        self,
        node: ExecNode,
        variable: str,
        view: TreeView,
        session: Session,
        result: DebugResult,
    ) -> TreeView:
        criterion = DynamicCriterion(node=node, variable=variable)
        try:
            sliced = prune_tree(self.trace, criterion)
        except KeyError:
            session.note(
                f"slicing on {criterion.describe()} unavailable; continuing unsliced"
            )
            return view
        result.slices += 1
        subtree_ids = {descendant.node_id for descendant in node.walk()}
        before = len(subtree_ids)
        combined = TreeView(
            root=node, kept_ids=(sliced.kept_ids & view.kept_ids) | {node.node_id}
        )
        # Activations the slice just removed from the search space: they
        # were still candidates (in the current view, inside the suspect
        # subtree, not yet answered) and are now exonerated — each one is
        # a query the session no longer needs (paper §7).
        pruned = (
            (view.kept_ids & subtree_ids)
            - combined.kept_ids
            - set(self._answer_cache)
        )
        if pruned:
            result.slice_pruned += len(pruned)
            result.queries_by_source[SLICE_PRUNED] = (
                result.queries_by_source.get(SLICE_PRUNED, 0) + len(pruned)
            )
        session.note_slice(
            f"slice on {criterion.describe()}: "
            f"{combined.size()} of {before} activations remain"
        )
        if obs.enabled():
            obs.emit(
                "slice",
                unit=node.unit_name,
                variable=variable,
                kept=combined.size(),
                subtree=before,
                pruned=len(pruned),
            )
        return combined

    # ------------------------------------------------------------------
    # the answer chain (paper Figure 3)

    def _answer_query(
        self, query: Query, session: Session, result: DebugResult
    ) -> Answer:
        cached = self._answer_cache.get(query.node.node_id)
        if cached is not None:
            answer = Answer(
                kind=cached.kind,
                source=AnswerSource.CACHE,
                error_variable=cached.error_variable,
                error_position=cached.error_position,
                note="previously answered",
            )
            self._account(result, query, answer)
            return answer

        answer = self.assertions.try_answer(query)
        if answer is not None:
            result.auto_answers += 1
            session.ask(query, answer)
            self._answer_cache[query.node.node_id] = answer
            self._account(result, query, answer)
            return answer

        if self.test_lookup is not None:
            outcome = self.test_lookup.consult(query.unit_name, query.inputs())
            if outcome.answers_yes:
                answer = Answer.yes(
                    source=AnswerSource.TEST_DATABASE, note=outcome.detail
                )
                result.auto_answers += 1
                result.used_test_answers = True
                session.ask(query, answer)
                self._answer_cache[query.node.node_id] = answer
                self._account(result, query, answer)
                return answer

        answer = self.oracle.answer(query)
        result.user_questions += 1
        if answer.kind is AnswerKind.ASSERTION and answer.assertion is not None:
            # Store the assertion, then let it answer this very query.
            self.assertions.add(answer.assertion)
            derived = self.assertions.try_answer(query)
            if derived is not None:
                answer = Answer(
                    kind=derived.kind,
                    source=AnswerSource.USER,
                    error_variable=derived.error_variable,
                    error_position=derived.error_position,
                    note=f"via new assertion {answer.assertion.text!r}",
                )
            else:
                answer = Answer.dont_know(source=AnswerSource.USER)
        session.ask(query, answer)
        self._answer_cache[query.node.node_id] = answer
        self._account(result, query, answer)
        return answer

    @staticmethod
    def _verdict(node: ExecNode, verdict: str) -> None:
        """Journal one judgement transition of the tree search."""
        if obs.enabled():
            obs.emit(
                "verdict",
                unit=node.unit_name,
                node=node.node_id,
                verdict=verdict,
            )

    @staticmethod
    def _account(result: DebugResult, query: Query, answer: Answer) -> None:
        """Tag one resolved query with its answer source (obs accounting).

        The emitted event is the journal's replay unit: it carries the
        node id, the answer source *and* the answer itself (including
        error indications), so a recorded session can be re-answered
        without the original oracle (:mod:`repro.core.replay`).
        """
        label = SOURCE_LABELS.get(answer.source, answer.source.value)
        result.queries_by_source[label] = (
            result.queries_by_source.get(label, 0) + 1
        )
        if obs.enabled():
            fields: dict = {
                "unit": query.unit_name,
                "node": query.node.node_id,
                "source": label,
                "answer": answer.kind.value,
            }
            if answer.error_variable is not None:
                fields["error_variable"] = answer.error_variable
            if answer.error_position is not None:
                fields["error_position"] = answer.error_position
            obs.emit("query", **fields)
