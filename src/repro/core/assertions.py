"""Assertions: partial specifications that answer queries (paper §3, §5.3.1).

Following [Drabent, Nadjm-Tehrani, Maluszynski 88], the user may answer a
query with an *assertion* instead of yes/no: a Boolean expression over
the unit's parameters and globals describing its intended behaviour.
The assertion answers the current query and is stored so later queries
about the same unit never reach the user.

Assertions are written in Mini-Pascal expression syntax. Names resolve
against the query's bindings: a plain name takes the *output* value when
one exists, the input value otherwise; the prefixes ``in_`` and ``out_``
select explicitly; ``result`` names a function's result. Example, for
the paper's ``partialsums(In y, Out s1, Out s2)``::

    (s1 = y * (y + 1) div 2) and (s2 = (y - 1) * y div 2)
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.core.queries import Answer, AnswerKind, AnswerSource, Query
from repro.pascal import ast_nodes as ast
from repro.pascal.parser import parse_expression
from repro.pascal.values import ArrayValue, UNDEFINED
from repro.tracing.execution_tree import BindingMode, ExecNode


class AssertionError_(Exception):
    """Raised when an assertion cannot be evaluated for a query."""


@dataclass(frozen=True)
class Assertion:
    """A stored partial specification for one unit."""

    unit: str
    text: str
    #: authoritative assertions answer yes when true; partial assertions
    #: can only refute (false -> no, true -> no answer)
    partial: bool = False

    def __str__(self) -> str:
        return f"{self.unit}: {self.text}"

    def evaluate(self, node: ExecNode) -> bool:
        expr = parse_expression(self.text)
        env = _binding_environment(node)
        value = _eval(expr, env)
        if not isinstance(value, bool):
            raise AssertionError_(
                f"assertion {self.text!r} is not boolean-valued"
            )
        return value


def _binding_environment(node: ExecNode) -> dict[str, object]:
    env: dict[str, object] = {}
    for binding in node.inputs:
        env[f"in_{binding.name}"] = binding.value
        env.setdefault(binding.name, binding.value)
    for binding in node.outputs:
        if binding.mode is BindingMode.RESULT:
            env["result"] = binding.value
        env[f"out_{binding.name}"] = binding.value
        env[binding.name] = binding.value  # outputs win for plain names
    return env


# ----------------------------------------------------------------------
# a small evaluator for assertion expressions


def _eval(expr: ast.Expr, env: dict[str, object]) -> object:
    if isinstance(expr, ast.IntLiteral):
        return expr.value
    if isinstance(expr, ast.BoolLiteral):
        return expr.value
    if isinstance(expr, ast.StringLiteral):
        return expr.value
    if isinstance(expr, ast.VarRef):
        if expr.name not in env:
            raise AssertionError_(f"assertion names unknown value {expr.name!r}")
        value = env[expr.name]
        if value is UNDEFINED:
            raise AssertionError_(f"{expr.name!r} is undefined in this query")
        return value
    if isinstance(expr, ast.IndexedRef):
        base = _eval(expr.base, env)
        index = _eval(expr.index, env)
        if not isinstance(base, ArrayValue) or not isinstance(index, int):
            raise AssertionError_("bad array indexing in assertion")
        if not base.in_bounds(index):
            raise AssertionError_(f"assertion index {index} out of bounds")
        return base.get(index)
    if isinstance(expr, ast.FuncCall):
        return _eval_builtin(expr, env)
    if isinstance(expr, ast.UnaryOp):
        operand = _eval(expr.operand, env)
        if expr.op == "-":
            return -_as_int(operand)
        if expr.op == "not":
            return not _as_bool(operand)
        raise AssertionError_(f"unknown operator {expr.op}")
    if isinstance(expr, ast.BinaryOp):
        return _eval_binary(expr, env)
    raise AssertionError_(f"unsupported assertion syntax {type(expr).__name__}")


def _eval_builtin(expr: ast.FuncCall, env: dict[str, object]) -> object:
    values = [_as_int(_eval(arg, env)) for arg in expr.args]
    if expr.name == "abs" and len(values) == 1:
        return abs(values[0])
    if expr.name == "sqr" and len(values) == 1:
        return values[0] * values[0]
    if expr.name == "odd" and len(values) == 1:
        return values[0] % 2 != 0
    if expr.name == "min" and len(values) == 2:
        return min(values)
    if expr.name == "max" and len(values) == 2:
        return max(values)
    raise AssertionError_(f"assertions cannot call {expr.name!r}")


def _eval_binary(expr: ast.BinaryOp, env: dict[str, object]) -> object:
    op = expr.op
    left = _eval(expr.left, env)
    right = _eval(expr.right, env)
    if op in ("+", "-", "*", "div", "mod", "/"):
        a, b = _as_int(left), _as_int(right)
        if op == "+":
            return a + b
        if op == "-":
            return a - b
        if op == "*":
            return a * b
        if b == 0:
            raise AssertionError_("division by zero in assertion")
        quotient = abs(a) // abs(b)
        if (a >= 0) != (b >= 0):
            quotient = -quotient
        return quotient if op in ("div", "/") else a - quotient * b
    if op == "and":
        return _as_bool(left) and _as_bool(right)
    if op == "or":
        return _as_bool(left) or _as_bool(right)
    if op in ("=", "<>"):
        equal = left == right and isinstance(left, bool) == isinstance(right, bool)
        return equal if op == "=" else not equal
    if op in ("<", "<=", ">", ">="):
        a, b = _as_int(left), _as_int(right)
        return {"<": a < b, "<=": a <= b, ">": a > b, ">=": a >= b}[op]
    raise AssertionError_(f"unknown operator {op}")


def _as_int(value: object) -> int:
    if isinstance(value, bool) or not isinstance(value, int):
        raise AssertionError_(f"expected an integer, got {value!r}")
    return value


def _as_bool(value: object) -> bool:
    if not isinstance(value, bool):
        raise AssertionError_(f"expected a boolean, got {value!r}")
    return value


# ----------------------------------------------------------------------


@dataclass
class AssertionStore:
    """Assertions supplied so far, consulted before any other source."""

    _by_unit: dict[str, list[Assertion]] = field(default_factory=dict)
    evaluations: int = 0

    def add(self, assertion: Assertion) -> None:
        self._by_unit.setdefault(assertion.unit, []).append(assertion)

    def assert_unit(self, unit: str, text: str, partial: bool = False) -> Assertion:
        assertion = Assertion(unit=unit, text=text, partial=partial)
        self.add(assertion)
        return assertion

    def for_unit(self, unit: str) -> list[Assertion]:
        return list(self._by_unit.get(unit, ()))

    def try_answer(self, query: Query) -> Answer | None:
        """Answer the query from stored assertions, if any apply.

        Any violated assertion refutes the query; "yes" requires that
        every applicable assertion holds and at least one of them is
        authoritative (non-partial).
        """
        confirming: Assertion | None = None
        for assertion in self._by_unit.get(query.unit_name, ()):
            try:
                holds = assertion.evaluate(query.node)
            except AssertionError_:
                continue  # assertion does not cover this query's values
            self.evaluations += 1
            if not holds:
                return Answer.no(
                    source=AnswerSource.ASSERTION,
                    note=f"violates assertion {assertion.text!r}",
                )
            if not assertion.partial and confirming is None:
                confirming = assertion
        if confirming is not None:
            return Answer.yes(
                source=AnswerSource.ASSERTION,
                note=f"satisfies assertion {confirming.text!r}",
            )
        return None

    def __len__(self) -> int:
        return sum(len(entries) for entries in self._by_unit.values())
