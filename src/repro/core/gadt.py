"""The integrated GADT debugger (the paper's contribution, §5–§8).

``GadtDebugger`` wires the whole pipeline together:

1. the transformation phase removes global side effects and gotos and
   identifies loop units,
2. the tracing phase executes the transformed program and builds the
   execution tree plus the dynamic dependence graph,
3. the debugging phase searches the tree with the answer chain
   (assertions → test-case lookup → user) and dynamic slicing on
   error indications.

"Hence, if the bug is not localized with this combined method we must
repeat the debugging without using the test results" —
:meth:`GadtDebugger.debug_distrusting_tests` implements that fallback:
when a first pass relied on test answers and the localized unit is
rejected (e.g. by the user inspecting its body), the session is repeated
with the test database disabled.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable

from repro.core.algorithmic import AlgorithmicDebugger, DebugResult
from repro.core.assertions import AssertionStore
from repro.core.oracle import Oracle
from repro.core.strategies import Strategy
from repro.pascal.semantics import AnalyzedProgram
from repro.tgen.lookup import TestCaseLookup
from repro.tracing.execution_tree import ExecNode
from repro.tracing.tracer import TraceResult, trace_program
from repro.transform.pipeline import TransformedProgram, transform_source


class GadtDebugger(AlgorithmicDebugger):
    """Algorithmic debugging + category-partition testing + slicing."""

    def __init__(
        self,
        trace: TraceResult,
        oracle: Oracle,
        strategy: Strategy | str = "top-down",
        assertions: AssertionStore | None = None,
        test_lookup: TestCaseLookup | None = None,
        enable_slicing: bool = True,
    ):
        super().__init__(
            trace,
            oracle,
            strategy=strategy,
            assertions=assertions,
            test_lookup=test_lookup,
            enable_slicing=enable_slicing,
        )

    def debug_distrusting_tests(
        self,
        start: ExecNode | None = None,
        reject: Callable[[DebugResult], bool] | None = None,
    ) -> DebugResult:
        """Debug; if the result leaned on test answers and ``reject``
        dismisses it, repeat the whole search without the test database
        (the paper's reliability fallback, §5.3.2)."""
        result = self.debug(start=start)
        rejected = reject(result) if reject is not None else False
        if not rejected or not result.used_test_answers:
            return result
        retry = AlgorithmicDebugger(
            self.trace,
            self.oracle,
            strategy=self.strategy,
            assertions=self.assertions,
            test_lookup=None,
            enable_slicing=self.enable_slicing,
        )
        retry_result = retry.debug(start=start)
        retry_result.session.note("test results distrusted; session repeated")
        return retry_result


@dataclass
class GadtSystem:
    """Convenience bundle: one program taken through all three phases."""

    transformed: TransformedProgram
    trace: TraceResult

    @property
    def analysis(self) -> AnalyzedProgram:
        return self.transformed.analysis

    @classmethod
    def from_source(
        cls,
        source: str,
        program_inputs: list[object] | None = None,
        step_limit: int = 2_000_000,
        present_original_view: bool = True,
        tolerate_errors: bool = False,
        budget=None,
        degrade: bool = False,
        backend: str | None = None,
        profiler=None,
    ) -> "GadtSystem":
        """Transform, then trace, a Mini-Pascal program (phases I and II).

        With ``present_original_view`` (the default), queries are phrased
        in the user's original terms: threaded globals are labeled as
        globals and exit parameters become "exits via goto L" results
        (transparent debugging, paper §6.1). ``tolerate_errors`` lets a
        crashing program yield its partial execution tree so the crash
        itself can be debugged.

        ``backend`` selects the trace execution engine (``"interp"`` |
        ``"compiled"``; ``None`` defers to ``REPRO_BACKEND``).

        ``budget`` (a :class:`repro.resilience.Budget`) bounds the trace;
        with ``degrade``, blowing it salvages a depth-capped partial tree
        (``trace.degraded``) instead of raising, and any debug session
        run over it reports its result as partial.

        The transformation phase is served from the content-addressed
        transform cache (pure function of the source text); only the
        trace — which depends on ``program_inputs`` and carries all
        per-run state — is built fresh on every call.
        """
        transformed = transform_source(source)
        trace = trace_program(
            transformed.analysis,
            inputs=program_inputs,
            side_effects=transformed.side_effects,
            loop_units=transformed.loop_units,
            step_limit=step_limit,
            tolerate_errors=tolerate_errors,
            budget=budget,
            degrade=degrade,
            backend=backend,
            profiler=profiler,
        )
        if present_original_view:
            from repro.core.presentation import present_tree

            present_tree(trace, transformed)
        return cls(transformed=transformed, trace=trace)

    def debugger(
        self,
        oracle: Oracle,
        strategy: Strategy | str = "top-down",
        assertions: AssertionStore | None = None,
        test_lookup: TestCaseLookup | None = None,
        enable_slicing: bool = True,
    ) -> GadtDebugger:
        """Phase III: build the debugging-phase driver."""
        return GadtDebugger(
            self.trace,
            oracle,
            strategy=strategy,
            assertions=assertions,
            test_lookup=test_lookup,
            enable_slicing=enable_slicing,
        )

    @staticmethod
    def store_lookup(
        directory,
        specs=(),
        selectors=None,
        menu=None,
    ) -> TestCaseLookup:
        """A :class:`TestCaseLookup` backed by the persistent sharded
        test-report store at ``directory`` (see :mod:`repro.store` and
        ``docs/TESTDB.md``): reports recorded by earlier testing runs —
        in this process or any other — answer this session's queries.

        ``specs`` is an iterable of :class:`~repro.tgen.TestSpec`;
        ``selectors`` maps unit names to automatic frame selectors, and
        ``menu`` is the fallback menu interaction for units without one.
        """
        from repro.store import BatchAnswerService, ShardedReportStore

        service = BatchAnswerService(
            ShardedReportStore(directory),
            specs=specs,
            selectors=selectors,
            menu=menu,
        )
        return service.session_lookup()

    def show_bug(self, result: DebugResult) -> str:
        """Original-source rendering of the localized unit (paper §6.1).

        Transparent debugging: the report shows the procedure as the
        user wrote it, not the transformed internal form.
        """
        from repro.core.transparency import TransparencyMap

        if result.bug_node is None:
            return "no bug was localized"
        return TransparencyMap(self.transformed).unit_source(result.bug_node).render()

    def explain_bug(self, result: DebugResult) -> str:
        """The show_bug report plus the statements inside the blamed
        unit that contributed to its erroneous outputs, narrowed by
        dicing against correct activations of the same unit (extension;
        dicing per [Lyle, Weiser 87])."""
        from repro.core.postmortem import contributing_statements, dice_statements

        if result.bug_node is None:
            return "no bug was localized"
        report = self.show_bug(result)
        contributors = contributing_statements(
            self.trace, result.bug_node, self.transformed
        )
        if contributors:
            lines = "\n".join(f"  {item.render()}" for item in contributors)
            report += f"\ncontributing statements:\n{lines}"
        # Dicing: activations of the same unit judged correct elsewhere
        # in the execution exonerate the statements they share.
        good_nodes = [
            node
            for node in self.trace.tree.walk()
            if node.unit_name == result.bug_node.unit_name
            and node.node_id != result.bug_node.node_id
            and any(c.node_id == node.node_id for c in result.correct_nodes)
        ]
        if good_nodes and contributors:
            diced = dice_statements(
                self.trace, result.bug_node, good_nodes, self.transformed
            )
            if diced and len(diced) < len(contributors):
                lines = "\n".join(f"  {item.render()}" for item in diced)
                report += (
                    f"\nnarrowed by dicing against "
                    f"{len(good_nodes)} correct activation(s):\n{lines}"
                )
        return report
