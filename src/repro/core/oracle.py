"""Oracles: who answers the debugger's questions.

The paper's oracle is the human user. For reproducibility and for
*measuring* interaction counts, this module provides:

* :class:`InteractiveOracle` — a real terminal dialogue in the paper's
  format;
* :class:`ScriptedOracle` — replays a fixed list of answers, asserting
  the expected question order (used to reproduce the paper's dialogues
  verbatim);
* :class:`FunctionOracle` — wraps any ``Query -> Answer`` callable;
* :class:`ReferenceOracle` — simulates a perfectly knowledgeable user by
  consulting a bug-free *reference program*: first a memoized lookup in
  the reference execution tree (same program inputs), then calling the
  queried unit in isolation on the reference program with the query's
  input values. This is the oracle the benchmarks use, since it answers
  exactly as the paper's idealized user would.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Protocol, TextIO

from repro.core.queries import Answer, AnswerKind, AnswerSource, Query
from repro.pascal.errors import PascalError
from repro.pascal.interpreter import Interpreter, PascalIO
from repro.pascal.semantics import AnalyzedProgram
from repro.pascal.values import ArrayValue, UNDEFINED, values_equal
from repro.tracing.execution_tree import Binding, BindingMode, ExecNode, NodeKind
from repro.tracing.tracer import TraceResult, trace_program


class Oracle(Protocol):
    def answer(self, query: Query) -> Answer: ...


class FunctionOracle:
    """Adapts a plain callable into an oracle."""

    def __init__(self, function: Callable[[Query], Answer]):
        self._function = function
        self.questions = 0

    def answer(self, query: Query) -> Answer:
        self.questions += 1
        return self._function(query)


@dataclass
class ScriptedOracle:
    """Replays scripted answers, verifying the expected unit order.

    Each entry is ``(expected_unit_name_or_None, answer)``.
    """

    script: list[tuple[str | None, Answer]]
    cursor: int = 0

    def answer(self, query: Query) -> Answer:
        if self.cursor >= len(self.script):
            raise AssertionError(
                f"oracle script exhausted at query {query.render()!r}"
            )
        expected_unit, answer = self.script[self.cursor]
        self.cursor += 1
        if expected_unit is not None and expected_unit != query.unit_name:
            raise AssertionError(
                f"expected a question about {expected_unit!r}, "
                f"got {query.render()!r}"
            )
        return answer

    @property
    def exhausted(self) -> bool:
        return self.cursor >= len(self.script)


class InteractiveOracle:
    """A terminal dialogue in the paper's style.

    Input forms: ``yes``/``y``, ``no``/``n``, ``no 2`` (error on the 2nd
    output), ``no <name>`` (error on output <name>), ``assert <expr>``,
    ``?``/``dont-know``.
    """

    def __init__(self, input_fn: Callable[[str], str] = input, output: TextIO | None = None):
        self._input = input_fn
        self._output = output
        self.questions = 0

    def _emit(self, text: str) -> None:
        if self._output is not None:
            self._output.write(text + "\n")

    def answer(self, query: Query) -> Answer:
        self.questions += 1
        while True:
            raw = self._input(f"{query.render()} ").strip()
            parsed = self._parse(raw, query.node)
            if parsed is not None:
                return parsed
            self._emit(
                "answers: yes | no | no <k>|<name> | assert <expr> | dont-know"
            )

    @staticmethod
    def _parse(raw: str, node: ExecNode) -> Answer | None:
        text = raw.strip().lower()
        if text in ("y", "yes"):
            return Answer.yes()
        if text in ("n", "no"):
            return Answer.no()
        if text in ("?", "d", "dont-know", "don't know", "dontknow"):
            return Answer.dont_know()
        if text.startswith("no "):
            spec = raw.strip()[3:].strip()
            if spec.isdigit():
                return Answer.no_error_on(position=int(spec))
            if spec:
                return Answer.no_error_on(variable=spec.lower())
        if text.startswith("assert "):
            from repro.core.assertions import Assertion

            expr = raw.strip()[7:].strip()
            if expr:
                return Answer(
                    kind=AnswerKind.ASSERTION,
                    assertion=Assertion(unit=node.unit_name, text=expr),
                )
        return None


# ----------------------------------------------------------------------
# the simulated user


def _canonical(value: object) -> object:
    if isinstance(value, ArrayValue):
        return ("array", value.low, value.high, tuple(_canonical(v) for v in value.elements))
    if value is UNDEFINED:
        return ("undefined",)
    return value


def _inputs_key(node: ExecNode) -> tuple:
    return tuple(
        (binding.name, _canonical(binding.value)) for binding in node.inputs
    )


def _memo_key(node: ExecNode) -> tuple:
    """Unit activations are matched by (name, node kind, input values) —
    the kind keeps a loop unit distinct from its own iterations, which
    share the name and often the inputs."""
    kind = "call" if node.kind in (NodeKind.CALL, NodeKind.MAIN) else node.kind.value
    return (node.unit_name, kind, _inputs_key(node))


class ReferenceOracle:
    """Answers queries by consulting a bug-free reference program.

    ``report_error_position=True`` mimics the paper's user, who points
    out *which* output variable is wrong whenever the unit has several
    outputs — the answer that activates the slicing component.
    """

    def __init__(
        self,
        reference_analysis: AnalyzedProgram,
        program_inputs: list[object] | None = None,
        report_error_position: bool = True,
        loop_units: dict | None = None,
        step_limit: int = 2_000_000,
    ):
        self.reference_analysis = reference_analysis
        self.program_inputs = program_inputs
        self.report_error_position = report_error_position
        self.loop_units = loop_units
        self.step_limit = step_limit
        self.questions = 0
        self._memo: dict[tuple, list[tuple[list[Binding], str | None]]] | None = None

    @classmethod
    def from_source(
        cls,
        fixed_source: str,
        program_inputs: list[object] | None = None,
        report_error_position: bool = True,
        step_limit: int = 2_000_000,
    ) -> "ReferenceOracle":
        """Build the oracle from bug-free source, transformed and traced
        exactly like the program under debugging (same unit names, same
        loop units, same original-view presentation) — maximizing direct
        execution-tree matches before any isolated-call fallback."""
        from repro.core.gadt import GadtSystem

        system = GadtSystem.from_source(
            fixed_source, program_inputs=program_inputs, step_limit=step_limit
        )
        oracle = cls(
            system.analysis,
            program_inputs=program_inputs,
            report_error_position=report_error_position,
            loop_units=system.transformed.loop_units,
            step_limit=step_limit,
        )
        memo: dict[tuple, list[tuple[list[Binding], str | None]]] = {}
        for node in system.trace.tree.walk():
            memo.setdefault(_memo_key(node), []).append(
                (list(node.outputs), node.via_goto)
            )
        oracle._memo = memo
        return oracle

    # ------------------------------------------------------------------

    def answer(self, query: Query) -> Answer:
        self.questions += 1
        node = query.node
        candidates = self._expected_candidates(node)
        if not candidates:
            return Answer.dont_know()
        # Several reference activations can share the same inputs
        # (e.g. repeated calls); the behaviour is correct if it matches
        # any of them.
        for expected_bindings, expected_goto in candidates:
            if node.via_goto == expected_goto:
                verdict = self._compare(node, expected_bindings)
                if verdict.is_correct:
                    return verdict
        expected_bindings, expected_goto = candidates[0]
        if node.via_goto != expected_goto:
            # Wrong exit side effect: the goto is "one of the results".
            return Answer.no()
        return self._compare(node, expected_bindings)

    # ------------------------------------------------------------------

    def _expected_candidates(
        self, node: ExecNode
    ) -> list[tuple[list[Binding], str | None]]:
        memo = self._reference_memo()
        candidates = memo.get(_memo_key(node))
        if candidates:
            return list(candidates)
        if node.kind is NodeKind.CALL:
            isolated = self._isolated_call(node)
            return [isolated] if isolated is not None else []
        return []

    def _reference_memo(
        self,
    ) -> dict[tuple, list[tuple[list[Binding], str | None]]]:
        if self._memo is not None:
            return self._memo
        self._memo = {}
        try:
            trace = trace_program(
                self.reference_analysis,
                inputs=list(self.program_inputs) if self.program_inputs else None,
                loop_units=self.loop_units,
                step_limit=self.step_limit,
            )
        except PascalError:
            return self._memo
        for node in trace.tree.walk():
            self._memo.setdefault(_memo_key(node), []).append(
                (list(node.outputs), node.via_goto)
            )
        return self._memo

    def _isolated_call(
        self, node: ExecNode
    ) -> tuple[list[Binding], str | None] | None:
        try:
            info = self.reference_analysis.routine_named(node.unit_name)
        except KeyError:
            return None
        inputs = {binding.name: binding.value for binding in node.inputs}
        args = [inputs.get(param.name, UNDEFINED) for param in info.params]
        globals_in = {
            binding.name: binding.value
            for binding in node.inputs
            if binding.is_global
        }
        # Only seed globals the reference program actually declares (a
        # presented global may be a plain parameter on the other side).
        known_globals = {
            symbol.name for symbol in self.reference_analysis.main.locals
        }
        globals_in = {
            name: value
            for name, value in globals_in.items()
            if name in known_globals
        }
        try:
            interpreter = Interpreter(
                self.reference_analysis, io=PascalIO(), step_limit=self.step_limit
            )
            outcome = interpreter.call_routine_by_name(
                node.unit_name, args, globals_in=globals_in
            )
        except PascalError:
            return None
        # A value presented as a global may be a threaded parameter in the
        # reference program (or vice versa): resolve by the reference
        # routine's own signature.
        param_names = {param.name for param in info.params}
        expected: list[Binding] = []
        for binding in node.outputs:
            if binding.mode is BindingMode.RESULT:
                expected.append(
                    Binding(binding.name, BindingMode.RESULT, outcome.result)
                )
                continue
            if binding.name in param_names:
                value = outcome.out_values.get(binding.name, UNDEFINED)
            else:
                value = outcome.globals_after.get(binding.name, UNDEFINED)
            if value is UNDEFINED and binding.name not in inputs:
                # The replay never assigned this cell and the trace did
                # not capture its incoming value (an unread var param or
                # global, typically on a goto-escape path). The observed
                # output is then the passthrough of an unknown input:
                # any value is consistent, so the binding is no evidence
                # either way. Without this, an unmutated routine that
                # escapes before assigning its out parameter is blamed
                # for "changing" a value it never touched.
                value = binding.value
            expected.append(
                Binding(
                    binding.name,
                    BindingMode.OUT,
                    value,
                    is_global=binding.is_global,
                )
            )
        return expected, outcome.via_goto

    def _compare(self, node: ExecNode, expected: list[Binding]) -> Answer:
        expected_by_name = {binding.name: binding.value for binding in expected}
        mismatches: list[int] = []
        for position, binding in enumerate(node.outputs, start=1):
            want = expected_by_name.get(binding.name, UNDEFINED)
            if not values_equal(binding.value, want):
                mismatches.append(position)
        if not mismatches:
            return Answer.yes()
        if self.report_error_position and len(node.outputs) > 1:
            return Answer.no_error_on(position=mismatches[0])
        return Answer.no()
