"""Statement-level postmortem inside the localized unit (extension).

The paper's method stops at the unit level: "an error has been localized
inside the body of procedure p". This module goes one step further with
machinery the system already has: the dynamic occurrences *owned by the
blamed activation* that contributed to its erroneous outputs are mapped
back (through the transformation source map) to the statements of the
original routine — a ranked "look here first" list inside the unit.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.pascal import ast_nodes as ast
from repro.pascal.pretty import print_statement
from repro.tracing.execution_tree import ExecNode
from repro.tracing.tracer import TraceResult
from repro.transform.pipeline import TransformedProgram


@dataclass(frozen=True)
class ContributingStatement:
    """One statement of the blamed unit that fed the wrong outputs."""

    line: int
    text: str
    executions: int  # how many contributing occurrences it had

    def render(self) -> str:
        times = f" (x{self.executions})" if self.executions > 1 else ""
        where = f"line {self.line}: " if self.line else ""
        return f"{where}{self.text}{times}"


def contributing_statements(
    trace: TraceResult,
    bug_node: ExecNode,
    transformed: TransformedProgram | None = None,
) -> list[ContributingStatement]:
    """Statements of the blamed unit that contribute to its outputs.

    Seeds the backward dynamic slice with the writers of every output of
    ``bug_node``, restricts it to occurrences owned by the blamed
    activation (and its iterations), and maps the surviving statements
    back to the original program when a transformation source map is
    available.
    """
    ddg = trace.dependence_graph
    seeds: set[int] = set()
    for binding in bug_node.outputs:
        seeds |= trace.tree.output_writers.get(
            (bug_node.node_id, binding.name), set()
        )
    if not seeds:
        # No recorded writers (e.g. a crashed unit): fall back to every
        # occurrence the activation owns.
        seeds = set(bug_node.occurrence_ids)

    closure = ddg.backward_slice(seeds)
    owned_nodes = {node.node_id for node in bug_node.walk()}
    owned_occs = [
        occ
        for occ_id in closure
        if (occ := ddg.occurrences.get(occ_id)) is not None
        and occ.exec_node_id in owned_nodes
    ]

    # Occurrence statement ids refer to the traced (possibly transformed)
    # program; map them back to original statements where possible.
    stmt_index = _statement_index(trace, transformed)
    counts: dict[int, int] = {}
    for occ in owned_occs:
        stmt = stmt_index.get(occ.stmt_id)
        if stmt is None:
            continue
        counts[stmt.node_id] = counts.get(stmt.node_id, 0) + 1

    by_id = {}
    for stmt_id, executions in counts.items():
        stmt = _node_by_id(stmt_index, stmt_id)
        if stmt is None:
            continue
        text = print_statement(stmt).strip().splitlines()[0]
        by_id[stmt_id] = ContributingStatement(
            line=stmt.location.line, text=text, executions=executions
        )
    return sorted(by_id.values(), key=lambda item: (item.line, item.text))


def dice_statements(
    trace: TraceResult,
    bad_node: ExecNode,
    good_nodes: list[ExecNode],
    transformed: TransformedProgram | None = None,
) -> list[ContributingStatement]:
    """Program dicing ([Lyle, Weiser 87], cited by the paper): the
    statements contributing to the *erroneous* activation minus those
    that also contributed to activations judged correct.

    When the same unit ran correctly on other inputs, the shared
    statements (exercised by both) are unlikely culprits; the dice is
    what only the failing run touched.
    """
    bad = contributing_statements(trace, bad_node, transformed)
    good_texts: set[tuple[int, str]] = set()
    for node in good_nodes:
        for item in contributing_statements(trace, node, transformed):
            good_texts.add((item.line, item.text))
    return [
        item for item in bad if (item.line, item.text) not in good_texts
    ]


def _statement_index(
    trace: TraceResult, transformed: TransformedProgram | None
) -> dict[int, ast.Stmt]:
    """traced-statement id -> *displayable* statement (original if mapped)."""
    index: dict[int, ast.Stmt] = {}
    atomic = (ast.Assign, ast.ProcCall, ast.Goto)
    traced_nodes = {
        node.node_id: node
        for node in trace.analysis.program.walk()
        if isinstance(node, atomic)
    }
    if transformed is None:
        return traced_nodes
    original_nodes = {
        node.node_id: node
        for node in transformed.original_analysis.program.walk()
        if isinstance(node, ast.Stmt)
    }
    for traced_id, traced_stmt in traced_nodes.items():
        original_id = transformed.original_node_id(traced_id)
        original = original_nodes.get(original_id) if original_id else None
        if original is not None:
            index[traced_id] = original
        # synthesized statements (trace actions, exit machinery) omitted
    return index


def _node_by_id(index: dict[int, ast.Stmt], stmt_id: int) -> ast.Stmt | None:
    for stmt in index.values():
        if stmt.node_id == stmt_id:
            return stmt
    return None
