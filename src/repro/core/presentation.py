"""Presenting transformed-program queries in original terms (paper §6.1).

The transformation phase adds parameters the user never wrote:

* globals threaded as ``in``/``out``/``var`` parameters — the paper's
  questions present these as "input values on these global variables /
  values on free global variables", so their bindings are re-marked as
  globals;
* ``exitcond`` parameters carrying broken global gotos — "the non-local
  goto is treated as one of the results from the procedure call": a
  question shows *whether the goto happened* (``exits via goto 9``), not
  the integer exit code. Since the exit code *is* the numeric label, a
  non-zero value decodes directly to the original target.

:func:`present_tree` rewrites an execution tree's bindings accordingly;
:class:`~repro.core.gadt.GadtSystem` applies it automatically, so the
dialogue the user sees never leaks the internal form.
"""

from __future__ import annotations

from repro.tracing.execution_tree import Binding, ExecNode, NodeKind
from repro.tracing.tracer import TraceResult
from repro.transform.pipeline import TransformedProgram


def present_tree(trace: TraceResult, transformed: TransformedProgram) -> None:
    """Rewrite the tree's bindings to the user's original-program view."""
    added_globals = {
        unit: {name for name, _mode in params}
        for unit, params in transformed.added_params.items()
    }
    exit_params = dict(transformed.exit_params)
    exit_names = set(exit_params.values())

    for node in trace.tree.walk():
        if node.kind is not NodeKind.CALL:
            _present_loop_bindings(node, exit_names)
            continue
        unit_globals = added_globals.get(node.unit_name, set())
        exit_param = exit_params.get(node.unit_name)
        node.inputs = [
            _mark_global(binding, unit_globals)
            for binding in node.inputs
            if binding.name != exit_param and binding.name not in exit_names
        ]
        new_outputs: list[Binding] = []
        for binding in node.outputs:
            if binding.name == exit_param:
                # Decode the exit condition into the original goto.
                if isinstance(binding.value, int) and binding.value != 0:
                    node.via_goto = str(binding.value)
                continue
            new_outputs.append(_mark_global(binding, unit_globals))
        node.outputs = new_outputs


def _mark_global(binding: Binding, global_names: set[str]) -> Binding:
    if binding.name in global_names and not binding.is_global:
        return Binding(
            name=binding.name,
            mode=binding.mode,
            value=binding.value,
            is_global=True,
        )
    return binding


def _present_loop_bindings(node: ExecNode, exit_names: set[str]) -> None:
    """Loop units may carry leave/exitcond machinery; hide it."""
    if node.kind not in (NodeKind.LOOP, NodeKind.ITERATION):
        return
    node.inputs = [
        binding
        for binding in node.inputs
        if binding.name not in exit_names
        and not binding.name.startswith(("gadt_leave_", "gadt_limit_"))
    ]
    node.outputs = [
        binding
        for binding in node.outputs
        if binding.name not in exit_names
        and not binding.name.startswith(("gadt_leave_", "gadt_limit_"))
    ]
