"""Queries and answers in the paper's dialogue format.

A query shows one unit activation with its input and output values and
asks whether the behaviour matches the user's intentions:

    computs(In y: 3, Out r1: 12, Out r2: 9)?

Possible answers (paper §3, §5.3.1, §8):

* ``yes`` — the unit behaved as intended for these values;
* ``no`` — it did not;
* ``no, error on <k>th output variable`` / ``no, error on <name>`` —
  it did not, and the user points at the wrong output, which activates
  the slicing component;
* an *assertion* — a partial specification that answers this query and
  is remembered for future queries;
* ``don't know`` — the user cannot judge (the search stays conservative).
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field
from typing import TYPE_CHECKING

from repro.tracing.execution_tree import ExecNode

if TYPE_CHECKING:  # pragma: no cover
    from repro.core.assertions import Assertion


class AnswerKind(enum.Enum):
    YES = "yes"
    NO = "no"
    NO_WITH_ERROR = "no-with-error"
    DONT_KNOW = "dont-know"
    ASSERTION = "assertion"


class AnswerSource(enum.Enum):
    USER = "user"
    ASSERTION = "assertion"
    TEST_DATABASE = "test-database"
    CACHE = "cache"


@dataclass(frozen=True)
class Query:
    """One question about one unit activation."""

    node: ExecNode

    @property
    def unit_name(self) -> str:
        return self.node.unit_name

    def inputs(self) -> dict[str, object]:
        """Concrete input values by name (what the test lookup needs)."""
        return {binding.name: binding.value for binding in self.node.inputs}

    def outputs(self) -> dict[str, object]:
        return {binding.name: binding.value for binding in self.node.outputs}

    def render(self) -> str:
        head = self.node.render_head()
        # Asking about the whole program shows what it printed — the
        # externally visible symptom the user judges.
        from repro.tracing.execution_tree import NodeKind

        if self.node.kind is NodeKind.MAIN:
            for binding in self.node.outputs:
                if binding.name == "output" and isinstance(binding.value, str):
                    shown = binding.value
                    if len(shown) > 60:
                        shown = shown[:57] + "..."
                    head += f" [prints {shown!r}]"
        return f"{head}?"

    def __str__(self) -> str:
        return self.render()


@dataclass(frozen=True)
class Answer:
    kind: AnswerKind
    source: AnswerSource = AnswerSource.USER
    #: NO_WITH_ERROR: the name of the erroneous output variable
    error_variable: str | None = None
    #: NO_WITH_ERROR: its 1-based position among the outputs, if known
    error_position: int | None = None
    #: ASSERTION: the assertion supplied alongside the judgement
    assertion: "Assertion | None" = None
    #: free-form provenance note ("frame (two, positive, small) passed...")
    note: str = ""

    # ------------------------------------------------------------------
    # constructors

    @classmethod
    def yes(cls, source: AnswerSource = AnswerSource.USER, note: str = "") -> "Answer":
        return cls(kind=AnswerKind.YES, source=source, note=note)

    @classmethod
    def no(cls, source: AnswerSource = AnswerSource.USER, note: str = "") -> "Answer":
        return cls(kind=AnswerKind.NO, source=source, note=note)

    @classmethod
    def no_error_on(
        cls,
        variable: str | None = None,
        position: int | None = None,
        source: AnswerSource = AnswerSource.USER,
        note: str = "",
    ) -> "Answer":
        if variable is None and position is None:
            raise ValueError("error answer needs a variable name or position")
        return cls(
            kind=AnswerKind.NO_WITH_ERROR,
            source=source,
            error_variable=variable,
            error_position=position,
            note=note,
        )

    @classmethod
    def dont_know(cls, source: AnswerSource = AnswerSource.USER) -> "Answer":
        return cls(kind=AnswerKind.DONT_KNOW, source=source)

    # ------------------------------------------------------------------

    @property
    def is_correct(self) -> bool:
        return self.kind is AnswerKind.YES

    @property
    def is_incorrect(self) -> bool:
        return self.kind in (AnswerKind.NO, AnswerKind.NO_WITH_ERROR)

    def resolve_error_variable(self, node: ExecNode) -> str | None:
        """The erroneous output's name, resolving a positional answer."""
        if self.kind is not AnswerKind.NO_WITH_ERROR:
            return None
        if self.error_variable is not None:
            return self.error_variable
        assert self.error_position is not None
        return node.output_position(self.error_position).name

    def render(self) -> str:
        if self.kind is AnswerKind.YES:
            return "yes"
        if self.kind is AnswerKind.NO:
            return "no"
        if self.kind is AnswerKind.NO_WITH_ERROR:
            if self.error_position is not None:
                ordinal = _ordinal(self.error_position)
                return f"no, error on {ordinal} output variable"
            return f"no, error on {self.error_variable}"
        if self.kind is AnswerKind.DONT_KNOW:
            return "don't know"
        assert self.kind is AnswerKind.ASSERTION
        return f"assertion: {self.assertion}"


def _ordinal(position: int) -> str:
    names = {1: "first", 2: "second", 3: "third", 4: "fourth", 5: "fifth"}
    return names.get(position, f"{position}th")
