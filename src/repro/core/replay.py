"""Deterministic session replay from a recorded journal.

``repro replay JOURNAL`` regression-debugs the debugger itself: it
re-runs a recorded debug session from scratch — re-transforming,
re-tracing (optionally on the *other* backend), re-slicing — while
answering every query from the journal instead of an oracle, and
verifies that the re-run asks the same questions about the same
activations, takes the same verdict transitions, and produces the same
final accounting. Any divergence is reported and exits nonzero.

Node-id normalization: :class:`~repro.tracing.execution_tree.ExecNode`
ids come from a process-global counter, so recorded and replayed ids
differ by a constant offset — the difference between the replayed root
id and the ``root`` field of the journal's trace record. Node
*allocation order* is deterministic and identical across backends
(pre-order over the execution tree), which is what makes cross-backend
replay a meaningful conformance check.

The journal's query records are consumed strictly in order, one per
resolved query — including cache-sourced re-answers — because
:meth:`~repro.core.algorithmic.AlgorithmicDebugger._account` emits
exactly one record per resolution. Slicing is *not* replayed from the
journal: it re-executes for real, driven by the recorded error
indications, so a slicer regression shows up as a question-sequence or
accounting divergence.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.core.algorithmic import SOURCE_LABELS
from repro.core.gadt import GadtDebugger, GadtSystem
from repro.core.oracle import Oracle
from repro.core.queries import Answer, AnswerKind, AnswerSource, Query
from repro.core.strategies import available_strategies
from repro.obs.journal import Journal, JournalError

#: reverse of :data:`~repro.core.algorithmic.SOURCE_LABELS`
LABEL_SOURCES = {label: source for source, label in SOURCE_LABELS.items()}


class ReplayDivergence(Exception):
    """The re-run departed from the recorded session."""


@dataclass
class ReplayReport:
    """Outcome of one journal replay."""

    ok: bool
    backend: str
    queries: int = 0
    verdicts: int = 0
    bug_unit: str | None = None
    divergences: list[str] = field(default_factory=list)
    session_report: dict | None = None

    def render(self) -> str:
        status = "identical" if self.ok else "DIVERGED"
        lines = [
            f"replay ({self.backend} backend): {status} — "
            f"{self.queries} queries, {self.verdicts} verdicts, "
            f"bug unit: {self.bug_unit or 'none'}"
        ]
        for divergence in self.divergences:
            lines.append(f"  divergence: {divergence}")
        return "\n".join(lines)


class _RefuseOracle(Oracle):
    """Installed during replay; consulting it means a query was asked
    that the journal never recorded."""

    def answer(self, query: Query) -> Answer:  # pragma: no cover - guard
        raise ReplayDivergence(
            f"oracle consulted for {query.unit_name} — not in the journal"
        )


class ReplayDebugger(GadtDebugger):
    """A debugger whose answer chain is the journal's query records."""

    def __init__(self, trace, recorded_queries, node_offset, **kwargs):
        super().__init__(trace, _RefuseOracle(), **kwargs)
        self._recorded = list(recorded_queries)
        self._cursor = 0
        self._offset = node_offset

    @property
    def consumed(self) -> int:
        return self._cursor

    @property
    def leftover(self) -> int:
        return len(self._recorded) - self._cursor

    def _answer_query(self, query, session, result) -> Answer:
        if self._cursor >= len(self._recorded):
            raise ReplayDivergence(
                f"extra query #{self._cursor + 1}: the re-run asked about "
                f"{query.unit_name} (node {query.node.node_id - self._offset}) "
                "but the journal has no more recorded queries"
            )
        record = self._recorded[self._cursor]
        self._cursor += 1
        recorded_node = record.get("node")
        expected_node = (
            recorded_node + self._offset if recorded_node is not None else None
        )
        if record.get("unit") != query.unit_name or (
            expected_node is not None and expected_node != query.node.node_id
        ):
            raise ReplayDivergence(
                f"query #{self._cursor} asks about {query.unit_name} "
                f"(node {query.node.node_id - self._offset}), journal recorded "
                f"{record.get('unit')} (node {recorded_node})"
            )

        source = LABEL_SOURCES.get(record.get("source"))
        if source is None:
            raise ReplayDivergence(
                f"query #{self._cursor}: unknown recorded answer source "
                f"{record.get('source')!r}"
            )
        try:
            kind = AnswerKind(record.get("answer"))
        except ValueError as error:
            raise ReplayDivergence(
                f"query #{self._cursor}: unknown recorded answer "
                f"{record.get('answer')!r}"
            ) from error
        answer = Answer(
            kind=kind,
            source=source,
            error_variable=record.get("error_variable"),
            error_position=record.get("error_position"),
            note="replayed from journal",
        )

        # Mirror the live answer chain's bookkeeping per source, so the
        # accounting (and the slice-pruned arithmetic, which excludes
        # already-answered nodes) reproduces exactly.
        if source is AnswerSource.CACHE:
            self._account(result, query, answer)
            return answer
        if source is AnswerSource.USER:
            result.user_questions += 1
        else:
            result.auto_answers += 1
            if source is AnswerSource.TEST_DATABASE:
                result.used_test_answers = True
        session.ask(query, answer)
        self._answer_cache[query.node.node_id] = answer
        self._account(result, query, answer)
        return answer


class _ListSink:
    """Minimal private sink capturing the replay's own event stream."""

    def __init__(self):
        self.events: list[dict] = []

    def write(self, event: dict) -> None:
        self.events.append(event)

    def close(self) -> None:  # EventSink protocol
        pass


#: session-report keys compared between recorded and replayed runs
#: (wall time is excluded — it can never reproduce)
_COMPARED_REPORT_KEYS = (
    "localized",
    "bug_unit",
    "queries",
    "user_questions",
    "auto_answers",
    "interactions_saved",
    "slices",
    "uncertain",
    "partial",
)


def replay_journal(
    journal: Journal,
    backend: str | None = None,
) -> ReplayReport:
    """Re-run the debug session a journal recorded; verify the transcript.

    ``backend`` overrides the recorded execution backend — replaying an
    interpreter-recorded session on the compiled backend (or vice versa)
    is the strongest conformance check the system has.
    """
    from repro import obs

    meta = journal.meta or {}
    source = meta.get("source")
    if not source:
        raise JournalError(
            "journal metadata carries no program source; "
            "record with --journal on a program-running command"
        )
    recorded_queries = journal.queries()
    if not recorded_queries:
        raise JournalError("journal records no debug queries; nothing to replay")
    traces = journal.traces()
    if not traces:
        raise JournalError("journal records no trace construction")
    # The session's own trace is the first one recorded: the target
    # program is traced before any reference oracle builds its trace.
    recorded_trace = traces[0]
    recorded_root = recorded_trace.get("root")
    if recorded_root is None:
        raise JournalError("journal trace record carries no root node id")
    recorded_verdicts = journal.verdicts()
    recorded_session = journal.session()

    strategy = meta.get("strategy") or "top-down"
    if strategy not in available_strategies():
        raise JournalError(
            f"journal was recorded under strategy {strategy!r}, which this "
            f"build does not provide (available: "
            f"{', '.join(available_strategies())})"
        )

    backend_used = backend or meta.get("backend") or recorded_trace.get("backend")

    was_enabled = obs.enabled()
    obs.enable()
    sink = _ListSink()
    obs.add_sink(sink)
    try:
        system = GadtSystem.from_source(
            source,
            program_inputs=meta.get("inputs"),
            backend=backend_used,
        )
        offset = system.trace.tree.root.node_id - recorded_root
        debugger = ReplayDebugger(
            system.trace,
            recorded_queries,
            offset,
            strategy=strategy,
            enable_slicing=meta.get("enable_slicing", True),
        )
        report = ReplayReport(ok=True, backend=system.trace.backend)
        try:
            result = debugger.debug(
                assume_symptom=meta.get("assume_symptom", True)
            )
        except ReplayDivergence as divergence:
            report.ok = False
            report.queries = debugger.consumed
            report.divergences.append(str(divergence))
            return report

        report.queries = debugger.consumed
        report.bug_unit = result.bug_unit
        report.session_report = result.report()

        if debugger.leftover:
            report.ok = False
            report.divergences.append(
                f"re-run ended early: {debugger.leftover} recorded "
                "query record(s) left unconsumed"
            )

        replayed_verdicts = [
            event for event in sink.events if event.get("kind") == "verdict"
        ]
        report.verdicts = len(replayed_verdicts)
        recorded_seq = [
            (v.get("verdict"), v.get("unit"), v.get("node"))
            for v in recorded_verdicts
        ]
        replayed_seq = [
            (v.get("verdict"), v.get("unit"), v.get("node") - offset)
            for v in replayed_verdicts
        ]
        if recorded_seq != replayed_seq:
            report.ok = False
            length = min(len(recorded_seq), len(replayed_seq))
            detail = f"{len(recorded_seq)} recorded vs {len(replayed_seq)} replayed"
            for index in range(length):
                if recorded_seq[index] != replayed_seq[index]:
                    detail = (
                        f"verdict #{index + 1}: recorded "
                        f"{recorded_seq[index]}, replayed {replayed_seq[index]}"
                    )
                    break
            report.divergences.append(f"verdict transitions differ ({detail})")

        if recorded_session is not None:
            recorded_report = recorded_session.get("report") or {}
            for key in _COMPARED_REPORT_KEYS:
                if recorded_report.get(key) != report.session_report.get(key):
                    report.ok = False
                    report.divergences.append(
                        f"session report field {key!r}: recorded "
                        f"{recorded_report.get(key)!r}, replayed "
                        f"{report.session_report.get(key)!r}"
                    )
        return report
    finally:
        obs.remove_sink(sink)
        if not was_enabled:
            obs.disable()


def replay_file(path: str, backend: str | None = None) -> ReplayReport:
    """Read a journal file and replay it (the ``repro replay`` body)."""
    from repro.obs.journal import read_journal

    journal = read_journal(path)
    if journal.truncated:
        # A torn tail means the recorded session is incomplete; a replay
        # would always "diverge" at the cut, which reads as a debugger
        # regression when the real problem is a crashed writer.
        raise JournalError(
            f"{path}: journal truncated at line {journal.truncated_line} "
            "(writer crashed mid-record?) — an incomplete session cannot "
            "be replayed"
        )
    return replay_journal(journal, backend=backend)
