"""Interaction-session transcripts (the paper's dialogue listings).

"In the interaction sessions presented in this paper, the boldface text
stands for the debugging system's output, and normal text represents
user input." — rendered here as ``> question`` / answer lines, with
non-user answer sources annotated.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field

from repro.core.queries import Answer, AnswerSource, Query


class EventKind(enum.Enum):
    QUESTION = "question"
    SLICE = "slice"
    NOTE = "note"
    LOCALIZED = "localized"


@dataclass(frozen=True)
class Interaction:
    kind: EventKind
    text: str
    answer_text: str = ""
    source: AnswerSource | None = None

    def render(self) -> str:
        if self.kind is EventKind.QUESTION:
            if self.source is AnswerSource.USER:
                return f"{self.text}\n>{self.answer_text}"
            origin = self.source.value if self.source is not None else "auto"
            return f"{self.text}\n  [{self.answer_text} — answered by {origin}]"
        if self.kind is EventKind.SLICE:
            return f"-- slicing: {self.text} --"
        if self.kind is EventKind.LOCALIZED:
            return f"An error has been localized inside the body of {self.text}."
        return f"-- {self.text} --"


@dataclass
class Session:
    """The full record of one debugging session."""

    events: list[Interaction] = field(default_factory=list)

    def ask(self, query: Query, answer: Answer) -> None:
        self.events.append(
            Interaction(
                kind=EventKind.QUESTION,
                text=query.render(),
                answer_text=answer.render(),
                source=answer.source,
            )
        )

    def note_slice(self, description: str) -> None:
        self.events.append(Interaction(kind=EventKind.SLICE, text=description))

    def note(self, text: str) -> None:
        self.events.append(Interaction(kind=EventKind.NOTE, text=text))

    def localized(self, unit_name: str) -> None:
        self.events.append(Interaction(kind=EventKind.LOCALIZED, text=unit_name))

    # ------------------------------------------------------------------

    def user_questions(self) -> list[Interaction]:
        return [
            event
            for event in self.events
            if event.kind is EventKind.QUESTION and event.source is AnswerSource.USER
        ]

    def auto_answers(self) -> list[Interaction]:
        return [
            event
            for event in self.events
            if event.kind is EventKind.QUESTION and event.source is not AnswerSource.USER
        ]

    def render(self) -> str:
        return "\n".join(event.render() for event in self.events) + "\n"

    def __len__(self) -> int:
        return len(self.events)
