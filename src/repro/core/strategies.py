"""Execution-tree search strategies.

The paper uses top-down search ("we use top-down search in this
example", §8) and notes that "generally it doesn't matter which
traversal method is used" — for *correctness*. For the number of
questions it matters a great deal, and the human answering them is the
scarcest resource in the dialogue. This module provides top-down plus
three alternatives:

* **top-down** — ask the children of the currently suspected unit in
  execution order; descend into the first incorrect one;
* **bottom-up** — Shapiro's single-stepping: post-order over the suspect
  subtree, so the first "no" immediately localizes the bug;
* **divide-and-query** — Shapiro's weighted bisection: query the node
  whose subtree weight is closest to half of the remaining suspect
  weight, halving the search space per answer;
* **dq-optimal** — Insa & Silva's *Optimal Divide and Query* (see
  PAPERS.md): query the node that minimizes the worst-case suspect
  weight remaining after either answer, ``max(w(n) - own(n), W - w(n))``
  — a "yes" removes the subtree (``W - w(n)`` left), a "no" narrows the
  search to the subtree minus the judged node itself (``w(n) - own(n)``
  left).

Both weighted strategies share a :class:`WeightIndex`: suspect weights
are computed once per session and maintained incrementally across
judgements and dynamic-slice prunes, instead of being re-derived from
the tree on every query. Weights are pluggable — the default charges
one unit per suspect activation; :func:`step_weight` charges the steps
executed directly in the activation, matching the per-unit step
attribution of :mod:`repro.obs.profiler`.

A strategy never sees answers directly — only the judgement map
(node id → correct?) maintained by the debugger.
"""

from __future__ import annotations

import heapq
from typing import Callable, Protocol

from repro.slicing.tree_pruning import TreeView
from repro.tracing.execution_tree import ExecNode


class Strategy(Protocol):
    name: str

    def next_query(
        self,
        view: TreeView,
        current_bug: ExecNode,
        judgements: dict[int, bool],
    ) -> ExecNode | None:
        """The next node to ask about, or None when the bug is localized
        at ``current_bug`` (all relevant sub-computations judged correct)."""


def _undecided_children(
    view: TreeView, node: ExecNode, judgements: dict[int, bool]
) -> list[ExecNode]:
    return [
        child
        for child in view.children(node)
        if judgements.get(child.node_id) is None
    ]


def _suspects(
    view: TreeView, current_bug: ExecNode, judgements: dict[int, bool]
) -> list[ExecNode]:
    """Descendants of ``current_bug`` still possibly containing the bug:
    unjudged nodes not under a judged-correct subtree (pre-order)."""
    result: list[ExecNode] = []

    def visit(node: ExecNode) -> None:
        for child in view.children(node):
            verdict = judgements.get(child.node_id)
            if verdict is True:
                continue  # correct: the whole subtree is exonerated
            if verdict is None:
                result.append(child)
            visit(child)

    visit(current_bug)
    return result


# ----------------------------------------------------------------------
# node weights


def activation_weight(node: ExecNode) -> int:
    """Default weight model: every suspect activation costs one question."""
    return 1


def step_weight(node: ExecNode) -> int:
    """Execution-effort weight: statement occurrences executed directly
    in the activation, as :mod:`repro.obs.profiler` attributes them.
    Clamped to 1 so structural nodes still carry search weight."""
    return max(1, len(node.occurrence_ids))


class WeightIndex:
    """Incremental suspect-weight index over a :class:`TreeView`.

    ``w(n)`` is the summed weight of suspect activations in the subtree
    of ``n`` restricted to the view — activations that are unjudged and
    not underneath a judged-correct one. The index is built with one
    walk of the view at the start of a session and then *maintained*:

    * a judgement subtracts along the judged node's ancestor path (a
      judged-correct subtree is subtracted wholesale, in one pass);
    * a slice-prune — the debugger swapping in a smaller ``TreeView``
      after a dynamic slice — subtracts exactly the activations the
      slice removed, each along its ancestor path.

    Subtractions stop at judged-correct subtree roots: everything below
    one was already discounted from the live totals, so weights above
    stay exact while stale interior values are simply never read.

    Candidate selection walks the heavy path: per-node lazy max-heaps
    over child weights make "heaviest undecided child" a pop away, so a
    query touches O(path) nodes instead of re-weighing every suspect.
    Weights only ever decrease, so stale heap entries are detected by
    value mismatch and dropped on sight.

    ``node_visits`` counts every node touch — build walks, path
    updates, heap traffic — so tests can pin the complexity.
    """

    def __init__(self, weight_fn: Callable[[ExecNode], int] | None = None):
        self._weight_fn = weight_fn or activation_weight
        self.node_visits = 0
        self._view: TreeView | None = None
        self._w: dict[int, int] = {}
        self._own: dict[int, int] = {}
        self._nodes: dict[int, ExecNode] = {}
        self._settled: set[int] = set()  # own weight no longer counted
        self._blocked: set[int] = set()  # judged-correct subtree roots
        self._processed: set[int] = set()  # judgement ids already applied
        self._heaps: dict[int, list] = {}

    # -- maintenance ----------------------------------------------------

    def sync(
        self,
        view: TreeView,
        current_bug: ExecNode,
        judgements: dict[int, bool],
    ) -> None:
        """Bring the index up to date with the debugger's state."""
        if (
            self._view is None
            or len(self._processed) > len(judgements)
            or any(nid not in judgements for nid in self._processed)
        ):
            self._build(view, current_bug, judgements)
            return
        if len(judgements) > len(self._processed):
            self._apply_judgements(judgements)
        if view is not self._view:
            if view.root.node_id not in self._w:
                self._build(view, current_bug, judgements)
                return
            self._apply_view(view)
        if current_bug.node_id not in self._w:
            self._build(view, current_bug, judgements)

    def _build(
        self,
        view: TreeView,
        current_bug: ExecNode,
        judgements: dict[int, bool],
    ) -> None:
        self._view = view
        self._w.clear()
        self._own.clear()
        self._nodes.clear()
        self._settled = set()
        self._blocked = set()
        self._heaps = {}
        self._processed = set(judgements)

        def visit(node: ExecNode) -> int:
            self.node_visits += 1
            nid = node.node_id
            self._nodes[nid] = node
            verdict = judgements.get(nid)
            if verdict is True:
                self._blocked.add(nid)
                self._settled.add(nid)
                self._own[nid] = self._own_weight(node)
                self._w[nid] = 0
                return 0
            own = self._own_weight(node)
            self._own[nid] = own
            total = 0
            if verdict is None:
                total += own
            else:
                self._settled.add(nid)
            for child in view.children(node):
                total += visit(child)
            self._w[nid] = total
            return total

        visit(view.root)
        if current_bug.node_id not in self._w:
            # Pathological use: the current bug sits outside the view's
            # walk. Weigh its subtree so the session can still proceed.
            visit(current_bug)

    def _own_weight(self, node: ExecNode) -> int:
        # Clamp to >= 1: weights must strictly decrease down the tree
        # for the heavy-path selection to enumerate every candidate.
        return max(1, int(self._weight_fn(node)))

    def _apply_judgements(self, judgements: dict[int, bool]) -> None:
        for nid, verdict in judgements.items():
            if nid in self._processed:
                continue
            self._processed.add(nid)
            if nid not in self._w:
                continue
            node = self._node_of(nid)
            if verdict is True:
                delta = self._w[nid]
                self._blocked.add(nid)
                self._settled.add(nid)
                self._w[nid] = 0
                if delta and node is not None:
                    self._subtract_above(node, delta)
            elif nid not in self._settled:
                self._settled.add(nid)
                if node is not None:
                    self._w[nid] -= self._own[nid]
                    self._push(node)
                    self._subtract_above(node, self._own[nid])

    def _apply_view(self, new_view: TreeView) -> None:
        """Observe a slice-prune: subtract the activations the new view
        dropped, each along its ancestor path."""
        old_view = self._view
        assert old_view is not None
        reachable: set[int] = set()
        for node in new_view.walk():
            self.node_visits += 1
            reachable.add(node.node_id)

        def visit(node: ExecNode) -> None:
            self.node_visits += 1
            nid = node.node_id
            if nid in self._blocked:
                return  # already discounted wholesale
            if nid not in reachable:
                self._remove(node)
            for child in old_view.children(node):
                visit(child)

        visit(new_view.root)
        self._view = new_view

    def _remove(self, node: ExecNode) -> None:
        nid = node.node_id
        if nid in self._settled:
            return
        self._settled.add(nid)
        own = self._own[nid]
        self._w[nid] -= own
        self._subtract_above(node, own)

    def _subtract_above(self, node: ExecNode, delta: int) -> None:
        parent = node.parent
        while parent is not None:
            pid = parent.node_id
            if pid not in self._w or pid in self._blocked:
                break
            self.node_visits += 1
            self._w[pid] -= delta
            self._push(parent)
            parent = parent.parent

    def _push(self, node: ExecNode) -> None:
        parent = node.parent
        if parent is None:
            return
        heap = self._heaps.get(parent.node_id)
        if heap is not None:
            self.node_visits += 1
            heapq.heappush(heap, (-self._w[node.node_id], node.node_id, node))

    def _node_of(self, nid: int) -> ExecNode | None:
        return self._nodes.get(nid)

    # -- selection ------------------------------------------------------

    def suspect_weight(self, current_bug: ExecNode) -> int:
        """Total weight of the suspects strictly below ``current_bug``."""
        nid = current_bug.node_id
        total = self._w.get(nid, 0)
        if nid not in self._settled and nid in self._own:
            total -= self._own[nid]
        return total

    def best_candidate(
        self,
        current_bug: ExecNode,
        key_fn: Callable[[ExecNode, int, int, int], tuple],
    ) -> ExecNode | None:
        """The suspect minimizing ``key_fn(node, w, own, total)``.

        Walks the heavy path from ``current_bug``: at every node on it,
        the children are popped heaviest-first until one falls below
        half the remaining weight, each popped child is scored, and the
        walk descends into the heaviest child still at or above half.
        For any key that is non-increasing in ``w`` below the midpoint
        (both bisection rules are), the optimum is always among the
        scored nodes: heavier-than-half suspects form a single chain,
        and any unscored suspect is dominated by a scored ancestor.
        """
        total = self.suspect_weight(current_bug)
        if total <= 0:
            return None
        target = total / 2
        best: ExecNode | None = None
        best_key: tuple | None = None
        node: ExecNode | None = current_bug
        while node is not None:
            heap = self._heap_for(node)
            popped = []
            while True:
                entry = self._pop_valid(heap)
                if entry is None:
                    break
                popped.append(entry)
                weight, child = -entry[0], entry[2]
                key = key_fn(child, weight, self._own[child.node_id], total)
                if best_key is None or key < best_key:
                    best_key, best = key, child
                if weight < target:
                    break
            for entry in popped:
                heapq.heappush(heap, entry)
            node = None
            if popped and -popped[0][0] >= target:
                node = popped[0][2]  # heaviest child: keep descending
        return best

    def _heap_for(self, node: ExecNode) -> list:
        heap = self._heaps.get(node.node_id)
        if heap is None:
            assert self._view is not None
            heap = []
            for child in self._view.children(node):
                self.node_visits += 1
                weight = self._w.get(child.node_id)
                if weight:
                    heap.append((-weight, child.node_id, child))
            heapq.heapify(heap)
            self._heaps[node.node_id] = heap
        return heap

    def _pop_valid(self, heap: list):
        """Pop the heaviest live entry; drop stale ones permanently."""
        while heap:
            self.node_visits += 1
            neg_weight, nid, _node = heap[0]
            if (
                nid in self._settled
                or nid in self._blocked
                or self._w.get(nid) != -neg_weight
                or neg_weight >= 0
            ):
                heapq.heappop(heap)
                continue
            return heapq.heappop(heap)
        return None


class TopDownStrategy:
    """The paper's strategy: children in execution order, descend on 'no'."""

    name = "top-down"

    def next_query(
        self,
        view: TreeView,
        current_bug: ExecNode,
        judgements: dict[int, bool],
    ) -> ExecNode | None:
        children = _undecided_children(view, current_bug, judgements)
        return children[0] if children else None


class BottomUpStrategy:
    """Post-order single-stepping from the leaves."""

    name = "bottom-up"

    def next_query(
        self,
        view: TreeView,
        current_bug: ExecNode,
        judgements: dict[int, bool],
    ) -> ExecNode | None:
        def visit(node: ExecNode) -> ExecNode | None:
            for child in view.children(node):
                verdict = judgements.get(child.node_id)
                if verdict is True:
                    continue
                found = visit(child)
                if found is not None:
                    return found
                if verdict is None:
                    return child
            return None

        return visit(current_bug)


class _WeightedBisectionStrategy:
    """Shared machinery for the weighted strategies: one
    :class:`WeightIndex` per session, synced on every query."""

    def __init__(self, weights: Callable[[ExecNode], int] | None = None):
        self.index = WeightIndex(weights)

    @property
    def node_visits(self) -> int:
        """Cumulative node touches — complexity telemetry for tests."""
        return self.index.node_visits

    def next_query(
        self,
        view: TreeView,
        current_bug: ExecNode,
        judgements: dict[int, bool],
    ) -> ExecNode | None:
        self.index.sync(view, current_bug, judgements)
        return self.index.best_candidate(current_bug, self._key)

    @staticmethod
    def _key(node: ExecNode, weight: int, own: int, total: int) -> tuple:
        raise NotImplementedError


class DivideAndQueryStrategy(_WeightedBisectionStrategy):
    """Shapiro's divide-and-query: ask the suspect whose subtree weight
    is closest to half the remaining suspect weight."""

    name = "divide-and-query"

    @staticmethod
    def _key(node: ExecNode, weight: int, own: int, total: int) -> tuple:
        # On equidistant candidates prefer the heavier subtree: it is
        # the one containing the mid-weight point of the suspect set.
        # The corpus sweep (benchmarks/run_corpus.py) caught the old
        # node-id tie-break letting classic D&Q beat dq-optimal by luck
        # on small trees, which broke the documented dominance
        # invariant; with this tie-break, classic's choice coincides
        # with dq-optimal's whenever every activation weighs 1.
        return (abs(weight - total / 2), -weight, node.node_id)


class OptimalDivideAndQueryStrategy(_WeightedBisectionStrategy):
    """Insa & Silva's optimal divide-and-query: ask the suspect that
    minimizes the worst case over both answers — ``W - w(n)`` suspects
    survive a "yes", ``w(n) - own(n)`` survive a "no" (the judged node
    leaves the suspect set either way)."""

    name = "dq-optimal"

    @staticmethod
    def _key(node: ExecNode, weight: int, own: int, total: int) -> tuple:
        # Worst case first; on ties prefer the lighter subtree — a "no"
        # then leaves the smaller suspect set to keep dividing.
        return (max(weight - own, total - weight), weight, node.node_id)


_STRATEGIES = {
    "top-down": TopDownStrategy,
    "bottom-up": BottomUpStrategy,
    "divide-and-query": DivideAndQueryStrategy,
    "dq-optimal": OptimalDivideAndQueryStrategy,
}


def make_strategy(name: str) -> Strategy:
    """Build a strategy by name (see :func:`available_strategies`)."""
    try:
        return _STRATEGIES[name]()
    except KeyError:
        raise ValueError(
            f"unknown strategy {name!r}; choose from {sorted(_STRATEGIES)}"
        ) from None


def available_strategies() -> list[str]:
    return sorted(_STRATEGIES)
