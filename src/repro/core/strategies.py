"""Execution-tree search strategies.

The paper uses top-down search ("we use top-down search in this
example", §8) and notes that "generally it doesn't matter which
traversal method is used". This module provides top-down plus two
classic alternatives as ablations:

* **top-down** — ask the children of the currently suspected unit in
  execution order; descend into the first incorrect one;
* **bottom-up** — Shapiro's single-stepping: post-order over the suspect
  subtree, so the first "no" immediately localizes the bug;
* **divide-and-query** — Shapiro's weighted bisection: query the node
  whose subtree is closest to half of the remaining suspect weight,
  halving the search space per answer.

A strategy never sees answers directly — only the judgement map
(node id → correct?) maintained by the debugger.
"""

from __future__ import annotations

from typing import Protocol

from repro.slicing.tree_pruning import TreeView
from repro.tracing.execution_tree import ExecNode


class Strategy(Protocol):
    name: str

    def next_query(
        self,
        view: TreeView,
        current_bug: ExecNode,
        judgements: dict[int, bool],
    ) -> ExecNode | None:
        """The next node to ask about, or None when the bug is localized
        at ``current_bug`` (all relevant sub-computations judged correct)."""


def _undecided_children(
    view: TreeView, node: ExecNode, judgements: dict[int, bool]
) -> list[ExecNode]:
    return [
        child
        for child in view.children(node)
        if judgements.get(child.node_id) is None
    ]


def _suspects(
    view: TreeView, current_bug: ExecNode, judgements: dict[int, bool]
) -> list[ExecNode]:
    """Descendants of ``current_bug`` still possibly containing the bug:
    unjudged nodes not under a judged-correct subtree (pre-order)."""
    result: list[ExecNode] = []

    def visit(node: ExecNode) -> None:
        for child in view.children(node):
            verdict = judgements.get(child.node_id)
            if verdict is True:
                continue  # correct: the whole subtree is exonerated
            if verdict is None:
                result.append(child)
            visit(child)

    visit(current_bug)
    return result


class TopDownStrategy:
    """The paper's strategy: children in execution order, descend on 'no'."""

    name = "top-down"

    def next_query(
        self,
        view: TreeView,
        current_bug: ExecNode,
        judgements: dict[int, bool],
    ) -> ExecNode | None:
        children = _undecided_children(view, current_bug, judgements)
        return children[0] if children else None


class BottomUpStrategy:
    """Post-order single-stepping from the leaves."""

    name = "bottom-up"

    def next_query(
        self,
        view: TreeView,
        current_bug: ExecNode,
        judgements: dict[int, bool],
    ) -> ExecNode | None:
        def visit(node: ExecNode) -> ExecNode | None:
            for child in view.children(node):
                verdict = judgements.get(child.node_id)
                if verdict is True:
                    continue
                found = visit(child)
                if found is not None:
                    return found
                if verdict is None:
                    return child
            return None

        return visit(current_bug)


class DivideAndQueryStrategy:
    """Shapiro's divide-and-query: bisect the suspect weight."""

    name = "divide-and-query"

    def next_query(
        self,
        view: TreeView,
        current_bug: ExecNode,
        judgements: dict[int, bool],
    ) -> ExecNode | None:
        suspects = _suspects(view, current_bug, judgements)
        if not suspects:
            return None
        suspect_ids = {node.node_id for node in suspects}

        def weight(node: ExecNode) -> int:
            total = 1 if node.node_id in suspect_ids else 0
            for child in view.children(node):
                if judgements.get(child.node_id) is True:
                    continue
                total += weight(child)
            return total

        total_weight = len(suspects)
        target = total_weight / 2
        best = min(
            suspects,
            key=lambda node: (abs(weight(node) - target), node.node_id),
        )
        return best


_STRATEGIES = {
    "top-down": TopDownStrategy,
    "bottom-up": BottomUpStrategy,
    "divide-and-query": DivideAndQueryStrategy,
}


def make_strategy(name: str) -> Strategy:
    """Build a strategy by name: top-down, bottom-up, or divide-and-query."""
    try:
        return _STRATEGIES[name]()
    except KeyError:
        raise ValueError(
            f"unknown strategy {name!r}; choose from {sorted(_STRATEGIES)}"
        ) from None


def available_strategies() -> list[str]:
    return sorted(_STRATEGIES)
