"""Transparent debugging relative to the original program (paper §6.1).

"Despite the fact that the program is transformed into an internal form,
the debugger still presents the original program when interacting with
the user."

Given a debugging result obtained on the *transformed* program, this
module maps the localized unit back through the pipeline's source map
and renders the source the user actually wrote — the final "an error has
been localized inside the body of ..." report shows the original
procedure, not the parameter-threaded internal form.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.pascal import ast_nodes as ast
from repro.pascal.pretty import print_routine, print_statement
from repro.tracing.execution_tree import ExecNode, NodeKind
from repro.transform.pipeline import TransformedProgram


@dataclass(frozen=True)
class UnitSource:
    """The original-source rendering of one localized unit."""

    unit_name: str
    kind: str  # "routine", "loop", or "program"
    source: str
    location_line: int = 0

    def render(self) -> str:
        header = f"-- original source of {self.unit_name}"
        if self.location_line:
            header += f" (line {self.location_line})"
        return f"{header} --\n{self.source}"


class TransparencyMap:
    """Maps transformed-program constructs back to original source."""

    def __init__(self, transformed: TransformedProgram):
        self.transformed = transformed
        self._original_index: dict[int, ast.Node] = {
            node.node_id: node
            for node in transformed.original_analysis.program.walk()
        }

    # ------------------------------------------------------------------

    def original_node(self, transformed_id: int) -> ast.Node | None:
        """The original AST node a transformed construct descends from."""
        original_id = self.transformed.original_node_id(transformed_id)
        if original_id is None:
            return None
        return self._original_index.get(original_id)

    def original_routine_decl(self, unit_name: str) -> ast.RoutineDecl | None:
        """The original declaration of a routine, by (transformed) name."""
        try:
            info = self.transformed.analysis.routine_named(unit_name)
        except KeyError:
            return None
        if not isinstance(info.decl, ast.RoutineDecl):
            return None
        original = self.original_node(info.decl.node_id)
        if isinstance(original, ast.RoutineDecl):
            return original
        return None

    def original_loop_stmt(self, loop_stmt_id: int) -> ast.Stmt | None:
        """The original loop statement behind a loop unit."""
        original = self.original_node(loop_stmt_id)
        if isinstance(original, ast.Stmt):
            return original
        return None

    # ------------------------------------------------------------------

    def unit_source(self, node: ExecNode) -> UnitSource:
        """Original source for an execution-tree node's unit."""
        if node.kind is NodeKind.MAIN:
            program = self.transformed.original_analysis.program
            from repro.pascal.pretty import print_program

            return UnitSource(
                unit_name=node.unit_name,
                kind="program",
                source=print_program(program),
                location_line=program.location.line,
            )
        if node.kind in (NodeKind.LOOP, NodeKind.ITERATION):
            assert node.loop_stmt_id is not None
            stmt = self.original_loop_stmt(node.loop_stmt_id)
            if stmt is None:
                # Fall back to the transformed loop (still informative).
                stmt = self._transformed_stmt(node.loop_stmt_id)
            assert stmt is not None
            return UnitSource(
                unit_name=node.unit_name,
                kind="loop",
                source=print_statement(stmt),
                location_line=stmt.location.line,
            )
        decl = self.original_routine_decl(node.unit_name)
        if decl is None:
            # Untransformed program: the transformed decl *is* original.
            info = self.transformed.analysis.routine_named(node.unit_name)
            assert isinstance(info.decl, ast.RoutineDecl)
            decl = info.decl
        return UnitSource(
            unit_name=node.unit_name,
            kind="routine",
            source=print_routine(decl),
            location_line=decl.location.line,
        )

    def _transformed_stmt(self, stmt_id: int) -> ast.Stmt | None:
        for node in self.transformed.analysis.program.walk():
            if node.node_id == stmt_id and isinstance(node, ast.Stmt):
                return node
        return None
