"""``repro.obs`` — observability for the GADT pipeline.

The paper's headline claim is a *count*: integrating assertions, the
category-partition test database, and dynamic slicing reduces the
number of user interactions during bug localization (§5–§8). This
package makes that count — and the machine cost behind it — first-class:

* **spans** (:func:`span`) — nested ``perf_counter`` timers over the
  pipeline phases (per-transform-pass, tracing, slicing, the debug
  search);
* **metrics** (:func:`add`, :func:`set_gauge`, :func:`set_max_gauge`,
  :func:`observe`) — a process-local registry of counters, gauges, and
  histograms (:mod:`repro.obs.metrics`);
* **events** (:func:`emit`) — a stream of structured records (every
  span end, every debug query tagged with its answer source, every
  slice, every mutant outcome) fanned out to pluggable sinks: an
  in-memory ring buffer plus an optional JSONL file writer
  (:mod:`repro.obs.events`).

Observability is **off by default** and zero-overhead when off: every
public helper starts with one module-global flag test and returns
immediately (``span`` hands back a shared no-op span), following the
null-hook pattern the interpreter uses for its execution hooks.
Instrumentation sites are phase/query-granular — never per executed
statement — so even the enabled path costs microseconds per pipeline
run.

Typical use::

    from repro import obs

    obs.enable()
    system = GadtSystem.from_source(source)          # spans + counters
    result = system.debugger(oracle).debug()         # query events
    print(obs.report.render_summary(obs.snapshot()))
    obs.disable()
"""

from __future__ import annotations

from repro.obs import events as _events
from repro.obs import metrics as _metrics
from repro.obs import report
from repro.obs import spans as _spans
from repro.obs.events import EventSink, JsonlFileSink, RingBufferSink
from repro.obs.metrics import REGISTRY, Counter, Gauge, Histogram, MetricsRegistry
from repro.obs.spans import NULL_SPAN, NullSpan, Span, current_span_id

__all__ = [
    "Counter",
    "EventSink",
    "Gauge",
    "Histogram",
    "JsonlFileSink",
    "MetricsRegistry",
    "NullSpan",
    "REGISTRY",
    "RingBufferSink",
    "Span",
    "add",
    "add_sink",
    "current_span_id",
    "disable",
    "emit",
    "enable",
    "enabled",
    "events",
    "observe",
    "remove_sink",
    "report",
    "reset",
    "set_gauge",
    "set_max_gauge",
    "snapshot",
    "span",
]

_ENABLED = False

#: the ring buffer installed by :func:`enable` (None while disabled)
_RING: RingBufferSink | None = None


def enabled() -> bool:
    """Whether instrumentation is currently recording."""
    return _ENABLED


def enable(ring_capacity: int = 4096) -> None:
    """Turn instrumentation on, installing the in-memory ring buffer."""
    global _ENABLED, _RING
    if _RING is None:
        _RING = RingBufferSink(capacity=ring_capacity)
        _events.SINKS.append(_RING)
    _ENABLED = True


def disable() -> None:
    """Stop recording. Registered metrics and sinks are kept (so numbers
    remain readable); :func:`reset` drops them."""
    global _ENABLED
    _ENABLED = False


def reset() -> None:
    """Clear all metrics, events, sinks, and open spans (test isolation;
    the CLI calls this before each profiled invocation)."""
    global _RING

    _metrics.REGISTRY.reset()
    for sink in _events.SINKS:
        sink.close()
    _events.SINKS.clear()
    _events.reset_seq()
    _spans.reset_stack()
    _RING = None
    if _ENABLED:  # re-install the ring buffer for the next recording
        enable()


# ----------------------------------------------------------------------
# sinks


def add_sink(sink: EventSink) -> EventSink:
    _events.SINKS.append(sink)
    return sink


def remove_sink(sink: EventSink) -> None:
    if sink in _events.SINKS:
        _events.SINKS.remove(sink)


def events() -> list[dict]:
    """The ring buffer's current contents (empty while never enabled)."""
    return _RING.events() if _RING is not None else []


# ----------------------------------------------------------------------
# instrumentation entry points (all gated on the enabled flag)


def span(name: str, **attrs: object) -> Span | NullSpan:
    """A context-managed timer; the shared no-op span when disabled."""
    if not _ENABLED:
        return NULL_SPAN
    return Span(name, attrs or None)


def add(name: str, amount: int = 1) -> None:
    """Increment the counter ``name``."""
    if _ENABLED:
        _metrics.REGISTRY.counter(name).add(amount)


def set_gauge(name: str, value: float) -> None:
    if _ENABLED:
        _metrics.REGISTRY.gauge(name).set(value)


def set_max_gauge(name: str, value: float) -> None:
    """Raise the gauge ``name`` to ``value`` if it is a new peak."""
    if _ENABLED:
        _metrics.REGISTRY.gauge(name).set_max(value)


def observe(name: str, value: float, unit: str = "") -> None:
    """Record ``value`` into the histogram ``name``."""
    if _ENABLED:
        _metrics.REGISTRY.histogram(name, unit=unit).observe(value)


def emit(kind: str, **fields: object) -> None:
    """Send one structured event to every sink.

    Events emitted while a span is open are stamped with that span's
    ``span_id``, linking them into the causal chain the journal records
    (a ``query`` event points at its ``debug.session`` span, a ``cache``
    event at the phase that hit the cache, ...).
    """
    if _ENABLED:
        if _spans._STACK and "span_id" not in fields:
            fields["span_id"] = _spans._STACK[-1].span_id
        _events.broadcast(kind, fields)


def snapshot(include_cache: bool = True) -> dict:
    """JSON-ready dump of the registry, plus the content-cache counters
    (:func:`repro.cache.cache_stats`) so one document carries both."""
    data = _metrics.REGISTRY.snapshot()
    if include_cache:
        from repro import cache as _cache

        data["cache"] = _cache.cache_stats()
    return data
