"""Pluggable event sinks: a ring buffer and a JSONL file writer.

Every observability event is one flat JSON-ready dict with three
standard fields — ``seq`` (monotonic per process), ``ts`` (Unix time),
``kind`` (``"span"`` / ``"query"`` / ``"slice"`` / ``"session"`` /
``"mutant"``) — plus kind-specific fields documented in
``docs/OBSERVABILITY.md``. Sinks receive the same dict object; they must
not mutate it.

The ring buffer is the default sink (installed by
:func:`repro.obs.enable`) so recent events are always inspectable
in-process; the JSONL writer streams events to a file for offline
analysis (``repro debug ... --events out.jsonl``). Writes flush
immediately: event volume is phase- and query-granular, never
per-statement, so durability wins over buffering.
"""

from __future__ import annotations

import json
import os
import sys
import threading
import time
from collections import deque
from typing import IO


def _fire_write_fault(path: str):
    """Consult the fault-injection plan if the resilience layer is
    loaded (``sys.modules`` probe keeps this module import-light)."""
    faults = sys.modules.get("repro.resilience.faults")
    if faults is None:
        return None
    return faults.fire("sink.write", key=path)


def _count_sink_error() -> None:
    obs = sys.modules.get("repro.obs")
    if obs is not None:
        obs.add("resilience.sink_errors")


class EventSink:
    """Interface: override :meth:`write` (and optionally :meth:`close`)."""

    def write(self, event: dict) -> None:
        raise NotImplementedError

    def close(self) -> None:
        """Release any resources (file handles); idempotent."""


class RingBufferSink(EventSink):
    """Keeps the most recent ``capacity`` events in memory."""

    def __init__(self, capacity: int = 4096):
        self.capacity = capacity
        self._buffer: deque[dict] = deque(maxlen=capacity)

    def write(self, event: dict) -> None:
        self._buffer.append(event)

    def events(self) -> list[dict]:
        return list(self._buffer)

    def clear(self) -> None:
        self._buffer.clear()

    def __len__(self) -> int:
        return len(self._buffer)


class JsonlFileSink(EventSink):
    """Appends one JSON object per line to ``path``.

    **Fault tolerance**: a failed write (``OSError`` — disk full,
    revoked handle, or the ``sink.write`` injection point) never
    propagates into the pipeline; it is counted in ``errors`` (and the
    ``resilience.sink_errors`` metric), and after ``max_errors``
    consecutive failures the sink degrades to a no-op so a dead disk
    cannot slow every event.

    **Atomic mode**: with ``atomic=True`` events stream to
    ``<path>.part`` and the finished file is published to ``path`` with
    ``os.replace`` on :meth:`close` — downstream consumers see either
    the complete event log or none, never a torn one.
    """

    def __init__(self, path: str, atomic: bool = False, max_errors: int = 8):
        self.path = path
        self.atomic = atomic
        self.max_errors = max_errors
        self.errors = 0
        self._write_path = f"{path}.part" if atomic else path
        self._handle: IO[str] | None = open(self._write_path, "w", encoding="utf-8")
        # Serializes writes from concurrent emitters (worker aggregation
        # threads, the future debug service): each event lands as one
        # whole line, so the file is always valid JSONL.
        self._lock = threading.Lock()

    @property
    def degraded(self) -> bool:
        """True once the sink gave up after ``max_errors`` failures."""
        return self._handle is None and self.errors >= self.max_errors

    def write(self, event: dict) -> None:
        with self._lock:
            if self._handle is None:
                return
            try:
                spec = _fire_write_fault(self.path)
                if spec is not None:
                    raise OSError(f"{spec.message} [sink.write]")
                self._handle.write(json.dumps(event, default=str) + "\n")
                self._handle.flush()
            except OSError:
                self.errors += 1
                _count_sink_error()
                if self.errors >= self.max_errors:
                    try:
                        self._handle.close()
                    except OSError:
                        pass
                    self._handle = None

    def close(self) -> None:
        with self._lock:
            if self._handle is not None:
                try:
                    self._handle.close()
                except OSError:
                    pass
                self._handle = None
                if self.atomic:
                    try:
                        os.replace(self._write_path, self.path)
                    except OSError:
                        pass


#: currently attached sinks (managed via repro.obs.add_sink/remove_sink)
SINKS: list[EventSink] = []

_seq = 0
_SEQ_LOCK = threading.Lock()


def broadcast(kind: str, fields: dict) -> None:
    """Stamp ``seq``/``ts``/``kind`` onto ``fields`` and fan out to sinks.

    Unconditional: enabled-gating happens at the instrumentation sites
    (:func:`repro.obs.emit` and live spans), not here. With no sinks
    registered the event dict is never built — callers on hot paths can
    rely on a sink-less broadcast being one list test. The seq stamp and
    the fan-out happen under one lock, so concurrent emitters produce a
    strictly ordered, gap-free sequence in every sink.
    """
    if not SINKS:
        return
    global _seq
    with _SEQ_LOCK:
        _seq += 1
        event = {"seq": _seq, "ts": time.time(), "kind": kind}
        event.update(fields)
        for sink in list(SINKS):
            sink.write(event)


def reset_seq() -> None:
    global _seq
    with _SEQ_LOCK:
        _seq = 0
