"""Pluggable event sinks: a ring buffer and a JSONL file writer.

Every observability event is one flat JSON-ready dict with three
standard fields — ``seq`` (monotonic per process), ``ts`` (Unix time),
``kind`` (``"span"`` / ``"query"`` / ``"slice"`` / ``"session"`` /
``"mutant"``) — plus kind-specific fields documented in
``docs/OBSERVABILITY.md``. Sinks receive the same dict object; they must
not mutate it.

The ring buffer is the default sink (installed by
:func:`repro.obs.enable`) so recent events are always inspectable
in-process; the JSONL writer streams events to a file for offline
analysis (``repro debug ... --events out.jsonl``). Writes flush
immediately: event volume is phase- and query-granular, never
per-statement, so durability wins over buffering.
"""

from __future__ import annotations

import json
import time
from collections import deque
from typing import IO


class EventSink:
    """Interface: override :meth:`write` (and optionally :meth:`close`)."""

    def write(self, event: dict) -> None:
        raise NotImplementedError

    def close(self) -> None:
        """Release any resources (file handles); idempotent."""


class RingBufferSink(EventSink):
    """Keeps the most recent ``capacity`` events in memory."""

    def __init__(self, capacity: int = 4096):
        self.capacity = capacity
        self._buffer: deque[dict] = deque(maxlen=capacity)

    def write(self, event: dict) -> None:
        self._buffer.append(event)

    def events(self) -> list[dict]:
        return list(self._buffer)

    def clear(self) -> None:
        self._buffer.clear()

    def __len__(self) -> int:
        return len(self._buffer)


class JsonlFileSink(EventSink):
    """Appends one JSON object per line to ``path``."""

    def __init__(self, path: str):
        self.path = path
        self._handle: IO[str] | None = open(path, "w", encoding="utf-8")

    def write(self, event: dict) -> None:
        if self._handle is None:
            return
        self._handle.write(json.dumps(event, default=str) + "\n")
        self._handle.flush()

    def close(self) -> None:
        if self._handle is not None:
            self._handle.close()
            self._handle = None


#: currently attached sinks (managed via repro.obs.add_sink/remove_sink)
SINKS: list[EventSink] = []

_seq = 0


def broadcast(kind: str, fields: dict) -> None:
    """Stamp ``seq``/``ts``/``kind`` onto ``fields`` and fan out to sinks.

    Unconditional: enabled-gating happens at the instrumentation sites
    (:func:`repro.obs.emit` and live spans), not here.
    """
    global _seq
    _seq += 1
    event = {"seq": _seq, "ts": time.time(), "kind": kind}
    event.update(fields)
    for sink in SINKS:
        sink.write(event)


def reset_seq() -> None:
    global _seq
    _seq = 0
