"""Chrome trace-event export: journals viewable in ui.perfetto.dev.

Converts a recorded journal (or a plain ``--events`` capture) into the
Chrome trace-event JSON format — the lingua franca of Perfetto, chrome
://tracing, and speedscope:

* **span** records become ``"X"`` (complete) events: the span event is
  emitted at span *end* and carries ``duration_s``, so the begin
  timestamp is ``ts - duration_s``; nesting re-assembles visually from
  the overlap on the main track;
* **query / slice / verdict / budget / trace / session** records become
  ``"i"`` (instant) markers on the main track, with every field in
  ``args`` for the inspection panel;
* **cache** records become ``"C"`` (counter) samples — running
  hit/miss totals drawn as a stacked area chart;
* **mutant** records are laid out as separate **sweep worker tracks**:
  outcomes are aggregated after the sweep ends (the crash-isolation
  pool reports no per-worker timeline), so each mutant's ``seconds``
  slice is greedily packed onto the first free worker lane inside the
  ``mutants.evaluate`` span window — a faithful shape of the sweep's
  parallelism, reconstructed from what the journal carries;
* ``"M"`` metadata events name the process and every track.

Timestamps are microseconds rebased to the earliest event, so the
viewport opens on the session rather than on the Unix epoch.
"""

from __future__ import annotations

import json
from pathlib import Path

from repro.obs.journal import Journal, read_journal

#: trace-event kinds rendered as instant markers on the main track
INSTANT_KINDS = ("query", "slice", "verdict", "budget", "trace", "session")

#: tid of the main pipeline track; worker lanes start above it
MAIN_TID = 1
WORKER_TID_BASE = 100


def _instant_name(record: dict) -> str:
    kind = record.get("kind", "event")
    unit = record.get("unit") or record.get("program") or record.get("cache")
    if kind == "query":
        return f"query {unit}? {record.get('answer', '')}".rstrip()
    if kind == "verdict":
        return f"verdict {unit}: {record.get('verdict', '')}".rstrip()
    if kind == "slice":
        return f"slice {unit}/{record.get('variable', '?')}"
    if kind == "budget":
        return f"budget {record.get('action', '')}".rstrip()
    if unit:
        return f"{kind} {unit}"
    return kind


def _args(record: dict) -> dict:
    return {
        key: value
        for key, value in record.items()
        if key not in ("seq", "ts", "kind")
    }


def _pack_mutants(mutants: list[dict], spans: list[dict]) -> list[dict]:
    """Synthesize worker-lane ``X`` events for a mutation sweep.

    The sweep aggregates outcomes in the parent process after all
    workers finish, so mutant events share one end-of-sweep timestamp;
    each carries its own wall time (``seconds``). Greedy lane packing
    inside the ``mutants.evaluate`` window reconstructs a plausible
    parallel timeline: lane count ≈ observed concurrency.
    """
    window_end = None
    window_start = None
    for span in spans:
        if span.get("name") == "mutants.evaluate":
            window_end = span["ts"]
            window_start = span["ts"] - span.get("duration_s", 0.0)
    events = []
    lanes: list[float] = []
    for record in mutants:
        seconds = float(record.get("seconds") or 0.0)
        start_floor = (
            window_start
            if window_start is not None
            else record["ts"] - seconds
        )
        # Reuse the earliest-free lane while the slice still fits inside
        # the sweep window; otherwise open a new lane. Lane count then
        # converges on the sweep's actual concurrency (total work over
        # window length), without the pool reporting worker ids.
        lane = None
        if lanes:
            best = min(range(len(lanes)), key=lanes.__getitem__)
            if window_end is None or lanes[best] + seconds <= window_end + 1e-6:
                lane = best
        if lane is None:
            lane = len(lanes)
            lanes.append(start_floor)
        start = max(start_floor, lanes[lane])
        lanes[lane] = start + seconds
        events.append(
            {
                "name": record.get("description", "mutant"),
                "ph": "X",
                "ts": start,  # rebased to µs later
                "dur": seconds,
                "pid": 1,
                "tid": WORKER_TID_BASE + lane,
                "cat": "mutant",
                "args": _args(record),
            }
        )
    return events


def to_chrome_trace(journal: Journal) -> dict:
    """The journal as a Chrome trace-event JSON document."""
    spans = journal.spans()
    raw_events: list[dict] = []

    for record in spans:
        duration = float(record.get("duration_s") or 0.0)
        raw_events.append(
            {
                "name": record.get("name", "span"),
                "ph": "X",
                "ts": record["ts"] - duration,
                "dur": duration,
                "pid": 1,
                "tid": MAIN_TID,
                "cat": "span",
                "args": _args(record),
            }
        )

    for record in journal.records:
        if record.get("kind") in INSTANT_KINDS:
            raw_events.append(
                {
                    "name": _instant_name(record),
                    "ph": "i",
                    "ts": record["ts"],
                    "s": "t",
                    "pid": 1,
                    "tid": MAIN_TID,
                    "cat": record["kind"],
                    "args": _args(record),
                }
            )

    hits = misses = 0
    for record in journal.of_kind("cache"):
        outcome = record.get("outcome")
        if outcome in ("hit", "disk-hit"):
            hits += 1
        elif outcome == "miss":
            misses += 1
        raw_events.append(
            {
                "name": "cache",
                "ph": "C",
                "ts": record["ts"],
                "pid": 1,
                "args": {"hits": hits, "misses": misses},
            }
        )

    worker_events = _pack_mutants(journal.of_kind("mutant"), spans)
    raw_events.extend(worker_events)

    # Rebase to the earliest begin time and convert to microseconds.
    base = min((event["ts"] for event in raw_events), default=0.0)
    for event in raw_events:
        event["ts"] = round((event["ts"] - base) * 1e6, 3)
        if "dur" in event:
            event["dur"] = round(event["dur"] * 1e6, 3)

    trace_events = [
        {
            "name": "process_name",
            "ph": "M",
            "pid": 1,
            "args": {"name": "repro (GADT pipeline)"},
        },
        {
            "name": "thread_name",
            "ph": "M",
            "pid": 1,
            "tid": MAIN_TID,
            "args": {"name": "pipeline"},
        },
    ]
    worker_tids = sorted({event["tid"] for event in worker_events})
    for tid in worker_tids:
        trace_events.append(
            {
                "name": "thread_name",
                "ph": "M",
                "pid": 1,
                "tid": tid,
                "args": {"name": f"sweep worker {tid - WORKER_TID_BASE}"},
            }
        )
    trace_events.extend(sorted(raw_events, key=lambda event: event["ts"]))

    meta = journal.meta
    return {
        "traceEvents": trace_events,
        "displayTimeUnit": "ms",
        "otherData": {
            "schema": journal.schema or "events-only",
            "command": meta.get("command"),
            "program": meta.get("program"),
            "backend": meta.get("backend"),
        },
    }


def export_journal(
    journal_path: str, output_path: str | None = None, fmt: str = "perfetto"
) -> str:
    """Export a journal file; returns the output path written.

    ``fmt`` accepts ``"perfetto"`` (alias ``"chrome"``). Headerless
    ``--events`` captures export too — the header only adds metadata.
    """
    if fmt not in ("perfetto", "chrome"):
        raise ValueError(f"unknown export format {fmt!r}")
    journal = read_journal(journal_path, require_header=False)
    document = to_chrome_trace(journal)
    if output_path is None:
        output_path = f"{journal_path}.perfetto.json"
    Path(output_path).write_text(json.dumps(document) + "\n", encoding="utf-8")
    return output_path
