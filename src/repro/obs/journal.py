"""The session flight recorder: a schema-versioned JSONL journal.

A journal is the durable record of one pipeline invocation — trace
construction, budget draws, cache hits and misses, slice prunes, every
debugger question with its node id and answer source, every verdict
transition — written as JSON lines so it can be replayed
(:mod:`repro.core.replay`), exported to Perfetto
(:mod:`repro.obs.export`), or grepped.

File format (``gadt_journal/1``): the first line is a header record ::

    {"kind": "journal", "schema": "gadt_journal/1", "ts": ..., "meta": {...}}

where ``meta`` carries everything a deterministic re-run needs —
``command``, ``program`` (path), ``source`` (the full program text),
``inputs``, ``backend``, ``strategy``, ``enable_slicing``, ``argv``.
Every following line is one ordinary observability event exactly as
:func:`repro.obs.emit` broadcast it (``seq``/``ts``/``kind`` plus
kind-specific fields; span events carry ``span_id``/``parent_id``, and
events emitted inside a span carry the owning ``span_id``), so the
journal is a superset of a plain ``--events`` capture: the causal chain
is reconstructible offline.

:class:`JournalWriter` is a :class:`~repro.obs.events.JsonlFileSink`
subclass, inheriting its fault tolerance (failed writes degrade, never
crash the pipeline) and atomic-publication mode.
"""

from __future__ import annotations

import json
import time
from dataclasses import dataclass, field
from pathlib import Path

from repro.obs.events import JsonlFileSink

JOURNAL_SCHEMA = "gadt_journal/1"


class JournalError(Exception):
    """The journal file is missing, torn, or not a journal at all."""


class JournalWriter(JsonlFileSink):
    """A JSONL sink that prefixes the stream with the journal header."""

    def __init__(
        self,
        path: str,
        meta: dict | None = None,
        atomic: bool = False,
        max_errors: int = 8,
    ):
        super().__init__(path, atomic=atomic, max_errors=max_errors)
        self.meta = dict(meta or {})
        header = {
            "kind": "journal",
            "schema": JOURNAL_SCHEMA,
            "ts": time.time(),
            "meta": self.meta,
        }
        super().write(header)


@dataclass
class Journal:
    """A parsed journal: the header metadata plus the event records."""

    schema: str | None
    meta: dict
    records: list[dict] = field(default_factory=list)
    #: the final line was torn mid-record (crashed writer); the readable
    #: prefix is still served, the torn tail is dropped
    truncated: bool = False
    #: 1-based line number of the torn tail (None when not truncated)
    truncated_line: int | None = None

    def of_kind(self, kind: str) -> list[dict]:
        return [record for record in self.records if record.get("kind") == kind]

    def queries(self) -> list[dict]:
        """Every debugger question, in the order it was asked."""
        return self.of_kind("query")

    def verdicts(self) -> list[dict]:
        """Judgement transitions of the tree search, in order."""
        return self.of_kind("verdict")

    def spans(self) -> list[dict]:
        return self.of_kind("span")

    def traces(self) -> list[dict]:
        """Trace-construction records (carry the ``root`` node id the
        replayer uses to normalize recorded node ids)."""
        return self.of_kind("trace")

    def session(self) -> dict | None:
        """The final per-session accounting record, if the journal
        covers a debug session."""
        sessions = self.of_kind("session")
        return sessions[-1] if sessions else None

    def __len__(self) -> int:
        return len(self.records)


def read_journal(path: str, require_header: bool = True) -> Journal:
    """Parse a journal (or a headerless ``--events`` capture).

    With ``require_header`` (the default), the first line must be a
    ``gadt_journal/1`` header; the exporter passes ``False`` so plain
    event streams stay exportable.

    A torn *final* line — the signature a crashed writer leaves, since
    every complete event is flushed as one whole line — is tolerated:
    the readable prefix is returned with ``truncated`` set and the
    ``journal.truncated`` counter bumped. Invalid JSON anywhere else is
    real corruption and still raises :class:`JournalError`.
    """
    import sys

    try:
        text = Path(path).read_text(encoding="utf-8")
    except OSError as error:
        raise JournalError(f"cannot read journal {path!r}: {error}") from error
    schema: str | None = None
    meta: dict = {}
    records: list[dict] = []
    truncated = False
    truncated_line: int | None = None
    lines = text.splitlines()
    payload_lines = [
        number for number, line in enumerate(lines, start=1) if line.strip()
    ]
    first_payload_line = payload_lines[0] if payload_lines else 0
    last_payload_line = payload_lines[-1] if payload_lines else 0
    for line_no, line in enumerate(lines, start=1):
        if not line.strip():
            continue
        try:
            record = json.loads(line)
        except json.JSONDecodeError as error:
            # only a torn line with a readable prefix before it is a
            # crashed writer's tail; a torn first line is corruption
            if line_no == last_payload_line and line_no > first_payload_line:
                truncated = True
                truncated_line = line_no
                obs = sys.modules.get("repro.obs")
                if obs is not None:
                    obs.add("journal.truncated")
                break
            if line_no == first_payload_line == last_payload_line and require_header:
                raise JournalError(
                    f"{path}: not a journal (no {JOURNAL_SCHEMA} header "
                    "line); record one with --journal PATH"
                ) from error
            raise JournalError(f"{path}:{line_no}: invalid JSON: {error}") from error
        if not isinstance(record, dict):
            raise JournalError(f"{path}:{line_no}: expected a JSON object")
        if record.get("kind") == "journal":
            if schema is not None:
                raise JournalError(f"{path}:{line_no}: duplicate journal header")
            schema = record.get("schema")
            if schema != JOURNAL_SCHEMA:
                raise JournalError(
                    f"{path}: unsupported journal schema {schema!r} "
                    f"(expected {JOURNAL_SCHEMA})"
                )
            meta = record.get("meta") or {}
            continue
        records.append(record)
    if schema is None and require_header:
        raise JournalError(
            f"{path}: not a journal (no {JOURNAL_SCHEMA} header line); "
            "record one with --journal PATH"
        )
    return Journal(
        schema=schema,
        meta=meta,
        records=records,
        truncated=truncated,
        truncated_line=truncated_line,
    )


class recording:
    """Context manager for library use: record everything :mod:`repro.obs`
    emits inside the block into a journal file ::

        with journal.recording("session.journal", meta={"source": src}):
            system = GadtSystem.from_source(src)
            system.debugger(oracle).debug()

    Observability is enabled for the duration (and restored after); the
    writer is detached and closed on exit.
    """

    def __init__(self, path: str, meta: dict | None = None, atomic: bool = False):
        self.path = path
        self.meta = meta
        self.atomic = atomic
        self.writer: JournalWriter | None = None
        self._was_enabled = False

    def __enter__(self) -> JournalWriter:
        from repro import obs

        self._was_enabled = obs.enabled()
        obs.enable()
        self.writer = JournalWriter(self.path, meta=self.meta, atomic=self.atomic)
        obs.add_sink(self.writer)
        return self.writer

    def __exit__(self, exc_type, exc, tb) -> None:
        from repro import obs

        if self.writer is not None:
            obs.remove_sink(self.writer)
            self.writer.close()
        if not self._was_enabled:
            obs.disable()
