"""Process-local metrics registry: counters, gauges, histograms.

Metrics are named with dotted paths grouped by pipeline phase
(``transform.*``, ``trace.*``, ``slice.*``, ``debug.*``, ``mutants.*``;
see ``docs/OBSERVABILITY.md`` for the full catalogue). The registry is a
module-level singleton, mirroring :mod:`repro.cache`: one process, one
registry, so benchmarks and the CLI read the same numbers the
instrumented pipeline wrote.

All three instrument types are deliberately small — a counter is one
integer behind a lock, a histogram keeps count/total/min/max plus a
bounded sample reservoir for percentiles — because the registry must
cost little even when observability is on, and nothing at all when it
is off (callers gate on :func:`repro.obs.enabled` before touching it).

**Thread safety**: every mutation takes the metric's own lock, and
metric creation takes the registry lock, so parallel mutant sweeps (and
the future multi-session debug service) can write concurrently without
losing increments or corrupting reservoirs.
"""

from __future__ import annotations

import threading

#: reservoir size bound; beyond it samples are decimated (see Histogram)
RESERVOIR_CAP = 1024


def _nearest_rank(samples: list[float], p: float) -> float | None:
    """Nearest-rank percentile over pre-sorted ``samples`` (None if empty)."""
    if not samples:
        return None
    rank = -(-len(samples) * p // 100)  # ceil(n * p / 100)
    return samples[max(0, min(len(samples) - 1, int(rank) - 1))]


class Counter:
    """A monotonically increasing integer."""

    __slots__ = ("name", "value", "_lock")

    def __init__(self, name: str):
        self.name = name
        self.value = 0
        self._lock = threading.Lock()

    def add(self, amount: int = 1) -> None:
        with self._lock:
            self.value += amount


class Gauge:
    """A point-in-time value (last set wins; :meth:`set_max` keeps peaks)."""

    __slots__ = ("name", "value", "_lock")

    def __init__(self, name: str):
        self.name = name
        self.value: float = 0.0
        self._lock = threading.Lock()

    def set(self, value: float) -> None:
        with self._lock:
            self.value = value

    def set_max(self, value: float) -> None:
        with self._lock:
            if value > self.value:
                self.value = value


class Histogram:
    """Summary statistics over observed values, with percentiles.

    Keeps count/total/min/max exactly, plus a bounded deterministic
    reservoir for :meth:`percentile`: every ``stride``-th observation is
    retained; when the reservoir fills, it is decimated (every other
    sample dropped) and the stride doubles, so memory is bounded by
    :data:`RESERVOIR_CAP` while the sample stays spread over the whole
    observation stream — no randomness, so repeated runs agree.

    ``unit`` is a display hint: span durations use ``"s"`` so renderers
    format them as seconds; size histograms leave it empty.
    """

    __slots__ = (
        "name", "unit", "count", "total", "min", "max",
        "_samples", "_stride", "_lock",
    )

    def __init__(self, name: str, unit: str = ""):
        self.name = name
        self.unit = unit
        self.count = 0
        self.total: float = 0.0
        self.min: float | None = None
        self.max: float | None = None
        self._samples: list[float] = []
        self._stride = 1
        self._lock = threading.Lock()

    def observe(self, value: float) -> None:
        with self._lock:
            self.count += 1
            self.total += value
            if self.min is None or value < self.min:
                self.min = value
            if self.max is None or value > self.max:
                self.max = value
            if self.count % self._stride == 0:
                self._samples.append(value)
                if len(self._samples) >= RESERVOIR_CAP:
                    self._samples = self._samples[::2]
                    self._stride *= 2

    @property
    def mean(self) -> float:
        return self.total / self.count if self.count else 0.0

    def percentile(self, p: float) -> float | None:
        """Nearest-rank percentile over the reservoir (None when empty)."""
        with self._lock:
            samples = sorted(self._samples)
        return _nearest_rank(samples, p)

    def summary(self) -> dict:
        """JSON-ready dump including p50/p95/p99."""
        with self._lock:
            samples = sorted(self._samples)
            data = {
                "unit": self.unit,
                "count": self.count,
                "total": self.total,
                "min": self.min,
                "max": self.max,
            }
        for label, p in (("p50", 50), ("p95", 95), ("p99", 99)):
            data[label] = _nearest_rank(samples, p)
        return data


class MetricsRegistry:
    """Named metrics, created on first use (creation is lock-protected)."""

    __slots__ = ("counters", "gauges", "histograms", "_lock")

    def __init__(self):
        self.counters: dict[str, Counter] = {}
        self.gauges: dict[str, Gauge] = {}
        self.histograms: dict[str, Histogram] = {}
        self._lock = threading.Lock()

    def counter(self, name: str) -> Counter:
        metric = self.counters.get(name)
        if metric is None:
            with self._lock:
                metric = self.counters.get(name)
                if metric is None:
                    metric = self.counters[name] = Counter(name)
        return metric

    def gauge(self, name: str) -> Gauge:
        metric = self.gauges.get(name)
        if metric is None:
            with self._lock:
                metric = self.gauges.get(name)
                if metric is None:
                    metric = self.gauges[name] = Gauge(name)
        return metric

    def histogram(self, name: str, unit: str = "") -> Histogram:
        metric = self.histograms.get(name)
        if metric is None:
            with self._lock:
                metric = self.histograms.get(name)
                if metric is None:
                    metric = self.histograms[name] = Histogram(name, unit=unit)
        return metric

    def reset(self) -> None:
        with self._lock:
            self.counters.clear()
            self.gauges.clear()
            self.histograms.clear()

    def snapshot(self) -> dict:
        """A JSON-ready dump of every metric, sorted by name."""
        return {
            "counters": {
                name: metric.value
                for name, metric in sorted(self.counters.items())
            },
            "gauges": {
                name: metric.value for name, metric in sorted(self.gauges.items())
            },
            "histograms": {
                name: metric.summary()
                for name, metric in sorted(self.histograms.items())
            },
        }


#: the process-local registry every instrumentation site writes to
REGISTRY = MetricsRegistry()
