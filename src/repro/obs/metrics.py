"""Process-local metrics registry: counters, gauges, histograms.

Metrics are named with dotted paths grouped by pipeline phase
(``transform.*``, ``trace.*``, ``slice.*``, ``debug.*``, ``mutants.*``;
see ``docs/OBSERVABILITY.md`` for the full catalogue). The registry is a
module-level singleton, mirroring :mod:`repro.cache`: one process, one
registry, so benchmarks and the CLI read the same numbers the
instrumented pipeline wrote.

All three instrument types are deliberately tiny — a counter is one
integer, a histogram keeps count/total/min/max rather than buckets —
because the registry must cost nothing measurable even when
observability is on, and nothing at all when it is off (callers gate on
:func:`repro.obs.enabled` before touching it).
"""

from __future__ import annotations


class Counter:
    """A monotonically increasing integer."""

    __slots__ = ("name", "value")

    def __init__(self, name: str):
        self.name = name
        self.value = 0

    def add(self, amount: int = 1) -> None:
        self.value += amount


class Gauge:
    """A point-in-time value (last set wins; :meth:`set_max` keeps peaks)."""

    __slots__ = ("name", "value")

    def __init__(self, name: str):
        self.name = name
        self.value: float = 0.0

    def set(self, value: float) -> None:
        self.value = value

    def set_max(self, value: float) -> None:
        if value > self.value:
            self.value = value


class Histogram:
    """Summary statistics over observed values (count/total/min/max).

    ``unit`` is a display hint: span durations use ``"s"`` so renderers
    format them as seconds; size histograms leave it empty.
    """

    __slots__ = ("name", "unit", "count", "total", "min", "max")

    def __init__(self, name: str, unit: str = ""):
        self.name = name
        self.unit = unit
        self.count = 0
        self.total: float = 0.0
        self.min: float | None = None
        self.max: float | None = None

    def observe(self, value: float) -> None:
        self.count += 1
        self.total += value
        if self.min is None or value < self.min:
            self.min = value
        if self.max is None or value > self.max:
            self.max = value

    @property
    def mean(self) -> float:
        return self.total / self.count if self.count else 0.0


class MetricsRegistry:
    """Named metrics, created on first use."""

    __slots__ = ("counters", "gauges", "histograms")

    def __init__(self):
        self.counters: dict[str, Counter] = {}
        self.gauges: dict[str, Gauge] = {}
        self.histograms: dict[str, Histogram] = {}

    def counter(self, name: str) -> Counter:
        metric = self.counters.get(name)
        if metric is None:
            metric = self.counters[name] = Counter(name)
        return metric

    def gauge(self, name: str) -> Gauge:
        metric = self.gauges.get(name)
        if metric is None:
            metric = self.gauges[name] = Gauge(name)
        return metric

    def histogram(self, name: str, unit: str = "") -> Histogram:
        metric = self.histograms.get(name)
        if metric is None:
            metric = self.histograms[name] = Histogram(name, unit=unit)
        return metric

    def reset(self) -> None:
        self.counters.clear()
        self.gauges.clear()
        self.histograms.clear()

    def snapshot(self) -> dict:
        """A JSON-ready dump of every metric, sorted by name."""
        return {
            "counters": {
                name: metric.value
                for name, metric in sorted(self.counters.items())
            },
            "gauges": {
                name: metric.value for name, metric in sorted(self.gauges.items())
            },
            "histograms": {
                name: {
                    "unit": metric.unit,
                    "count": metric.count,
                    "total": metric.total,
                    "min": metric.min,
                    "max": metric.max,
                }
                for name, metric in sorted(self.histograms.items())
            },
        }


#: the process-local registry every instrumentation site writes to
REGISTRY = MetricsRegistry()
