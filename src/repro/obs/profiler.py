"""Hot-spot profiling: self-time and steps per unit and per line.

Two cost models, one report:

* **self-time** needs runtime timestamps, so :class:`HotspotProfiler`
  hangs off the *activation* boundaries of both backends — the tracer's
  ``enter_routine``/``exit_routine``/loop hooks on the interpreter, and
  ``enter_call``/``exit_call``/loop methods of the compiled
  :class:`~repro.compile.emit.TraceSession` (a single ``prof is not
  None`` test per activation; the per-statement hot path is untouched);
* **steps** are free after the fact: every executed statement already
  left an :class:`~repro.tracing.dynamic_deps.Occurrence` carrying its
  line, and every tree node carries its ``occurrence_ids`` — so
  per-unit and per-line step counts are derived from the finished trace
  with zero runtime cost, identically on both backends.

:func:`hotspot_report` combines both into the ``hotspots/1`` schema
consumed by ``repro profile`` / ``--hotspots N`` and embedded in
``BENCH_perf.json`` (``bench_perf/5``).

The step model also feeds the weighted search strategies:
:func:`step_count_weights` turns a trace's per-unit step counts into a
weight function for ``divide-and-query`` / ``dq-optimal``
(docs/STRATEGIES.md), so the search bisects execution *effort* instead
of activation *count*.
"""

from __future__ import annotations

import time

HOTSPOTS_SCHEMA = "hotspots/1"


class HotspotProfiler:
    """Self-time accounting over unit activations.

    Maintains a stack of open units; at every boundary (enter, exit) the
    time since the last boundary is charged to the unit that was running
    — classic self-time attribution, costing two ``perf_counter`` calls
    per activation, never per statement.
    """

    __slots__ = ("self_s", "activations", "_stack", "_mark")

    def __init__(self):
        #: unit name -> exclusive wall time
        self.self_s: dict[str, float] = {}
        #: unit name -> number of activations
        self.activations: dict[str, int] = {}
        self._stack: list[str] = []
        self._mark: float = 0.0

    def _charge(self, now: float) -> None:
        if self._stack:
            unit = self._stack[-1]
            self.self_s[unit] = self.self_s.get(unit, 0.0) + (now - self._mark)
        self._mark = now

    def enter_unit(self, name: str) -> None:
        self._charge(time.perf_counter())
        self._stack.append(name)
        self.activations[name] = self.activations.get(name, 0) + 1
        self.self_s.setdefault(name, 0.0)

    def exit_unit(self) -> None:
        self._charge(time.perf_counter())
        if self._stack:
            self._stack.pop()

    @property
    def total_s(self) -> float:
        return sum(self.self_s.values())


def _step_counts(trace) -> tuple[dict[str, int], dict[str, dict[int, int]]]:
    """Per-unit and per-(unit, line) executed-statement counts, derived
    from the trace's occurrences (post hoc; backend-independent)."""
    occurrences = trace.dependence_graph.occurrences
    unit_steps: dict[str, int] = {}
    line_steps: dict[str, dict[int, int]] = {}
    for node in trace.tree.walk():
        unit = node.unit_name
        occ_ids = node.occurrence_ids
        if not occ_ids:
            unit_steps.setdefault(unit, 0)
            continue
        unit_steps[unit] = unit_steps.get(unit, 0) + len(occ_ids)
        lines = line_steps.setdefault(unit, {})
        for occ_id in occ_ids:
            line = occurrences[occ_id].location_line
            lines[line] = lines.get(line, 0) + 1
    return unit_steps, line_steps


def step_count_weights(trace):
    """A per-unit step-count weight function for the weighted search
    strategies (``repro.core.strategies``): each suspect activation is
    weighed by the statements its unit executed over the whole run, so
    ``OptimalDivideAndQueryStrategy(weights=step_count_weights(trace))``
    bisects execution effort rather than activation count. Weights are
    clamped to 1 so structural units keep search weight."""
    unit_steps, _ = _step_counts(trace)

    def weight(node) -> int:
        return max(1, unit_steps.get(node.unit_name, 0))

    return weight


def hotspot_report(
    trace, profiler: HotspotProfiler | None = None, top: int | None = None
) -> dict:
    """The ``hotspots/1`` document for one traced run.

    Units are ranked by self-time when a profiler observed the run, by
    step count otherwise; ``top`` truncates the ranking (per-line rows
    are always capped at the ten hottest lines per unit).
    """
    unit_steps, line_steps = _step_counts(trace)
    activations: dict[str, int] = {}
    for node in trace.tree.walk():
        activations[node.unit_name] = activations.get(node.unit_name, 0) + 1

    names = set(unit_steps) | (set(profiler.self_s) if profiler else set())
    units = []
    for name in names:
        lines = sorted(
            line_steps.get(name, {}).items(),
            key=lambda item: (-item[1], item[0]),
        )[:10]
        units.append(
            {
                "unit": name,
                "activations": activations.get(
                    name, profiler.activations.get(name, 0) if profiler else 0
                ),
                "steps": unit_steps.get(name, 0),
                "self_s": profiler.self_s.get(name) if profiler else None,
                "lines": [
                    {"line": line, "steps": steps} for line, steps in lines
                ],
            }
        )
    if profiler is not None:
        units.sort(key=lambda row: (-(row["self_s"] or 0.0), -row["steps"]))
    else:
        units.sort(key=lambda row: (-row["steps"], row["unit"]))
    if top is not None:
        units = units[:top]
    return {
        "schema": HOTSPOTS_SCHEMA,
        "backend": trace.backend,
        "total_steps": trace.execution.steps,
        "total_self_s": profiler.total_s if profiler is not None else None,
        "units": units,
    }


def render_hotspots(report: dict) -> str:
    """Text table of a ``hotspots/1`` report (the ``repro profile`` body)."""
    lines = [
        f"hot spots ({report['backend']} backend, "
        f"{report['total_steps']} steps):"
    ]
    header = f"  {'unit':<20} {'activations':>11} {'steps':>8}"
    timed = report.get("total_self_s") is not None
    if timed:
        header += f" {'self(s)':>9} {'self%':>6}"
    header += "  hottest lines"
    lines.append(header)
    total_self = report.get("total_self_s") or 0.0
    for row in report["units"]:
        text = f"  {row['unit']:<20} {row['activations']:>11} {row['steps']:>8}"
        if timed:
            self_s = row["self_s"] or 0.0
            share = (self_s / total_self * 100.0) if total_self else 0.0
            text += f" {self_s:>9.4f} {share:>5.1f}%"
        hottest = ", ".join(
            f"L{entry['line']}×{entry['steps']}" for entry in row["lines"][:3]
        )
        text += f"  {hottest}"
        lines.append(text)
    return "\n".join(lines)
