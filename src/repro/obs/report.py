"""Text rendering of metric snapshots and per-session debug reports.

Consumed by the CLI (``--profile`` summaries, ``repro stats``) and by
the CI obs smoke job, which greps for the ``answer sources:`` line —
keep that prefix stable.
"""

from __future__ import annotations

#: presentation order for the answer-source breakdown (paper Figure 3
#: chain order, then the two implicit sources)
ANSWER_SOURCE_ORDER = ("assertion", "test-db", "slice-pruned", "cache", "user")


def render_answer_sources(session_report: dict) -> str:
    """One line: per-source query counts summing to the total.

    ``session_report`` is :meth:`repro.core.DebugResult.report` output.
    """
    queries = session_report["queries"]
    parts = [
        f"{source} {queries['by_source'].get(source, 0)}"
        for source in ANSWER_SOURCE_ORDER
    ]
    return (
        f"answer sources: {', '.join(parts)} (total {queries['total']}, "
        f"saved {session_report['interactions_saved']} interactions)"
    )


def render_store_stats(stats: dict) -> str:
    """Multi-line summary of ``ShardedReportStore.stats()`` — the body
    of ``repro testdb stats``. The CI testdb smoke job greps the
    ``test-report store:`` prefix; keep it stable.
    """
    lines = [
        f"test-report store: format {stats['format']}",
        f"  shards      {stats['shards']}",
        f"  segments    {stats['segments']}",
        f"  reports     {stats['reports']} ({stats['frames']} frames, "
        f"{stats['buffered']} buffered)",
        f"  hit rate    {stats['hit_rate']:.2%} "
        f"({stats['lru_hits']} cache hits, {stats['scans']} shard scans)",
        f"  flushes     {stats['flushes']}",
        f"  quarantined {stats['quarantined']} segment(s) "
        f"({stats['corrupt_segments']} corrupt, "
        f"{stats['read_errors']} read errors this open)",
    ]
    return "\n".join(lines)


def render_summary(snapshot: dict) -> str:
    """Multi-line phase/metric summary of a registry snapshot."""
    lines = ["== observability =="]

    timers = {
        name: data
        for name, data in snapshot["histograms"].items()
        if data["unit"] == "s"
    }
    if timers:
        lines.append("phase timings:")
        for name, data in timers.items():
            lines.append(
                f"  {name:<28} {data['count']:>4}x  total {data['total']:.4f}s"
                f"  max {data['max']:.4f}s"
            )

    sizes = {
        name: data
        for name, data in snapshot["histograms"].items()
        if data["unit"] != "s" and data["count"]
    }
    if sizes:
        lines.append("distributions:")
        for name, data in sizes.items():
            mean = data["total"] / data["count"]
            lines.append(
                f"  {name:<28} {data['count']:>4}x  mean {mean:.1f}"
                f"  min {data['min']:g}  max {data['max']:g}"
            )

    if snapshot["counters"]:
        lines.append("counters:")
        for name, value in snapshot["counters"].items():
            lines.append(f"  {name:<28} {value}")

    if snapshot["gauges"]:
        lines.append("gauges:")
        for name, value in snapshot["gauges"].items():
            lines.append(f"  {name:<28} {value:g}")

    cache = snapshot.get("cache")
    if cache:
        lines.append("content caches:")
        for name, stats in cache.items():
            lines.append(
                f"  {name:<28} entries {stats['entries']}"
                f"  hits {stats['hits']}  misses {stats['misses']}"
                f"  corrupt {stats.get('corrupt', 0)}"
            )

    return "\n".join(lines)
