"""Nesting span timers over ``time.perf_counter``.

A span measures one phase of the pipeline::

    with obs.span("trace.execute", program="fig4"):
        interpreter.run()

On exit the duration lands in the histogram named after the span
(``trace.execute`` with unit ``"s"``) and a ``span`` event goes to the
sinks, carrying a process-unique ``span_id``, the ``parent_id`` of the
enclosing span, the nesting depth, and the parent span name, so
per-pass transform timings can be re-assembled into a tree offline (the
Perfetto exporter in :mod:`repro.obs.export` does exactly that).

A span that exits through an exception records it instead of closing
silently: the event carries ``error: true`` plus the exception type
under ``error_type``.

When observability is disabled, :func:`repro.obs.span` hands back the
shared :data:`NULL_SPAN` instead — entering and exiting it does nothing,
following the null-hook pattern of
:class:`repro.pascal.interpreter.ExecutionHooks`: the disabled path pays
one flag test and no allocation.
"""

from __future__ import annotations

import itertools
import time

from repro.obs import events as _events
from repro.obs import metrics as _metrics

#: the stack of currently open spans (process-local, like the registry)
_STACK: list["Span"] = []

#: process-wide span-id allocator (reset with the event seq counter)
_SPAN_IDS = itertools.count(1)


class Span:
    """One timed, possibly nested, region. Use as a context manager."""

    __slots__ = (
        "name", "attrs", "started", "elapsed_s", "depth",
        "span_id", "parent_id",
    )

    def __init__(self, name: str, attrs: dict | None = None):
        self.name = name
        self.attrs = attrs
        self.started: float = 0.0
        self.elapsed_s: float = 0.0
        self.depth = 0
        self.span_id = 0
        self.parent_id: int | None = None

    def __enter__(self) -> "Span":
        self.span_id = next(_SPAN_IDS)
        self.depth = len(_STACK)
        self.parent_id = _STACK[-1].span_id if _STACK else None
        _STACK.append(self)
        self.started = time.perf_counter()
        return self

    def __exit__(self, exc_type, exc, tb) -> None:
        self.elapsed_s = time.perf_counter() - self.started
        if _STACK and _STACK[-1] is self:
            _STACK.pop()
        _metrics.REGISTRY.histogram(self.name, unit="s").observe(self.elapsed_s)
        if not _events.SINKS:
            return
        parent = _STACK[-1].name if _STACK else None
        fields: dict = {
            "name": self.name,
            "duration_s": self.elapsed_s,
            "depth": self.depth,
            "parent": parent,
            "span_id": self.span_id,
            "parent_id": self.parent_id,
        }
        if self.attrs:
            fields.update(self.attrs)
        if exc_type is not None:
            fields["error"] = True
            fields["error_type"] = exc_type.__name__
        _events.broadcast("span", fields)


class NullSpan:
    """The disabled-path span: enters, exits, records nothing."""

    __slots__ = ()
    elapsed_s = 0.0

    def __enter__(self) -> "NullSpan":
        return self

    def __exit__(self, exc_type, exc, tb) -> None:
        return None


NULL_SPAN = NullSpan()


def reset_stack() -> None:
    global _SPAN_IDS
    _STACK.clear()
    _SPAN_IDS = itertools.count(1)


def current_depth() -> int:
    return len(_STACK)


def current_span_id() -> int | None:
    """The innermost open span's id, or None outside any span."""
    return _STACK[-1].span_id if _STACK else None
