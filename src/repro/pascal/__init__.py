"""Mini-Pascal language substrate: lexer, parser, semantics, interpreter.

This package is the imperative-language foundation the paper's method is
defined over. The public surface:

>>> from repro.pascal import parse_program, analyze, run_source
>>> result = run_source("program p; var x: integer; begin x := 2 + 2; writeln(x) end.")
>>> result.output
'4\\n'
"""

from repro.pascal.ast_nodes import Program
from repro.pascal.errors import (
    LexError,
    ParseError,
    PascalError,
    PascalRuntimeError,
    SemanticError,
    SourceLocation,
    StepLimitExceeded,
    UndefinedValueError,
)
from repro.pascal.interpreter import (
    ExecutionHooks,
    ExecutionResult,
    Interpreter,
    PascalIO,
    UnitCallResult,
    run_source,
)
from repro.pascal.lexer import tokenize
from repro.pascal.parser import parse_expression, parse_program
from repro.pascal.pretty import format_expr, print_program, print_routine, print_statement
from repro.pascal.semantics import AnalyzedProgram, RoutineInfo, analyze, analyze_source
from repro.pascal.values import ArrayValue, UNDEFINED, format_value

__all__ = [
    "AnalyzedProgram",
    "ArrayValue",
    "ExecutionHooks",
    "ExecutionResult",
    "Interpreter",
    "LexError",
    "ParseError",
    "PascalError",
    "PascalIO",
    "PascalRuntimeError",
    "Program",
    "RoutineInfo",
    "SemanticError",
    "SourceLocation",
    "StepLimitExceeded",
    "UndefinedValueError",
    "UnitCallResult",
    "UNDEFINED",
    "analyze",
    "analyze_source",
    "format_expr",
    "format_value",
    "parse_expression",
    "parse_program",
    "print_program",
    "print_routine",
    "print_statement",
    "run_source",
    "tokenize",
]
