"""Abstract syntax tree for Mini-Pascal.

Every node carries a :class:`~repro.pascal.errors.SourceLocation` and a
process-unique ``node_id``. The ids let later phases (transformation,
slicing, execution-tree construction) refer to specific constructs and
maintain original-to-transformed mappings without identity hacks.

Nodes are plain mutable dataclasses: the transformation phase rewrites
trees by building new nodes, and :func:`clone` produces deep copies with
fresh ids when a construct must appear in both the original and the
transformed program.
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass, field, fields
from typing import Iterator

from repro.pascal.errors import SourceLocation

_NODE_IDS = itertools.count(1)


def _next_id() -> int:
    return next(_NODE_IDS)


@dataclass
class Node:
    """Base class for all AST nodes."""

    location: SourceLocation = field(default_factory=SourceLocation.unknown, kw_only=True)
    node_id: int = field(default_factory=_next_id, kw_only=True, compare=False)

    def children(self) -> Iterator["Node"]:
        """Yield direct child nodes in syntactic order."""
        for f in fields(self):
            if f.name in ("location", "node_id"):
                continue
            value = getattr(self, f.name)
            if isinstance(value, Node):
                yield value
            elif isinstance(value, list):
                for item in value:
                    if isinstance(item, Node):
                        yield item

    def walk(self) -> Iterator["Node"]:
        """Yield this node and all descendants, pre-order."""
        yield self
        for child in self.children():
            yield from child.walk()


# ----------------------------------------------------------------------
# Type expressions


@dataclass
class TypeExpr(Node):
    """Base class for type denotations."""


@dataclass
class NamedType(TypeExpr):
    """A reference to a named type: ``integer``, ``boolean``, ``intarray``."""

    name: str = ""


@dataclass
class ArrayType(TypeExpr):
    """``array[lo..hi] of elem``. Bounds are constant expressions."""

    low: "Expr" = None  # type: ignore[assignment]
    high: "Expr" = None  # type: ignore[assignment]
    element: TypeExpr = None  # type: ignore[assignment]


# ----------------------------------------------------------------------
# Expressions


@dataclass
class Expr(Node):
    """Base class for expressions."""


@dataclass
class IntLiteral(Expr):
    value: int = 0


@dataclass
class BoolLiteral(Expr):
    value: bool = False


@dataclass
class StringLiteral(Expr):
    value: str = ""


@dataclass
class VarRef(Expr):
    """A bare identifier used as a value or assignment target."""

    name: str = ""


@dataclass
class IndexedRef(Expr):
    """Array element access ``base[index]``; ``base`` may itself be indexed."""

    base: Expr = None  # type: ignore[assignment]
    index: Expr = None  # type: ignore[assignment]


@dataclass
class FuncCall(Expr):
    name: str = ""
    args: list[Expr] = field(default_factory=list)


@dataclass
class UnaryOp(Expr):
    """``op`` is one of ``-``, ``+``, ``not``."""

    op: str = ""
    operand: Expr = None  # type: ignore[assignment]


@dataclass
class BinaryOp(Expr):
    """``op`` is an arithmetic, relational, or boolean operator token text."""

    op: str = ""
    left: Expr = None  # type: ignore[assignment]
    right: Expr = None  # type: ignore[assignment]


@dataclass
class ArrayLiteral(Expr):
    """``[e1, e2, ...]`` — an array constructor (extension used by the
    paper's own example, which calls ``sqrtest([1,2], 2, isok)``)."""

    elements: list[Expr] = field(default_factory=list)


# ----------------------------------------------------------------------
# Declarations


@dataclass
class Decl(Node):
    """Base class for declarations."""


@dataclass
class ConstDecl(Decl):
    name: str = ""
    value: Expr = None  # type: ignore[assignment]


@dataclass
class TypeDecl(Decl):
    name: str = ""
    type_expr: TypeExpr = None  # type: ignore[assignment]


@dataclass
class VarDecl(Decl):
    """One ``name : type`` binding (``var a, b: integer`` parses into two)."""

    name: str = ""
    type_expr: TypeExpr = None  # type: ignore[assignment]


@dataclass
class LabelDecl(Decl):
    """``label 9;`` — labels are numeric, following classic Pascal."""

    label: str = ""


class ParamMode:
    """Parameter passing modes.

    ``VALUE`` and ``VAR`` are standard Pascal. ``IN_`` and ``OUT`` are
    produced by the transformation phase when globals become parameters
    (the paper's ``in x: ...; out z: ...`` notation); they behave as
    value and result parameters respectively.
    """

    VALUE = "value"
    VAR = "var"
    IN_ = "in"
    OUT = "out"


@dataclass
class Param(Node):
    name: str = ""
    type_expr: TypeExpr = None  # type: ignore[assignment]
    mode: str = ParamMode.VALUE


@dataclass
class Block(Node):
    """Declaration part + body of a program, procedure, or function."""

    labels: list[LabelDecl] = field(default_factory=list)
    consts: list[ConstDecl] = field(default_factory=list)
    types: list[TypeDecl] = field(default_factory=list)
    variables: list[VarDecl] = field(default_factory=list)
    routines: list["RoutineDecl"] = field(default_factory=list)
    body: "Compound" = None  # type: ignore[assignment]


@dataclass
class RoutineDecl(Decl):
    """A procedure or function declaration (``result_type is None`` for
    procedures). Routines may nest."""

    name: str = ""
    params: list[Param] = field(default_factory=list)
    result_type: TypeExpr | None = None
    block: Block = None  # type: ignore[assignment]

    @property
    def is_function(self) -> bool:
        return self.result_type is not None


@dataclass
class Program(Node):
    name: str = ""
    block: Block = None  # type: ignore[assignment]


# ----------------------------------------------------------------------
# Statements


@dataclass
class Stmt(Node):
    """Base class for statements. ``label`` is the numeric label prefixed
    to the statement (``9: s``), or None."""

    label: str | None = field(default=None, kw_only=True)


@dataclass
class EmptyStmt(Stmt):
    pass


@dataclass
class Assign(Stmt):
    target: Expr = None  # type: ignore[assignment]
    value: Expr = None  # type: ignore[assignment]


@dataclass
class ProcCall(Stmt):
    name: str = ""
    args: list[Expr] = field(default_factory=list)


@dataclass
class Compound(Stmt):
    statements: list[Stmt] = field(default_factory=list)


@dataclass
class If(Stmt):
    condition: Expr = None  # type: ignore[assignment]
    then_branch: Stmt = None  # type: ignore[assignment]
    else_branch: Stmt | None = None


@dataclass
class While(Stmt):
    condition: Expr = None  # type: ignore[assignment]
    body: Stmt = None  # type: ignore[assignment]


@dataclass
class Repeat(Stmt):
    body: list[Stmt] = field(default_factory=list)
    condition: Expr = None  # type: ignore[assignment]


@dataclass
class For(Stmt):
    """``for var := start to|downto stop do body``."""

    variable: str = ""
    start: Expr = None  # type: ignore[assignment]
    stop: Expr = None  # type: ignore[assignment]
    downto: bool = False
    body: Stmt = None  # type: ignore[assignment]


@dataclass
class Goto(Stmt):
    target: str = ""


# ----------------------------------------------------------------------
# Utilities


def clone(node: Node) -> Node:
    """Deep-copy an AST, assigning fresh node ids throughout.

    Returns a structurally identical tree that shares no nodes with the
    original — used by the transformation phase, which must leave the
    original program intact for transparent debugging.
    """
    if not isinstance(node, Node):
        return node
    kwargs = {}
    for f in fields(node):
        if f.name == "node_id":
            continue
        value = getattr(node, f.name)
        if isinstance(value, Node):
            kwargs[f.name] = clone(value)
        elif isinstance(value, list):
            kwargs[f.name] = [clone(item) if isinstance(item, Node) else item for item in value]
        else:
            kwargs[f.name] = value
    return type(node)(**kwargs)


def iter_statements(stmt: Stmt) -> Iterator[Stmt]:
    """Yield ``stmt`` and every statement nested within it, pre-order."""
    yield stmt
    if isinstance(stmt, Compound):
        for child in stmt.statements:
            yield from iter_statements(child)
    elif isinstance(stmt, If):
        yield from iter_statements(stmt.then_branch)
        if stmt.else_branch is not None:
            yield from iter_statements(stmt.else_branch)
    elif isinstance(stmt, While):
        yield from iter_statements(stmt.body)
    elif isinstance(stmt, Repeat):
        for child in stmt.body:
            yield from iter_statements(child)
    elif isinstance(stmt, For):
        yield from iter_statements(stmt.body)


def iter_routines(program: Program) -> Iterator[RoutineDecl]:
    """Yield every routine declared anywhere in the program, outer first."""

    def visit(block: Block) -> Iterator[RoutineDecl]:
        for routine in block.routines:
            yield routine
            yield from visit(routine.block)

    yield from visit(program.block)
