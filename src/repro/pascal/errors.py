"""Error types and source locations for the Mini-Pascal substrate.

Every diagnostic raised by the lexer, parser, semantic analyzer, or
interpreter carries a :class:`SourceLocation` so that tools built on top
(the debugger, the slicer, the transformation pipeline) can point back at
the original program text.
"""

from __future__ import annotations

from dataclasses import dataclass


@dataclass(frozen=True, order=True)
class SourceLocation:
    """A (line, column) position in a source file, 1-based."""

    line: int = 0
    column: int = 0

    def __str__(self) -> str:
        return f"{self.line}:{self.column}"

    @classmethod
    def unknown(cls) -> "SourceLocation":
        return cls(0, 0)


class PascalError(Exception):
    """Base class for every diagnostic produced by the substrate."""

    def __init__(self, message: str, location: SourceLocation | None = None):
        self.location = location or SourceLocation.unknown()
        self.message = message
        super().__init__(f"{self.location}: {message}" if location else message)


class LexError(PascalError):
    """Raised when the scanner meets a character sequence it cannot tokenize."""


class ParseError(PascalError):
    """Raised when the token stream does not form a valid program."""


class SemanticError(PascalError):
    """Raised for name-resolution and type errors."""


class PascalRuntimeError(PascalError):
    """Raised when program execution fails (division by zero, bad index, ...)."""


class StepLimitExceeded(PascalRuntimeError):
    """Raised when execution exceeds the interpreter's step budget.

    The debugger runs user programs that may loop forever; a step budget
    turns runaway executions into a diagnosable failure.
    """


class UndefinedValueError(PascalRuntimeError):
    """Raised when a program reads a variable that was never assigned."""
