"""Tree-walking interpreter for Mini-Pascal with observation hooks.

The interpreter executes analyzed programs and exposes an
:class:`ExecutionHooks` interface through which the tracing phase builds
execution trees and the dynamic slicer records dependences. Storage is
modelled with explicit :class:`Cell` objects so that ``var`` parameter
aliasing is physical: a dynamic data dependence is simply "last write to
this cell (and element)", no matter which name performed it.

Parameter modes:

* value parameters copy their argument (arrays deeply),
* ``var`` parameters share the caller's cell,
* ``in``/``out`` parameters (produced by the globals-to-parameters
  transformation) also share the caller's cell — this makes the
  transformed program *exactly* equivalent to direct global access, the
  property the transformation phase relies on; the modes are enforced
  statically (no assignment to ``in`` parameters).

Global gotos (exit side effects) propagate as :class:`GotoSignal` through
routine frames until a frame whose statement list defines the label
catches them, faithfully modelling the paper's pre-transformation
semantics.

Execution speed (see ``docs/PERFORMANCE.md``): statements and expressions
are dispatched through precomputed per-node-type tables instead of
``isinstance`` chains, and when no observer is attached (``hooks=None``,
the plain ``run_source`` case) the interpreter switches to a *null-hook
fast path* that skips every :class:`ExecutionHooks` callback — the hot
loop then pays nothing for the tracing machinery it is not using.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.pascal import ast_nodes as ast
from repro.pascal.errors import (
    PascalRuntimeError,
    SourceLocation,
    StepLimitExceeded,
    UndefinedValueError,
)
from repro.pascal.semantics import (
    AnalyzedProgram,
    BUILTIN_FUNCTIONS,
    IO_PROCEDURES,
    TRACE_PROCEDURES,
    RoutineInfo,
)
from repro.pascal.symbols import ArrayTypeInfo, Symbol, SymbolKind
from repro.pascal.values import (
    ArrayValue,
    UNDEFINED,
    copy_value,
    default_value,
    format_value,
)

class GotoSignal(Exception):
    """Non-local transfer of control, unwinding to the defining label."""

    def __init__(self, label: Symbol, location: SourceLocation):
        self.label = label
        self.location = location
        super().__init__(f"goto {label.name}")


class Cell:
    """One unit of storage. Arrays occupy a single cell holding an
    :class:`~repro.pascal.values.ArrayValue` mutated in place."""

    __slots__ = ("value", "symbol")

    def __init__(self, value: object = UNDEFINED, symbol: Symbol | None = None):
        self.value = value
        self.symbol = symbol

    def __repr__(self) -> str:
        name = self.symbol.name if self.symbol is not None else "?"
        return f"<Cell {name}={self.value!r}>"


@dataclass(slots=True)
class Frame:
    """An activation record: one per routine call, plus one for globals."""

    routine: RoutineInfo
    cells: dict[Symbol, Cell] = field(default_factory=dict)
    result_cell: Cell | None = None
    depth: int = 0

    def cell(self, symbol: Symbol) -> Cell:
        return self.cells[symbol]


class ExecutionHooks:
    """Override any subset of these no-op callbacks to observe execution."""

    def enter_routine(
        self, call: ast.Node | None, info: RoutineInfo, frame: Frame
    ) -> None:
        """A routine frame was created and parameters bound (pre-body)."""

    def exit_routine(
        self, info: RoutineInfo, frame: Frame, via_goto: Symbol | None
    ) -> None:
        """The routine body finished (``via_goto`` set for exit side effects)."""

    def before_stmt(self, stmt: ast.Stmt, frame: Frame) -> None:
        """A statement occurrence is about to execute."""

    def after_stmt(self, stmt: ast.Stmt, frame: Frame) -> None:
        """A statement occurrence finished normally."""

    def cell_read(self, cell: Cell, index: int | None) -> None:
        """A scalar or array element was read (``index`` None = whole cell)."""

    def cell_write(self, cell: Cell, index: int | None, value: object) -> None:
        """A scalar or array element was written."""

    def branch(self, stmt: ast.Stmt, frame: Frame, taken: object) -> None:
        """A conditional's predicate evaluated to ``taken``."""

    def loop_enter(self, stmt: ast.Stmt, frame: Frame) -> None:
        """A while/repeat/for statement occurrence began."""

    def loop_iteration(self, stmt: ast.Stmt, frame: Frame, iteration: int) -> None:
        """Iteration ``iteration`` (1-based) of the loop body is starting."""

    def loop_exit(self, stmt: ast.Stmt, frame: Frame, iterations: int) -> None:
        """The loop occurrence finished after ``iterations`` body runs."""

    def trace_action(
        self, stmt: ast.ProcCall, frame: Frame, values: list[object]
    ) -> None:
        """An inserted ``gadt_*`` trace action executed."""

    def io_write(self, text: str) -> None:
        """The program wrote ``text`` to its output."""


#: Shared no-op hook instance used when execution is unobserved. Hot
#: paths additionally test ``self._hk is None`` so the fast path never
#: pays for a Python-level no-op call.
_NULL_HOOKS = ExecutionHooks()


class PascalIO:
    """Pluggable standard input/output for ``read``/``write``.

    ``inputs`` supplies values for ``read``; output is collected in
    ``output_chunks`` (joined by :attr:`text`).
    """

    def __init__(self, inputs: list[object] | None = None):
        self.inputs = list(inputs or [])
        self._cursor = 0
        self.output_chunks: list[str] = []

    def read_value(self, location: SourceLocation) -> object:
        if self._cursor >= len(self.inputs):
            raise PascalRuntimeError("read past end of input", location)
        value = self.inputs[self._cursor]
        self._cursor += 1
        return value

    def write(self, text: str) -> None:
        self.output_chunks.append(text)

    @property
    def text(self) -> str:
        return "".join(self.output_chunks)

    @property
    def lines(self) -> list[str]:
        text = self.text
        if text.endswith("\n"):
            text = text[:-1]
        return text.split("\n") if text else []


@dataclass
class ExecutionResult:
    """Outcome of running a whole program."""

    io: PascalIO
    globals_frame: Frame
    steps: int

    @property
    def output(self) -> str:
        return self.io.text

    def global_value(self, name: str) -> object:
        for symbol, cell in self.globals_frame.cells.items():
            if symbol.name == name:
                return cell.value
        raise KeyError(f"no global named {name!r}")


@dataclass
class UnitCallResult:
    """Outcome of calling one routine in isolation (testing / oracles)."""

    routine: str
    result: object = None
    out_values: dict[str, object] = field(default_factory=dict)
    globals_after: dict[str, object] = field(default_factory=dict)
    output: str = ""
    #: label name if the routine terminated through a global goto
    via_goto: str | None = None


#: maximum Pascal call depth. The tree-walking interpreter spends several
#: Python frames per Pascal frame, so execution temporarily raises the
#: Python recursion limit to keep this bound the one that fires.
_MAX_DEPTH = 150

#: wall-clock deadline checks fire when ``steps & _DEADLINE_MASK == 0``
#: (mirrors repro.resilience.budget.DEADLINE_CHECK_MASK; duplicated here
#: so the substrate stays free of upward imports)
_DEADLINE_MASK = 0x3FF

#: Pascal integers are bounded; we use 64-bit limits (far beyond the
#: paper-era 16/32-bit maxint, but still overflow-checked so runaway
#: arithmetic fails diagnosably instead of growing without bound).
MAX_INT = 2**63 - 1
MIN_INT = -(2**63)


class _RecursionHeadroom:
    """Context manager giving the interpreter Python-stack headroom."""

    def __enter__(self) -> None:
        import sys

        self._saved = sys.getrecursionlimit()
        sys.setrecursionlimit(max(self._saved, 20_000))

    def __exit__(self, *exc_info) -> None:
        import sys

        sys.setrecursionlimit(self._saved)


class Interpreter:
    def __init__(
        self,
        analysis: AnalyzedProgram,
        io: PascalIO | None = None,
        hooks: ExecutionHooks | None = None,
        step_limit: int = 2_000_000,
        budget=None,
    ):
        self.analysis = analysis
        self.io = io if io is not None else PascalIO()
        self.hooks = hooks if hooks is not None else _NULL_HOOKS
        # A resource budget (repro.resilience.Budget) tightens the step
        # limit and call depth and adds a wall-clock deadline. The budget
        # is duck-typed — this module never imports the resilience layer,
        # keeping the substrate free of upward dependencies.
        if budget is not None:
            step_limit = budget.effective_step_limit(step_limit)
            self._max_depth = budget.effective_call_depth(_MAX_DEPTH)
            if budget.deadline_at is None:
                budget.start()
        else:
            self._max_depth = _MAX_DEPTH
        self._budget = budget
        self.step_limit = step_limit
        self.steps = 0
        self.globals_frame: Frame | None = None
        self._frames: list[Frame] = []
        # Null-hook fast path: a bare ExecutionHooks (or None) observes
        # nothing, so skip every callback. ``_hk`` is the single flag the
        # hot paths test; the per-statement wrapper is swapped wholesale.
        observed = hooks is not None and type(hooks) is not ExecutionHooks
        self._hk: ExecutionHooks | None = self.hooks if observed else None
        if not observed:
            self._exec_stmt = self._exec_stmt_fast  # type: ignore[method-assign]

    # ------------------------------------------------------------------
    # entry points

    def run(self) -> ExecutionResult:
        """Execute the whole program from its main body."""
        frame = self._make_globals_frame()
        hk = self._hk
        if hk is not None:
            hk.enter_routine(None, self.analysis.main, frame)
        via_goto: Symbol | None = None
        with _RecursionHeadroom():
            try:
                self._exec_stmt(self.analysis.main.block.body, frame)
            except GotoSignal as signal:
                raise PascalRuntimeError(
                    f"goto {signal.label.name} escaped the program", signal.location
                )
            finally:
                if hk is not None:
                    hk.exit_routine(self.analysis.main, frame, via_goto)
        return ExecutionResult(io=self.io, globals_frame=frame, steps=self.steps)

    def call_routine_by_name(
        self,
        name: str,
        args: list[object],
        globals_in: dict[str, object] | None = None,
    ) -> UnitCallResult:
        """Call one routine in isolation with concrete argument values.

        ``var``/``out`` arguments are given fresh cells seeded with the
        provided values; their final values come back in ``out_values``.
        Globals are default-initialized, then overridden by ``globals_in``.
        Used by the test-case runner and the reference oracle.
        """
        info = self.analysis.routine_named(name)
        globals_frame = self._make_globals_frame()
        if globals_in:
            by_name = {symbol.name: cell for symbol, cell in globals_frame.cells.items()}
            for global_name, value in globals_in.items():
                if global_name not in by_name:
                    raise KeyError(f"no global named {global_name!r}")
                by_name[global_name].value = copy_value(value)

        if len(args) != len(info.params):
            raise PascalRuntimeError(
                f"{name} expects {len(info.params)} argument(s), got {len(args)}"
            )
        arg_cells: list[Cell] = []
        bound: list[tuple[Symbol, Cell]] = []
        for param, value in zip(info.params, args):
            adapted = self._adapt_value(copy_value(value), param.type)
            cell = Cell(adapted, symbol=param)
            arg_cells.append(cell)
            bound.append((param, cell))
        via_goto: str | None = None
        with _RecursionHeadroom():
            try:
                result = self._run_routine_body(None, info, bound)
            except GotoSignal as signal:
                # An exit side effect escaping an isolated call: report it
                # as part of the outcome rather than crashing the caller.
                result = None
                via_goto = signal.label.name

        out_values = {
            param.name: copy_value(cell.value)
            for param, cell in zip(info.params, arg_cells)
            if param.param_mode in (ast.ParamMode.VAR, ast.ParamMode.OUT)
        }
        globals_after = {
            symbol.name: copy_value(cell.value)
            for symbol, cell in globals_frame.cells.items()
        }
        return UnitCallResult(
            routine=name,
            result=result,
            out_values=out_values,
            globals_after=globals_after,
            output=self.io.text,
            via_goto=via_goto,
        )

    # ------------------------------------------------------------------
    # frames

    def _make_globals_frame(self) -> Frame:
        frame = Frame(routine=self.analysis.main)
        for symbol in self.analysis.main.locals:
            assert symbol.type is not None
            frame.cells[symbol] = Cell(default_value(symbol.type), symbol=symbol)
        self.globals_frame = frame
        self._frames = [frame]
        return frame

    def _lookup_cell(self, symbol: Symbol, frame: Frame) -> Cell:
        """Find the cell for a symbol visible from ``frame``.

        Walks the *static* chain: the current frame, then frames of
        enclosing routines on the call stack, then globals.
        """
        cell = frame.cells.get(symbol)
        if cell is not None:
            return cell
        if symbol.owner is None:
            assert self.globals_frame is not None
            cell = self.globals_frame.cells.get(symbol)
            if cell is not None:
                return cell
        else:
            # Non-local from an enclosing routine: nearest frame of the owner.
            for candidate in reversed(self._frames):
                if candidate.routine.symbol is symbol.owner:
                    cell = candidate.cells.get(symbol)
                    if cell is not None:
                        return cell
                    if (
                        candidate.result_cell is not None
                        and symbol.kind is SymbolKind.RESULT
                    ):
                        return candidate.result_cell
        raise PascalRuntimeError(f"no storage for {symbol.qualified_name}")

    # ------------------------------------------------------------------
    # routine calls

    def _call_routine(
        self, call: ast.Node, target: Symbol, args: list[ast.Expr], frame: Frame
    ) -> object:
        info = self.analysis.routines[target]
        bound: list[tuple[Symbol, Cell]] = []
        for param, arg in zip(target.params, args):
            if param.param_mode in (ast.ParamMode.VAR, ast.ParamMode.OUT, ast.ParamMode.IN_):
                cell, index = self._resolve_reference(arg, frame)
                if index is not None:
                    raise PascalRuntimeError(
                        "array elements cannot be passed by reference", arg.location
                    )
                bound.append((param, cell))
            else:
                value = self._eval(arg, frame)
                adapted = self._adapt_value(copy_value(value), param.type)
                bound.append((param, Cell(adapted, symbol=param)))
        return self._run_routine_body(call, info, bound)

    def _run_routine_body(
        self,
        call: ast.Node | None,
        info: RoutineInfo,
        bound: list[tuple[Symbol, Cell]],
    ) -> object:
        if len(self._frames) >= self._max_depth:
            raise PascalRuntimeError(f"call depth exceeded in {info.name}")
        frame = Frame(routine=info, depth=len(self._frames))
        for param, cell in bound:
            frame.cells[param] = cell
        for local in info.locals:
            assert local.type is not None
            frame.cells[local] = Cell(default_value(local.type), symbol=local)
        if info.result_symbol is not None:
            frame.result_cell = Cell(UNDEFINED, symbol=info.result_symbol)

        self._frames.append(frame)
        hk = self._hk
        if hk is not None:
            hk.enter_routine(call, info, frame)
        via_goto: Symbol | None = None
        try:
            self._exec_stmt(info.block.body, frame)
        except GotoSignal as signal:
            via_goto = signal.label
            raise
        finally:
            if hk is not None:
                hk.exit_routine(info, frame, via_goto)
            self._frames.pop()

        if frame.result_cell is not None:
            if frame.result_cell.value is UNDEFINED:
                raise UndefinedValueError(
                    f"function {info.name} returned without assigning a result",
                    info.decl.location,
                )
            return frame.result_cell.value
        return None

    # ------------------------------------------------------------------
    # statements

    def _tick(self, stmt: ast.Stmt) -> None:
        self.steps += 1
        if self.steps > self.step_limit:
            raise StepLimitExceeded(
                f"execution exceeded {self.step_limit} steps", stmt.location
            )
        if self._budget is not None and (self.steps & _DEADLINE_MASK) == 0:
            self._budget.check(stmt.location)

    def _exec_stmt(self, stmt: ast.Stmt, frame: Frame) -> None:
        """Traced statement dispatch (hooks observe every statement)."""
        self.steps += 1
        if self.steps > self.step_limit:
            raise StepLimitExceeded(
                f"execution exceeded {self.step_limit} steps", stmt.location
            )
        if self._budget is not None and (self.steps & _DEADLINE_MASK) == 0:
            self._budget.check(stmt.location)
        handler = _STMT_DISPATCH.get(stmt.__class__)
        if handler is None:
            handler = _register_subclass(_STMT_DISPATCH, stmt, "execute")
        hooks = self.hooks
        hooks.before_stmt(stmt, frame)
        handler(self, stmt, frame)
        hooks.after_stmt(stmt, frame)

    def _exec_stmt_fast(self, stmt: ast.Stmt, frame: Frame) -> None:
        """Null-hook statement dispatch (installed as ``_exec_stmt`` when
        no observer is attached): no callback overhead at all."""
        self.steps += 1
        if self.steps > self.step_limit:
            raise StepLimitExceeded(
                f"execution exceeded {self.step_limit} steps", stmt.location
            )
        if self._budget is not None and (self.steps & _DEADLINE_MASK) == 0:
            self._budget.check(stmt.location)
        handler = _STMT_DISPATCH.get(stmt.__class__)
        if handler is None:
            handler = _register_subclass(_STMT_DISPATCH, stmt, "execute")
        handler(self, stmt, frame)

    # individual statement handlers (dispatch table targets) -----------

    def _exec_empty(self, stmt: ast.EmptyStmt, frame: Frame) -> None:
        pass

    def _exec_compound(self, stmt: ast.Compound, frame: Frame) -> None:
        self._exec_stmt_list(stmt.statements, frame)

    def _exec_if(self, stmt: ast.If, frame: Frame) -> None:
        condition = self._eval(stmt.condition, frame)
        hk = self._hk
        if hk is not None:
            hk.branch(stmt, frame, condition)
        if condition:
            self._exec_stmt(stmt.then_branch, frame)
        elif stmt.else_branch is not None:
            self._exec_stmt(stmt.else_branch, frame)

    def _exec_goto(self, stmt: ast.Goto, frame: Frame) -> None:
        label = self.analysis.goto_target[stmt.node_id]
        raise GotoSignal(label, stmt.location)

    def _exec_stmt_list(self, statements: list[ast.Stmt], frame: Frame) -> None:
        # The label map is only consulted when a goto actually unwinds to
        # this list, so build it lazily inside the handler — the common
        # path pays nothing per list execution.
        labels = None
        position = 0
        while position < len(statements):
            try:
                self._exec_stmt(statements[position], frame)
            except GotoSignal as signal:
                if labels is None:
                    labels = {
                        stmt.label: index
                        for index, stmt in enumerate(statements)
                        if stmt.label is not None
                    }
                frame_owner = None if frame.routine.is_main else frame.routine.symbol
                if signal.label.owner is frame_owner and signal.label.name in labels:
                    position = labels[signal.label.name]
                    continue
                raise
            position += 1

    def _exec_assign(self, stmt: ast.Assign, frame: Frame) -> None:
        value = self._eval(stmt.value, frame)
        cell, index = self._resolve_reference(stmt.target, frame)
        self._store(cell, index, value, stmt.target)

    def _store(
        self, cell: Cell, index: int | None, value: object, target: ast.Expr
    ) -> None:
        if index is None:
            target_type = self.analysis.expr_type.get(target.node_id)
            if isinstance(target_type, ArrayTypeInfo):
                value = self._adapt_value(copy_value(value), target_type)
            cell.value = value
        else:
            array = cell.value
            if not isinstance(array, ArrayValue):
                raise PascalRuntimeError("indexed store into non-array", target.location)
            if not array.in_bounds(index):
                raise PascalRuntimeError(
                    f"index {index} out of bounds [{array.low}..{array.high}]",
                    target.location,
                )
            array.set(index, value)
        hk = self._hk
        if hk is not None:
            hk.cell_write(cell, index, value)

    def _exec_proc_call(self, stmt: ast.ProcCall, frame: Frame) -> None:
        if stmt.name in IO_PROCEDURES:
            self._exec_io(stmt, frame)
            return
        if stmt.name in TRACE_PROCEDURES:
            values = [
                self._eval(arg, frame)
                for arg in stmt.args
                if not isinstance(arg, ast.StringLiteral)
            ]
            hk = self._hk
            if hk is not None:
                hk.trace_action(stmt, frame, values)
            return
        target = self.analysis.call_target[stmt.node_id]
        self._call_routine(stmt, target, stmt.args, frame)

    def _exec_io(self, stmt: ast.ProcCall, frame: Frame) -> None:
        if stmt.name in ("write", "writeln"):
            hk = self._hk
            for arg in stmt.args:
                value = self._eval(arg, frame)
                text = value if isinstance(value, str) else format_value(value)
                self.io.write(text)
                if hk is not None:
                    hk.io_write(text)
            if stmt.name == "writeln":
                self.io.write("\n")
                if hk is not None:
                    hk.io_write("\n")
            return
        for arg in stmt.args:
            value = self.io.read_value(stmt.location)
            cell, index = self._resolve_reference(arg, frame)
            self._store(cell, index, value, arg)

    def _exec_while(self, stmt: ast.While, frame: Frame) -> None:
        hk = self._hk
        if hk is not None:
            hk.loop_enter(stmt, frame)
        iterations = 0
        try:
            while True:
                self._tick(stmt)
                condition = self._eval(stmt.condition, frame)
                if hk is not None:
                    hk.branch(stmt, frame, condition)
                if not condition:
                    break
                iterations += 1
                if hk is not None:
                    hk.loop_iteration(stmt, frame, iterations)
                self._exec_stmt(stmt.body, frame)
        finally:
            if hk is not None:
                hk.loop_exit(stmt, frame, iterations)

    def _exec_repeat(self, stmt: ast.Repeat, frame: Frame) -> None:
        hk = self._hk
        if hk is not None:
            hk.loop_enter(stmt, frame)
        iterations = 0
        try:
            while True:
                self._tick(stmt)
                iterations += 1
                if hk is not None:
                    hk.loop_iteration(stmt, frame, iterations)
                self._exec_stmt_list(stmt.body, frame)
                condition = self._eval(stmt.condition, frame)
                if hk is not None:
                    hk.branch(stmt, frame, condition)
                if condition:
                    break
        finally:
            if hk is not None:
                hk.loop_exit(stmt, frame, iterations)

    def _exec_for(self, stmt: ast.For, frame: Frame) -> None:
        symbol = self.analysis.for_symbol[stmt.node_id]
        cell = self._lookup_cell(symbol, frame)
        start = self._expect_int(self._eval(stmt.start, frame), stmt.start)
        stop = self._expect_int(self._eval(stmt.stop, frame), stmt.stop)
        hk = self._hk
        if hk is not None:
            hk.loop_enter(stmt, frame)
        iterations = 0
        try:
            step = -1 if stmt.downto else 1
            current = start
            while (current >= stop) if stmt.downto else (current <= stop):
                self._tick(stmt)
                iterations += 1
                cell.value = current
                if hk is not None:
                    hk.cell_write(cell, None, current)
                    hk.loop_iteration(stmt, frame, iterations)
                self._exec_stmt(stmt.body, frame)
                current += step
        finally:
            if hk is not None:
                hk.loop_exit(stmt, frame, iterations)

    # ------------------------------------------------------------------
    # expressions

    def _eval(self, expr: ast.Expr, frame: Frame) -> object:
        handler = _EXPR_DISPATCH.get(expr.__class__)
        if handler is None:
            handler = _register_subclass(_EXPR_DISPATCH, expr, "evaluate")
        return handler(self, expr, frame)

    def _eval_literal(self, expr: ast.Expr, frame: Frame) -> object:
        return expr.value  # type: ignore[attr-defined]

    def _eval_array_literal(self, expr: ast.ArrayLiteral, frame: Frame) -> object:
        return ArrayValue.from_values(
            self._eval(element, frame) for element in expr.elements
        )

    def _eval_var(self, expr: ast.VarRef, frame: Frame) -> object:
        symbol = self.analysis.ref_symbol[expr.node_id]
        if symbol.kind is SymbolKind.CONSTANT:
            return symbol.const_value
        cell = self._lookup_cell(symbol, frame)
        hk = self._hk
        if hk is not None:
            hk.cell_read(cell, None)
        if cell.value is UNDEFINED:
            raise UndefinedValueError(
                f"'{symbol.name}' used before assignment", expr.location
            )
        return cell.value

    def _eval_indexed(self, expr: ast.IndexedRef, frame: Frame) -> object:
        cell, index = self._resolve_reference(expr, frame)
        assert index is not None
        array = cell.value
        if not isinstance(array, ArrayValue):
            raise PascalRuntimeError("indexing a non-array value", expr.location)
        if not array.in_bounds(index):
            raise PascalRuntimeError(
                f"index {index} out of bounds [{array.low}..{array.high}]",
                expr.location,
            )
        hk = self._hk
        if hk is not None:
            hk.cell_read(cell, index)
        value = array.get(index)
        if value is UNDEFINED:
            raise UndefinedValueError(
                f"array element [{index}] used before assignment", expr.location
            )
        return value

    def _resolve_reference(
        self, expr: ast.Expr, frame: Frame
    ) -> tuple[Cell, int | None]:
        """Resolve an lvalue to (cell, element-index-or-None)."""
        if isinstance(expr, ast.VarRef):
            symbol = self.analysis.ref_symbol[expr.node_id]
            if symbol.kind is SymbolKind.CONSTANT:
                raise PascalRuntimeError(
                    f"'{symbol.name}' is a constant", expr.location
                )
            return self._lookup_cell(symbol, frame), None
        if isinstance(expr, ast.IndexedRef):
            cell, index = self._resolve_reference(expr.base, frame)
            if index is not None:
                raise PascalRuntimeError(
                    "multi-dimensional arrays are not supported", expr.location
                )
            element = self._expect_int(self._eval(expr.index, frame), expr.index)
            return cell, element
        raise PascalRuntimeError("expression is not a variable", expr.location)

    def _eval_func_call(self, expr: ast.FuncCall, frame: Frame) -> object:
        if expr.name in BUILTIN_FUNCTIONS:
            values = [
                self._expect_int(self._eval(arg, frame), arg) for arg in expr.args
            ]
            return self._eval_builtin_call(expr, values)
        target = self.analysis.call_target[expr.node_id]
        return self._call_routine(expr, target, expr.args, frame)

    @staticmethod
    def _check_overflow(value: int, expr: ast.Expr) -> int:
        if MIN_INT <= value <= MAX_INT:
            return value
        raise PascalRuntimeError("integer overflow", expr.location)

    def _eval_builtin_call(self, expr: ast.FuncCall, values: list[int]) -> object:
        result = self._eval_builtin(expr.name, values)
        if isinstance(result, bool) or not isinstance(result, int):
            return result
        return self._check_overflow(result, expr)

    @staticmethod
    def _eval_builtin(name: str, values: list[int]) -> object:
        if name == "abs":
            return abs(values[0])
        if name == "sqr":
            return values[0] * values[0]
        if name == "odd":
            return values[0] % 2 != 0
        if name == "min":
            return min(values[0], values[1])
        if name == "max":
            return max(values[0], values[1])
        raise PascalRuntimeError(f"unknown builtin {name}")

    def _eval_unary(self, expr: ast.UnaryOp, frame: Frame) -> object:
        value = self._eval(expr.operand, frame)
        if expr.op == "-":
            return -self._expect_int(value, expr.operand)
        if expr.op == "not":
            return not self._expect_bool(value, expr.operand)
        raise PascalRuntimeError(f"unknown unary operator {expr.op}", expr.location)

    def _eval_binary(self, expr: ast.BinaryOp, frame: Frame) -> object:
        op = expr.op
        # 'and'/'or' are evaluated eagerly, as in classic Pascal.
        left = self._eval(expr.left, frame)
        right = self._eval(expr.right, frame)
        if op in ("+", "-", "*", "div", "mod", "/"):
            a = self._expect_int(left, expr.left)
            b = self._expect_int(right, expr.right)
            if op == "+":
                return self._check_overflow(a + b, expr)
            if op == "-":
                return self._check_overflow(a - b, expr)
            if op == "*":
                return self._check_overflow(a * b, expr)
            if b == 0:
                raise PascalRuntimeError("division by zero", expr.location)
            quotient = abs(a) // abs(b)
            if (a >= 0) != (b >= 0):
                quotient = -quotient
            if op in ("div", "/"):
                return quotient
            return a - quotient * b  # mod
        if op == "and":
            return self._expect_bool(left, expr.left) and self._expect_bool(
                right, expr.right
            )
        if op == "or":
            return self._expect_bool(left, expr.left) or self._expect_bool(
                right, expr.right
            )
        if op in ("=", "<>"):
            equal = self._values_equal(left, right)
            return equal if op == "=" else not equal
        if op in ("<", "<=", ">", ">="):
            a = self._expect_int(left, expr.left)
            b = self._expect_int(right, expr.right)
            if op == "<":
                return a < b
            if op == "<=":
                return a <= b
            if op == ">":
                return a > b
            return a >= b
        raise PascalRuntimeError(f"unknown operator {op}", expr.location)

    # ------------------------------------------------------------------
    # small helpers

    @staticmethod
    def _values_equal(left: object, right: object) -> bool:
        if isinstance(left, ArrayValue) and isinstance(right, ArrayValue):
            return left == right
        return left == right

    @staticmethod
    def _expect_int(value: object, expr: ast.Expr) -> int:
        if isinstance(value, bool) or not isinstance(value, int):
            raise PascalRuntimeError(
                f"expected an integer, got {format_value(value)}", expr.location
            )
        return value

    @staticmethod
    def _expect_bool(value: object, expr: ast.Expr) -> bool:
        if not isinstance(value, bool):
            raise PascalRuntimeError(
                f"expected a boolean, got {format_value(value)}", expr.location
            )
        return value

    def _adapt_value(self, value: object, target_type: object) -> object:
        """Widen an array-literal value to a larger declared array type."""
        if (
            isinstance(target_type, ArrayTypeInfo)
            and isinstance(value, ArrayValue)
            and (value.low, value.high) != (target_type.low, target_type.high)
        ):
            if len(value.elements) > target_type.length:
                raise PascalRuntimeError(
                    f"array value with {len(value.elements)} elements does not "
                    f"fit array[{target_type.low}..{target_type.high}]"
                )
            widened = ArrayValue(target_type.low, target_type.high)
            for offset, element in enumerate(value.elements):
                widened.elements[offset] = element
            return widened
        return value


# ----------------------------------------------------------------------
# dispatch tables
#
# Precomputed per-node-type tables replace the former ``isinstance``-elif
# chains: statement/expression dispatch is a single dict lookup on the
# node's concrete class. Unknown classes (e.g. an ast subclass defined by
# an extension) fall back to an ``isinstance`` scan once, then are
# memoized into the table.

_STMT_DISPATCH: dict[type, object] = {
    ast.EmptyStmt: Interpreter._exec_empty,
    ast.Compound: Interpreter._exec_compound,
    ast.Assign: Interpreter._exec_assign,
    ast.ProcCall: Interpreter._exec_proc_call,
    ast.If: Interpreter._exec_if,
    ast.While: Interpreter._exec_while,
    ast.Repeat: Interpreter._exec_repeat,
    ast.For: Interpreter._exec_for,
    ast.Goto: Interpreter._exec_goto,
}

_EXPR_DISPATCH: dict[type, object] = {
    ast.IntLiteral: Interpreter._eval_literal,
    ast.BoolLiteral: Interpreter._eval_literal,
    ast.StringLiteral: Interpreter._eval_literal,
    ast.VarRef: Interpreter._eval_var,
    ast.IndexedRef: Interpreter._eval_indexed,
    ast.ArrayLiteral: Interpreter._eval_array_literal,
    ast.FuncCall: Interpreter._eval_func_call,
    ast.UnaryOp: Interpreter._eval_unary,
    ast.BinaryOp: Interpreter._eval_binary,
}


def _register_subclass(table: dict[type, object], node: ast.Node, verb: str):
    """Memoize dispatch for an ast subclass not directly in the table."""
    for base, handler in list(table.items()):
        if isinstance(node, base):
            table[node.__class__] = handler
            return handler
    raise PascalRuntimeError(
        f"cannot {verb} {type(node).__name__}", node.location
    )


def run_source(
    source: str,
    inputs: list[object] | None = None,
    hooks: ExecutionHooks | None = None,
    step_limit: int = 2_000_000,
    budget=None,
    backend: str | None = None,
) -> ExecutionResult:
    """Parse, analyze, and run a program in one call.

    Analysis is served from the content-addressed cache (keyed on the
    source text), so repeated runs of the same program only pay for
    execution. ``budget`` (a :class:`repro.resilience.Budget`) adds a
    wall-clock deadline and tightens the step/depth limits; exhaustion
    raises :class:`repro.resilience.BudgetExceeded`.

    ``backend`` picks the execution engine (``"interp"`` |
    ``"compiled"``; ``None`` defers to ``REPRO_BACKEND``). Custom
    ``hooks`` force the interpreter — the hook protocol is exactly the
    indirection the compiled backend removes."""
    from repro.pascal.semantics import analyze_source

    analysis = analyze_source(source)
    if hooks is None:
        from repro.compile import resolve_backend

        if resolve_backend(backend) == "compiled":
            from repro.compile import run_compiled

            return run_compiled(
                analysis, io=PascalIO(inputs), step_limit=step_limit,
                budget=budget,
            )
    interpreter = Interpreter(
        analysis, io=PascalIO(inputs), hooks=hooks, step_limit=step_limit,
        budget=budget,
    )
    return interpreter.run()
