"""Hand-written scanner for Mini-Pascal.

Supports both Pascal comment styles (``{ ... }`` and ``(* ... *)``),
case-insensitive keywords, integer literals, and single-quoted string
literals with ``''`` escaping.
"""

from __future__ import annotations

from repro.pascal.errors import LexError, SourceLocation
from repro.pascal.tokens import KEYWORDS, Token, TokenType

_SINGLE_CHAR_TOKENS = {
    "+": TokenType.PLUS,
    "-": TokenType.MINUS,
    "*": TokenType.STAR,
    "/": TokenType.SLASH,
    "=": TokenType.EQ,
    ")": TokenType.RPAREN,
    "[": TokenType.LBRACKET,
    "]": TokenType.RBRACKET,
    ",": TokenType.COMMA,
    ";": TokenType.SEMICOLON,
}


class Lexer:
    """Converts source text into a list of tokens."""

    def __init__(self, source: str):
        self._source = source
        self._pos = 0
        self._line = 1
        self._column = 1

    def tokenize(self) -> list[Token]:
        """Scan the whole input, returning tokens ending with EOF."""
        tokens: list[Token] = []
        while True:
            token = self._next_token()
            tokens.append(token)
            if token.type is TokenType.EOF:
                return tokens

    # ------------------------------------------------------------------
    # scanning machinery

    def _location(self) -> SourceLocation:
        return SourceLocation(self._line, self._column)

    def _peek(self, offset: int = 0) -> str:
        index = self._pos + offset
        if index < len(self._source):
            return self._source[index]
        return ""

    def _advance(self) -> str:
        char = self._source[self._pos]
        self._pos += 1
        if char == "\n":
            self._line += 1
            self._column = 1
        else:
            self._column += 1
        return char

    def _skip_trivia(self) -> None:
        """Skip whitespace and both comment styles."""
        while self._pos < len(self._source):
            char = self._peek()
            if char in " \t\r\n":
                self._advance()
            elif char == "{":
                self._skip_brace_comment()
            elif char == "(" and self._peek(1) == "*":
                self._skip_paren_comment()
            else:
                return

    def _skip_brace_comment(self) -> None:
        start = self._location()
        self._advance()  # consume '{'
        while self._pos < len(self._source):
            if self._advance() == "}":
                return
        raise LexError("unterminated '{' comment", start)

    def _skip_paren_comment(self) -> None:
        start = self._location()
        self._advance()  # consume '('
        self._advance()  # consume '*'
        while self._pos < len(self._source):
            if self._peek() == "*" and self._peek(1) == ")":
                self._advance()
                self._advance()
                return
            self._advance()
        raise LexError("unterminated '(*' comment", start)

    def _next_token(self) -> Token:
        self._skip_trivia()
        location = self._location()
        if self._pos >= len(self._source):
            return Token(TokenType.EOF, "", location)

        char = self._peek()
        if char.isalpha() or char == "_":
            return self._scan_word(location)
        if char.isdigit():
            return self._scan_number(location)
        if char == "'":
            return self._scan_string(location)
        return self._scan_operator(location)

    def _scan_word(self, location: SourceLocation) -> Token:
        chars: list[str] = []
        while self._peek().isalnum() or self._peek() == "_":
            chars.append(self._advance())
        text = "".join(chars)
        keyword = KEYWORDS.get(text.lower())
        if keyword is not None:
            return Token(keyword, text, location)
        return Token(TokenType.IDENT, text, location)

    def _scan_number(self, location: SourceLocation) -> Token:
        chars: list[str] = []
        while self._peek().isdigit():
            chars.append(self._advance())
        return Token(TokenType.INT_LITERAL, "".join(chars), location)

    def _scan_string(self, location: SourceLocation) -> Token:
        self._advance()  # opening quote
        chars: list[str] = []
        while True:
            if self._pos >= len(self._source) or self._peek() == "\n":
                raise LexError("unterminated string literal", location)
            char = self._advance()
            if char == "'":
                if self._peek() == "'":  # '' escapes a quote
                    chars.append(self._advance())
                else:
                    return Token(TokenType.STRING_LITERAL, "".join(chars), location)
            else:
                chars.append(char)

    def _scan_operator(self, location: SourceLocation) -> Token:
        char = self._advance()
        if char == ":":
            if self._peek() == "=":
                self._advance()
                return Token(TokenType.ASSIGN, ":=", location)
            return Token(TokenType.COLON, ":", location)
        if char == "<":
            if self._peek() == "=":
                self._advance()
                return Token(TokenType.LE, "<=", location)
            if self._peek() == ">":
                self._advance()
                return Token(TokenType.NEQ, "<>", location)
            return Token(TokenType.LT, "<", location)
        if char == ">":
            if self._peek() == "=":
                self._advance()
                return Token(TokenType.GE, ">=", location)
            return Token(TokenType.GT, ">", location)
        if char == ".":
            if self._peek() == ".":
                self._advance()
                return Token(TokenType.DOTDOT, "..", location)
            return Token(TokenType.DOT, ".", location)
        if char == "(":
            return Token(TokenType.LPAREN, "(", location)
        token_type = _SINGLE_CHAR_TOKENS.get(char)
        if token_type is not None:
            return Token(token_type, char, location)
        raise LexError(f"unexpected character {char!r}", location)


def tokenize(source: str) -> list[Token]:
    """Convenience wrapper: scan ``source`` into a token list."""
    return Lexer(source).tokenize()
