"""Recursive-descent parser for Mini-Pascal.

The grammar is classic Pascal restricted to the constructs the paper's
method covers (no pointers, no records, no files), plus two extensions
used by the paper itself:

* array constructors ``[1, 2]`` in expression position (the paper's main
  program calls ``sqrtest([1,2], 2, isok)``), and
* ``in`` / ``out`` parameter modes, which the transformation phase emits
  when global variables become parameters.
"""

from __future__ import annotations

from repro.pascal import ast_nodes as ast
from repro.pascal.errors import ParseError
from repro.pascal.lexer import tokenize
from repro.pascal.tokens import Token, TokenType

_RELATIONAL_OPS = {
    TokenType.EQ: "=",
    TokenType.NEQ: "<>",
    TokenType.LT: "<",
    TokenType.LE: "<=",
    TokenType.GT: ">",
    TokenType.GE: ">=",
}

_ADDITIVE_OPS = {
    TokenType.PLUS: "+",
    TokenType.MINUS: "-",
    TokenType.OR: "or",
}

_MULTIPLICATIVE_OPS = {
    TokenType.STAR: "*",
    TokenType.SLASH: "/",
    TokenType.DIV: "div",
    TokenType.MOD: "mod",
    TokenType.AND: "and",
}

# Tokens that may legally follow a statement; used to recover the classic
# Pascal "empty statement" (e.g. a semicolon directly before `end`).
_STATEMENT_TERMINATORS = {
    TokenType.END,
    TokenType.ELSE,
    TokenType.UNTIL,
    TokenType.SEMICOLON,
    TokenType.EOF,
}


class Parser:
    def __init__(self, tokens: list[Token]):
        self._tokens = tokens
        self._pos = 0

    # ------------------------------------------------------------------
    # token-stream helpers

    def _peek(self, offset: int = 0) -> Token:
        index = min(self._pos + offset, len(self._tokens) - 1)
        return self._tokens[index]

    def _check(self, token_type: TokenType) -> bool:
        return self._peek().type is token_type

    def _advance(self) -> Token:
        token = self._tokens[self._pos]
        if token.type is not TokenType.EOF:
            self._pos += 1
        return token

    def _match(self, token_type: TokenType) -> Token | None:
        if self._check(token_type):
            return self._advance()
        return None

    def _expect(self, token_type: TokenType, context: str = "") -> Token:
        if self._check(token_type):
            return self._advance()
        where = f" in {context}" if context else ""
        raise ParseError(
            f"expected '{token_type.value}'{where}, found {self._peek()}",
            self._peek().location,
        )

    def _expect_ident(self, context: str = "") -> Token:
        return self._expect(TokenType.IDENT, context)

    # ------------------------------------------------------------------
    # program structure

    def parse_program(self) -> ast.Program:
        start = self._peek().location
        self._expect(TokenType.PROGRAM, "program header")
        name = self._expect_ident("program header").normalized
        # Optional (input, output) file list, ignored.
        if self._match(TokenType.LPAREN):
            while not self._check(TokenType.RPAREN):
                self._advance()
            self._expect(TokenType.RPAREN)
        self._expect(TokenType.SEMICOLON, "program header")
        block = self._parse_block()
        self._expect(TokenType.DOT, "end of program")
        return ast.Program(name=name, block=block, location=start)

    def _parse_block(self) -> ast.Block:
        start = self._peek().location
        block = ast.Block(location=start)
        while True:
            if self._check(TokenType.LABEL):
                block.labels.extend(self._parse_label_section())
            elif self._check(TokenType.CONST):
                block.consts.extend(self._parse_const_section())
            elif self._check(TokenType.TYPE):
                block.types.extend(self._parse_type_section())
            elif self._check(TokenType.VAR):
                block.variables.extend(self._parse_var_section())
            elif self._check(TokenType.PROCEDURE) or self._check(TokenType.FUNCTION):
                block.routines.append(self._parse_routine())
            else:
                break
        block.body = self._parse_compound()
        return block

    def _parse_label_section(self) -> list[ast.LabelDecl]:
        self._expect(TokenType.LABEL)
        labels = []
        while True:
            token = self._expect(TokenType.INT_LITERAL, "label declaration")
            labels.append(ast.LabelDecl(label=token.text, location=token.location))
            if not self._match(TokenType.COMMA):
                break
        self._expect(TokenType.SEMICOLON, "label declaration")
        return labels

    def _parse_const_section(self) -> list[ast.ConstDecl]:
        self._expect(TokenType.CONST)
        consts = []
        while self._check(TokenType.IDENT):
            name_token = self._advance()
            self._expect(TokenType.EQ, "constant declaration")
            value = self._parse_expression()
            self._expect(TokenType.SEMICOLON, "constant declaration")
            consts.append(
                ast.ConstDecl(
                    name=name_token.normalized, value=value, location=name_token.location
                )
            )
        return consts

    def _parse_type_section(self) -> list[ast.TypeDecl]:
        self._expect(TokenType.TYPE)
        types = []
        while self._check(TokenType.IDENT):
            name_token = self._advance()
            self._expect(TokenType.EQ, "type declaration")
            type_expr = self._parse_type_expr()
            self._expect(TokenType.SEMICOLON, "type declaration")
            types.append(
                ast.TypeDecl(
                    name=name_token.normalized,
                    type_expr=type_expr,
                    location=name_token.location,
                )
            )
        return types

    def _parse_var_section(self) -> list[ast.VarDecl]:
        self._expect(TokenType.VAR)
        decls: list[ast.VarDecl] = []
        while self._check(TokenType.IDENT):
            names = [self._advance()]
            while self._match(TokenType.COMMA):
                names.append(self._expect_ident("variable declaration"))
            self._expect(TokenType.COLON, "variable declaration")
            type_expr = self._parse_type_expr()
            self._expect(TokenType.SEMICOLON, "variable declaration")
            for name_token in names:
                decls.append(
                    ast.VarDecl(
                        name=name_token.normalized,
                        type_expr=ast.clone(type_expr),  # type: ignore[arg-type]
                        location=name_token.location,
                    )
                )
        return decls

    def _parse_type_expr(self) -> ast.TypeExpr:
        start = self._peek().location
        if self._match(TokenType.ARRAY):
            self._expect(TokenType.LBRACKET, "array type")
            low = self._parse_expression()
            self._expect(TokenType.DOTDOT, "array type")
            high = self._parse_expression()
            self._expect(TokenType.RBRACKET, "array type")
            self._expect(TokenType.OF, "array type")
            element = self._parse_type_expr()
            return ast.ArrayType(low=low, high=high, element=element, location=start)
        name_token = self._expect_ident("type expression")
        return ast.NamedType(name=name_token.normalized, location=start)

    def _parse_routine(self) -> ast.RoutineDecl:
        start = self._peek().location
        is_function = self._advance().type is TokenType.FUNCTION
        name = self._expect_ident("routine header").normalized
        params: list[ast.Param] = []
        if self._match(TokenType.LPAREN):
            if not self._check(TokenType.RPAREN):
                params.extend(self._parse_param_group())
                while self._match(TokenType.SEMICOLON):
                    params.extend(self._parse_param_group())
            self._expect(TokenType.RPAREN, "parameter list")
        result_type: ast.TypeExpr | None = None
        if is_function:
            self._expect(TokenType.COLON, "function header")
            result_type = self._parse_type_expr()
        self._expect(TokenType.SEMICOLON, "routine header")
        block = self._parse_block()
        self._expect(TokenType.SEMICOLON, "routine declaration")
        return ast.RoutineDecl(
            name=name, params=params, result_type=result_type, block=block, location=start
        )

    def _parse_param_group(self) -> list[ast.Param]:
        mode = ast.ParamMode.VALUE
        if self._match(TokenType.VAR):
            mode = ast.ParamMode.VAR
        elif self._match(TokenType.IN):
            mode = ast.ParamMode.IN_
        elif self._match(TokenType.OUT):
            mode = ast.ParamMode.OUT
        names = [self._expect_ident("parameter")]
        while self._match(TokenType.COMMA):
            names.append(self._expect_ident("parameter"))
        self._expect(TokenType.COLON, "parameter group")
        type_expr = self._parse_type_expr()
        return [
            ast.Param(
                name=token.normalized,
                type_expr=ast.clone(type_expr),  # type: ignore[arg-type]
                mode=mode,
                location=token.location,
            )
            for token in names
        ]

    # ------------------------------------------------------------------
    # statements

    def _parse_compound(self) -> ast.Compound:
        start = self._expect(TokenType.BEGIN, "compound statement").location
        statements: list[ast.Stmt] = []
        if not self._check(TokenType.END):
            statements.append(self._parse_statement())
            while self._match(TokenType.SEMICOLON):
                if self._check(TokenType.END):
                    break
                statements.append(self._parse_statement())
        self._expect(TokenType.END, "compound statement")
        return ast.Compound(statements=statements, location=start)

    def _parse_statement(self) -> ast.Stmt:
        label: str | None = None
        if self._check(TokenType.INT_LITERAL) and self._peek(1).type is TokenType.COLON:
            label = self._advance().text
            self._advance()  # colon
        stmt = self._parse_unlabeled_statement()
        stmt.label = label
        return stmt

    def _parse_unlabeled_statement(self) -> ast.Stmt:
        token = self._peek()
        if token.type is TokenType.BEGIN:
            return self._parse_compound()
        if token.type is TokenType.IF:
            return self._parse_if()
        if token.type is TokenType.WHILE:
            return self._parse_while()
        if token.type is TokenType.REPEAT:
            return self._parse_repeat()
        if token.type is TokenType.FOR:
            return self._parse_for()
        if token.type is TokenType.GOTO:
            return self._parse_goto()
        if token.type is TokenType.IDENT:
            return self._parse_assignment_or_call()
        if token.type in _STATEMENT_TERMINATORS:
            return ast.EmptyStmt(location=token.location)
        raise ParseError(f"expected a statement, found {token}", token.location)

    def _parse_if(self) -> ast.If:
        start = self._expect(TokenType.IF).location
        condition = self._parse_expression()
        self._expect(TokenType.THEN, "if statement")
        then_branch = self._parse_statement()
        else_branch: ast.Stmt | None = None
        if self._match(TokenType.ELSE):
            else_branch = self._parse_statement()
        return ast.If(
            condition=condition,
            then_branch=then_branch,
            else_branch=else_branch,
            location=start,
        )

    def _parse_while(self) -> ast.While:
        start = self._expect(TokenType.WHILE).location
        condition = self._parse_expression()
        self._expect(TokenType.DO, "while statement")
        body = self._parse_statement()
        return ast.While(condition=condition, body=body, location=start)

    def _parse_repeat(self) -> ast.Repeat:
        start = self._expect(TokenType.REPEAT).location
        body = [self._parse_statement()]
        while self._match(TokenType.SEMICOLON):
            if self._check(TokenType.UNTIL):
                break
            body.append(self._parse_statement())
        self._expect(TokenType.UNTIL, "repeat statement")
        condition = self._parse_expression()
        return ast.Repeat(body=body, condition=condition, location=start)

    def _parse_for(self) -> ast.For:
        start = self._expect(TokenType.FOR).location
        variable = self._expect_ident("for statement").normalized
        self._expect(TokenType.ASSIGN, "for statement")
        first = self._parse_expression()
        if self._match(TokenType.DOWNTO):
            downto = True
        else:
            self._expect(TokenType.TO, "for statement")
            downto = False
        stop = self._parse_expression()
        self._expect(TokenType.DO, "for statement")
        body = self._parse_statement()
        return ast.For(
            variable=variable,
            start=first,
            stop=stop,
            downto=downto,
            body=body,
            location=start,
        )

    def _parse_goto(self) -> ast.Goto:
        start = self._expect(TokenType.GOTO).location
        target = self._expect(TokenType.INT_LITERAL, "goto statement").text
        return ast.Goto(target=target, location=start)

    def _parse_assignment_or_call(self) -> ast.Stmt:
        start = self._peek().location
        name_token = self._advance()
        # Procedure call with or without arguments?
        if self._check(TokenType.LPAREN):
            args = self._parse_argument_list()
            return ast.ProcCall(name=name_token.normalized, args=args, location=start)
        # Assignment target: possibly indexed.
        target: ast.Expr = ast.VarRef(name=name_token.normalized, location=name_token.location)
        while self._check(TokenType.LBRACKET):
            self._advance()
            index = self._parse_expression()
            self._expect(TokenType.RBRACKET, "array index")
            target = ast.IndexedRef(base=target, index=index, location=start)
        if self._match(TokenType.ASSIGN):
            value = self._parse_expression()
            return ast.Assign(target=target, value=value, location=start)
        if isinstance(target, ast.VarRef):
            # Parameterless procedure call.
            return ast.ProcCall(name=target.name, args=[], location=start)
        raise ParseError("expected ':=' after indexed target", self._peek().location)

    def _parse_argument_list(self) -> list[ast.Expr]:
        self._expect(TokenType.LPAREN, "argument list")
        args: list[ast.Expr] = []
        if not self._check(TokenType.RPAREN):
            args.append(self._parse_expression())
            while self._match(TokenType.COMMA):
                args.append(self._parse_expression())
        self._expect(TokenType.RPAREN, "argument list")
        return args

    # ------------------------------------------------------------------
    # expressions

    def _parse_expression(self) -> ast.Expr:
        left = self._parse_simple_expression()
        op = _RELATIONAL_OPS.get(self._peek().type)
        if op is not None:
            op_token = self._advance()
            right = self._parse_simple_expression()
            return ast.BinaryOp(op=op, left=left, right=right, location=op_token.location)
        return left

    def _parse_simple_expression(self) -> ast.Expr:
        start = self._peek().location
        if self._check(TokenType.MINUS) or self._check(TokenType.PLUS):
            sign = self._advance()
            operand = self._parse_term()
            left: ast.Expr = (
                operand
                if sign.type is TokenType.PLUS
                else ast.UnaryOp(op="-", operand=operand, location=start)
            )
        else:
            left = self._parse_term()
        while True:
            op = _ADDITIVE_OPS.get(self._peek().type)
            if op is None:
                return left
            op_token = self._advance()
            right = self._parse_term()
            left = ast.BinaryOp(op=op, left=left, right=right, location=op_token.location)

    def _parse_term(self) -> ast.Expr:
        left = self._parse_factor()
        while True:
            op = _MULTIPLICATIVE_OPS.get(self._peek().type)
            if op is None:
                return left
            op_token = self._advance()
            right = self._parse_factor()
            left = ast.BinaryOp(op=op, left=left, right=right, location=op_token.location)

    def _parse_factor(self) -> ast.Expr:
        token = self._peek()
        if token.type is TokenType.INT_LITERAL:
            self._advance()
            return ast.IntLiteral(value=int(token.text), location=token.location)
        if token.type is TokenType.TRUE:
            self._advance()
            return ast.BoolLiteral(value=True, location=token.location)
        if token.type is TokenType.FALSE:
            self._advance()
            return ast.BoolLiteral(value=False, location=token.location)
        if token.type is TokenType.STRING_LITERAL:
            self._advance()
            return ast.StringLiteral(value=token.text, location=token.location)
        if token.type is TokenType.NOT:
            self._advance()
            operand = self._parse_factor()
            return ast.UnaryOp(op="not", operand=operand, location=token.location)
        if token.type is TokenType.MINUS:
            # Extension over strict Pascal: a signed factor (e.g. `a - -b`),
            # which keeps pretty-printed trees reparseable.
            self._advance()
            operand = self._parse_factor()
            return ast.UnaryOp(op="-", operand=operand, location=token.location)
        if token.type is TokenType.PLUS:
            self._advance()
            return self._parse_factor()
        if token.type is TokenType.LPAREN:
            self._advance()
            expr = self._parse_expression()
            self._expect(TokenType.RPAREN, "parenthesized expression")
            return expr
        if token.type is TokenType.LBRACKET:
            return self._parse_array_literal()
        if token.type is TokenType.IDENT:
            return self._parse_designator()
        raise ParseError(f"expected an expression, found {token}", token.location)

    def _parse_array_literal(self) -> ast.ArrayLiteral:
        start = self._expect(TokenType.LBRACKET).location
        elements: list[ast.Expr] = []
        if not self._check(TokenType.RBRACKET):
            elements.append(self._parse_expression())
            while self._match(TokenType.COMMA):
                elements.append(self._parse_expression())
        self._expect(TokenType.RBRACKET, "array literal")
        return ast.ArrayLiteral(elements=elements, location=start)

    def _parse_designator(self) -> ast.Expr:
        name_token = self._advance()
        if self._check(TokenType.LPAREN):
            args = self._parse_argument_list()
            return ast.FuncCall(name=name_token.normalized, args=args, location=name_token.location)
        expr: ast.Expr = ast.VarRef(name=name_token.normalized, location=name_token.location)
        while self._check(TokenType.LBRACKET):
            self._advance()
            index = self._parse_expression()
            self._expect(TokenType.RBRACKET, "array index")
            expr = ast.IndexedRef(base=expr, index=index, location=name_token.location)
        return expr


def parse_program(source: str) -> ast.Program:
    """Parse Mini-Pascal source text into a :class:`~repro.pascal.ast_nodes.Program`."""
    return Parser(tokenize(source)).parse_program()


def parse_expression(source: str) -> ast.Expr:
    """Parse a standalone expression (used by the assertion language)."""
    parser = Parser(tokenize(source))
    expr = parser._parse_expression()
    token = parser._peek()
    if token.type is not TokenType.EOF:
        raise ParseError(f"unexpected trailing input: {token}", token.location)
    return expr
