"""Pretty-printer: Mini-Pascal AST back to source text.

Used for three things:

* showing the user original-program constructs during debugging
  (transparency, paper §6.1),
* emitting computed slices as runnable programs (paper §4: "the reduced
  program, which is an independent program, is called a slice"),
* round-trip property tests (print → reparse → identical tree).
"""

from __future__ import annotations

from repro.pascal import ast_nodes as ast

# Matches the parser's grammar: one (non-associative) relational layer at
# the bottom, then additive/or, then multiplicative/and — classic Pascal.
_BINARY_PRECEDENCE = {
    "=": 1,
    "<>": 1,
    "<": 1,
    "<=": 1,
    ">": 1,
    ">=": 1,
    "+": 2,
    "-": 2,
    "or": 2,
    "*": 3,
    "/": 3,
    "div": 3,
    "mod": 3,
    "and": 3,
}

_RELATIONAL_OPS = {"=", "<>", "<", "<=", ">", ">="}

_UNARY_PRECEDENCE = 4


class PrettyPrinter:
    def __init__(self, indent: str = "  "):
        self._indent_unit = indent
        self._lines: list[str] = []
        self._depth = 0

    # ------------------------------------------------------------------
    # entry points

    def print_program(self, program: ast.Program) -> str:
        self._lines = []
        self._depth = 0
        self._emit(f"program {program.name};")
        self._print_block(program.block)
        # Replace the trailing 'end' of the main body with 'end.'
        self._lines[-1] = self._lines[-1] + "."
        return "\n".join(self._lines) + "\n"

    def print_statement(self, stmt: ast.Stmt) -> str:
        self._lines = []
        self._depth = 0
        self._print_stmt(stmt)
        return "\n".join(self._lines) + "\n"

    def print_routine(self, routine: ast.RoutineDecl) -> str:
        self._lines = []
        self._depth = 0
        self._print_routine(routine)
        return "\n".join(self._lines) + "\n"

    # ------------------------------------------------------------------
    # output helpers

    def _emit(self, text: str) -> None:
        self._lines.append(self._indent_unit * self._depth + text if text else "")

    # ------------------------------------------------------------------
    # declarations

    def _print_block(self, block: ast.Block) -> None:
        if block.labels:
            labels = ", ".join(decl.label for decl in block.labels)
            self._emit(f"label {labels};")
        if block.consts:
            self._emit("const")
            self._depth += 1
            for const in block.consts:
                self._emit(f"{const.name} = {self.format_expr(const.value)};")
            self._depth -= 1
        if block.types:
            self._emit("type")
            self._depth += 1
            for type_decl in block.types:
                self._emit(f"{type_decl.name} = {self.format_type(type_decl.type_expr)};")
            self._depth -= 1
        if block.variables:
            self._emit("var")
            self._depth += 1
            for var in block.variables:
                self._emit(f"{var.name}: {self.format_type(var.type_expr)};")
            self._depth -= 1
        for routine in block.routines:
            self._print_routine(routine)
        self._print_compound(block.body)

    def _print_routine(self, routine: ast.RoutineDecl) -> None:
        keyword = "function" if routine.is_function else "procedure"
        params = self._format_params(routine.params)
        suffix = f": {self.format_type(routine.result_type)}" if routine.is_function else ""
        self._emit(f"{keyword} {routine.name}{params}{suffix};")
        self._depth += 1
        self._print_block(routine.block)
        self._lines[-1] = self._lines[-1] + ";"
        self._depth -= 1

    def _format_params(self, params: list[ast.Param]) -> str:
        if not params:
            return ""
        groups: list[str] = []
        index = 0
        while index < len(params):
            group = [params[index]]
            while (
                index + len(group) < len(params)
                and params[index + len(group)].mode == group[0].mode
                and self.format_type(params[index + len(group)].type_expr)
                == self.format_type(group[0].type_expr)
            ):
                group.append(params[index + len(group)])
            names = ", ".join(param.name for param in group)
            prefix = {"value": "", "var": "var ", "in": "in ", "out": "out "}[group[0].mode]
            groups.append(f"{prefix}{names}: {self.format_type(group[0].type_expr)}")
            index += len(group)
        return "(" + "; ".join(groups) + ")"

    def format_type(self, type_expr: ast.TypeExpr | None) -> str:
        if type_expr is None:
            return ""
        if isinstance(type_expr, ast.NamedType):
            return type_expr.name
        if isinstance(type_expr, ast.ArrayType):
            low = self.format_expr(type_expr.low)
            high = self.format_expr(type_expr.high)
            return f"array[{low}..{high}] of {self.format_type(type_expr.element)}"
        raise TypeError(f"unknown type expression {type_expr!r}")

    # ------------------------------------------------------------------
    # statements

    def _print_stmt(self, stmt: ast.Stmt) -> None:
        prefix = f"{stmt.label}: " if stmt.label is not None else ""
        if isinstance(stmt, ast.EmptyStmt):
            # An empty statement has no text of its own; only a label
            # (a goto target) forces it onto a line.
            if prefix:
                self._emit(prefix.rstrip(" "))
            return
        if isinstance(stmt, ast.Compound):
            if prefix:
                self._emit(prefix.rstrip())
            self._print_compound(stmt)
            return
        if isinstance(stmt, ast.Assign):
            self._emit(f"{prefix}{self.format_expr(stmt.target)} := {self.format_expr(stmt.value)}")
            return
        if isinstance(stmt, ast.ProcCall):
            args = ", ".join(self.format_expr(arg) for arg in stmt.args)
            call = f"{stmt.name}({args})" if stmt.args else stmt.name
            self._emit(f"{prefix}{call}")
            return
        if isinstance(stmt, ast.If):
            self._emit(f"{prefix}if {self.format_expr(stmt.condition)} then")
            self._print_indented(stmt.then_branch)
            if stmt.else_branch is not None:
                self._emit("else")
                self._print_indented(stmt.else_branch)
            return
        if isinstance(stmt, ast.While):
            self._emit(f"{prefix}while {self.format_expr(stmt.condition)} do")
            self._print_indented(stmt.body)
            return
        if isinstance(stmt, ast.Repeat):
            self._emit(f"{prefix}repeat")
            self._depth += 1
            self._print_stmt_list(stmt.body)
            self._depth -= 1
            self._emit(f"until {self.format_expr(stmt.condition)}")
            return
        if isinstance(stmt, ast.For):
            direction = "downto" if stmt.downto else "to"
            self._emit(
                f"{prefix}for {stmt.variable} := {self.format_expr(stmt.start)} "
                f"{direction} {self.format_expr(stmt.stop)} do"
            )
            self._print_indented(stmt.body)
            return
        if isinstance(stmt, ast.Goto):
            self._emit(f"{prefix}goto {stmt.target}")
            return
        raise TypeError(f"unknown statement {stmt!r}")

    def _print_indented(self, stmt: ast.Stmt) -> None:
        if isinstance(stmt, ast.Compound) and stmt.label is None:
            self._print_compound(stmt)
        else:
            self._depth += 1
            self._print_stmt(stmt)
            self._depth -= 1

    def _print_compound(self, compound: ast.Compound) -> None:
        self._emit("begin")
        self._depth += 1
        self._print_stmt_list(compound.statements)
        self._depth -= 1
        self._emit("end")

    def _print_stmt_list(self, statements: list[ast.Stmt]) -> None:
        for index, child in enumerate(statements):
            before = len(self._lines)
            self._print_stmt(child)
            if index < len(statements) - 1 and len(self._lines) > before:
                self._lines[-1] = self._lines[-1] + ";"

    # ------------------------------------------------------------------
    # expressions

    def format_expr(self, expr: ast.Expr, parent_precedence: int = 0) -> str:
        text, precedence = self._format_expr_prec(expr)
        if precedence < parent_precedence:
            return f"({text})"
        return text

    def _format_expr_prec(self, expr: ast.Expr) -> tuple[str, int]:
        highest = 10
        if isinstance(expr, ast.IntLiteral):
            return str(expr.value), highest
        if isinstance(expr, ast.BoolLiteral):
            return ("true" if expr.value else "false"), highest
        if isinstance(expr, ast.StringLiteral):
            escaped = expr.value.replace("'", "''")
            return f"'{escaped}'", highest
        if isinstance(expr, ast.VarRef):
            return expr.name, highest
        if isinstance(expr, ast.IndexedRef):
            base = self.format_expr(expr.base, _UNARY_PRECEDENCE)
            return f"{base}[{self.format_expr(expr.index)}]", highest
        if isinstance(expr, ast.FuncCall):
            args = ", ".join(self.format_expr(arg) for arg in expr.args)
            return f"{expr.name}({args})", highest
        if isinstance(expr, ast.ArrayLiteral):
            elements = ", ".join(self.format_expr(element) for element in expr.elements)
            return f"[{elements}]", highest
        if isinstance(expr, ast.UnaryOp):
            if expr.op == "-":
                # A sign binds a whole *term* in the grammar, so printed
                # unary minus sits at additive precedence: `(-a) * b`
                # needs its parentheses, `-a + b` does not.
                operand = self.format_expr(expr.operand, 3)
                return f"-{operand}", 2
            operand = self.format_expr(expr.operand, _UNARY_PRECEDENCE + 1)
            return f"not {operand}", _UNARY_PRECEDENCE
        if isinstance(expr, ast.BinaryOp):
            precedence = _BINARY_PRECEDENCE[expr.op]
            # Relationals are non-associative: parenthesize both operands
            # if they are relational themselves.
            left_floor = precedence + 1 if expr.op in _RELATIONAL_OPS else precedence
            left = self.format_expr(expr.left, left_floor)
            right = self.format_expr(expr.right, precedence + 1)
            return f"{left} {expr.op} {right}", precedence
        raise TypeError(f"unknown expression {expr!r}")


def print_program(program: ast.Program) -> str:
    """Render a program AST as Mini-Pascal source text."""
    return PrettyPrinter().print_program(program)


def print_statement(stmt: ast.Stmt) -> str:
    """Render a single statement (with nested structure) as source text."""
    return PrettyPrinter().print_statement(stmt)


def print_routine(routine: ast.RoutineDecl) -> str:
    """Render a routine declaration as source text."""
    return PrettyPrinter().print_routine(routine)


def format_expr(expr: ast.Expr) -> str:
    """Render an expression as source text."""
    return PrettyPrinter().format_expr(expr)
