"""Semantic analysis for Mini-Pascal.

Resolves every identifier to a :class:`~repro.pascal.symbols.Symbol`,
type-checks the program, and gathers per-routine facts the rest of the
system relies on:

* parameters, locals, and the function-result symbol,
* *direct* non-local reads and writes (the raw material for Banning-style
  side-effect analysis),
* declared labels, and the classification of each ``goto`` as local or
  *global* (targeting a label declared in an enclosing routine — the
  paper's exit side effects),
* every call site with its resolved target.

The main program body is modelled as a pseudo-routine so that the
execution tree, the transformations, and the debugger can treat it
uniformly.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro import cache as _cache
from repro.pascal import ast_nodes as ast
from repro.pascal.errors import SemanticError
from repro.pascal.symbols import (
    ArrayTypeInfo,
    BOOLEAN,
    INTEGER,
    STRING,
    Scope,
    ScalarType,
    Symbol,
    SymbolKind,
    Type,
)

#: Builtin procedures with special argument rules.
IO_PROCEDURES = {"write", "writeln", "read", "readln"}

#: Builtin integer functions: name -> arity.
BUILTIN_FUNCTIONS = {"abs": 1, "sqr": 1, "odd": 1, "min": 2, "max": 2}

#: Trace actions inserted by the instrumentation pass (paper §6). They
#: accept a string tag followed by any variables; the interpreter forwards
#: them to execution hooks without affecting program semantics.
TRACE_PROCEDURES = {
    "gadt_enter_unit",
    "gadt_exit_unit",
    "gadt_loop_enter",
    "gadt_loop_iter",
    "gadt_loop_exit",
}


@dataclass
class RoutineInfo:
    """Everything the analyzer learned about one routine (or the program body)."""

    symbol: Symbol
    decl: ast.Node  # RoutineDecl, or Program for the main pseudo-routine
    block: ast.Block
    scope: Scope
    params: list[Symbol] = field(default_factory=list)
    locals: list[Symbol] = field(default_factory=list)
    result_symbol: Symbol | None = None
    nonlocal_reads: set[Symbol] = field(default_factory=set)
    nonlocal_writes: set[Symbol] = field(default_factory=set)
    labels: dict[str, Symbol] = field(default_factory=dict)
    local_gotos: list[ast.Goto] = field(default_factory=list)
    global_gotos: list[ast.Goto] = field(default_factory=list)
    call_sites: list[tuple[ast.Node, Symbol]] = field(default_factory=list)

    @property
    def name(self) -> str:
        return self.symbol.name

    @property
    def qualified_name(self) -> str:
        return self.symbol.qualified_name

    @property
    def is_main(self) -> bool:
        return isinstance(self.decl, ast.Program)

    def __repr__(self) -> str:
        return f"<RoutineInfo {self.qualified_name}>"


@dataclass
class AnalyzedProgram:
    """The semantic model of a program: AST plus resolution side tables."""

    program: ast.Program
    global_scope: Scope
    main: RoutineInfo
    routines: dict[Symbol, RoutineInfo] = field(default_factory=dict)
    # node_id -> resolved entity
    ref_symbol: dict[int, Symbol] = field(default_factory=dict)
    call_target: dict[int, Symbol] = field(default_factory=dict)
    expr_type: dict[int, Type] = field(default_factory=dict)
    goto_target: dict[int, Symbol] = field(default_factory=dict)
    goto_is_global: dict[int, bool] = field(default_factory=dict)
    for_symbol: dict[int, Symbol] = field(default_factory=dict)
    result_assigns: set[int] = field(default_factory=set)
    stmt_routine: dict[int, Symbol] = field(default_factory=dict)
    named_types: dict[int, str] = field(default_factory=dict)  # type-expr node -> declared name

    def routine_named(self, qualified_name: str) -> RoutineInfo:
        """Look up a routine by qualified (or unique unqualified) name."""
        matches = [
            info
            for info in self.routines.values()
            if info.qualified_name == qualified_name or info.name == qualified_name
        ]
        if not matches:
            raise KeyError(f"no routine named {qualified_name!r}")
        if len(matches) > 1:
            exact = [info for info in matches if info.qualified_name == qualified_name]
            if len(exact) == 1:
                return exact[0]
            raise KeyError(f"ambiguous routine name {qualified_name!r}")
        return matches[0]

    def all_routines(self) -> list[RoutineInfo]:
        """All routines including the main pseudo-routine, declaration order."""
        return list(self.routines.values())

    def user_routines(self) -> list[RoutineInfo]:
        """All routines excluding the main pseudo-routine."""
        return [info for info in self.routines.values() if not info.is_main]


class SemanticAnalyzer:
    def __init__(self, program: ast.Program):
        self._program = program
        self._result: AnalyzedProgram | None = None
        self._current: RoutineInfo | None = None

    def analyze(self) -> AnalyzedProgram:
        program = self._program
        builtin_scope = self._make_builtin_scope()
        global_scope = Scope(parent=builtin_scope)

        program_symbol = Symbol(program.name, SymbolKind.PROGRAM, decl=program)
        main = RoutineInfo(
            symbol=program_symbol, decl=program, block=program.block, scope=global_scope
        )
        self._result = AnalyzedProgram(
            program=program, global_scope=global_scope, main=main
        )
        self._result.routines[program_symbol] = main

        self._analyze_block(program.block, global_scope, main)
        return self._result

    # ------------------------------------------------------------------
    # scopes and declarations

    def _make_builtin_scope(self) -> Scope:
        scope = Scope()
        for name in ("integer", "boolean", "string"):
            base = {"integer": INTEGER, "boolean": BOOLEAN, "string": STRING}[name]
            scope.declare(Symbol(name, SymbolKind.TYPE, type=base))
        for name in IO_PROCEDURES | TRACE_PROCEDURES:
            scope.declare(Symbol(name, SymbolKind.BUILTIN))
        for name in BUILTIN_FUNCTIONS:
            scope.declare(Symbol(name, SymbolKind.BUILTIN, result_type=INTEGER))
        return scope

    def _analyze_block(self, block: ast.Block, scope: Scope, info: RoutineInfo) -> None:
        result = self._require_result()
        for label_decl in block.labels:
            symbol = Symbol(
                label_decl.label,
                SymbolKind.LABEL,
                level=scope.level,
                owner=None if info.is_main else info.symbol,
                decl=label_decl,
            )
            scope.declare(symbol)
            info.labels[label_decl.label] = symbol

        for const_decl in block.consts:
            value, const_type = self._eval_const(const_decl.value, scope)
            symbol = Symbol(
                const_decl.name,
                SymbolKind.CONSTANT,
                type=const_type,
                level=scope.level,
                owner=None if info.is_main else info.symbol,
                decl=const_decl,
                const_value=value,
            )
            scope.declare(symbol)

        for type_decl in block.types:
            resolved = self._resolve_type(type_decl.type_expr, scope)
            if isinstance(resolved, ArrayTypeInfo) and resolved.name is None:
                resolved = ArrayTypeInfo(
                    resolved.low, resolved.high, resolved.element, name=type_decl.name
                )
            scope.declare(
                Symbol(
                    type_decl.name,
                    SymbolKind.TYPE,
                    type=resolved,
                    level=scope.level,
                    decl=type_decl,
                )
            )

        for var_decl in block.variables:
            resolved = self._resolve_type(var_decl.type_expr, scope)
            symbol = Symbol(
                var_decl.name,
                SymbolKind.VARIABLE,
                type=resolved,
                level=scope.level,
                owner=None if info.is_main else info.symbol,
                decl=var_decl,
            )
            scope.declare(symbol)
            info.locals.append(symbol)

        for routine_decl in block.routines:
            self._declare_routine(routine_decl, scope, info)

        previous = self._current
        self._current = info
        self._analyze_statement(block.body, scope)
        self._current = previous

        self._check_labels_defined(block, info)

    def _declare_routine(
        self, decl: ast.RoutineDecl, scope: Scope, enclosing: RoutineInfo
    ) -> None:
        result = self._require_result()
        result_type = (
            self._resolve_type(decl.result_type, scope) if decl.result_type is not None else None
        )
        routine_symbol = Symbol(
            decl.name,
            SymbolKind.ROUTINE,
            level=scope.level,
            owner=None if enclosing.is_main else enclosing.symbol,
            decl=decl,
            result_type=result_type,
        )
        scope.declare(routine_symbol)

        routine_scope = Scope(parent=scope, owner=routine_symbol)
        info = RoutineInfo(
            symbol=routine_symbol, decl=decl, block=decl.block, scope=routine_scope
        )
        result.routines[routine_symbol] = info

        for param in decl.params:
            param_type = self._resolve_type(param.type_expr, scope)
            param_symbol = Symbol(
                param.name,
                SymbolKind.PARAMETER,
                type=param_type,
                level=routine_scope.level,
                owner=routine_symbol,
                decl=param,
                param_mode=param.mode,
            )
            routine_scope.declare(param_symbol)
            info.params.append(param_symbol)
            routine_symbol.params.append(param_symbol)

        if result_type is not None:
            info.result_symbol = Symbol(
                decl.name,
                SymbolKind.RESULT,
                type=result_type,
                level=routine_scope.level,
                owner=routine_symbol,
                decl=decl,
            )

        self._analyze_block(decl.block, routine_scope, info)

    def _check_labels_defined(self, block: ast.Block, info: RoutineInfo) -> None:
        defined: dict[str, int] = {}
        for stmt in ast.iter_statements(block.body):
            if stmt.label is not None:
                defined[stmt.label] = defined.get(stmt.label, 0) + 1
                if stmt.label not in info.labels:
                    raise SemanticError(
                        f"label {stmt.label} set on a statement but not declared",
                        stmt.location,
                    )
        for name, symbol in info.labels.items():
            count = defined.get(name, 0)
            if count == 0:
                raise SemanticError(f"label {name} declared but never defined")
            if count > 1:
                raise SemanticError(f"label {name} defined {count} times")

    # ------------------------------------------------------------------
    # types and constants

    def _resolve_type(self, type_expr: ast.TypeExpr, scope: Scope) -> Type:
        result = self._require_result()
        if isinstance(type_expr, ast.NamedType):
            symbol = scope.lookup(type_expr.name)
            if symbol is None or symbol.kind is not SymbolKind.TYPE:
                raise SemanticError(f"unknown type '{type_expr.name}'", type_expr.location)
            result.named_types[type_expr.node_id] = type_expr.name
            assert symbol.type is not None
            return symbol.type
        if isinstance(type_expr, ast.ArrayType):
            low, low_type = self._eval_const(type_expr.low, scope)
            high, high_type = self._eval_const(type_expr.high, scope)
            if low_type is not INTEGER or high_type is not INTEGER:
                raise SemanticError("array bounds must be integer constants", type_expr.location)
            assert isinstance(low, int) and isinstance(high, int)
            if high < low:
                raise SemanticError(
                    f"empty array bounds [{low}..{high}]", type_expr.location
                )
            element = self._resolve_type(type_expr.element, scope)
            return ArrayTypeInfo(low, high, element)
        raise SemanticError("unsupported type expression", type_expr.location)

    def _eval_const(self, expr: ast.Expr, scope: Scope) -> tuple[object, Type]:
        """Evaluate a compile-time constant expression."""
        if isinstance(expr, ast.IntLiteral):
            return expr.value, INTEGER
        if isinstance(expr, ast.BoolLiteral):
            return expr.value, BOOLEAN
        if isinstance(expr, ast.StringLiteral):
            return expr.value, STRING
        if isinstance(expr, ast.VarRef):
            symbol = scope.lookup(expr.name)
            if symbol is None or symbol.kind is not SymbolKind.CONSTANT:
                raise SemanticError(
                    f"'{expr.name}' is not a constant", expr.location
                )
            assert symbol.type is not None
            return symbol.const_value, symbol.type
        if isinstance(expr, ast.UnaryOp) and expr.op == "-":
            value, value_type = self._eval_const(expr.operand, scope)
            if value_type is not INTEGER:
                raise SemanticError("unary '-' needs an integer constant", expr.location)
            assert isinstance(value, int)
            return -value, INTEGER
        if isinstance(expr, ast.BinaryOp) and expr.op in ("+", "-", "*", "div", "mod"):
            left, left_type = self._eval_const(expr.left, scope)
            right, right_type = self._eval_const(expr.right, scope)
            if left_type is not INTEGER or right_type is not INTEGER:
                raise SemanticError("constant arithmetic needs integers", expr.location)
            assert isinstance(left, int) and isinstance(right, int)
            ops = {
                "+": lambda a, b: a + b,
                "-": lambda a, b: a - b,
                "*": lambda a, b: a * b,
                "div": lambda a, b: _const_div(a, b, expr),
                "mod": lambda a, b: _const_mod(a, b, expr),
            }
            return ops[expr.op](left, right), INTEGER
        raise SemanticError("expression is not a compile-time constant", expr.location)

    # ------------------------------------------------------------------
    # statements

    def _analyze_statement(self, stmt: ast.Stmt, scope: Scope) -> None:
        result = self._require_result()
        current = self._require_current()
        result.stmt_routine[stmt.node_id] = current.symbol

        if isinstance(stmt, ast.EmptyStmt):
            return
        if isinstance(stmt, ast.Compound):
            for child in stmt.statements:
                self._analyze_statement(child, scope)
            return
        if isinstance(stmt, ast.Assign):
            self._analyze_assign(stmt, scope)
            return
        if isinstance(stmt, ast.ProcCall):
            self._analyze_proc_call(stmt, scope)
            return
        if isinstance(stmt, ast.If):
            self._require_type(stmt.condition, BOOLEAN, scope, "if condition")
            self._analyze_statement(stmt.then_branch, scope)
            if stmt.else_branch is not None:
                self._analyze_statement(stmt.else_branch, scope)
            return
        if isinstance(stmt, ast.While):
            self._require_type(stmt.condition, BOOLEAN, scope, "while condition")
            self._analyze_statement(stmt.body, scope)
            return
        if isinstance(stmt, ast.Repeat):
            for child in stmt.body:
                self._analyze_statement(child, scope)
            self._require_type(stmt.condition, BOOLEAN, scope, "until condition")
            return
        if isinstance(stmt, ast.For):
            self._analyze_for(stmt, scope)
            return
        if isinstance(stmt, ast.Goto):
            self._analyze_goto(stmt, scope)
            return
        raise SemanticError(f"unsupported statement {type(stmt).__name__}", stmt.location)

    def _analyze_assign(self, stmt: ast.Assign, scope: Scope) -> None:
        result = self._require_result()
        target_type = self._analyze_target(stmt.target, scope)
        value_type = self._analyze_expr(stmt.value, scope)
        if not _assignable(target_type, value_type, stmt.value):
            raise SemanticError(
                f"cannot assign {value_type} to {target_type}", stmt.location
            )

    def _analyze_target(self, target: ast.Expr, scope: Scope) -> Type:
        """Resolve an assignment target; handles function-result assignment."""
        result = self._require_result()
        current = self._require_current()
        if isinstance(target, ast.VarRef):
            # Assignment to an enclosing function's name sets its result.
            info = self._find_enclosing_function(target.name)
            if info is not None:
                assert info.result_symbol is not None
                result.ref_symbol[target.node_id] = info.result_symbol
                result.result_assigns.add(target.node_id)
                assert info.result_symbol.type is not None
                result.expr_type[target.node_id] = info.result_symbol.type
                self._note_nonlocal(info.result_symbol, write=True)
                assert info.result_symbol.type is not None
                return info.result_symbol.type
            symbol = self._resolve_variable(target.name, target.location, scope)
            result.ref_symbol[target.node_id] = symbol
            assert symbol.type is not None
            result.expr_type[target.node_id] = symbol.type
            if symbol.kind is SymbolKind.CONSTANT:
                raise SemanticError(f"cannot assign to constant '{symbol.name}'", target.location)
            if symbol.param_mode == ast.ParamMode.IN_:
                raise SemanticError(
                    f"cannot assign to 'in' parameter '{symbol.name}'", target.location
                )
            self._note_nonlocal(symbol, write=True)
            return symbol.type
        if isinstance(target, ast.IndexedRef):
            base_type = self._analyze_target(target.base, scope)
            if not isinstance(base_type, ArrayTypeInfo):
                raise SemanticError("indexed target is not an array", target.location)
            self._require_type(target.index, INTEGER, scope, "array index")
            result.expr_type[target.node_id] = base_type.element
            # An element store preserves the rest of the array: the old
            # value flows through, so the root is also *read* here.
            node: ast.Expr = target
            while isinstance(node, ast.IndexedRef):
                node = node.base
            if isinstance(node, ast.VarRef):
                root = result.ref_symbol.get(node.node_id)
                if root is not None:
                    self._note_nonlocal(root, write=False)
            return base_type.element
        raise SemanticError("invalid assignment target", target.location)

    def _find_enclosing_function(self, name: str) -> RoutineInfo | None:
        result = self._require_result()
        info: RoutineInfo | None = self._current
        while info is not None and not info.is_main:
            if info.symbol.name == name and info.result_symbol is not None:
                return info
            owner = info.symbol.owner
            info = result.routines.get(owner) if owner is not None else result.main
        return None

    def _analyze_for(self, stmt: ast.For, scope: Scope) -> None:
        result = self._require_result()
        symbol = self._resolve_variable(stmt.variable, stmt.location, scope)
        if symbol.type is not INTEGER:
            raise SemanticError("for-loop variable must be an integer", stmt.location)
        result.for_symbol[stmt.node_id] = symbol
        self._note_nonlocal(symbol, write=True)
        self._require_type(stmt.start, INTEGER, scope, "for-loop start")
        self._require_type(stmt.stop, INTEGER, scope, "for-loop stop")
        self._analyze_statement(stmt.body, scope)

    def _analyze_goto(self, stmt: ast.Goto, scope: Scope) -> None:
        result = self._require_result()
        current = self._require_current()
        label = scope.lookup_label(stmt.target)
        if label is None:
            raise SemanticError(f"goto to undeclared label {stmt.target}", stmt.location)
        result.goto_target[stmt.node_id] = label
        is_global = stmt.target not in current.labels
        result.goto_is_global[stmt.node_id] = is_global
        if is_global:
            current.global_gotos.append(stmt)
        else:
            current.local_gotos.append(stmt)

    def _analyze_proc_call(self, stmt: ast.ProcCall, scope: Scope) -> None:
        result = self._require_result()
        current = self._require_current()
        symbol = scope.lookup(stmt.name)
        if symbol is None:
            raise SemanticError(f"call to undeclared procedure '{stmt.name}'", stmt.location)
        if symbol.kind is SymbolKind.BUILTIN:
            self._analyze_io_call(stmt, symbol, scope)
            return
        if symbol.kind is not SymbolKind.ROUTINE:
            raise SemanticError(f"'{stmt.name}' is not a procedure", stmt.location)
        if symbol.is_function:
            raise SemanticError(
                f"function '{stmt.name}' called as a procedure", stmt.location
            )
        self._check_call_args(stmt, symbol, stmt.args, scope)
        result.call_target[stmt.node_id] = symbol
        current.call_sites.append((stmt, symbol))

    def _analyze_io_call(self, stmt: ast.ProcCall, symbol: Symbol, scope: Scope) -> None:
        if stmt.name in ("read", "readln"):
            for arg in stmt.args:
                if not isinstance(arg, (ast.VarRef, ast.IndexedRef)):
                    raise SemanticError("read expects variables", arg.location)
                arg_type = self._analyze_expr(arg, scope, as_target=True)
                if arg_type not in (INTEGER, BOOLEAN):
                    raise SemanticError("read expects integer or boolean variables", arg.location)
        elif stmt.name in TRACE_PROCEDURES:
            for arg in stmt.args:
                self._analyze_expr(arg, scope)
        else:
            for arg in stmt.args:
                self._analyze_expr(arg, scope)
        result = self._require_result()
        result.call_target[stmt.node_id] = symbol

    def _check_call_args(
        self, call: ast.Node, routine: Symbol, args: list[ast.Expr], scope: Scope
    ) -> None:
        if len(args) != len(routine.params):
            raise SemanticError(
                f"'{routine.name}' expects {len(routine.params)} argument(s), got {len(args)}",
                call.location,
            )
        for arg, param in zip(args, routine.params):
            if param.param_mode in (ast.ParamMode.VAR, ast.ParamMode.OUT):
                arg_type = self._analyze_expr(arg, scope, as_target=True)
                if not isinstance(arg, (ast.VarRef, ast.IndexedRef)):
                    raise SemanticError(
                        f"argument for var parameter '{param.name}' must be a variable",
                        arg.location,
                    )
                if arg_type != param.type:
                    raise SemanticError(
                        f"var argument type {arg_type} does not match parameter "
                        f"'{param.name}' of type {param.type}",
                        arg.location,
                    )
            else:
                arg_type = self._analyze_expr(arg, scope)
                assert param.type is not None
                if not _assignable(param.type, arg_type, arg):
                    raise SemanticError(
                        f"argument type {arg_type} does not match parameter "
                        f"'{param.name}' of type {param.type}",
                        arg.location,
                    )

    # ------------------------------------------------------------------
    # expressions

    def _require_type(
        self, expr: ast.Expr, expected: Type, scope: Scope, context: str
    ) -> None:
        actual = self._analyze_expr(expr, scope)
        if actual != expected:
            raise SemanticError(f"{context} must be {expected}, got {actual}", expr.location)

    def _analyze_expr(self, expr: ast.Expr, scope: Scope, as_target: bool = False) -> Type:
        result = self._require_result()
        expr_type = self._analyze_expr_inner(expr, scope, as_target)
        result.expr_type[expr.node_id] = expr_type
        return expr_type

    def _analyze_expr_inner(self, expr: ast.Expr, scope: Scope, as_target: bool) -> Type:
        result = self._require_result()
        if isinstance(expr, ast.IntLiteral):
            return INTEGER
        if isinstance(expr, ast.BoolLiteral):
            return BOOLEAN
        if isinstance(expr, ast.StringLiteral):
            return STRING
        if isinstance(expr, ast.VarRef):
            symbol = self._resolve_variable(expr.name, expr.location, scope)
            result.ref_symbol[expr.node_id] = symbol
            self._note_nonlocal(symbol, write=as_target)
            assert symbol.type is not None
            return symbol.type
        if isinstance(expr, ast.IndexedRef):
            base_type = self._analyze_expr(expr.base, scope, as_target)
            if not isinstance(base_type, ArrayTypeInfo):
                raise SemanticError("indexing a non-array value", expr.location)
            self._require_type(expr.index, INTEGER, scope, "array index")
            return base_type.element
        if isinstance(expr, ast.ArrayLiteral):
            return self._analyze_array_literal(expr, scope)
        if isinstance(expr, ast.FuncCall):
            return self._analyze_func_call(expr, scope)
        if isinstance(expr, ast.UnaryOp):
            if expr.op == "-":
                self._require_type(expr.operand, INTEGER, scope, "unary '-' operand")
                return INTEGER
            if expr.op == "not":
                self._require_type(expr.operand, BOOLEAN, scope, "'not' operand")
                return BOOLEAN
            raise SemanticError(f"unknown unary operator {expr.op}", expr.location)
        if isinstance(expr, ast.BinaryOp):
            return self._analyze_binary(expr, scope)
        raise SemanticError(f"unsupported expression {type(expr).__name__}", expr.location)

    def _analyze_array_literal(self, expr: ast.ArrayLiteral, scope: Scope) -> Type:
        if not expr.elements:
            raise SemanticError("empty array literal", expr.location)
        element_type = self._analyze_expr(expr.elements[0], scope)
        for element in expr.elements[1:]:
            other = self._analyze_expr(element, scope)
            if other != element_type:
                raise SemanticError(
                    "array literal elements must share one type", element.location
                )
        return ArrayTypeInfo(1, len(expr.elements), element_type)

    def _analyze_func_call(self, expr: ast.FuncCall, scope: Scope) -> Type:
        result = self._require_result()
        current = self._require_current()
        symbol = scope.lookup(expr.name)
        if symbol is None:
            raise SemanticError(f"call to undeclared function '{expr.name}'", expr.location)
        if symbol.kind is SymbolKind.BUILTIN:
            arity = BUILTIN_FUNCTIONS.get(expr.name)
            if arity is None:
                raise SemanticError(f"'{expr.name}' is not a function", expr.location)
            if len(expr.args) != arity:
                raise SemanticError(
                    f"'{expr.name}' expects {arity} argument(s)", expr.location
                )
            for arg in expr.args:
                self._require_type(arg, INTEGER, scope, f"argument of {expr.name}")
            result.call_target[expr.node_id] = symbol
            return BOOLEAN if expr.name == "odd" else INTEGER
        if symbol.kind is not SymbolKind.ROUTINE or not symbol.is_function:
            raise SemanticError(f"'{expr.name}' is not a function", expr.location)
        self._check_call_args(expr, symbol, expr.args, scope)
        result.call_target[expr.node_id] = symbol
        current.call_sites.append((expr, symbol))
        assert symbol.result_type is not None
        return symbol.result_type

    def _analyze_binary(self, expr: ast.BinaryOp, scope: Scope) -> Type:
        op = expr.op
        if op in ("+", "-", "*", "div", "mod", "/"):
            self._require_type(expr.left, INTEGER, scope, f"'{op}' operand")
            self._require_type(expr.right, INTEGER, scope, f"'{op}' operand")
            return INTEGER
        if op in ("and", "or"):
            self._require_type(expr.left, BOOLEAN, scope, f"'{op}' operand")
            self._require_type(expr.right, BOOLEAN, scope, f"'{op}' operand")
            return BOOLEAN
        if op in ("=", "<>", "<", "<=", ">", ">="):
            left_type = self._analyze_expr(expr.left, scope)
            right_type = self._analyze_expr(expr.right, scope)
            if left_type != right_type:
                raise SemanticError(
                    f"comparison between {left_type} and {right_type}", expr.location
                )
            if isinstance(left_type, ArrayTypeInfo) and op not in ("=", "<>"):
                raise SemanticError("arrays support only = and <>", expr.location)
            return BOOLEAN
        raise SemanticError(f"unknown operator {op}", expr.location)

    # ------------------------------------------------------------------
    # helpers

    def _resolve_variable(self, name: str, location, scope: Scope) -> Symbol:
        symbol = scope.lookup(name)
        if symbol is None:
            raise SemanticError(f"undeclared identifier '{name}'", location)
        if symbol.kind in (
            SymbolKind.VARIABLE,
            SymbolKind.PARAMETER,
            SymbolKind.CONSTANT,
            SymbolKind.RESULT,
        ):
            return symbol
        raise SemanticError(f"'{name}' is not a variable", location)

    def _note_nonlocal(self, symbol: Symbol, write: bool) -> None:
        """Record a direct non-local variable access by the current routine."""
        current = self._require_current()
        if current.is_main:
            return
        if symbol.kind is SymbolKind.CONSTANT:
            return  # constants cannot be side-effected
        if symbol.owner is current.symbol:
            return
        if write:
            current.nonlocal_writes.add(symbol)
        else:
            current.nonlocal_reads.add(symbol)

    def _require_result(self) -> AnalyzedProgram:
        assert self._result is not None
        return self._result

    def _require_current(self) -> RoutineInfo:
        assert self._current is not None
        return self._current


def _assignable(target: Type, value: Type, value_expr: ast.Expr) -> bool:
    if target == value:
        return True
    # An array literal may initialize a larger array (filled from the low
    # bound; remaining elements stay undefined) — mirrors the paper's own
    # use of [1,2] where a bigger array is declared.
    if (
        isinstance(target, ArrayTypeInfo)
        and isinstance(value, ArrayTypeInfo)
        and isinstance(value_expr, ast.ArrayLiteral)
        and value.element == target.element
        and value.length <= target.length
    ):
        return True
    return False


def _const_div(a: int, b: int, expr: ast.Expr) -> int:
    if b == 0:
        raise SemanticError("constant division by zero", expr.location)
    return _pascal_div(a, b)


def _const_mod(a: int, b: int, expr: ast.Expr) -> int:
    if b == 0:
        raise SemanticError("constant modulo by zero", expr.location)
    return _pascal_mod(a, b)


def _pascal_div(a: int, b: int) -> int:
    """Pascal's div truncates toward zero (unlike Python's floor division)."""
    quotient = abs(a) // abs(b)
    return quotient if (a >= 0) == (b >= 0) else -quotient


def _pascal_mod(a: int, b: int) -> int:
    """Pascal's mod satisfies a = (a div b) * b + (a mod b)."""
    return a - _pascal_div(a, b) * b


def analyze(program: ast.Program) -> AnalyzedProgram:
    """Run semantic analysis on a parsed program."""
    return SemanticAnalyzer(program).analyze()


#: content-addressed cache for :func:`analyze_source` (see repro.cache)
_ANALYSIS_CACHE = _cache.register("analysis")


def analyze_source(source: str, cached: bool = True) -> AnalyzedProgram:
    """Parse and analyze Mini-Pascal source text.

    Results are served from a content-addressed cache keyed on the
    source hash: identical text returns the identical
    :class:`AnalyzedProgram` object (analysis is pure and consumers
    never mutate it); any edit yields a fresh analysis. Pass
    ``cached=False`` to force a rebuild.
    """
    from repro.pascal.parser import parse_program

    if not cached:
        return analyze(parse_program(source))
    return _ANALYSIS_CACHE.get_or_build(
        _cache.source_key(source), lambda: analyze(parse_program(source))
    )
