"""Symbols, types, and scopes for Mini-Pascal.

The semantic analyzer resolves every identifier to a :class:`Symbol`;
all later phases (dataflow, side-effect analysis, transformation,
slicing, the debugger's question rendering) speak in symbols rather
than raw names, so shadowing and nesting are handled once, here.
"""

from __future__ import annotations

import enum
import itertools
from dataclasses import dataclass, field

from repro.pascal import ast_nodes as ast

_SYMBOL_IDS = itertools.count(1)


# ----------------------------------------------------------------------
# Types


class Type:
    """Base class for resolved types."""

    def __eq__(self, other: object) -> bool:  # pragma: no cover - overridden
        return self is other

    def __hash__(self) -> int:
        return id(self)


class ScalarType(Type):
    def __init__(self, name: str):
        self.name = name

    def __repr__(self) -> str:
        return self.name

    def __str__(self) -> str:
        return self.name


INTEGER = ScalarType("integer")
BOOLEAN = ScalarType("boolean")
STRING = ScalarType("string")


class ArrayTypeInfo(Type):
    """A resolved array type with constant integer bounds."""

    def __init__(self, low: int, high: int, element: Type, name: str | None = None):
        self.low = low
        self.high = high
        self.element = element
        self.name = name  # declared type name, if any, for display

    @property
    def length(self) -> int:
        return self.high - self.low + 1

    def __eq__(self, other: object) -> bool:
        return (
            isinstance(other, ArrayTypeInfo)
            and self.low == other.low
            and self.high == other.high
            and self.element == other.element
        )

    def __hash__(self) -> int:
        return hash(("array", self.low, self.high, self.element))

    def __repr__(self) -> str:
        return f"array[{self.low}..{self.high}] of {self.element!r}"

    def __str__(self) -> str:
        return self.name or f"array[{self.low}..{self.high}] of {self.element}"


# ----------------------------------------------------------------------
# Symbols


class SymbolKind(enum.Enum):
    PROGRAM = "program"
    VARIABLE = "variable"
    PARAMETER = "parameter"
    CONSTANT = "constant"
    TYPE = "type"
    ROUTINE = "routine"
    RESULT = "result"  # the implicit result variable of a function
    LABEL = "label"
    BUILTIN = "builtin"


@dataclass(eq=False)
class Symbol:
    """A named program entity.

    ``level`` is the static nesting depth of the declaring scope
    (0 = program/global scope). ``owner`` is the routine symbol whose
    scope declares this symbol, or None for globals.
    """

    name: str
    kind: SymbolKind
    type: Type | None = None
    level: int = 0
    owner: "Symbol | None" = None
    decl: ast.Node | None = None
    # Parameters only:
    param_mode: str = ""
    # Routines only:
    params: list["Symbol"] = field(default_factory=list)
    result_type: Type | None = None
    # Constants only:
    const_value: object = None
    uid: int = field(default_factory=lambda: next(_SYMBOL_IDS))

    @property
    def is_function(self) -> bool:
        return self.kind is SymbolKind.ROUTINE and self.result_type is not None

    @property
    def is_global(self) -> bool:
        return self.level == 0 and self.kind in (SymbolKind.VARIABLE, SymbolKind.CONSTANT)

    @property
    def qualified_name(self) -> str:
        """Dotted path making nested symbols unique, e.g. ``p.q.x``."""
        parts = [self.name]
        owner = self.owner
        while owner is not None:
            parts.append(owner.name)
            owner = owner.owner
        return ".".join(reversed(parts))

    def __repr__(self) -> str:
        return f"<{self.kind.value} {self.qualified_name}>"

    def __hash__(self) -> int:
        return self.uid

    def __eq__(self, other: object) -> bool:
        return self is other


class Scope:
    """One lexical scope: a mapping from names to symbols, with a parent."""

    def __init__(self, parent: "Scope | None" = None, owner: Symbol | None = None):
        self.parent = parent
        self.owner = owner
        self.level = 0 if parent is None else parent.level + (1 if owner is not None else 0)
        self._symbols: dict[str, Symbol] = {}
        self._labels: dict[str, Symbol] = {}

    def declare(self, symbol: Symbol) -> Symbol:
        table = self._labels if symbol.kind is SymbolKind.LABEL else self._symbols
        if symbol.name in table:
            from repro.pascal.errors import SemanticError

            loc = symbol.decl.location if symbol.decl is not None else None
            raise SemanticError(f"duplicate declaration of '{symbol.name}'", loc)
        table[symbol.name] = symbol
        return symbol

    def lookup(self, name: str) -> Symbol | None:
        scope: Scope | None = self
        while scope is not None:
            symbol = scope._symbols.get(name)
            if symbol is not None:
                return symbol
            scope = scope.parent
        return None

    def lookup_local(self, name: str) -> Symbol | None:
        return self._symbols.get(name)

    def lookup_label(self, name: str) -> Symbol | None:
        scope: Scope | None = self
        while scope is not None:
            symbol = scope._labels.get(name)
            if symbol is not None:
                return symbol
            scope = scope.parent
        return None

    def lookup_label_local(self, name: str) -> Symbol | None:
        return self._labels.get(name)

    def symbols(self) -> list[Symbol]:
        return list(self._symbols.values())
