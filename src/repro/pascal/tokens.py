"""Token definitions for the Mini-Pascal lexer."""

from __future__ import annotations

import enum
from dataclasses import dataclass

from repro.pascal.errors import SourceLocation


class TokenType(enum.Enum):
    # Literals and identifiers
    IDENT = "identifier"
    INT_LITERAL = "integer literal"
    STRING_LITERAL = "string literal"

    # Keywords
    AND = "and"
    ARRAY = "array"
    BEGIN = "begin"
    CONST = "const"
    DIV = "div"
    DO = "do"
    DOWNTO = "downto"
    ELSE = "else"
    END = "end"
    FALSE = "false"
    FOR = "for"
    FUNCTION = "function"
    GOTO = "goto"
    IF = "if"
    IN = "in"
    LABEL = "label"
    MOD = "mod"
    NOT = "not"
    OF = "of"
    OR = "or"
    OUT = "out"
    PROCEDURE = "procedure"
    PROGRAM = "program"
    REPEAT = "repeat"
    THEN = "then"
    TO = "to"
    TRUE = "true"
    TYPE = "type"
    UNTIL = "until"
    VAR = "var"
    WHILE = "while"

    # Punctuation and operators
    PLUS = "+"
    MINUS = "-"
    STAR = "*"
    SLASH = "/"
    ASSIGN = ":="
    EQ = "="
    NEQ = "<>"
    LT = "<"
    LE = "<="
    GT = ">"
    GE = ">="
    LPAREN = "("
    RPAREN = ")"
    LBRACKET = "["
    RBRACKET = "]"
    COMMA = ","
    SEMICOLON = ";"
    COLON = ":"
    DOT = "."
    DOTDOT = ".."

    EOF = "end of input"


KEYWORDS: dict[str, TokenType] = {
    "and": TokenType.AND,
    "array": TokenType.ARRAY,
    "begin": TokenType.BEGIN,
    "const": TokenType.CONST,
    "div": TokenType.DIV,
    "do": TokenType.DO,
    "downto": TokenType.DOWNTO,
    "else": TokenType.ELSE,
    "end": TokenType.END,
    "false": TokenType.FALSE,
    "for": TokenType.FOR,
    "function": TokenType.FUNCTION,
    "goto": TokenType.GOTO,
    "if": TokenType.IF,
    "in": TokenType.IN,
    "label": TokenType.LABEL,
    "mod": TokenType.MOD,
    "not": TokenType.NOT,
    "of": TokenType.OF,
    "out": TokenType.OUT,
    "or": TokenType.OR,
    "procedure": TokenType.PROCEDURE,
    "program": TokenType.PROGRAM,
    "repeat": TokenType.REPEAT,
    "then": TokenType.THEN,
    "to": TokenType.TO,
    "true": TokenType.TRUE,
    "type": TokenType.TYPE,
    "until": TokenType.UNTIL,
    "var": TokenType.VAR,
    "while": TokenType.WHILE,
}


@dataclass(frozen=True)
class Token:
    """A single lexical token.

    ``text`` preserves the original spelling (Pascal identifiers are
    case-insensitive; ``normalized`` carries the lowercase form used for
    all name resolution).
    """

    type: TokenType
    text: str
    location: SourceLocation

    @property
    def normalized(self) -> str:
        return self.text.lower()

    def __str__(self) -> str:
        if self.type in (TokenType.IDENT, TokenType.INT_LITERAL, TokenType.STRING_LITERAL):
            return f"{self.type.value} '{self.text}'"
        return f"'{self.text}'"
