"""Runtime values for the Mini-Pascal interpreter.

Integers and booleans are plain Python objects; arrays get a small value
class that knows its bounds. :data:`UNDEFINED` marks never-assigned
storage so the interpreter can report reads of uninitialized variables —
a real bug class the debugger must be able to chase.
"""

from __future__ import annotations

from typing import Iterable

from repro.pascal.symbols import ArrayTypeInfo, BOOLEAN, INTEGER, STRING, Type


class _Undefined:
    """Singleton marking storage that was never assigned."""

    _instance: "_Undefined | None" = None

    def __new__(cls) -> "_Undefined":
        if cls._instance is None:
            cls._instance = super().__new__(cls)
        return cls._instance

    def __repr__(self) -> str:
        return "<undefined>"

    def __deepcopy__(self, memo: dict) -> "_Undefined":
        return self


UNDEFINED = _Undefined()


class ArrayValue:
    """A Pascal array value with inclusive integer bounds."""

    __slots__ = ("low", "high", "elements")

    def __init__(self, low: int, high: int, elements: list[object] | None = None):
        self.low = low
        self.high = high
        if elements is None:
            elements = [UNDEFINED] * (high - low + 1)
        if len(elements) != high - low + 1:
            raise ValueError(
                f"array[{low}..{high}] needs {high - low + 1} elements, got {len(elements)}"
            )
        self.elements = elements

    @classmethod
    def from_values(cls, values: Iterable[object], low: int = 1) -> "ArrayValue":
        elements = list(values)
        return cls(low, low + len(elements) - 1, elements)

    def in_bounds(self, index: int) -> bool:
        return self.low <= index <= self.high

    def get(self, index: int) -> object:
        return self.elements[index - self.low]

    def set(self, index: int, value: object) -> None:
        self.elements[index - self.low] = value

    def copy(self) -> "ArrayValue":
        return ArrayValue(self.low, self.high, list(self.elements))

    def __eq__(self, other: object) -> bool:
        return (
            isinstance(other, ArrayValue)
            and self.low == other.low
            and self.high == other.high
            and self.elements == other.elements
        )

    def __hash__(self) -> int:
        return hash((self.low, self.high, tuple(self.elements)))

    def __repr__(self) -> str:
        return f"ArrayValue({self.low}, {self.high}, {self.elements!r})"

    def __str__(self) -> str:
        return format_value(self)


def default_value(value_type: Type) -> object:
    """Fresh (undefined) storage for a declared type."""
    if isinstance(value_type, ArrayTypeInfo):
        return ArrayValue(value_type.low, value_type.high)
    return UNDEFINED


def copy_value(value: object) -> object:
    """Value-semantics copy: arrays are duplicated, scalars returned as-is."""
    if isinstance(value, ArrayValue):
        return value.copy()
    return value


def format_value(value: object) -> str:
    """Render a value the way the paper's dialogues do: ``3``, ``false``, ``[1,2]``."""
    if value is UNDEFINED:
        return "?"
    if isinstance(value, bool):
        return "true" if value else "false"
    if isinstance(value, int):
        return str(value)
    if isinstance(value, str):
        return f"'{value}'"
    if isinstance(value, ArrayValue):
        inner = ",".join(format_value(element) for element in value.elements)
        return f"[{inner}]"
    raise TypeError(f"not a Pascal value: {value!r}")


def type_of_value(value: object) -> Type:
    """Best-effort dynamic type of a runtime value (used by assertions)."""
    if isinstance(value, bool):
        return BOOLEAN
    if isinstance(value, int):
        return INTEGER
    if isinstance(value, str):
        return STRING
    if isinstance(value, ArrayValue):
        element = INTEGER
        for item in value.elements:
            if item is not UNDEFINED:
                element = type_of_value(item)
                break
        return ArrayTypeInfo(value.low, value.high, element)
    raise TypeError(f"not a Pascal value: {value!r}")


def values_equal(left: object, right: object) -> bool:
    """Structural equality, treating bool/int distinctly (Pascal types differ)."""
    if isinstance(left, bool) != isinstance(right, bool):
        return False
    return left == right
