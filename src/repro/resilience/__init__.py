"""``repro.resilience`` — fault tolerance for the GADT pipeline.

The debugger's normal diet is *buggy* programs: mutants that loop
forever, recurse past the stack, exhaust memory, or crash mid-trace.
This package makes the run/trace/debug phases degrade gracefully
instead of failing wholesale:

* **budgets** (:class:`Budget`) — wall-clock deadline, step limit,
  call-depth and tree-node guards threaded through the interpreter,
  the tracer, and the debugger;
* **error taxonomy** (:class:`BudgetExceeded`, :class:`TraceAborted`,
  :class:`WorkerCrashed`) — classifiable failures replacing bare
  propagation, so sweeps attribute each failure to one task;
* **crash isolation** (:func:`run_isolated`) — per-task process-pool
  submission with timeouts, worker-death attribution, and bounded
  retries paced by jittered exponential backoff (:class:`Backoff`);
* **degradation** (:func:`cap_depth`) — salvaging depth-capped partial
  execution trees when tracing blows its budget, so the debugger can
  still localize on partial information;
* **fault injection** (:mod:`repro.resilience.faults`) — deterministic
  failures at the cache-read, sink-write, trace, and worker boundaries
  so all of the above stays testable in CI.

See ``docs/ROBUSTNESS.md`` for the budget model and degradation
semantics.
"""

from __future__ import annotations

from repro.resilience import faults
from repro.resilience.backoff import Backoff, RetrySchedule
from repro.resilience.budget import DEFAULT_SALVAGE_DEPTH, Budget
from repro.resilience.degrade import cap_depth
from repro.resilience.errors import (
    BudgetExceeded,
    FaultInjected,
    ResilienceError,
    TraceAborted,
    WorkerCrashed,
)
from repro.resilience.pool import TaskResult, run_isolated

__all__ = [
    "Backoff",
    "Budget",
    "BudgetExceeded",
    "DEFAULT_SALVAGE_DEPTH",
    "FaultInjected",
    "ResilienceError",
    "RetrySchedule",
    "TaskResult",
    "TraceAborted",
    "WorkerCrashed",
    "cap_depth",
    "faults",
    "run_isolated",
]
