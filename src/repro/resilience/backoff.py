"""Jittered exponential backoff for infrastructure retries.

Retrying an infra failure immediately is the worst possible schedule:
whatever broke (a dying worker, a briefly unwritable disk, an
overloaded pool) is usually still broken microseconds later, and a
thundering herd of simultaneous retries is exactly how one failure
becomes a correlated many. Both :func:`repro.resilience.pool.run_isolated`
and the :mod:`repro.serve` service therefore space attempt *n* by

    ``base_s * multiplier**n``  (capped at ``max_s``)

with *equal jitter*: the delay is drawn uniformly from
``[d/2, d]`` so concurrent retriers decorrelate while the floor keeps
the exponential shape testable. Randomness comes from a private,
seedable :class:`random.Random`, so tests (and replayed fault plans)
see deterministic schedules.

:class:`RetrySchedule` layers per-task bookkeeping on top: it records
failure times against an injectable clock and answers "which of these
tasks may be resubmitted *now*?" — the shape the pool's submission loop
and a fake-clock test both need.
"""

from __future__ import annotations

import random
from typing import Callable, Iterable


class Backoff:
    """Computes the jittered delay before retry attempt ``n`` (0-based)."""

    def __init__(
        self,
        base_s: float = 0.05,
        max_s: float = 2.0,
        multiplier: float = 2.0,
        jitter: bool = True,
        seed: int | None = None,
    ):
        if base_s < 0 or max_s < 0:
            raise ValueError("backoff delays must be >= 0")
        self.base_s = base_s
        self.max_s = max_s
        self.multiplier = multiplier
        self.jitter = jitter
        self._rng = random.Random(seed)

    def delay(self, attempt: int) -> float:
        """Seconds to wait after the ``attempt``-th failure (0-based)."""
        raw = min(self.max_s, self.base_s * (self.multiplier ** max(0, attempt)))
        if not self.jitter or raw <= 0:
            return raw
        return raw / 2 + self._rng.random() * (raw / 2)

    def bounds(self, attempt: int) -> tuple[float, float]:
        """The [min, max] envelope :meth:`delay` draws from (tests)."""
        raw = min(self.max_s, self.base_s * (self.multiplier ** max(0, attempt)))
        if not self.jitter or raw <= 0:
            return raw, raw
        return raw / 2, raw


class RetrySchedule:
    """Earliest-resubmission times for a set of retryable tasks.

    ``clock`` is injectable so the schedule is testable without real
    sleeping: :meth:`note_failure` stamps ``clock() + backoff.delay(n)``
    as the task's ready time, :meth:`ready` filters a backlog down to
    the tasks whose time has come, and :meth:`next_ready_in` says how
    long the caller may sleep when nothing is ready.
    """

    def __init__(
        self,
        backoff: Backoff | None = None,
        clock: Callable[[], float] | None = None,
    ):
        import time

        self.backoff = backoff if backoff is not None else Backoff()
        self.clock = clock if clock is not None else time.monotonic
        self._ready_at: dict[int, float] = {}

    def note_failure(self, key: int, attempt: int) -> float:
        """Record a failure; returns the delay before ``key`` is ready."""
        delay = self.backoff.delay(attempt)
        self._ready_at[key] = self.clock() + delay
        return delay

    def ready(self, keys: Iterable[int]) -> list[int]:
        """The subset of ``keys`` whose backoff delay has elapsed."""
        now = self.clock()
        return [k for k in keys if self._ready_at.get(k, 0.0) <= now]

    def blocked(self, keys: Iterable[int]) -> list[int]:
        """The complement of :meth:`ready` over ``keys``."""
        now = self.clock()
        return [k for k in keys if self._ready_at.get(k, 0.0) > now]

    def next_ready_in(self, keys: Iterable[int]) -> float:
        """Seconds until the earliest key becomes ready (0 if any is)."""
        now = self.clock()
        waits = [self._ready_at.get(k, 0.0) - now for k in keys]
        if not waits:
            return 0.0
        return max(0.0, min(waits))
