"""Resource budgets for runs, traces, and debug sessions.

A :class:`Budget` bounds one pipeline activity along four axes:

* **wall clock** (``deadline_s``) — checked by the interpreter every
  :data:`DEADLINE_CHECK_MASK` + 1 steps, so an infinite loop costs at
  most the deadline, never the sweep;
* **steps** (``step_limit``) — tightens (never loosens) the
  interpreter's own step budget;
* **call depth** (``max_call_depth``) — tightens the interpreter's
  recursion guard so runaway recursion dies cheaply;
* **tree nodes** (``max_tree_nodes``) — caps execution-tree growth
  during tracing (the memory guard: each node pins bindings and
  dependence bookkeeping).

Budgets are per-activity: call :meth:`start` (or :func:`Budget.started`)
immediately before the run it governs; the deadline is measured from
that instant. A budget that was never started has no deadline.
"""

from __future__ import annotations

import sys
import time
from dataclasses import dataclass

from repro.resilience.errors import BudgetExceeded


def _journal(action: str, **fields: object) -> None:
    """Emit a ``budget`` event if observability is loaded and enabled
    (``sys.modules`` probe: the resilience substrate never imports
    upward, mirroring the cache's metric counting)."""
    obs = sys.modules.get("repro.obs")
    if obs is not None:
        obs.emit("budget", action=action, **fields)

#: the interpreter tests the wall clock when ``steps & MASK == 0``
DEADLINE_CHECK_MASK = 0x3FF

#: depth cap applied to a salvaged partial tree when the budget does
#: not name one (keeps the degraded debug search bounded)
DEFAULT_SALVAGE_DEPTH = 12


@dataclass
class Budget:
    """Resource limits for one run/trace/debug activity. ``None`` along
    any axis means "no limit along this axis"."""

    deadline_s: float | None = None
    step_limit: int | None = None
    max_call_depth: int | None = None
    max_tree_nodes: int | None = None
    #: depth cap for partial trees salvaged after a mid-trace abort
    salvage_depth: int = DEFAULT_SALVAGE_DEPTH

    #: absolute ``time.monotonic`` deadline, set by :meth:`start`
    deadline_at: float | None = None

    def start(self) -> "Budget":
        """Arm the wall-clock deadline now; returns self for chaining."""
        if self.deadline_s is not None:
            self.deadline_at = time.monotonic() + self.deadline_s
            _journal(
                "armed",
                deadline_s=self.deadline_s,
                step_limit=self.step_limit,
                max_tree_nodes=self.max_tree_nodes,
            )
        return self

    @classmethod
    def started(cls, **kwargs: object) -> "Budget":
        """Construct and :meth:`start` in one call."""
        return cls(**kwargs).start()  # type: ignore[arg-type]

    def remaining_s(self) -> float | None:
        """Seconds until the deadline (None when unarmed; floored at 0)."""
        if self.deadline_at is None:
            return None
        return max(0.0, self.deadline_at - time.monotonic())

    def expired(self) -> bool:
        return self.deadline_at is not None and time.monotonic() >= self.deadline_at

    def check(self, location=None) -> None:
        """Raise :class:`BudgetExceeded` if the deadline has passed."""
        if self.expired():
            _journal("exhausted", resource="deadline", deadline_s=self.deadline_s)
            raise BudgetExceeded(
                f"wall-clock budget of {self.deadline_s}s exhausted",
                location,
                resource="deadline",
            )

    def effective_step_limit(self, default: int) -> int:
        """The interpreter step limit under this budget (tighten only)."""
        if self.step_limit is None:
            return default
        return min(self.step_limit, default)

    def effective_call_depth(self, default: int) -> int:
        """The interpreter call-depth cap under this budget (tighten only)."""
        if self.max_call_depth is None:
            return default
        return min(self.max_call_depth, default)
