"""Graceful degradation helpers: salvaging partial execution trees.

When tracing blows its budget mid-run, the execution tree built so far
is still a valid (if incomplete) search space — divide-and-query and
top-down strategies work fine on partial trees, they just localize with
less precision. The salvage step here bounds the *debugging* cost of a
blown trace the same way the budget bounded the tracing cost: the tree
is capped at a fixed depth so a pathologically deep partial trace never
hands the debugger an unbounded search.
"""

from __future__ import annotations

from repro.tracing.execution_tree import ExecNode


def cap_depth(root: ExecNode, max_depth: int) -> int:
    """Drop every activation deeper than ``max_depth`` below ``root``.

    Depth is counted in tree edges (``root`` is depth 0). Returns the
    number of nodes removed. The cut is taken by clearing the children
    of depth-``max_depth`` nodes, so the kept prefix stays a well-formed
    tree the debugger and the renderer can traverse.
    """
    if max_depth < 0:
        raise ValueError("max_depth must be >= 0")
    dropped = 0
    frontier: list[tuple[ExecNode, int]] = [(root, 0)]
    while frontier:
        node, depth = frontier.pop()
        if depth == max_depth:
            if node.children:
                dropped += sum(child.subtree_size() for child in node.children)
                node.children.clear()
            continue
        for child in node.children:
            frontier.append((child, depth + 1))
    return dropped
