"""Structured error taxonomy for the fault-tolerant pipeline.

The pipeline's normal diet is hostile programs — mutants that loop
forever, recurse past the stack, or crash mid-trace — so failures must
be *classifiable*, not bare exceptions: the mutation sweep maps each
class to a per-mutant outcome status instead of aborting wholesale.

Budget- and trace-shaped failures deliberately subclass
:class:`~repro.pascal.errors.PascalRuntimeError`: every existing
``except PascalError`` handler keeps working, while new code can catch
:class:`ResilienceError` (or the specific class) to react precisely.
"""

from __future__ import annotations

from repro.pascal.errors import PascalRuntimeError, SourceLocation


class ResilienceError(Exception):
    """Marker base for every failure class the resilience layer defines."""


class BudgetExceeded(ResilienceError, PascalRuntimeError):
    """A resource budget (wall-clock deadline, step limit, call depth)
    was exhausted. ``resource`` names which guard fired."""

    def __init__(
        self,
        message: str,
        location: SourceLocation | None = None,
        resource: str = "deadline",
    ):
        self.resource = resource
        PascalRuntimeError.__init__(self, message, location)


class TraceAborted(ResilienceError, PascalRuntimeError):
    """Tracing was cut short by a guard (e.g. the execution tree grew
    past the budget's node cap). The partial tree is still salvageable —
    :func:`repro.tracing.tracer.trace_program` turns this into a
    degraded :class:`~repro.tracing.tracer.TraceResult` when asked to."""

    def __init__(
        self,
        message: str,
        location: SourceLocation | None = None,
        reason: str = "tree-nodes",
    ):
        self.reason = reason
        PascalRuntimeError.__init__(self, message, location)


class WorkerCrashed(ResilienceError):
    """A sweep worker died or raised outside the task protocol (parent-
    side classification; never raised inside worker processes)."""

    def __init__(self, message: str, task_index: int | None = None):
        self.task_index = task_index
        super().__init__(message)


class FaultInjected(RuntimeError):
    """The deliberate failure raised by :mod:`repro.resilience.faults`.

    Deliberately *not* a :class:`ResilienceError` or ``PascalError``:
    an injected fault must look to the code under test exactly like the
    unclassified infrastructure failure it simulates.
    """
