"""Deterministic fault injection at the pipeline's failure boundaries.

Crash isolation, retries, and degraded tracing are only trustworthy if
they are *testable*: this module lets tests (and the CI smoke job)
plant failures at exactly six boundaries —

* ``cache.read`` — a content-cache entry reads back corrupted,
* ``sink.write`` — an event sink write fails with ``OSError``,
* ``trace`` — tracing a program dies with a runtime error,
* ``worker`` — a sweep worker raises (or hard-exits, simulating a
  process crash),
* ``store.read`` — a test-report segment reads back corrupted or
  unreadable (:mod:`repro.store`),
* ``store.write`` — a test-report segment flush fails, hard-exits
  mid-flush, or publishes damaged bytes,
* ``serve.accept`` — the debug service's admission path fails while
  accepting a job (:mod:`repro.serve`),
* ``serve.worker`` — a debug-service job execution raises (or
  hard-exits, simulating a serve worker crash).

A :class:`FaultPlan` is a list of :class:`FaultSpec` rules. Each site
calls :func:`fire` with its point name and a site *key* (e.g. the
mutant description, attempt-qualified); a spec matches when its point
equals the site's and its ``match`` substring occurs in the key (or is
None). Matching decrements the spec's remaining ``times`` — injection
is therefore fully deterministic, with no randomness and no clocks.

Plans are plain picklable objects so the parent process can ship the
active plan to pool workers through the initializer; each worker gets
its own countdown copy.
"""

from __future__ import annotations

import os
from contextlib import contextmanager
from dataclasses import dataclass, field
from typing import Iterator

from repro.resilience.errors import FaultInjected

#: the boundaries that consult the fault plan
FAULT_POINTS = (
    "cache.read",
    "sink.write",
    "trace",
    "worker",
    "store.read",
    "store.write",
    "serve.accept",
    "serve.worker",
)

#: what a fired spec does at its site
FAULT_MODES = ("raise", "oserror", "exit", "corrupt")


@dataclass
class FaultSpec:
    """One injection rule: fail ``times`` matching hits at ``point``,
    after letting the first ``skip`` matching hits pass unharmed (so a
    plan can target e.g. the second trace of a run, not the first)."""

    point: str
    match: str | None = None
    mode: str = "raise"
    times: int = 1  # -1 = every matching hit
    message: str = "injected fault"
    skip: int = 0
    #: hits consumed so far (countdown state; copied per process)
    fired: int = field(default=0, compare=False)
    #: matching hits let through by ``skip`` so far
    skipped: int = field(default=0, compare=False)

    def __post_init__(self) -> None:
        if self.point not in FAULT_POINTS:
            raise ValueError(f"unknown fault point {self.point!r}")
        if self.mode not in FAULT_MODES:
            raise ValueError(f"unknown fault mode {self.mode!r}")

    def matches(self, point: str, key: str | None) -> bool:
        if self.point != point:
            return False
        if self.times >= 0 and self.fired >= self.times:
            return False
        if self.match is not None and (key is None or self.match not in key):
            return False
        if self.skipped < self.skip:
            self.skipped += 1
            return False
        return True

    def consume(self) -> None:
        self.fired += 1


@dataclass
class FaultPlan:
    """An ordered set of injection rules (first match wins)."""

    specs: list[FaultSpec] = field(default_factory=list)

    def fire(self, point: str, key: str | None = None) -> FaultSpec | None:
        for spec in self.specs:
            if spec.matches(point, key):
                spec.consume()
                return spec
        return None


#: the process-global plan (None = no injection, the production state)
_PLAN: FaultPlan | None = None


def install(plan: FaultPlan | None) -> None:
    """Make ``plan`` the active plan for this process."""
    global _PLAN
    _PLAN = plan


def clear() -> None:
    install(None)


def active() -> FaultPlan | None:
    """The currently installed plan (shipped to sweep workers)."""
    return _PLAN


def fire(point: str, key: str | None = None) -> FaultSpec | None:
    """Consult the active plan; the fired spec, or None (the fast path:
    one global load and an is-None test when injection is off)."""
    if _PLAN is None:
        return None
    return _PLAN.fire(point, key)


def trip(point: str, key: str | None = None) -> FaultSpec | None:
    """Fire and act: ``raise`` → :class:`FaultInjected`, ``oserror`` →
    ``OSError``, ``exit`` → ``os._exit(23)`` (a real process death).
    ``corrupt`` specs are returned for the site to apply itself."""
    spec = fire(point, key)
    if spec is None:
        return None
    if spec.mode == "exit":
        os._exit(23)
    if spec.mode == "oserror":
        raise OSError(f"{spec.message} [{point}]")
    if spec.mode == "raise":
        raise FaultInjected(f"{spec.message} [{point}]")
    return spec  # "corrupt": caller damages its own data


@contextmanager
def injected(*specs: FaultSpec) -> Iterator[FaultPlan]:
    """Install a plan for the duration of a ``with`` block (tests)."""
    previous = _PLAN
    plan = FaultPlan(list(specs))
    install(plan)
    try:
        yield plan
    finally:
        install(previous)
