"""Fault-isolated parallel task execution for sweeps.

``multiprocessing.Pool.map`` has exactly the failure mode a mutation
sweep cannot afford: one pathological task hangs or kills a worker and
the whole sweep blocks or dies with no per-task attribution. This
module replaces it with per-task submission on a
``ProcessPoolExecutor`` plus three recovery mechanisms:

* **per-task timeouts** — a task that exceeds ``timeout_s`` is marked
  ``timed_out``; its stuck worker is terminated and the pool rebuilt,
  so the hang costs one slot, never the sweep;
* **crash attribution** — workers announce each task start on a shared
  queue, so when a worker death breaks the pool merely-queued tasks are
  resubmitted free; a lone running task is charged the failure, and
  when several tasks were running concurrently (the executor kills all
  workers on a break, so the culprit is ambiguous) they are charged
  nothing and quarantined to a solo phase where each re-runs on its own
  single-worker executor and any death is unambiguous;
* **bounded retries with jittered exponential backoff** — a failed
  task (worker exception or death) is retried up to ``retries`` times,
  then marked ``infra_error``; each retry waits out a
  :class:`~repro.resilience.backoff.Backoff` delay first (attempt *n*
  sleeps ~``base * 2**n``, jittered, capped), so a sick pool is not
  hammered with immediate resubmissions while healthy tasks keep
  flowing around the waiting ones.

Results come back as :class:`TaskResult` records, one per payload, in
payload order — an ``ok`` result for every task whose function
returned, and a classified failure for every task that could not be
completed. The call itself never raises for task-level failures.
"""

from __future__ import annotations

import time
from concurrent.futures import FIRST_COMPLETED, Future, ProcessPoolExecutor, wait
from concurrent.futures import TimeoutError as FuturesTimeoutError
from concurrent.futures.process import BrokenProcessPool
from dataclasses import dataclass
from typing import Any, Callable, Sequence

from repro.resilience.backoff import Backoff, RetrySchedule

#: how long the result loop sleeps between completions (also bounds
#: timeout-detection latency)
_POLL_S = 0.05


@dataclass
class TaskResult:
    """Outcome of one isolated task."""

    index: int
    status: str  # "ok" | "timed_out" | "infra_error"
    value: Any = None
    error: str | None = None
    #: failed attempts that preceded this outcome
    retries: int = 0


# ----------------------------------------------------------------------
# worker side

_START_QUEUE = None  # set per worker process by _pool_init


def _pool_init(start_queue, user_initializer, user_initargs) -> None:
    global _START_QUEUE
    _START_QUEUE = start_queue
    if user_initializer is not None:
        user_initializer(*user_initargs)


def _entry(fn, index: int, submit_id: int, attempt: int, payload):
    """Announce the task start, then run it. The announcement is what
    lets the parent attribute a later pool break to this task."""
    if _START_QUEUE is not None:
        try:
            _START_QUEUE.put((index, submit_id))
        except Exception:
            pass  # attribution is best-effort; the task still runs
    return fn(payload, attempt)


# ----------------------------------------------------------------------
# parent side


def run_isolated(
    fn: Callable[[Any, int], Any],
    payloads: Sequence[Any],
    *,
    workers: int,
    initializer: Callable[..., None] | None = None,
    initargs: tuple = (),
    timeout_s: float | None = None,
    retries: int = 1,
    backoff: Backoff | None = None,
    clock: Callable[[], float] | None = None,
    sleep: Callable[[float], None] | None = None,
) -> list[TaskResult]:
    """Run ``fn(payload, attempt)`` for every payload on ``workers``
    processes with crash isolation, timeouts, and bounded retries.

    ``fn``, ``initializer``, and the payloads must be picklable.
    ``attempt`` is 0 on the first try and counts prior failures — fault
    plans key on it to inject "fail once, then succeed" scenarios.

    Retries are paced by ``backoff`` (default: a jittered exponential
    :class:`~repro.resilience.backoff.Backoff`); a retryable task only
    re-enters the pool once its delay has elapsed. ``clock`` and
    ``sleep`` are injectable for fake-clock tests.
    """
    if workers < 1:
        raise ValueError(f"workers must be >= 1, got {workers}")
    if not payloads:
        return []

    import multiprocessing

    _clock = clock if clock is not None else time.monotonic
    _sleep = sleep if sleep is not None else time.sleep
    schedule = RetrySchedule(backoff=backoff, clock=_clock)

    manager = multiprocessing.Manager()
    start_queue = manager.Queue()

    results: dict[int, TaskResult] = {}
    failures = {index: 0 for index in range(len(payloads))}
    submit_ids = {index: 0 for index in range(len(payloads))}
    started: set[tuple[int, int]] = set()  # (index, submit_id) seen running

    def make_executor() -> ProcessPoolExecutor:
        return ProcessPoolExecutor(
            max_workers=min(workers, len(payloads)),
            initializer=_pool_init,
            initargs=(start_queue, initializer, initargs),
        )

    def drain_started() -> None:
        while True:
            try:
                started.add(start_queue.get_nowait())
            except Exception:
                return

    def kill_executor(executor: ProcessPoolExecutor) -> None:
        processes = getattr(executor, "_processes", None) or {}
        for process in list(processes.values()):
            try:
                process.terminate()
            except Exception:
                pass
        executor.shutdown(wait=False, cancel_futures=True)

    executor = make_executor()
    pending: dict[Future, int] = {}
    submitted_at: dict[int, float] = {}

    def submit(index: int) -> bool:
        """Submit one task; False if the pool is already broken (the
        caller runs pool-break recovery and retries from the backlog)."""
        try:
            future = executor.submit(
                _entry, fn, index, submit_ids[index] + 1,
                failures[index], payloads[index],
            )
        except BrokenProcessPool:
            return False
        submit_ids[index] += 1
        pending[future] = index
        submitted_at[index] = time.monotonic()
        return True

    def record_failure(index: int, error: str) -> bool:
        """Charge one failed attempt; True if the task may be retried.

        A retryable task is stamped with its backoff-ready time: the
        submission loop leaves it in the backlog until the jittered
        exponential delay has elapsed."""
        failures[index] += 1
        if failures[index] > retries:
            results[index] = TaskResult(
                index=index,
                status="infra_error",
                error=error,
                retries=failures[index] - 1,
            )
            return False
        schedule.note_failure(index, failures[index] - 1)
        return True

    #: tasks quarantined after a pool break, re-run one-per-executor
    solo_queue: list[int] = []

    #: indices awaiting (re)submission — drained at the top of each cycle
    backlog: list[int] = list(range(len(payloads)))

    try:
        while pending or backlog:
            pool_broken = False
            broken: list[int] = []  # indices whose futures died with the pool

            for index in schedule.ready(backlog):
                if submit(index):
                    backlog.remove(index)
                else:
                    pool_broken = True  # recover below, then retry the backlog
                    break

            if not pool_broken and not pending:
                # Everything left is waiting out a backoff delay.
                _sleep(min(_POLL_S, max(schedule.next_ready_in(backlog), 0.001)))
                continue

            if not pool_broken:
                done, _ = wait(
                    set(pending), timeout=_POLL_S, return_when=FIRST_COMPLETED
                )
                drain_started()

                for future in done:
                    index = pending.pop(future)
                    try:
                        value = future.result()
                    except BrokenProcessPool:
                        pool_broken = True
                        broken.append(index)
                    except Exception as exc:  # the worker raised
                        if record_failure(index, f"{type(exc).__name__}: {exc}"):
                            backlog.append(index)
                    else:
                        results[index] = TaskResult(
                            index=index, status="ok", value=value,
                            retries=failures[index],
                        )

            if pool_broken:
                # Every remaining future of this executor is dead —
                # including the ones already reaped above, whose
                # ``result()`` raised the pool-break itself. Tasks that
                # never announced a start were merely queued: resubmit
                # them free. Tasks that *were* running are suspects, but
                # when several ran concurrently only one of them killed
                # the worker — charging all of them lets a crasher's
                # retries bleed innocent tasks' retry budgets. So: a
                # lone suspect is charged directly; multiple suspects
                # are charged nothing and quarantined to the solo phase,
                # where each runs alone and any death is unambiguous.
                drain_started()
                for future in [f for f in pending if f.done()]:
                    # completed before the break — keep the result
                    index = pending.pop(future)
                    try:
                        value = future.result()
                    except BrokenProcessPool:
                        broken.append(index)
                    except Exception as exc:
                        if record_failure(index, f"{type(exc).__name__}: {exc}"):
                            backlog.append(index)
                    else:
                        results[index] = TaskResult(
                            index=index, status="ok", value=value,
                            retries=failures[index],
                        )
                suspects = []
                requeue = []
                for index in (*broken, *pending.values()):
                    if (index, submit_ids[index]) in started:
                        suspects.append(index)
                    else:
                        requeue.append(index)
                pending.clear()
                executor.shutdown(wait=False, cancel_futures=True)
                executor = make_executor()
                if len(suspects) == 1:
                    if record_failure(suspects[0], "worker process died"):
                        solo_queue.append(suspects[0])
                else:
                    solo_queue.extend(suspects)
                backlog.extend(requeue)
                continue

            if timeout_s is not None:
                now = time.monotonic()
                expired = [
                    index
                    for future, index in pending.items()
                    if now - submitted_at[index] > timeout_s
                ]
                if expired:
                    # The stuck workers cannot be cancelled, only killed:
                    # terminate the pool and resubmit the innocent rest.
                    for index in expired:
                        results[index] = TaskResult(
                            index=index,
                            status="timed_out",
                            error=f"exceeded {timeout_s}s",
                            retries=failures[index],
                        )
                    backlog.extend(
                        index for index in pending.values() if index not in expired
                    )
                    pending.clear()
                    kill_executor(executor)
                    executor = make_executor()

        # Solo phase: each quarantined task gets a fresh single-worker
        # executor per attempt, so a repeat death is attributed beyond
        # doubt and cannot take anyone else down with it.
        for index in solo_queue:
            while index not in results:
                remaining = schedule.next_ready_in([index])
                if remaining > 0:  # wait out this attempt's backoff
                    _sleep(remaining)
                submit_ids[index] += 1
                solo = ProcessPoolExecutor(
                    max_workers=1,
                    initializer=_pool_init,
                    initargs=(start_queue, initializer, initargs),
                )
                future = solo.submit(
                    _entry, fn, index, submit_ids[index],
                    failures[index], payloads[index],
                )
                try:
                    value = future.result(timeout=timeout_s)
                except BrokenProcessPool:
                    record_failure(index, "worker process died")
                except FuturesTimeoutError:
                    results[index] = TaskResult(
                        index=index,
                        status="timed_out",
                        error=f"exceeded {timeout_s}s",
                        retries=failures[index],
                    )
                    kill_executor(solo)
                except Exception as exc:
                    record_failure(index, f"{type(exc).__name__}: {exc}")
                else:
                    results[index] = TaskResult(
                        index=index, status="ok", value=value,
                        retries=failures[index],
                    )
                finally:
                    solo.shutdown(wait=False, cancel_futures=True)
    finally:
        executor.shutdown(wait=False, cancel_futures=True)
        manager.shutdown()

    return [results[index] for index in range(len(payloads))]
