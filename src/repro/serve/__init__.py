"""``repro.serve`` — the fault-tolerant multi-session debug service.

The ROADMAP's "heavy traffic" front door: an asyncio service that
accepts many concurrent debug/trace/run/answer jobs over newline-
delimited JSON (Unix socket or stdio) and multiplexes them over one
shared test-report store and a fixed worker pool, with

* bounded admission and explicit load shedding (``shed`` responses,
  never an unbounded queue),
* per-tenant token-bucket rate limits and circuit breakers,
* per-job deadlines covering queue wait *and* execution,
* crash-isolated worker slots with retry + jittered backoff,
* graceful degradation under pressure (partial traces, surfaced as
  ``degraded``), and
* ``drain`` shutdown that finishes in-flight jobs and sheds new ones.

Start here: :class:`DebugService` (the engine), :class:`ServeServer` /
:func:`serve_stdio` (the front doors), :class:`ServeClient` (the
caller). Protocol and semantics: ``docs/SERVE.md``.
"""

from repro.serve.admission import AdmissionController, CircuitBreaker, TokenBucket
from repro.serve.client import AsyncServeClient, ServeClient
from repro.serve.protocol import (
    CONTROL_OPS,
    JOB_OPS,
    JobRequest,
    JobResponse,
    ProtocolError,
    SHED_REASONS,
    TERMINAL_STATUSES,
    parse_request,
    parse_response,
)
from repro.serve.server import ServeServer, serve_metrics_snapshot, serve_stdio
from repro.serve.service import DebugService, ServeConfig, ServeStats

__all__ = [
    "AdmissionController",
    "AsyncServeClient",
    "CONTROL_OPS",
    "CircuitBreaker",
    "DebugService",
    "JOB_OPS",
    "JobRequest",
    "JobResponse",
    "ProtocolError",
    "SHED_REASONS",
    "ServeClient",
    "ServeConfig",
    "ServeServer",
    "ServeStats",
    "TERMINAL_STATUSES",
    "TokenBucket",
    "parse_request",
    "parse_response",
    "serve_metrics_snapshot",
    "serve_stdio",
]
