"""Admission control: token buckets and per-tenant circuit breakers.

Admission is the cheapest place to be robust: a job refused at the
front door costs a dictionary lookup; the same job admitted and then
failed costs a queue slot, a worker, and — under overload — everyone
else's latency. Three mechanisms, all clock-injectable so tests never
sleep:

* :class:`TokenBucket` — per-tenant rate limiting. Tokens accrue at
  ``rate`` per second up to ``burst``; a job that finds no token is
  shed as ``rate_limited``. Buckets are lazy — time refills them on
  the next ``try_take``, so an idle service costs nothing.
* :class:`CircuitBreaker` — per-tenant crash quarantine. A tenant
  whose jobs repeatedly kill workers (``threshold`` consecutive
  attributed crashes) has its circuit *opened*: jobs are shed as
  ``circuit_open`` for ``cooldown_s``, then exactly one probe job is
  let through (*half-open*); a clean probe closes the circuit, another
  crash re-opens it. One abusive tenant thus costs the pool a bounded
  number of worker deaths, not a death per submission.
* :class:`AdmissionController` — the per-tenant registry of both.

Thread-safety: the controller is used from one asyncio loop, but all
mutation is lock-guarded anyway so sync tests and future multi-loop
fronts stay correct.
"""

from __future__ import annotations

import threading
import time
from typing import Callable


class TokenBucket:
    """A standard leaky/token bucket with an injectable clock."""

    def __init__(
        self,
        rate: float,
        burst: float,
        clock: Callable[[], float] | None = None,
    ):
        if rate <= 0 or burst <= 0:
            raise ValueError("rate and burst must be > 0")
        self.rate = rate
        self.burst = burst
        self.clock = clock if clock is not None else time.monotonic
        self.tokens = burst
        self._updated = self.clock()
        self._lock = threading.Lock()

    def try_take(self, tokens: float = 1.0) -> bool:
        """Take ``tokens`` if available; False (and no debit) otherwise."""
        with self._lock:
            now = self.clock()
            self.tokens = min(
                self.burst, self.tokens + (now - self._updated) * self.rate
            )
            self._updated = now
            if self.tokens >= tokens:
                self.tokens -= tokens
                return True
            return False


class CircuitBreaker:
    """closed → open (``threshold`` consecutive crashes) → half-open
    (after ``cooldown_s``) → closed on a clean probe / open on a dirty
    one."""

    CLOSED, OPEN, HALF_OPEN = "closed", "open", "half_open"

    def __init__(
        self,
        threshold: int = 3,
        cooldown_s: float = 30.0,
        clock: Callable[[], float] | None = None,
    ):
        if threshold < 1:
            raise ValueError("threshold must be >= 1")
        self.threshold = threshold
        self.cooldown_s = cooldown_s
        self.clock = clock if clock is not None else time.monotonic
        self.state = self.CLOSED
        self.consecutive_crashes = 0
        self.opened_count = 0
        self._opened_at = 0.0
        self._probing = False
        self._lock = threading.Lock()

    def allow(self) -> bool:
        """May a job from this tenant enter the pool right now?"""
        with self._lock:
            if self.state == self.CLOSED:
                return True
            if self.state == self.OPEN:
                if self.clock() - self._opened_at >= self.cooldown_s:
                    self.state = self.HALF_OPEN
                    self._probing = False
                else:
                    return False
            # half-open: admit exactly one probe at a time
            if self._probing:
                return False
            self._probing = True
            return True

    def record_crash(self) -> bool:
        """Charge one attributed worker crash; True if this opened (or
        re-opened) the circuit."""
        with self._lock:
            self.consecutive_crashes += 1
            if self.state == self.HALF_OPEN or (
                self.state == self.CLOSED
                and self.consecutive_crashes >= self.threshold
            ):
                self.state = self.OPEN
                self._opened_at = self.clock()
                self._probing = False
                self.opened_count += 1
                return True
            return False

    def record_ok(self) -> None:
        """A job from this tenant finished without crashing a worker."""
        with self._lock:
            self.consecutive_crashes = 0
            if self.state in (self.HALF_OPEN, self.OPEN):
                self.state = self.CLOSED
            self._probing = False

    def release_probe(self) -> None:
        """Give up a half-open probe slot without a verdict (the probe
        job timed out or failed for reasons unrelated to crashes), so
        the next job may probe instead of the circuit wedging."""
        with self._lock:
            self._probing = False


class AdmissionController:
    """Per-tenant buckets and breakers, created on first use."""

    def __init__(
        self,
        rate: float | None = None,
        burst: float = 10.0,
        breaker_threshold: int = 3,
        breaker_cooldown_s: float = 30.0,
        clock: Callable[[], float] | None = None,
    ):
        self.rate = rate
        self.burst = burst
        self.breaker_threshold = breaker_threshold
        self.breaker_cooldown_s = breaker_cooldown_s
        self.clock = clock if clock is not None else time.monotonic
        self._buckets: dict[str, TokenBucket] = {}
        self._breakers: dict[str, CircuitBreaker] = {}
        self._lock = threading.Lock()

    def bucket(self, tenant: str) -> TokenBucket | None:
        if self.rate is None:
            return None
        with self._lock:
            bucket = self._buckets.get(tenant)
            if bucket is None:
                bucket = self._buckets[tenant] = TokenBucket(
                    self.rate, self.burst, clock=self.clock
                )
            return bucket

    def breaker(self, tenant: str) -> CircuitBreaker:
        with self._lock:
            breaker = self._breakers.get(tenant)
            if breaker is None:
                breaker = self._breakers[tenant] = CircuitBreaker(
                    threshold=self.breaker_threshold,
                    cooldown_s=self.breaker_cooldown_s,
                    clock=self.clock,
                )
            return breaker

    def check(self, tenant: str) -> str | None:
        """The shed reason for this tenant right now, or None to admit.
        A rate-limit refusal does *not* consume breaker probes, and a
        breaker refusal does not consume tokens — the order is
        rate → breaker so an open breaker still drains the bucket of
        the tenant hammering it."""
        bucket = self.bucket(tenant)
        if bucket is not None and not bucket.try_take():
            return "rate_limited"
        if not self.breaker(tenant).allow():
            return "circuit_open"
        return None
