"""Clients for the debug service's newline-delimited JSON protocol.

:class:`ServeClient` is the small synchronous client (CLI ``repro
serve --drain``, scripts, tests): one socket, pipelined requests,
responses correlated by ``id``. :class:`AsyncServeClient` is its
asyncio twin used by the load-generator benchmark to hold hundreds of
concurrent sessions over one connection pool.
"""

from __future__ import annotations

import asyncio
import json
import socket
import uuid

from repro.serve.protocol import JobResponse, ProtocolError, parse_response


class ServeClient:
    """Synchronous Unix-socket client."""

    def __init__(self, socket_path: str, timeout_s: float | None = 60.0):
        self.socket_path = socket_path
        self._sock = socket.socket(socket.AF_UNIX, socket.SOCK_STREAM)
        self._sock.settimeout(timeout_s)
        self._sock.connect(socket_path)
        self._file = self._sock.makefile("rwb")
        #: responses read while waiting for a different id
        self._stash: dict[str, JobResponse] = {}

    def send(self, request: dict) -> str:
        """Fire one request line; returns its id (auto-assigned if absent)."""
        request = dict(request)
        request.setdefault("id", uuid.uuid4().hex[:12])
        self._file.write((json.dumps(request) + "\n").encode())
        self._file.flush()
        return str(request["id"])

    def recv(self, request_id: str) -> JobResponse:
        """Block until the response for ``request_id`` arrives."""
        if request_id in self._stash:
            return self._stash.pop(request_id)
        while True:
            line = self._file.readline()
            if not line:
                raise ProtocolError(
                    f"connection closed awaiting response {request_id!r}"
                )
            response = parse_response(line)
            if response.id == request_id:
                return response
            self._stash[response.id] = response

    def request(self, request: dict) -> JobResponse:
        """Send one request and wait for its terminal response."""
        return self.recv(self.send(request))

    def ping(self) -> bool:
        return self.request({"op": "ping"}).status == "completed"

    def stats(self) -> dict:
        response = self.request({"op": "stats"})
        return response.result or {}

    def drain(self) -> dict:
        """Ask the server to drain and shut down; returns its summary."""
        response = self.request({"op": "drain"})
        if response.status != "completed":
            raise ProtocolError(f"drain refused: {response.status}")
        return response.result or {}

    def close(self) -> None:
        try:
            self._file.close()
        finally:
            self._sock.close()

    def __enter__(self) -> "ServeClient":
        return self

    def __exit__(self, *exc) -> None:
        self.close()


class AsyncServeClient:
    """Asyncio Unix-socket client; safe for many concurrent callers."""

    def __init__(self, socket_path: str):
        self.socket_path = socket_path
        self._reader: asyncio.StreamReader | None = None
        self._writer: asyncio.StreamWriter | None = None
        self._waiters: dict[str, asyncio.Future] = {}
        self._reader_task: asyncio.Task | None = None
        self._write_lock: asyncio.Lock | None = None

    async def connect(self) -> "AsyncServeClient":
        self._reader, self._writer = await asyncio.open_unix_connection(
            self.socket_path
        )
        self._write_lock = asyncio.Lock()
        self._reader_task = asyncio.ensure_future(self._pump())
        return self

    async def _pump(self) -> None:
        assert self._reader is not None
        while True:
            line = await self._reader.readline()
            if not line:
                break
            try:
                response = parse_response(line)
            except ProtocolError:
                continue
            waiter = self._waiters.pop(response.id, None)
            if waiter is not None and not waiter.done():
                waiter.set_result(response)
        for waiter in self._waiters.values():  # connection died
            if not waiter.done():
                waiter.set_exception(
                    ProtocolError("connection closed with requests in flight")
                )
        self._waiters.clear()

    async def request(self, request: dict) -> JobResponse:
        assert self._writer is not None and self._write_lock is not None
        request = dict(request)
        request.setdefault("id", uuid.uuid4().hex[:12])
        request_id = str(request["id"])
        waiter: asyncio.Future = asyncio.get_running_loop().create_future()
        self._waiters[request_id] = waiter
        async with self._write_lock:
            self._writer.write((json.dumps(request) + "\n").encode())
            await self._writer.drain()
        return await waiter

    async def close(self) -> None:
        if self._writer is not None:
            self._writer.close()
        if self._reader_task is not None:
            self._reader_task.cancel()
