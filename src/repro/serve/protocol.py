"""The debug service's wire protocol: newline-delimited JSON jobs.

One request per line, one response per line, correlated by a
client-chosen ``id``. The protocol is deliberately tiny — it must stay
debuggable with ``nc`` and greppable in a journal — and it makes one
hard promise: **every accepted line produces exactly one terminal
response**, whose ``status`` is one of :data:`TERMINAL_STATUSES`:

``completed``
    the job ran to completion; ``result`` carries its payload;
``degraded``
    the job ran, but under pressure or a blown budget the service
    salvaged a partial result (``result.degraded_reason`` says why);
``shed``
    admission control refused the job *before* it burned a worker —
    ``reason`` is one of :data:`SHED_REASONS` (queue full, tenant rate
    limit, tenant circuit breaker, or the service is draining);
``timed_out``
    the job's deadline expired in the queue or mid-execution;
``failed``
    the job is unservable: malformed request, program error, or infra
    failure that survived every retry (``reason`` distinguishes them).

Requests carry the job operation (``op``): ``run`` / ``trace`` /
``debug`` execute Mini-Pascal source; ``answer`` resolves correctness
queries against the shared test-report store; ``ping`` / ``stats`` /
``drain`` are control operations handled by the front door itself.
See ``docs/SERVE.md`` for the full field tables.
"""

from __future__ import annotations

import json
from dataclasses import dataclass, field
from typing import Any, Mapping

PROTOCOL_SCHEMA = "gadt_serve/1"

#: every job ends in exactly one of these
TERMINAL_STATUSES = ("completed", "degraded", "shed", "timed_out", "failed")

#: why admission control refused a job
SHED_REASONS = ("overloaded", "rate_limited", "circuit_open", "draining")

#: operations executed on a worker
JOB_OPS = ("run", "trace", "debug", "answer")

#: operations answered by the front door without queueing
CONTROL_OPS = ("ping", "stats", "drain")


class ProtocolError(Exception):
    """The request line is not a servable job."""


@dataclass
class JobRequest:
    """One parsed job. ``deadline_s`` bounds queue wait *plus*
    execution; ``degrade`` is tri-state — ``True``/``False`` pin the
    behaviour, ``None`` lets the service degrade under pressure."""

    id: str
    op: str
    tenant: str = "default"
    source: str | None = None
    inputs: list[Any] = field(default_factory=list)
    reference: str | None = None
    strategy: str = "top-down"
    deadline_s: float | None = None
    degrade: bool | None = None
    use_testdb: bool = False
    queries: list[dict] = field(default_factory=list)

    def validate(self) -> None:
        if self.op not in JOB_OPS and self.op not in CONTROL_OPS:
            raise ProtocolError(f"unknown op {self.op!r}")
        if self.op in ("run", "trace", "debug") and not self.source:
            raise ProtocolError(f"op {self.op!r} requires 'source'")
        if self.op == "debug" and not self.reference and not self.use_testdb:
            raise ProtocolError(
                "op 'debug' requires 'reference' (simulated oracle) or "
                "'use_testdb' (store-answered session)"
            )
        if self.op == "debug":
            from repro.core.strategies import available_strategies

            if self.strategy not in available_strategies():
                raise ProtocolError(
                    f"unknown strategy {self.strategy!r}; choose from "
                    f"{available_strategies()}"
                )
        if self.op == "answer" and not self.queries:
            raise ProtocolError("op 'answer' requires a non-empty 'queries'")
        if self.deadline_s is not None and self.deadline_s <= 0:
            raise ProtocolError(f"deadline_s must be > 0, got {self.deadline_s}")


def parse_request(data: str | bytes | Mapping[str, Any]) -> JobRequest:
    """Decode one request line (or an already-parsed mapping)."""
    if isinstance(data, (str, bytes)):
        try:
            payload = json.loads(data)
        except json.JSONDecodeError as error:
            raise ProtocolError(f"invalid JSON: {error}") from error
    else:
        payload = dict(data)
    if not isinstance(payload, dict):
        raise ProtocolError("request must be a JSON object")
    if "op" not in payload:
        raise ProtocolError("request is missing 'op'")
    known = {f for f in JobRequest.__dataclass_fields__}
    unknown = set(payload) - known
    if unknown:
        raise ProtocolError(f"unknown field(s): {', '.join(sorted(unknown))}")
    payload.setdefault("id", "")
    request = JobRequest(**{k: payload[k] for k in payload})
    request.id = str(request.id)
    request.validate()
    return request


@dataclass
class JobResponse:
    """One terminal response. ``reason`` qualifies non-completed
    statuses (shed reason, timeout site, failure class)."""

    id: str
    status: str
    reason: str | None = None
    result: dict | None = None
    error: str | None = None
    tenant: str = "default"
    wait_s: float = 0.0
    serve_s: float = 0.0
    retries: int = 0

    def __post_init__(self) -> None:
        assert self.status in TERMINAL_STATUSES, self.status

    @property
    def terminal(self) -> bool:
        return True  # every constructed response is terminal by design

    def to_dict(self) -> dict:
        data: dict[str, Any] = {"id": self.id, "status": self.status}
        if self.reason is not None:
            data["reason"] = self.reason
        if self.result is not None:
            data["result"] = self.result
        if self.error is not None:
            data["error"] = self.error
        data["tenant"] = self.tenant
        data["wait_s"] = round(self.wait_s, 6)
        data["serve_s"] = round(self.serve_s, 6)
        if self.retries:
            data["retries"] = self.retries
        return data

    def encode(self) -> str:
        return json.dumps(self.to_dict(), default=str)


def parse_response(line: str | bytes) -> JobResponse:
    """Decode one response line (client side)."""
    try:
        payload = json.loads(line)
    except json.JSONDecodeError as error:
        raise ProtocolError(f"invalid JSON response: {error}") from error
    if not isinstance(payload, dict) or "status" not in payload:
        raise ProtocolError("response must be a JSON object with 'status'")
    if payload["status"] not in TERMINAL_STATUSES:
        raise ProtocolError(f"non-terminal status {payload['status']!r}")
    return JobResponse(
        id=str(payload.get("id", "")),
        status=payload["status"],
        reason=payload.get("reason"),
        result=payload.get("result"),
        error=payload.get("error"),
        tenant=payload.get("tenant", "default"),
        wait_s=payload.get("wait_s", 0.0),
        serve_s=payload.get("serve_s", 0.0),
        retries=payload.get("retries", 0),
    )
