"""The service's front doors: a Unix-socket server and a stdio loop.

Both speak the newline-delimited JSON protocol of
:mod:`repro.serve.protocol` and share one :class:`~repro.serve.service.
DebugService`. Each request line becomes its own asyncio task, so one
slow debug job never blocks the next line of the same connection —
responses are written as jobs finish, correlated by ``id``, serialized
per connection so concurrent completions interleave as whole lines.

Control operations are answered by the front door itself:

* ``ping`` — liveness (delegated to the service, skips the queue);
* ``stats`` — the service's terminal-response accounting plus the
  ``serve.*`` slice of the metrics registry;
* ``drain`` — stop admitting (new jobs shed as ``draining``), finish
  every in-flight job, answer once idle, then shut the server down.
  ``SIGTERM``/``SIGINT`` trigger the same path, so a supervisor stop
  is a clean drain, not an abandonment.
"""

from __future__ import annotations

import asyncio
import json
import signal
import sys
from typing import IO

from repro import obs
from repro.serve.protocol import ProtocolError, parse_request
from repro.serve.service import DebugService


def serve_metrics_snapshot() -> dict:
    """The ``serve.*`` slice of the metrics registry (counters, gauges,
    histogram summaries) — the ``stats`` op's machine-readable payload."""
    snapshot = obs.snapshot(include_cache=False)
    return {
        section: {
            name: value
            for name, value in snapshot.get(section, {}).items()
            if name.startswith("serve.")
        }
        for section in ("counters", "gauges", "histograms")
    }


class ServeServer:
    """One service behind one Unix socket (or an stdio pipe pair)."""

    def __init__(self, service: DebugService, socket_path: str | None = None):
        self.service = service
        self.socket_path = socket_path
        self._server: asyncio.AbstractServer | None = None
        self._stop = asyncio.Event()
        self._tasks: set[asyncio.Task] = set()

    # ------------------------------------------------------------------
    # shared request routing

    async def handle_request(self, line: str | bytes) -> dict:
        """Route one request line to its terminal response dict."""
        try:
            request = parse_request(line)
        except ProtocolError as error:
            response = await self.service.submit(line)  # counts + classifies
            data = response.to_dict()
            data.setdefault("error", str(error))
            return data
        if request.op == "stats":
            return {
                "id": request.id,
                "status": "completed",
                "result": {
                    "serve": self.service.stats.as_dict(),
                    "queue_depth": self.service.queue_depth,
                    "in_flight": self.service.in_flight,
                    "draining": self.service.draining,
                    "metrics": serve_metrics_snapshot(),
                },
            }
        if request.op == "drain":
            summary = await self.service.drain()
            self._stop.set()
            return {"id": request.id, "status": "completed", "result": summary}
        return (await self.service.submit(request)).to_dict()

    def _spawn(self, coro) -> asyncio.Task:
        task = asyncio.ensure_future(coro)
        self._tasks.add(task)
        task.add_done_callback(self._tasks.discard)
        return task

    # ------------------------------------------------------------------
    # unix socket

    async def start(self) -> "ServeServer":
        assert self.socket_path, "socket server needs a socket path"
        await self.service.start()
        self._server = await asyncio.start_unix_server(
            self._on_connection, path=self.socket_path
        )
        return self

    async def _on_connection(
        self, reader: asyncio.StreamReader, writer: asyncio.StreamWriter
    ) -> None:
        write_lock = asyncio.Lock()
        pending: list[asyncio.Task] = []

        async def answer(line: bytes) -> None:
            data = await self.handle_request(line)
            async with write_lock:
                writer.write((json.dumps(data, default=str) + "\n").encode())
                try:
                    await writer.drain()
                except ConnectionError:
                    pass  # client left; the job still ran to its terminal state

        try:
            while True:
                line = await reader.readline()
                if not line:
                    break
                if not line.strip():
                    continue
                pending.append(self._spawn(answer(line)))
            if pending:
                await asyncio.gather(*pending, return_exceptions=True)
        except (asyncio.CancelledError, ConnectionError):
            pass  # server shutting down mid-read; jobs already spawned finish
        finally:
            try:
                writer.close()
            except Exception:
                pass

    async def run_until_drained(self, install_signals: bool = True) -> None:
        """Serve until a ``drain`` request (or SIGTERM/SIGINT) completes."""
        if self._server is None:
            await self.start()
        if install_signals:
            loop = asyncio.get_running_loop()
            for signum in (signal.SIGTERM, signal.SIGINT):
                try:
                    loop.add_signal_handler(
                        signum, lambda: self._spawn(self._drain_and_stop())
                    )
                except (NotImplementedError, RuntimeError):
                    pass  # platform without signal support in loops
        await self._stop.wait()
        assert self._server is not None
        self._server.close()
        await self._server.wait_closed()
        await self.service.close()

    async def _drain_and_stop(self) -> None:
        await self.service.drain()
        self._stop.set()


async def serve_stdio(
    service: DebugService,
    stdin: IO[str] | None = None,
    stdout: IO[str] | None = None,
) -> dict:
    """Serve newline-delimited JSON over stdio until EOF, then drain.

    Returns the drain summary. This is the zero-setup mode — pipe jobs
    in, read responses out — used by tests and one-shot batch clients.
    """
    stdin = stdin if stdin is not None else sys.stdin
    stdout = stdout if stdout is not None else sys.stdout
    await service.start()
    server = ServeServer(service)
    loop = asyncio.get_running_loop()
    write_lock = asyncio.Lock()
    pending: list[asyncio.Task] = []

    async def answer(line: str) -> None:
        data = await server.handle_request(line)
        async with write_lock:
            stdout.write(json.dumps(data, default=str) + "\n")
            stdout.flush()

    while True:
        line = await loop.run_in_executor(None, stdin.readline)
        if not line:
            break
        if not line.strip():
            continue
        pending.append(asyncio.ensure_future(answer(line)))
    if pending:
        await asyncio.gather(*pending)
    summary = await service.drain()
    await service.close()
    return summary
