"""The fault-tolerant multi-session debug service.

:class:`DebugService` is the front door the ROADMAP asked for: it
accepts many concurrent debug/trace/run/answer jobs and multiplexes
them over one shared test-report store and a fixed pool of workers,
staying correct and responsive when overloaded, when jobs misbehave,
and when workers die. The invariant everything else hangs off:

    **every admitted job receives exactly one terminal response** —
    ``completed`` / ``degraded`` / ``shed`` / ``timed_out`` /
    ``failed`` — never silence.

Robustness mechanisms, in the order a job meets them:

1. **admission control** — a full queue sheds ``overloaded`` (the
   queue is bounded; the service never grows without limit), a tenant
   over its token-bucket rate sheds ``rate_limited``, a tenant whose
   jobs keep crashing workers sheds ``circuit_open``, a draining
   service sheds ``draining``. All before any queue slot is taken.
2. **queue-timeout semantics** — a job whose deadline expires while
   it waits is ``timed_out`` *before* it burns a worker; the deadline
   covers wait + execution, so a slow queue eats into execution budget,
   never past it.
3. **slot-isolated workers** — in process mode every concurrency slot
   owns its own single-process executor, so a worker death breaks
   exactly one slot and is attributed to exactly one job (the
   permanent form of :mod:`repro.resilience.pool`'s solo-phase
   disambiguation); the slot's process is rebuilt and the job retried.
4. **retry with jittered exponential backoff** — infra failures
   (worker death, injected ``serve.worker`` faults, ``OSError``) are
   retried up to ``retries`` times via the shared
   :class:`~repro.resilience.backoff.Backoff`, then ``failed`` with
   reason ``infra_error``. Program errors are never retried — they are
   the job's own fault and deterministic.
5. **graceful degradation** — when queue depth crosses the
   ``pressure_highwater`` fraction, trace/debug jobs that did not pin
   ``degrade`` are served with ``degrade=True``: a partial result with
   status ``degraded`` instead of a failure or an ever-longer queue.
6. **drain** — :meth:`drain` finishes every in-flight job, sheds new
   ones as ``draining``, and resolves when the service is idle; no job
   is abandoned.

Queue depth, wait/serve latency histograms, and shed/timeout/retry/
breaker counters land in :mod:`repro.obs` under ``serve.*`` (see
``docs/OBSERVABILITY.md``); the service also keeps its own
:class:`ServeStats` so accounting works with observability off.
"""

from __future__ import annotations

import asyncio
import time
from concurrent.futures import ProcessPoolExecutor, ThreadPoolExecutor
from concurrent.futures.process import BrokenProcessPool
from dataclasses import dataclass, field
from typing import Any, Callable

from repro import obs
from repro.resilience import faults
from repro.resilience.backoff import Backoff
from repro.resilience.errors import FaultInjected
from repro.serve.admission import AdmissionController
from repro.serve.protocol import (
    CONTROL_OPS,
    JobRequest,
    JobResponse,
    ProtocolError,
    SHED_REASONS,
    parse_request,
)
from repro.serve import worker as worker_mod


@dataclass
class ServeConfig:
    """Service tuning. Defaults favour a small, honest service: a
    bounded queue, short deadlines, and crash-isolated process slots."""

    workers: int = 2
    #: "process" (slot-isolated child processes; crash-tolerant) or
    #: "thread" (threads of this process; faster start, no isolation)
    executor: str = "process"
    max_queue: int = 64
    #: cap on time spent waiting for a slot (the job deadline also caps it)
    queue_timeout_s: float | None = 30.0
    #: deadline for jobs that do not bring one (None = unbounded)
    default_deadline_s: float | None = 30.0
    #: per-tenant token-bucket rate (tokens/s; None = no rate limiting)
    rate: float | None = None
    burst: float = 10.0
    breaker_threshold: int = 3
    breaker_cooldown_s: float = 30.0
    retries: int = 2
    backoff_base_s: float = 0.05
    backoff_max_s: float = 1.0
    #: queue fraction beyond which degraded service kicks in
    pressure_highwater: float = 0.75
    #: extra seconds past a job's deadline before a worker counts as stuck
    stuck_grace_s: float = 5.0
    step_limit: int = 2_000_000
    #: shared test-report store directory (``answer`` / ``use_testdb`` jobs)
    testdb: str | None = None
    spec_texts: tuple[str, ...] = ()


@dataclass
class ServeStats:
    """Terminal-response accounting, independent of :mod:`repro.obs`.
    ``submitted == completed + degraded + shed + timed_out + failed``
    holds whenever the service is idle — the zero-lost-jobs check."""

    submitted: int = 0
    completed: int = 0
    degraded: int = 0
    shed: int = 0
    timed_out: int = 0
    failed: int = 0
    retries: int = 0
    breaker_opens: int = 0
    pressure_degrades: int = 0
    cancelled: int = 0
    shed_reasons: dict[str, int] = field(default_factory=dict)

    def terminal(self) -> int:
        return (
            self.completed + self.degraded + self.shed
            + self.timed_out + self.failed
        )

    def as_dict(self) -> dict:
        return {
            "submitted": self.submitted,
            "completed": self.completed,
            "degraded": self.degraded,
            "shed": self.shed,
            "timed_out": self.timed_out,
            "failed": self.failed,
            "retries": self.retries,
            "breaker_opens": self.breaker_opens,
            "pressure_degrades": self.pressure_degrades,
            "cancelled": self.cancelled,
            "shed_reasons": dict(self.shed_reasons),
        }


class _InfraFailure(Exception):
    """A retryable infrastructure failure; ``crash`` marks worker death."""

    def __init__(self, message: str, crash: bool):
        super().__init__(message)
        self.crash = crash


@dataclass
class _Slot:
    """One concurrency slot; in process mode it owns its executor."""

    index: int
    executor: Any
    owned: bool  # True = single-process executor private to this slot


class DebugService:
    """See the module docstring. Construct, :meth:`start` inside a
    running event loop, :meth:`submit` jobs, :meth:`drain`, :meth:`close`."""

    def __init__(
        self,
        config: ServeConfig | None = None,
        clock: Callable[[], float] | None = None,
    ):
        self.config = config or ServeConfig()
        if self.config.executor not in ("process", "thread"):
            raise ValueError(f"unknown executor {self.config.executor!r}")
        if self.config.workers < 1:
            raise ValueError("workers must be >= 1")
        self.clock = clock if clock is not None else time.monotonic
        self.stats = ServeStats()
        self.admission = AdmissionController(
            rate=self.config.rate,
            burst=self.config.burst,
            breaker_threshold=self.config.breaker_threshold,
            breaker_cooldown_s=self.config.breaker_cooldown_s,
            clock=self.clock,
        )
        self.backoff = Backoff(
            base_s=self.config.backoff_base_s,
            max_s=self.config.backoff_max_s,
        )
        self._slots: asyncio.Queue[_Slot] | None = None
        self._thread_pool: ThreadPoolExecutor | None = None
        self._queued = 0
        self._active = 0
        self._draining = False
        self._idle: asyncio.Event | None = None
        self._started = False

    # ------------------------------------------------------------------
    # lifecycle

    async def start(self) -> "DebugService":
        """Build the worker slots (must run inside the event loop)."""
        if self._started:
            return self
        self._slots = asyncio.Queue()
        self._idle = asyncio.Event()
        self._idle.set()
        if self.config.executor == "thread":
            self._thread_pool = ThreadPoolExecutor(
                max_workers=self.config.workers,
                thread_name_prefix="serve-worker",
            )
            if self.config.testdb is not None:
                worker_mod.set_answer_service(
                    worker_mod.build_answer_service(
                        self.config.testdb, self.config.spec_texts
                    )
                )
            for index in range(self.config.workers):
                self._slots.put_nowait(
                    _Slot(index=index, executor=self._thread_pool, owned=False)
                )
        else:
            for index in range(self.config.workers):
                self._slots.put_nowait(
                    _Slot(index=index, executor=self._make_process(), owned=True)
                )
        self._started = True
        return self

    def _make_process(self) -> ProcessPoolExecutor:
        return ProcessPoolExecutor(
            max_workers=1,
            initializer=worker_mod.init_worker,
            initargs=(
                self.config.testdb, self.config.spec_texts, faults.active(),
            ),
        )

    def _rebuild_slot(self, slot: _Slot, kill: bool = False) -> None:
        """Replace a broken/stuck slot executor with a fresh process."""
        if not slot.owned:
            return  # thread slots have nothing to rebuild
        if kill:
            processes = getattr(slot.executor, "_processes", None) or {}
            for process in list(processes.values()):
                try:
                    process.terminate()
                except Exception:
                    pass
        slot.executor.shutdown(wait=False, cancel_futures=True)
        slot.executor = self._make_process()

    async def drain(self, timeout_s: float | None = None) -> dict:
        """Stop admitting, finish every in-flight job, report. Raises
        ``asyncio.TimeoutError`` if in-flight work outlives ``timeout_s``
        (no job is abandoned either way — it keeps running)."""
        self._draining = True
        obs.add("serve.drains")
        assert self._idle is not None, "service not started"
        if timeout_s is None:
            await self._idle.wait()
        else:
            await asyncio.wait_for(self._idle.wait(), timeout_s)
        return {"drained": True, "stats": self.stats.as_dict()}

    async def close(self) -> None:
        """Drain, then release the worker slots."""
        await self.drain()
        if self._thread_pool is not None:
            self._thread_pool.shutdown(wait=False, cancel_futures=True)
        if self._slots is not None:
            while not self._slots.empty():
                slot = self._slots.get_nowait()
                if slot.owned:
                    slot.executor.shutdown(wait=False, cancel_futures=True)
        self._started = False

    @property
    def draining(self) -> bool:
        return self._draining

    @property
    def queue_depth(self) -> int:
        return self._queued

    @property
    def in_flight(self) -> int:
        return self._active

    # ------------------------------------------------------------------
    # the job lifecycle

    async def submit(self, request: JobRequest | dict | str | bytes) -> JobResponse:
        """Take one job from parse to its single terminal response."""
        assert self._started, "DebugService.start() must run first"
        arrival = self.clock()
        self.stats.submitted += 1
        obs.add("serve.submitted")
        if not isinstance(request, JobRequest):
            try:
                request = parse_request(request)
            except ProtocolError as error:
                bad_id = ""
                if isinstance(request, dict):
                    bad_id = str(request.get("id", ""))
                return self._terminal(
                    JobRequest(id=bad_id, op="run", source="-"),
                    arrival, "failed", reason="bad_request", error=str(error),
                )
        if request.op == "ping":  # liveness probe: skips queue and pool
            return self._terminal(
                request, arrival, "completed", result={"pong": True}
            )
        if request.op in CONTROL_OPS:
            return self._terminal(
                request, arrival, "failed", reason="bad_request",
                error=f"control op {request.op!r} is handled by the server",
            )
        # the admission fault point: an accept-path failure is still a
        # terminal response, never a dropped line
        try:
            faults.trip("serve.accept", key=f"{request.tenant}:{request.id}")
        except (FaultInjected, OSError) as error:
            return self._terminal(
                request, arrival, "failed", reason="accept_fault",
                error=str(error),
            )
        if self._draining:
            return self._shed(request, arrival, "draining")
        if self._queued >= self.config.max_queue:
            return self._shed(request, arrival, "overloaded")
        reason = self.admission.check(request.tenant)
        if reason is not None:
            return self._shed(request, arrival, reason)
        # admitted: from here on the job is tracked until its terminal
        # response, and drain() waits for it
        self._active += 1
        obs.set_gauge("serve.inflight", self._active)
        assert self._idle is not None
        self._idle.clear()
        try:
            return await self._serve_admitted(request, arrival)
        except asyncio.CancelledError:
            self.stats.cancelled += 1
            obs.add("serve.cancelled")
            raise
        finally:
            self._active -= 1
            obs.set_gauge("serve.inflight", self._active)
            if self._active == 0:
                self._idle.set()

    async def _serve_admitted(
        self, request: JobRequest, arrival: float
    ) -> JobResponse:
        deadline_s = (
            request.deadline_s
            if request.deadline_s is not None
            else self.config.default_deadline_s
        )
        deadline_at = arrival + deadline_s if deadline_s is not None else None

        # ---- queue: wait for a slot, but never past the deadline
        self._queued += 1
        obs.set_gauge("serve.queue_depth", self._queued)
        obs.set_max_gauge("serve.queue_peak", self._queued)
        assert self._slots is not None
        try:
            wait_limit = self.config.queue_timeout_s
            if deadline_at is not None:
                remaining = deadline_at - self.clock()
                wait_limit = (
                    remaining if wait_limit is None else min(wait_limit, remaining)
                )
            if wait_limit is not None and wait_limit <= 0:
                return self._terminal(
                    request, arrival, "timed_out", reason="queue",
                    error="deadline expired before a worker was free",
                )
            if wait_limit is None:
                slot = await self._slots.get()
            else:
                slot = await asyncio.wait_for(self._slots.get(), wait_limit)
        except asyncio.TimeoutError:
            return self._terminal(
                request, arrival, "timed_out", reason="queue",
                error="job waited past its deadline; dropped before "
                "burning a worker",
            )
        finally:
            self._queued -= 1
            obs.set_gauge("serve.queue_depth", self._queued)

        wait_s = self.clock() - arrival
        obs.observe("serve.wait_s", wait_s, unit="s")

        # ---- pressure: degrade instead of failing when the queue is hot
        degrade = request.degrade
        if degrade is None:
            pressured = self._queued >= max(
                1, int(self.config.pressure_highwater * self.config.max_queue)
            )
            degrade = pressured and request.op in ("trace", "debug")
            if degrade:
                self.stats.pressure_degrades += 1
                obs.add("serve.pressure_degrades")

        breaker = self.admission.breaker(request.tenant)
        attempt = 0
        try:
            while True:
                remaining = (
                    deadline_at - self.clock() if deadline_at is not None else None
                )
                if remaining is not None and remaining <= 0:
                    return self._terminal(
                        request, arrival, "timed_out", reason="deadline",
                        wait_s=wait_s, retries=attempt,
                        error="deadline expired during retries"
                        if attempt else "deadline expired",
                    )
                payload = {
                    "id": request.id,
                    "op": request.op,
                    "source": request.source,
                    "inputs": request.inputs,
                    "reference": request.reference,
                    "strategy": request.strategy,
                    "degrade": degrade,
                    "use_testdb": request.use_testdb,
                    "queries": request.queries,
                    "deadline_s": remaining,
                    "step_limit": self.config.step_limit,
                }
                try:
                    result = await self._run_on_slot(
                        slot, payload, attempt, remaining
                    )
                    break
                except _StuckWorker:
                    return self._terminal(
                        request, arrival, "timed_out", reason="stuck_worker",
                        wait_s=wait_s, retries=attempt,
                        error="worker exceeded the deadline and its grace "
                        "period; slot rebuilt",
                    )
                except asyncio.CancelledError:
                    raise
                except _InfraFailure as failure:
                    if failure.crash and breaker.record_crash():
                        self.stats.breaker_opens += 1
                        obs.add("serve.breaker_opens")
                        obs.emit(
                            "serve-breaker", tenant=request.tenant,
                            state="open",
                        )
                    attempt += 1
                    if attempt > self.config.retries:
                        return self._terminal(
                            request, arrival, "failed", reason="infra_error",
                            wait_s=wait_s, retries=attempt - 1,
                            error=str(failure),
                        )
                    self.stats.retries += 1
                    obs.add("serve.retries")
                    delay = self.backoff.delay(attempt - 1)
                    if deadline_at is not None:
                        delay = min(delay, max(0.0, deadline_at - self.clock()))
                    await asyncio.sleep(delay)
                except Exception as error:  # a service bug: terminal, no retry
                    return self._terminal(
                        request, arrival, "failed", reason="internal_error",
                        wait_s=wait_s, retries=attempt,
                        error=f"{type(error).__name__}: {error}",
                    )
            breaker.record_ok()
        finally:
            self._slots.put_nowait(slot)
            breaker.release_probe()  # no-op unless a probe went verdict-less

        # ---- map the worker's tagged result onto a terminal response
        if "timed_out" in result:
            return self._terminal(
                request, arrival, "timed_out", reason="budget",
                wait_s=wait_s, retries=attempt, error=result["timed_out"],
            )
        if "program_error" in result:
            return self._terminal(
                request, arrival, "failed", reason="program_error",
                wait_s=wait_s, retries=attempt, error=result["program_error"],
            )
        if "invalid" in result:
            # The request itself is unservable (e.g. a strategy this
            # build does not know): permanently failed, never retried,
            # and the breaker stays untouched — nothing crashed.
            return self._terminal(
                request, arrival, "failed", reason="invalid_request",
                wait_s=wait_s, retries=attempt, error=result["invalid"],
            )
        degraded = bool(result.get("degraded"))
        body = dict(result["ok"])
        if degraded:
            body["degraded_reason"] = result.get("degraded_reason")
        return self._terminal(
            request, arrival,
            "degraded" if degraded else "completed",
            reason="pressure" if degraded and request.degrade is None else None,
            result=body, wait_s=wait_s, retries=attempt,
        )

    async def _run_on_slot(
        self,
        slot: _Slot,
        payload: dict,
        attempt: int,
        remaining: float | None,
    ) -> dict:
        """One execution attempt on the job's slot. Raises
        :class:`_InfraFailure` for retryable failures, :class:`_StuckWorker`
        when the worker outlives deadline + grace (slot is rebuilt)."""
        loop = asyncio.get_running_loop()
        backstop = (
            None if remaining is None else remaining + self.config.stuck_grace_s
        )
        try:
            future = loop.run_in_executor(
                slot.executor, worker_mod.execute_job, payload, attempt
            )
            return await asyncio.wait_for(future, timeout=backstop)
        except BrokenProcessPool as error:
            self._rebuild_slot(slot)
            raise _InfraFailure(
                f"worker process died: {error or 'BrokenProcessPool'}",
                crash=True,
            ) from error
        except asyncio.TimeoutError:
            self._rebuild_slot(slot, kill=True)
            raise _StuckWorker() from None
        except (FaultInjected, OSError) as error:
            raise _InfraFailure(
                f"{type(error).__name__}: {error}", crash=False
            ) from error

    # ------------------------------------------------------------------
    # terminal accounting

    def _shed(
        self, request: JobRequest, arrival: float, reason: str
    ) -> JobResponse:
        assert reason in SHED_REASONS, reason
        self.stats.shed_reasons[reason] = (
            self.stats.shed_reasons.get(reason, 0) + 1
        )
        obs.add(f"serve.shed.{reason}")
        return self._terminal(request, arrival, "shed", reason=reason)

    def _terminal(
        self,
        request: JobRequest,
        arrival: float,
        status: str,
        reason: str | None = None,
        result: dict | None = None,
        error: str | None = None,
        wait_s: float | None = None,
        retries: int = 0,
    ) -> JobResponse:
        now = self.clock()
        wait = wait_s if wait_s is not None else now - arrival
        serve_s = max(0.0, (now - arrival) - wait)
        setattr(self.stats, status, getattr(self.stats, status) + 1)
        obs.add(f"serve.{status}")
        if status in ("completed", "degraded"):
            obs.observe("serve.serve_s", serve_s, unit="s")
        if obs.enabled():
            obs.emit(
                "serve-job",
                id=request.id,
                op=request.op,
                tenant=request.tenant,
                status=status,
                reason=reason,
                wait_s=round(wait, 6),
                serve_s=round(serve_s, 6),
                retries=retries,
            )
        return JobResponse(
            id=request.id,
            status=status,
            reason=reason,
            result=result,
            error=error,
            tenant=request.tenant,
            wait_s=wait,
            serve_s=serve_s,
            retries=retries,
        )


class _StuckWorker(Exception):
    """The worker outlived deadline + grace; its slot was rebuilt."""
