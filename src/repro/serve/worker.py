"""Worker-side job execution for the debug service.

Runs inside a service worker — a slot-owned child process (the default,
crash-isolated) or a thread of the parent (``executor="thread"``). The
contract with :mod:`repro.serve.service` mirrors the one
:mod:`repro.resilience.pool` workers honour:

* **user-level failures return, infra failures raise.** A program
  error, a blown budget, or a degraded salvage are *results* — the job
  is done, no retry will change it — so they come back as tagged
  dicts. An injected ``serve.worker`` fault, an ``OSError``, or a
  process death are *infrastructure* — the parent retries them with
  backoff and charges the tenant's circuit breaker.
* **the fault point fires first.** ``serve.worker`` is keyed
  ``<job id>@<attempt>`` exactly like the sweep pool's ``worker``
  point, so a plan can kill attempt 0 and let the retry run clean.

Per-process state (the shared test-report store handle, parsed specs)
is built once by :func:`init_worker`; thread mode installs a shared
:class:`~repro.store.BatchAnswerService` directly via
:func:`set_answer_service` because the parent already owns one.
"""

from __future__ import annotations

from typing import Any, Mapping, Sequence

#: per-process answer service over the shared store (None = no testdb)
_ANSWER_SERVICE = None


def set_answer_service(service) -> None:
    """Install a (thread-safe) shared answer service — thread mode."""
    global _ANSWER_SERVICE
    _ANSWER_SERVICE = service


def init_worker(
    testdb: str | None,
    spec_texts: Sequence[str] = (),
    fault_plan=None,
) -> None:
    """Process-pool initializer: install the parent's fault plan and
    open this worker's view of the shared store. Segments are immutable
    once published, so read-only handles in many processes are safe."""
    from repro.resilience import faults

    faults.install(fault_plan)
    if testdb is not None:
        set_answer_service(build_answer_service(testdb, spec_texts))


def build_answer_service(testdb: str, spec_texts: Sequence[str] = ()):
    """A :class:`~repro.store.BatchAnswerService` over the store at
    ``testdb`` with the given T-GEN specs and the registered automatic
    frame selectors."""
    import repro.workloads.arrsum_spec  # noqa: F401  (registers its selector)
    from repro.store import BatchAnswerService, ShardedReportStore
    from repro.tgen import FRAME_SELECTORS
    from repro.tgen.spec_parser import parse_spec

    return BatchAnswerService(
        ShardedReportStore(testdb),
        specs=[parse_spec(text) for text in spec_texts],
        selectors=dict(FRAME_SELECTORS),
    )


def _budget(deadline_s: float | None):
    if deadline_s is None:
        return None
    from repro.resilience import Budget

    return Budget.started(deadline_s=deadline_s)


def execute_job(payload: Mapping[str, Any], attempt: int = 0) -> dict:
    """Execute one job payload; returns a tagged result dict.

    Result shapes: ``{"ok": ..., "degraded": ..., ...}`` on success,
    ``{"timed_out": <msg>}`` on a blown budget without salvage,
    ``{"program_error": <msg>}`` when the *program* is at fault.
    Anything raised out of here is infrastructure and will be retried.
    """
    from repro.pascal.errors import PascalError
    from repro.resilience import BudgetExceeded, faults

    faults.trip("serve.worker", key=f"{payload.get('id', '')}@{attempt}")
    op = payload["op"]
    try:
        if op == "run":
            return _run(payload)
        if op == "trace":
            return _trace(payload)
        if op == "debug":
            return _debug(payload)
        if op == "answer":
            return _answer(payload)
    except BudgetExceeded as exc:  # must precede PascalError: it is both
        return {"timed_out": str(exc)}
    except PascalError as exc:
        return {"program_error": f"{type(exc).__name__}: {exc}"}
    raise ValueError(f"unknown job op {op!r}")  # guarded by the protocol


def _run(payload: Mapping[str, Any]) -> dict:
    from repro.pascal import run_source

    result = run_source(
        payload["source"],
        inputs=list(payload.get("inputs") or []),
        step_limit=payload.get("step_limit", 2_000_000),
        budget=_budget(payload.get("deadline_s")),
    )
    return {"ok": {"output": result.output, "steps": result.steps}}


def _trace(payload: Mapping[str, Any]) -> dict:
    from repro.tracing import trace_source

    trace = trace_source(
        payload["source"],
        inputs=list(payload.get("inputs") or []),
        step_limit=payload.get("step_limit", 2_000_000),
        budget=_budget(payload.get("deadline_s")),
        degrade=bool(payload.get("degrade")),
    )
    return {
        "ok": {
            "nodes": trace.tree.size(),
            "occurrences": len(trace.dependence_graph),
            "backend": trace.backend,
        },
        "degraded": trace.degraded,
        "degraded_reason": trace.degraded_reason,
    }


def _debug(payload: Mapping[str, Any]) -> dict:
    from repro.core import GadtSystem, ReferenceOracle
    from repro.core.oracle import Oracle

    inputs = list(payload.get("inputs") or [])
    system = GadtSystem.from_source(
        payload["source"],
        program_inputs=inputs,
        step_limit=payload.get("step_limit", 2_000_000),
        budget=_budget(payload.get("deadline_s")),
        degrade=bool(payload.get("degrade")),
    )
    if payload.get("reference"):
        oracle: Oracle = ReferenceOracle.from_source(
            payload["reference"], program_inputs=inputs
        )
    else:
        # Store-answered session: a query the store cannot answer ends
        # the session (there is no human on the other end of a service).
        oracle = _GiveUpOracle()
    test_lookup = None
    if payload.get("use_testdb") and _ANSWER_SERVICE is not None:
        test_lookup = _ANSWER_SERVICE.session_lookup()
    try:
        debugger = system.debugger(
            oracle,
            strategy=payload.get("strategy", "top-down"),
            test_lookup=test_lookup,
        )
    except ValueError as exc:
        # An unknown strategy is a fault of the *request*, not of the
        # infrastructure: report it as a permanent result so the parent
        # never burns retries or breaker credit on it. The protocol
        # rejects these up front; this guards direct payload callers.
        return {"invalid": str(exc)}
    try:
        result = debugger.debug()
    except _OracleExhausted as exc:
        return {
            "ok": {
                "localized": False,
                "bug_unit": None,
                "stopped": "oracle_exhausted",
                "unanswerable_unit": exc.unit,
            },
            "degraded": system.trace.degraded,
            "degraded_reason": system.trace.degraded_reason,
        }
    return {
        "ok": {
            "localized": result.localized,
            "bug_unit": result.bug_unit,
            "user_questions": result.user_questions,
            "auto_answers": result.auto_answers,
            "slices": result.slices,
        },
        "degraded": result.partial,
        "degraded_reason": result.degraded_reason,
    }


def _answer(payload: Mapping[str, Any]) -> dict:
    if _ANSWER_SERVICE is None:
        return {"program_error": "service has no test-report store configured"}
    from repro.store import BatchQuery

    queries = [
        BatchQuery(unit=q["unit"], inputs=q.get("inputs") or {})
        for q in payload["queries"]
    ]
    budget = _budget(payload.get("deadline_s"))
    outcomes = _ANSWER_SERVICE.answer_batch(queries, budget=budget)
    return {
        "ok": {
            "answers": [
                {
                    "unit": query.unit,
                    "status": outcome.status.name.lower(),
                    "answers_yes": outcome.answers_yes,
                }
                for query, outcome in zip(queries, outcomes)
            ]
        }
    }


class _OracleExhausted(Exception):
    """A store-answered session hit a question only a human could answer."""

    def __init__(self, unit: str):
        super().__init__(unit)
        self.unit = unit


class _GiveUpOracle:
    """Oracle for oracle-less service sessions: any question that falls
    all the way through the answer chain ends the session cleanly."""

    def answer(self, query):
        raise _OracleExhausted(query.unit_name)
