"""Program slicing (paper §4, §7): static and dynamic, plus tree pruning.

* :mod:`repro.slicing.static_slicer` — Weiser-style interprocedural
  static slicing on PDGs; slices are extractable as runnable programs
  (the paper's Figure 2).
* :mod:`repro.slicing.dynamic_slicer` — interprocedural dynamic slicing
  over the traced dependence graph (Kamkar's method, paper §7).
* :mod:`repro.slicing.tree_pruning` — projecting a dynamic slice onto the
  execution tree, yielding the pruned trees of Figures 8–9 on which the
  algorithmic debugger continues its search.
"""

from repro.slicing.criteria import DynamicCriterion, StaticCriterion
from repro.slicing.dynamic_slicer import DynamicSlice, dynamic_slice
from repro.slicing.forward_slicer import (
    ForwardCriterion,
    ForwardSlice,
    forward_static_slice,
)
from repro.slicing.static_slicer import StaticSlice, static_slice
from repro.slicing.tree_pruning import TreeView, prune_tree

__all__ = [
    "DynamicCriterion",
    "DynamicSlice",
    "ForwardCriterion",
    "ForwardSlice",
    "StaticCriterion",
    "StaticSlice",
    "TreeView",
    "dynamic_slice",
    "forward_static_slice",
    "prune_tree",
    "static_slice",
]
