"""Slicing criteria.

A *static* criterion is the classic (program point, variable set) pair of
Weiser's definition: "a program slice at a program point p on a variable
v is all statements and predicates of the program that might affect the
value of v at point p".

A *dynamic* criterion arises during debugging: the user points at a
specific *output of a specific unit activation* — "no, error on first
output variable" (paper §8) — identifying concrete occurrences in one
traced execution.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.tracing.execution_tree import ExecNode


@dataclass(frozen=True)
class StaticCriterion:
    """Slice ``variables`` at a program point.

    ``routine`` names the routine containing the point (empty string or
    the program name selects the main body). ``stmt_id`` is the AST node
    id of the statement at the point; ``at_exit=True`` places the point
    at the routine's exit instead (the "last line" case of Figure 2).
    """

    routine: str
    variables: frozenset[str]
    stmt_id: int | None = None
    at_exit: bool = True

    @classmethod
    def at_routine_exit(cls, routine: str, *variables: str) -> "StaticCriterion":
        return cls(routine=routine, variables=frozenset(variables), at_exit=True)

    @classmethod
    def at_statement(
        cls, routine: str, stmt_id: int, *variables: str
    ) -> "StaticCriterion":
        return cls(
            routine=routine,
            variables=frozenset(variables),
            stmt_id=stmt_id,
            at_exit=False,
        )


@dataclass(frozen=True)
class DynamicCriterion:
    """An erroneous output value of one unit activation.

    Exactly what the user supplies in the paper's dialogues: the unit
    activation (an execution-tree node) and which of its outputs is
    wrong — by name or by 1-based position.
    """

    node: ExecNode
    variable: str

    @classmethod
    def output_position(cls, node: ExecNode, position: int) -> "DynamicCriterion":
        binding = node.output_position(position)
        return cls(node=node, variable=binding.name)

    def describe(self) -> str:
        return f"variable '{self.variable}' at exit of {self.node.unit_name}"
