"""Interprocedural dynamic slicing (paper §7, [Kamkar-91b]).

Given a traced execution and a dynamic criterion (a wrong output value of
one unit activation), the slice is the backward closure over the dynamic
dependence graph starting from the occurrences that produced that value.

The closure is restricted to the criterion activation's subtree: the
debugger already knows the activation's *inputs* (it asked about them, or
their correctness is implied by the search so far), so computation above
the criterion node is never part of the returned slice — exactly why the
paper's Figure 8 is rooted at ``computs`` and contains only its left
subtree.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro import obs
from repro.slicing.criteria import DynamicCriterion
from repro.tracing.execution_tree import ExecNode, ExecutionTree
from repro.tracing.tracer import TraceResult


@dataclass
class DynamicSlice:
    """Result of one dynamic slice."""

    criterion: DynamicCriterion
    #: occurrence ids in the slice (restricted to the criterion subtree)
    occurrences: set[int] = field(default_factory=set)
    #: execution-tree node ids owning at least one slice occurrence
    relevant_node_ids: set[int] = field(default_factory=set)

    def is_relevant(self, node: ExecNode) -> bool:
        return node.node_id in self.relevant_node_ids

    def __len__(self) -> int:
        return len(self.occurrences)


def dynamic_slice(
    trace: TraceResult,
    criterion: DynamicCriterion,
    restrict_to_subtree: bool = True,
) -> DynamicSlice:
    """Compute the dynamic slice for ``criterion`` over ``trace``.

    ``restrict_to_subtree=False`` follows dependences past the criterion
    activation's inputs into the rest of the execution (a whole-execution
    slice, useful for analysis rather than tree pruning).
    """
    with obs.span(
        "slice.dynamic", unit=criterion.node.unit_name, variable=criterion.variable
    ):
        return _dynamic_slice(trace, criterion, restrict_to_subtree)


def _dynamic_slice(
    trace: TraceResult,
    criterion: DynamicCriterion,
    restrict_to_subtree: bool,
) -> DynamicSlice:
    tree = trace.tree
    node = criterion.node
    seeds = tree.output_writers.get((node.node_id, criterion.variable))
    if seeds is None:
        raise KeyError(
            f"unit {node.unit_name!r} (node {node.node_id}) has no recorded "
            f"output {criterion.variable!r}"
        )

    subtree_ids: set[int] | None = None
    if restrict_to_subtree:
        subtree_ids = {descendant.node_id for descendant in node.walk()}

    ddg = trace.dependence_graph

    def in_scope(occ_id: int) -> bool:
        if subtree_ids is None:
            return True
        occ = ddg.occurrences.get(occ_id)
        return occ is not None and occ.exec_node_id in subtree_ids

    seeds_in_scope = {occ for occ in seeds if in_scope(occ)}
    visited = set(seeds_in_scope)
    stack = list(seeds_in_scope)
    while stack:
        occ = stack.pop()
        for dep in ddg.deps_of(occ):
            if dep not in visited and in_scope(dep):
                visited.add(dep)
                stack.append(dep)

    relevant_nodes = {
        ddg.occurrences[occ].exec_node_id
        for occ in visited
        if occ in ddg.occurrences
    }
    if obs.enabled():
        obs.add("slice.computed")
        obs.observe("slice.occurrences", len(visited))
        obs.observe("slice.relevant_nodes", len(relevant_nodes))
    return DynamicSlice(
        criterion=criterion,
        occurrences=visited,
        relevant_node_ids=relevant_nodes,
    )
