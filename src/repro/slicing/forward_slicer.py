"""Forward static slicing (extension; cf. [Kamkar-91a]'s overview).

A *forward* slice answers the dual question to Weiser's: which
statements may be *affected by* the value computed at a program point?
Useful for impact analysis ("if I fix this assignment, what else
changes?") after GADT has localized a bug.

This implementation is intraprocedural over the same PDGs the backward
slicer uses: the slice is the forward closure over data-dependence edges
plus, for every predicate in the slice, everything control-dependent on
it. (Interprocedural forward slicing would follow values into callees;
the paper's method does not require it, so it is out of scope.)
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.analysis.cfg import CFG, CFGNode, NodeKind, build_cfg
from repro.analysis.dependence import ProgramDependenceGraph, build_pdg
from repro.analysis.sideeffects import SideEffects, analyze_side_effects
from repro.pascal import ast_nodes as ast
from repro.pascal.semantics import AnalyzedProgram
from repro.pascal.symbols import Symbol, SymbolKind


@dataclass(frozen=True)
class ForwardCriterion:
    """The definitions of ``variables`` at statement ``stmt_id`` in
    ``routine`` (or all their definitions anywhere in the routine when
    ``stmt_id`` is None)."""

    routine: str
    variables: frozenset[str]
    stmt_id: int | None = None

    @classmethod
    def at_statement(
        cls, routine: str, stmt_id: int, *variables: str
    ) -> "ForwardCriterion":
        return cls(routine=routine, variables=frozenset(variables), stmt_id=stmt_id)

    @classmethod
    def all_definitions(cls, routine: str, *variables: str) -> "ForwardCriterion":
        return cls(routine=routine, variables=frozenset(variables), stmt_id=None)


@dataclass
class ForwardSlice:
    """Nodes potentially affected by the criterion definitions."""

    criterion: ForwardCriterion
    nodes: set[CFGNode] = field(default_factory=set)
    stmt_ids: set[int] = field(default_factory=set)

    def contains_stmt(self, stmt: ast.Stmt) -> bool:
        return stmt.node_id in self.stmt_ids

    def __len__(self) -> int:
        return len(self.stmt_ids)


def forward_static_slice(
    analysis: AnalyzedProgram,
    criterion: ForwardCriterion,
    side_effects: SideEffects | None = None,
) -> ForwardSlice:
    """Compute the intraprocedural forward slice for ``criterion``."""
    effects = (
        side_effects if side_effects is not None else analyze_side_effects(analysis)
    )
    info = analysis.routine_named(criterion.routine)
    cfg = build_cfg(info, analysis)
    pdg = build_pdg(cfg, effects)
    symbols = _resolve(info, criterion.variables)

    forward_data, forward_control = _invert(pdg)

    seeds: set[CFGNode] = set()
    for node in cfg.nodes:
        if node.kind in (NodeKind.ENTRY, NodeKind.EXIT):
            continue
        if criterion.stmt_id is not None:
            if node.stmt is None or node.stmt.node_id != criterion.stmt_id:
                continue
        from repro.analysis.dataflow import node_def_use

        defs = node_def_use(cfg, node, effects).defs
        if defs & symbols:
            seeds.add(node)

    visited: set[CFGNode] = set(seeds)
    stack = list(seeds)
    while stack:
        node = stack.pop()
        for successor in forward_data.get(node, ()):
            if successor not in visited:
                visited.add(successor)
                stack.append(successor)
        for controlled in forward_control.get(node, ()):
            if controlled not in visited:
                visited.add(controlled)
                stack.append(controlled)

    result = ForwardSlice(criterion=criterion, nodes=visited)
    result.stmt_ids = {
        node.stmt.node_id
        for node in visited
        if node.stmt is not None
    }
    return result


def _resolve(info, names: frozenset[str]) -> set[Symbol]:
    symbols: set[Symbol] = set()
    for name in names:
        symbol = info.scope.lookup(name)
        if symbol is None or symbol.kind not in (
            SymbolKind.VARIABLE,
            SymbolKind.PARAMETER,
            SymbolKind.RESULT,
        ):
            raise KeyError(f"no variable {name!r} visible in {info.name!r}")
        symbols.add(symbol)
    return symbols


def _invert(
    pdg: ProgramDependenceGraph,
) -> tuple[dict[CFGNode, set[CFGNode]], dict[CFGNode, set[CFGNode]]]:
    forward_data: dict[CFGNode, set[CFGNode]] = {}
    forward_control: dict[CFGNode, set[CFGNode]] = {}
    for node, deps in pdg.data_deps.items():
        for _symbol, def_node in deps:
            forward_data.setdefault(def_node, set()).add(node)
    for node, preds in pdg.control_deps.items():
        for pred in preds:
            forward_control.setdefault(pred, set()).add(node)
    return forward_data, forward_control
