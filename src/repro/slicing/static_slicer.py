"""Weiser-style static slicing, intra- and interprocedural (paper §4).

The slicer runs a need-driven backward closure over per-routine program
dependence graphs. Interprocedural propagation follows Weiser's original
scheme (context-insensitive):

* *down*: a needed call site makes the callee's relevant outputs a new
  criterion at the callee's exit (only the outputs that are actually
  needed — the formals bound to needed actuals and needed globals);
* *up*: when a routine's entry is needed for some parameters or globals,
  every call site of that routine adds a criterion on the argument
  variables just before the call.

A computed slice can be *extracted* as a runnable program (the paper's
"a slice is an independent program" — Figure 2(b)): statements outside
the slice are dropped, pruned branches become empty statements, unused
routines and variable declarations disappear.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.analysis.callgraph import CallGraph, build_call_graph
from repro.analysis.cfg import CFG, CFGNode, NodeKind, build_cfg
from repro.analysis.defuse import target_root
from repro.analysis.dependence import ProgramDependenceGraph, build_pdg
from repro.analysis.sideeffects import SideEffects, analyze_side_effects
from repro.pascal import ast_nodes as ast
from repro.pascal.semantics import AnalyzedProgram, RoutineInfo
from repro.pascal.symbols import Symbol, SymbolKind
from repro.slicing.criteria import StaticCriterion

#: special marker meaning "needed for control flow", not a data value
_CONTROL = object()


@dataclass
class StaticSlice:
    """The result of a static slice: which program points are included."""

    analysis: AnalyzedProgram
    criterion: StaticCriterion
    #: routine symbol -> included CFG nodes
    included_nodes: dict[Symbol, set[CFGNode]] = field(default_factory=dict)
    #: AST statement node ids covered by the slice
    included_stmt_ids: set[int] = field(default_factory=set)
    #: routines with at least one included node
    routines: set[Symbol] = field(default_factory=set)

    def contains_stmt(self, stmt: ast.Stmt) -> bool:
        return stmt.node_id in self.included_stmt_ids

    def statement_count(self) -> int:
        return len(self.included_stmt_ids)

    def extract_program(self) -> ast.Program:
        """Materialize the slice as an independent, runnable program."""
        return _SliceExtractor(self).extract()


class _RoutineSliceState:
    """Per-routine slicing state: PDG plus the need sets."""

    def __init__(self, info: RoutineInfo, pdg: ProgramDependenceGraph):
        self.info = info
        self.pdg = pdg
        self.cfg = pdg.cfg
        #: node -> set of symbols (or _CONTROL) the node is needed for
        self.needed: dict[CFGNode, set[object]] = {}
        #: criteria already processed, to guarantee termination
        self.seen_criteria: set[tuple[object, frozenset[Symbol]]] = set()


class StaticSlicer:
    def __init__(
        self,
        analysis: AnalyzedProgram,
        side_effects: SideEffects | None = None,
        call_graph: CallGraph | None = None,
    ):
        self.analysis = analysis
        self.call_graph = (
            call_graph if call_graph is not None else build_call_graph(analysis)
        )
        self.side_effects = (
            side_effects
            if side_effects is not None
            else analyze_side_effects(analysis, self.call_graph)
        )
        self._states: dict[Symbol, _RoutineSliceState] = {}
        #: (routine, point, frozenset of symbols) worklist
        self._worklist: list[tuple[Symbol, object, frozenset[Symbol]]] = []

    # ------------------------------------------------------------------

    def slice(self, criterion: StaticCriterion) -> StaticSlice:
        info = self.analysis.routine_named(criterion.routine)
        symbols = self._resolve_variables(info, criterion.variables)
        point: object = "exit" if criterion.at_exit else criterion.stmt_id
        self._worklist.append((info.symbol, point, frozenset(symbols)))

        while self._worklist:
            routine, point, variables = self._worklist.pop()
            self._process_criterion(routine, point, variables)

        result = StaticSlice(analysis=self.analysis, criterion=criterion)
        for symbol, state in self._states.items():
            included = {
                node
                for node in state.needed
                if node.kind not in (NodeKind.ENTRY, NodeKind.EXIT)
            }
            if not included and not state.needed:
                continue
            result.included_nodes[symbol] = included
            if included:
                result.routines.add(symbol)
            for node in included:
                if node.stmt is not None:
                    result.included_stmt_ids.add(node.stmt.node_id)
        return result

    # ------------------------------------------------------------------

    def _state(self, routine: Symbol) -> _RoutineSliceState:
        state = self._states.get(routine)
        if state is None:
            info = self.analysis.routines[routine]
            pdg = build_pdg(build_cfg(info, self.analysis), self.side_effects)
            state = _RoutineSliceState(info, pdg)
            self._states[routine] = state
        return state

    def _resolve_variables(
        self, info: RoutineInfo, names: frozenset[str]
    ) -> set[Symbol]:
        symbols: set[Symbol] = set()
        for name in names:
            symbol = info.scope.lookup(name)
            if symbol is None or symbol.kind not in (
                SymbolKind.VARIABLE,
                SymbolKind.PARAMETER,
                SymbolKind.RESULT,
            ):
                raise KeyError(
                    f"no variable {name!r} visible in routine {info.name!r}"
                )
            symbols.add(symbol)
        return symbols

    def _point_node(self, state: _RoutineSliceState, point: object) -> CFGNode:
        if point == "exit":
            return state.cfg.exit
        assert isinstance(point, int)
        node = state.cfg.node_of_stmt.get(point)
        if node is None:
            raise KeyError(f"no CFG node for statement id {point}")
        return node

    def _process_criterion(
        self, routine: Symbol, point: object, variables: frozenset[Symbol]
    ) -> None:
        state = self._state(routine)
        key = (point, variables)
        if key in state.seen_criteria:
            return
        state.seen_criteria.add(key)

        point_node = self._point_node(state, point)
        reaching = state.pdg.reaching
        seeds: list[tuple[CFGNode, Symbol]] = []
        for symbol in variables:
            for def_node in reaching.reaching_defs_of(point_node, symbol):
                seeds.append((def_node, symbol))
        for def_node, symbol in seeds:
            self._need(state, def_node, symbol)

    def _need(self, state: _RoutineSliceState, node: CFGNode, reason: object) -> None:
        """Mark ``node`` as needed for ``reason`` and propagate."""
        existing = state.needed.get(node)
        if existing is not None and reason in existing:
            return
        if existing is None:
            existing = set()
            state.needed[node] = existing
            is_new_node = True
        else:
            is_new_node = False
        existing.add(reason)

        if is_new_node:
            self._propagate_local(state, node)
            self._propagate_into_callees(state, node)
        elif isinstance(reason, Symbol):
            # A known call node needed for an additional output symbol.
            self._propagate_into_callees(state, node, only_symbol=reason)
        if node.kind is NodeKind.ENTRY and isinstance(reason, Symbol):
            self._propagate_to_callers(state, reason)

    def _propagate_local(self, state: _RoutineSliceState, node: CFGNode) -> None:
        """Follow intraprocedural data and control dependences."""
        for symbol, def_node in state.pdg.data_deps.get(node, ()):
            self._need(state, def_node, symbol)
        for pred in state.pdg.control_deps.get(node, ()):
            self._need(state, pred, _CONTROL)
        # Parameters and read globals are defined by ENTRY; reaching
        # definitions already point there, handled via data_deps.

    def _propagate_into_callees(
        self,
        state: _RoutineSliceState,
        node: CFGNode,
        only_symbol: Symbol | None = None,
    ) -> None:
        """A needed node containing calls pulls relevant callee outputs in."""
        stmt = node.stmt
        if stmt is None:
            return
        calls = self._calls_at(node)
        for call in calls:
            callee = self.analysis.call_target.get(call.node_id)
            if callee is None or callee.kind is not SymbolKind.ROUTINE:
                continue
            effects = self.side_effects.of(callee)
            needed_outputs: set[Symbol] = set()
            needed_reasons = (
                {only_symbol} if only_symbol is not None else state.needed[node]
            )
            # Only the outputs feeding *needed* symbols matter. A node
            # needed purely for control (a caller-side call site pulled
            # in by upward propagation) does not need any callee output.
            for param, arg in zip(callee.params, call.args):
                if param.param_mode not in (ast.ParamMode.VAR, ast.ParamMode.OUT):
                    continue
                if param not in effects.mod_params:
                    continue
                root = target_root(arg, self.analysis)
                if root in needed_reasons:
                    needed_outputs.add(param)
            for global_symbol in effects.gmod:
                if global_symbol in needed_reasons:
                    needed_outputs.add(global_symbol)
            if isinstance(call, ast.FuncCall):
                # A function's result always feeds the expression the
                # needed node evaluates.
                callee_info = self.analysis.routines[callee]
                if callee_info.result_symbol is not None:
                    needed_outputs.add(callee_info.result_symbol)
            if needed_outputs:
                self._worklist.append(
                    (callee, "exit", frozenset(needed_outputs))
                )

    def _calls_at(self, node: CFGNode) -> list[ast.Node]:
        """All user calls evaluated at this CFG node."""
        stmt = node.stmt
        assert stmt is not None
        calls: list[ast.Node] = []

        def collect_expr(expr: ast.Expr) -> None:
            for sub in expr.walk():
                if isinstance(sub, ast.FuncCall):
                    target = self.analysis.call_target.get(sub.node_id)
                    if target is not None and target.kind is SymbolKind.ROUTINE:
                        calls.append(sub)

        if node.kind is NodeKind.STMT:
            if isinstance(stmt, ast.ProcCall):
                target = self.analysis.call_target.get(stmt.node_id)
                if target is not None and target.kind is SymbolKind.ROUTINE:
                    calls.append(stmt)
                for arg in stmt.args:
                    collect_expr(arg)
            elif isinstance(stmt, ast.Assign):
                collect_expr(stmt.value)
                collect_expr(stmt.target)
        elif node.kind is NodeKind.PRED:
            condition = getattr(stmt, "condition")
            collect_expr(condition)
        elif node.kind is NodeKind.FOR_INIT:
            assert isinstance(stmt, ast.For)
            collect_expr(stmt.start)
            collect_expr(stmt.stop)
        return calls

    def _propagate_to_callers(
        self, state: _RoutineSliceState, symbol: Symbol
    ) -> None:
        """The routine needs an incoming value: charge every call site."""
        routine = state.info.symbol
        if state.info.is_main:
            return
        for site in self.call_graph.sites_by_callee.get(routine, ()):
            caller_state = self._state(site.caller)
            call_node = caller_state.cfg.node_of_stmt.get(site.node.node_id)
            if call_node is None:
                # A function call embedded in some statement: find the node
                # whose statement contains it.
                call_node = self._find_containing_node(caller_state, site.node)
            if call_node is None:
                continue
            self._need(caller_state, call_node, _CONTROL)
            variables: set[Symbol] = set()
            if symbol.kind is SymbolKind.PARAMETER and symbol.owner is routine:
                position = list(routine.params).index(symbol)
                if position < len(site.args):
                    arg = site.args[position]
                    from repro.analysis.defuse import expression_uses

                    variables |= expression_uses(arg, self.analysis)
            else:
                variables.add(symbol)  # a global / enclosing non-local
            if variables and call_node.stmt is not None:
                # Anchor the criterion at the CFG node evaluating the call
                # (for calls embedded in expressions, their host statement).
                self._worklist.append(
                    (site.caller, call_node.stmt.node_id, frozenset(variables))
                )

    def _find_containing_node(
        self, state: _RoutineSliceState, call: ast.Node
    ) -> CFGNode | None:
        for node in state.cfg.nodes:
            if node.stmt is None:
                continue
            for sub in node.stmt.walk():
                if sub is call:
                    return node
        return None


def static_slice(
    analysis: AnalyzedProgram,
    criterion: StaticCriterion,
    side_effects: SideEffects | None = None,
) -> StaticSlice:
    """Compute a static slice of an analyzed program."""
    return StaticSlicer(analysis, side_effects=side_effects).slice(criterion)


# ----------------------------------------------------------------------
# slice extraction


class _SliceExtractor:
    """Builds a runnable program containing only the sliced statements."""

    def __init__(self, computed: StaticSlice):
        self.slice = computed
        self.analysis = computed.analysis

    def extract(self) -> ast.Program:
        program = self.analysis.program
        block = self._extract_block(program.block, self.analysis.main)
        extracted = ast.Program(
            name=program.name, block=block, location=program.location
        )
        self._prune_declarations(extracted)
        return extracted

    def _routine_included(self, routine: ast.RoutineDecl) -> bool:
        for info in self.analysis.all_routines():
            if info.decl is routine:
                return info.symbol in self.slice.routines
        return False

    def _extract_block(self, block: ast.Block, info: RoutineInfo) -> ast.Block:
        routines = [
            self._extract_routine(routine)
            for routine in block.routines
            if self._routine_included(routine) or self._has_included_nested(routine)
        ]
        body = self._filter_stmt(block.body)
        if not isinstance(body, ast.Compound):
            body = ast.Compound(statements=[body] if body is not None else [])
        return ast.Block(
            labels=[ast.clone(label) for label in block.labels],  # type: ignore[misc]
            consts=[ast.clone(const) for const in block.consts],  # type: ignore[misc]
            types=[ast.clone(decl) for decl in block.types],  # type: ignore[misc]
            variables=[ast.clone(var) for var in block.variables],  # type: ignore[misc]
            routines=routines,
            body=body,
        )

    def _has_included_nested(self, routine: ast.RoutineDecl) -> bool:
        return any(
            self._routine_included(nested) or self._has_included_nested(nested)
            for nested in routine.block.routines
        )

    def _extract_routine(self, routine: ast.RoutineDecl) -> ast.RoutineDecl:
        info = next(
            info for info in self.analysis.all_routines() if info.decl is routine
        )
        block = self._extract_block(routine.block, info)
        return ast.RoutineDecl(
            name=routine.name,
            params=[ast.clone(param) for param in routine.params],  # type: ignore[misc]
            result_type=(
                ast.clone(routine.result_type)  # type: ignore[arg-type]
                if routine.result_type is not None
                else None
            ),
            block=block,
            location=routine.location,
        )

    def _filter_stmt(self, stmt: ast.Stmt) -> ast.Stmt | None:
        """Keep a statement iff it (or something inside it) is in the slice."""
        included = self.slice.contains_stmt(stmt)
        if isinstance(stmt, ast.Compound):
            kept = [
                filtered
                for child in stmt.statements
                if (filtered := self._filter_stmt(child)) is not None
            ]
            if not kept and not included:
                return None
            return ast.Compound(
                statements=kept, location=stmt.location, label=stmt.label
            )
        if isinstance(stmt, ast.If):
            then_branch = self._filter_stmt(stmt.then_branch)
            else_branch = (
                self._filter_stmt(stmt.else_branch)
                if stmt.else_branch is not None
                else None
            )
            if not included and then_branch is None and else_branch is None:
                return None
            return ast.If(
                condition=ast.clone(stmt.condition),  # type: ignore[arg-type]
                then_branch=(
                    then_branch
                    if then_branch is not None
                    else ast.EmptyStmt(location=stmt.location)
                ),
                else_branch=else_branch,
                location=stmt.location,
                label=stmt.label,
            )
        if isinstance(stmt, ast.While):
            body = self._filter_stmt(stmt.body)
            if not included and body is None:
                return None
            return ast.While(
                condition=ast.clone(stmt.condition),  # type: ignore[arg-type]
                body=body if body is not None else ast.EmptyStmt(location=stmt.location),
                location=stmt.location,
                label=stmt.label,
            )
        if isinstance(stmt, ast.Repeat):
            kept = [
                filtered
                for child in stmt.body
                if (filtered := self._filter_stmt(child)) is not None
            ]
            if not included and not kept:
                return None
            return ast.Repeat(
                body=kept if kept else [ast.EmptyStmt(location=stmt.location)],
                condition=ast.clone(stmt.condition),  # type: ignore[arg-type]
                location=stmt.location,
                label=stmt.label,
            )
        if isinstance(stmt, ast.For):
            body = self._filter_stmt(stmt.body)
            if not included and body is None:
                return None
            return ast.For(
                variable=stmt.variable,
                start=ast.clone(stmt.start),  # type: ignore[arg-type]
                stop=ast.clone(stmt.stop),  # type: ignore[arg-type]
                downto=stmt.downto,
                body=body if body is not None else ast.EmptyStmt(location=stmt.location),
                location=stmt.location,
                label=stmt.label,
            )
        if included:
            return ast.clone(stmt)  # type: ignore[return-value]
        # Labelled statements survive as empty targets so gotos stay legal.
        if stmt.label is not None:
            return ast.EmptyStmt(location=stmt.location, label=stmt.label)
        return None

    # ------------------------------------------------------------------

    def _prune_declarations(self, program: ast.Program) -> None:
        """Drop variable declarations the sliced program never mentions."""
        mentioned: set[str] = set()

        def note_names(node: ast.Node) -> None:
            for sub in node.walk():
                if isinstance(sub, ast.VarRef):
                    mentioned.add(sub.name)
                elif isinstance(sub, (ast.ProcCall, ast.FuncCall)):
                    mentioned.add(sub.name)
                elif isinstance(sub, ast.For):
                    mentioned.add(sub.variable)

        def collect(block: ast.Block) -> None:
            note_names(block.body)
            for routine in block.routines:
                for param in routine.params:
                    mentioned.add(param.name)
                collect(routine.block)

        collect(program.block)

        def prune(block: ast.Block) -> None:
            block.variables = [
                var for var in block.variables if var.name in mentioned
            ]
            for routine in block.routines:
                prune(routine.block)

        prune(program.block)
