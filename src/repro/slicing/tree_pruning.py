"""Projecting a dynamic slice onto the execution tree (paper §5.3.3, §7).

"The slicing subsystem computes a slice of the program with respect to
the variable at that point. This slice has a corresponding execution
tree which is returned to the pure algorithmic debugging component."

A :class:`TreeView` is that corresponding tree: a filtered view over the
original execution tree — original nodes are shared, so answers the user
already gave remain attached across slicing steps.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Iterator

from repro.slicing.criteria import DynamicCriterion
from repro.slicing.dynamic_slicer import DynamicSlice, dynamic_slice
from repro.tracing.execution_tree import ExecNode, ExecutionTree
from repro.tracing.tracer import TraceResult


@dataclass
class TreeView:
    """A subtree of the execution tree restricted to a set of kept nodes.

    ``root`` is always kept. A node is visible iff its id is in
    ``kept_ids`` (ancestors of kept nodes are added at construction so
    the view is connected).
    """

    root: ExecNode
    kept_ids: set[int] = field(default_factory=set)

    @classmethod
    def full(cls, root: ExecNode) -> "TreeView":
        return cls(root=root, kept_ids={node.node_id for node in root.walk()})

    @classmethod
    def from_slice(cls, root: ExecNode, relevant_ids: set[int]) -> "TreeView":
        """Keep relevant nodes plus the ancestors connecting them to root."""
        kept = {root.node_id}
        index = {node.node_id: node for node in root.walk()}
        for node_id in relevant_ids:
            node = index.get(node_id)
            if node is None:
                continue
            kept.add(node_id)
            for ancestor in node.ancestors():
                if ancestor.node_id in index or ancestor is root:
                    kept.add(ancestor.node_id)
                if ancestor is root:
                    break
        return cls(root=root, kept_ids=kept)

    def contains(self, node: ExecNode) -> bool:
        return node.node_id in self.kept_ids

    def children(self, node: ExecNode) -> list[ExecNode]:
        return [child for child in node.children if self.contains(child)]

    def walk(self) -> Iterator[ExecNode]:
        def visit(node: ExecNode) -> Iterator[ExecNode]:
            yield node
            for child in self.children(node):
                yield from visit(child)

        return visit(self.root)

    def size(self) -> int:
        return sum(1 for _ in self.walk())

    def render(self) -> str:
        """ASCII rendering of the pruned tree (paper Figures 8–9)."""
        lines: list[str] = []

        def visit(node: ExecNode, depth: int) -> None:
            lines.append("  " * depth + node.render_head())
            for child in self.children(node):
                visit(child, depth + 1)

        visit(self.root, 0)
        return "\n".join(lines) + "\n"

    def restricted(self, new_root: ExecNode, other: "TreeView") -> "TreeView":
        """Intersect this view with another, re-rooted at ``new_root``."""
        kept = {
            node_id for node_id in self.kept_ids if node_id in other.kept_ids
        }
        kept.add(new_root.node_id)
        return TreeView(root=new_root, kept_ids=kept)


def prune_tree(trace: TraceResult, criterion: DynamicCriterion) -> TreeView:
    """Slice on ``criterion`` and return the corresponding execution tree.

    The returned view is rooted at the criterion's unit activation and
    contains only activations that contribute to the erroneous value —
    the paper's Figures 8 and 9.
    """
    from repro import obs

    computed = dynamic_slice(trace, criterion, restrict_to_subtree=True)
    view = TreeView.from_slice(criterion.node, computed.relevant_node_ids)
    if obs.enabled():
        subtree = sum(1 for _ in criterion.node.walk())
        kept = view.size()
        obs.add("slice.prunes")
        obs.observe("slice.kept_nodes", kept)
        obs.observe("slice.pruned_nodes", subtree - kept)
    return view
