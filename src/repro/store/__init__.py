"""``repro.store`` — the persistent sharded test-report store.

The paper's interaction-reduction lever is the test-report database
(Figure 3): a recorded passing test answers a correctness query before
the user is ever asked. The in-memory
:class:`~repro.tgen.reports.TestReportDatabase` dies with its process;
this package makes the report path durable and shared:

* :class:`ShardedReportStore` — reports sharded by a stable hash of
  their unit across directories of checksummed, atomically-published
  segment files (the crash-safety machinery of :mod:`repro.cache`),
  with a per-shard LRU read cache and a write-ahead batch buffer that
  flushes on size, :meth:`~ShardedReportStore.flush`, or close. A
  drop-in :class:`~repro.tgen.lookup.ReportBackend` for
  :class:`~repro.tgen.lookup.TestCaseLookup`.
* :class:`BatchAnswerService` — answers many ``(unit, inputs)``
  queries at once, grouped by shard, with hit/miss/conflict accounting
  in :mod:`repro.obs`; hands concurrent debug sessions per-session
  lookups over the shared store.
* :mod:`repro.store.codec` / :mod:`repro.store.segments` — the JSON
  document format and the segment file layer (fault-injection points
  ``store.read`` / ``store.write``).

CLI: ``repro testdb import|stats|compact``. Format and guarantees:
``docs/TESTDB.md``.
"""

from __future__ import annotations

from repro.store.batch import BatchAnswerService, BatchQuery, BatchStats
from repro.store.codec import (
    CodecError,
    OpaqueValue,
    report_from_dict,
    report_to_dict,
)
from repro.store.segments import Segment, SegmentCorrupt
from repro.store.sharded import (
    DEFAULT_SHARDS,
    STORE_FORMAT,
    ShardedReportStore,
    StoreError,
    shard_of,
)

__all__ = [
    "BatchAnswerService",
    "BatchQuery",
    "BatchStats",
    "CodecError",
    "DEFAULT_SHARDS",
    "OpaqueValue",
    "STORE_FORMAT",
    "Segment",
    "SegmentCorrupt",
    "ShardedReportStore",
    "StoreError",
    "report_from_dict",
    "report_to_dict",
    "shard_of",
]
