"""The batched answer service over the sharded test-report store.

During debugging every ``(unit, inputs)`` query is one potential user
interaction; the cheapest query is one answered from a recorded test
report before the user ever sees it. :class:`BatchAnswerService`
accepts many such queries at once — collected within one session, or
submitted by several concurrent :class:`~repro.core.AlgorithmicDebugger`
sessions — groups them by the shard their unit hashes into (consecutive
lookups on one shard ride its LRU read cache instead of ping-ponging
between shards), and answers each with the usual
:class:`~repro.tgen.lookup.TestCaseLookup` semantics: spec → frame →
combined verdict.

Accounting lands in :mod:`repro.obs` (``store.batch.queries`` /
``.hits`` / ``.misses`` / ``.conflicts``) and on the service itself, so
``repro stats`` and ``DebugResult.report()`` keep summing.
"""

from __future__ import annotations

import threading
from dataclasses import dataclass, field
from typing import Iterable, Mapping, Sequence

from repro import obs
from repro.store.sharded import ShardedReportStore
from repro.tgen.lookup import (
    FrameSelector,
    LookupOutcome,
    LookupStatus,
    MenuCallback,
    TestCaseLookup,
)
from repro.tgen.spec_ast import TestSpec


@dataclass(frozen=True)
class BatchQuery:
    """One correctness query: a unit name plus its concrete inputs."""

    unit: str
    inputs: Mapping[str, object]


@dataclass
class BatchStats:
    """Cumulative service counters (mirrored into :mod:`repro.obs`)."""

    queries: int = 0
    hits: int = 0
    misses: int = 0
    conflicts: int = 0
    batches: int = 0

    def as_dict(self) -> dict[str, int]:
        return {
            "queries": self.queries,
            "hits": self.hits,
            "misses": self.misses,
            "conflicts": self.conflicts,
            "batches": self.batches,
        }


class BatchAnswerService:
    """Answers correctness queries in shard-grouped batches.

    Thread-safe: concurrent sessions may call :meth:`answer_batch` (or
    take per-session lookups via :meth:`session_lookup`) against one
    shared service; the store's per-shard locks serialize disk access
    and the service lock keeps its own counters consistent.
    """

    def __init__(
        self,
        store: ShardedReportStore,
        specs: Iterable[TestSpec] = (),
        selectors: Mapping[str, FrameSelector] | None = None,
        menu: MenuCallback | None = None,
    ):
        self.store = store
        self._specs: dict[str, TestSpec] = {spec.unit: spec for spec in specs}
        self._selectors: dict[str, FrameSelector] = dict(selectors or {})
        self._menu = menu
        self._lock = threading.Lock()
        self.stats = BatchStats()

    def register(self, spec: TestSpec, selector: FrameSelector | None = None) -> None:
        """Add a unit's spec (and optional automatic frame selector)."""
        with self._lock:
            self._specs[spec.unit] = spec
            if selector is not None:
                self._selectors[spec.unit] = selector

    def session_lookup(self) -> TestCaseLookup:
        """A fresh :class:`TestCaseLookup` over the shared store, with
        this service's specs and selectors — one per debug session, so
        per-session counters never race across threads."""
        with self._lock:
            return TestCaseLookup(
                database=self.store,
                specs=dict(self._specs),
                selectors=dict(self._selectors),
                menu=self._menu,
            )

    def answer_batch(
        self, queries: Sequence[BatchQuery], budget=None
    ) -> list[LookupOutcome]:
        """Answer ``queries``, returned in submission order.

        Queries are grouped by shard and resolved shard-by-shard so a
        batch touching few shards pays few segment scans. ``budget`` (a
        :class:`repro.resilience.Budget`) is checked before every query,
        so an armed deadline bounds even a huge batch.
        """
        lookup = self.session_lookup()
        outcomes: list[LookupOutcome | None] = [None] * len(queries)
        by_shard: dict[int, list[int]] = {}
        for position, query in enumerate(queries):
            by_shard.setdefault(self.store.shard_of(query.unit), []).append(
                position
            )
        for shard_index in sorted(by_shard):
            for position in by_shard[shard_index]:
                if budget is not None:
                    budget.check()
                query = queries[position]
                outcomes[position] = lookup.consult(query.unit, query.inputs)
        self._account(outcomes)
        return outcomes  # type: ignore[return-value]

    def _account(self, outcomes: Sequence[LookupOutcome | None]) -> None:
        hits = sum(
            1 for outcome in outcomes if outcome is not None and outcome.answers_yes
        )
        conflicts = sum(
            1
            for outcome in outcomes
            if outcome is not None
            and outcome.status is LookupStatus.CONFLICTING_REPORTS
        )
        answered = sum(1 for outcome in outcomes if outcome is not None)
        misses = answered - hits - conflicts
        with self._lock:
            self.stats.queries += answered
            self.stats.hits += hits
            self.stats.misses += misses
            self.stats.conflicts += conflicts
            self.stats.batches += 1
        obs.add("store.batch.queries", answered)
        obs.add("store.batch.hits", hits)
        obs.add("store.batch.misses", misses)
        obs.add("store.batch.conflicts", conflicts)
        obs.add("store.batch.batches")
        if obs.enabled():
            obs.emit(
                "batch-answer",
                queries=answered,
                hits=hits,
                misses=misses,
                conflicts=conflicts,
            )
