"""JSON codec for test reports (the on-disk document format).

Segments store reports as plain JSON so the database stays inspectable
with standard tools (``jq``, a text editor) and importable from JSONL
dumps — see ``docs/TESTDB.md`` for the full format. Pascal runtime
values are encoded with a small tagged scheme: scalars pass through,
arrays and undefined storage get ``{"$": ...}`` wrappers, and anything
else degrades to a ``repr`` string (reports are evidence for the
verdict, which never depends on reconstructing exotic values).
"""

from __future__ import annotations

import json
from dataclasses import dataclass
from typing import Any, Mapping

from repro.pascal.values import UNDEFINED, ArrayValue
from repro.tgen.reports import TestReport, Verdict


@dataclass(frozen=True)
class OpaqueValue:
    """Placeholder for a value that only survived as its ``repr``."""

    text: str

    def __repr__(self) -> str:
        return self.text


def encode_value(value: object) -> Any:
    """A JSON-ready encoding of one Pascal runtime value."""
    if value is UNDEFINED:
        return {"$": "undef"}
    if value is None or isinstance(value, (bool, int, float, str)):
        return value
    if isinstance(value, ArrayValue):
        return {
            "$": "array",
            "low": value.low,
            "elements": [encode_value(item) for item in value.elements],
        }
    if isinstance(value, OpaqueValue):
        return {"$": "repr", "text": value.text}
    return {"$": "repr", "text": repr(value)}


def decode_value(encoded: Any) -> object:
    """Inverse of :func:`encode_value` (``repr`` values come back as
    :class:`OpaqueValue`)."""
    if not isinstance(encoded, dict):
        return encoded
    tag = encoded.get("$")
    if tag == "undef":
        return UNDEFINED
    if tag == "array":
        elements = [decode_value(item) for item in encoded["elements"]]
        low = int(encoded["low"])
        return ArrayValue(low, low + len(elements) - 1, elements)
    if tag == "repr":
        return OpaqueValue(str(encoded["text"]))
    raise CodecError(f"unknown value tag {tag!r}")


class CodecError(ValueError):
    """A report document does not decode (bad tag, missing field, ...)."""


def report_to_dict(report: TestReport) -> dict:
    """One report as a JSON-ready dict (the segment/JSONL row shape)."""
    return {
        "unit": report.unit,
        "frame_key": list(report.frame_key),
        "verdict": report.verdict.value,
        "case_args": [encode_value(value) for value in report.case_args],
        "outputs": [
            [name, encode_value(value)] for name, value in report.outputs
        ],
        "detail": report.detail,
        "script": report.script,
    }


def report_from_dict(row: Mapping) -> TestReport:
    """Rebuild a :class:`TestReport` from its dict form."""
    try:
        return TestReport(
            unit=str(row["unit"]),
            frame_key=tuple(str(choice) for choice in row["frame_key"]),
            verdict=Verdict(row["verdict"]),
            case_args=tuple(decode_value(value) for value in row.get("case_args", ())),
            outputs=tuple(
                (str(name), decode_value(value))
                for name, value in row.get("outputs", ())
            ),
            detail=str(row.get("detail", "")),
            script=row.get("script"),
        )
    except (KeyError, TypeError, ValueError) as error:
        raise CodecError(f"bad report row: {error}") from error


def dumps_reports(reports: list[TestReport]) -> bytes:
    """The segment payload: a one-object JSON document."""
    document = {
        "format": "gadt-testdb/1",
        "reports": [report_to_dict(report) for report in reports],
    }
    return json.dumps(document, separators=(",", ":"), sort_keys=True).encode(
        "utf-8"
    )


def loads_reports(payload: bytes) -> list[TestReport]:
    """Decode a segment payload; :class:`CodecError` on any damage the
    checksum did not catch (wrong format tag, malformed rows)."""
    try:
        document = json.loads(payload.decode("utf-8"))
    except (UnicodeDecodeError, json.JSONDecodeError) as error:
        raise CodecError(f"unparsable segment payload: {error}") from error
    if not isinstance(document, dict) or document.get("format") != "gadt-testdb/1":
        raise CodecError("not a gadt-testdb/1 segment")
    rows = document.get("reports")
    if not isinstance(rows, list):
        raise CodecError("segment has no report list")
    return [report_from_dict(row) for row in rows]
