"""Checksummed, atomically-published segment files.

A *segment* is one immutable batch of test reports:

    <64 hex chars: SHA-256 of the payload>\\n
    <payload: the gadt-testdb/1 JSON document (repro.store.codec)>

Segments reuse the crash-safety machinery of :mod:`repro.cache` —
:func:`~repro.cache.seal_payload` / :func:`~repro.cache.open_sealed`
framing, :func:`~repro.cache.atomic_write_bytes` publication, and
:func:`~repro.cache.quarantine_file` for damage — so a crash mid-flush
can never leave a shard unreadable: readers see whole segments or no
segment, and a failed checksum moves the file aside as ``*.corrupt``
and drops it from the shard (counted, never a crash).

Fault-injection points (``docs/ROBUSTNESS.md``): ``store.read`` fires
before a segment is parsed (``corrupt`` treats the bytes as damaged,
``oserror`` simulates an unreadable file), ``store.write`` fires before
a flush publishes (``corrupt`` publishes deliberately damaged bytes —
the torn-write simulation the read path must survive).
"""

from __future__ import annotations

import hashlib
import itertools
import os
from dataclasses import dataclass
from pathlib import Path

from repro.cache import atomic_write_bytes, open_sealed, quarantine_file, seal_payload
from repro.resilience import faults
from repro.store.codec import CodecError, dumps_reports, loads_reports
from repro.tgen.reports import TestReport

#: segment files are ``seg-<pid>-<seq>-<digest12>.seg``; the pid plus a
#: per-process sequence number keeps concurrent writers collision-free
SEGMENT_SUFFIX = ".seg"

_SEQUENCE = itertools.count()


class SegmentCorrupt(Exception):
    """A segment failed its checksum or did not decode; the file has
    already been quarantined as ``*.corrupt``."""

    def __init__(self, path: Path):
        super().__init__(f"corrupt segment {path.name}")
        self.path = path


@dataclass(frozen=True)
class Segment:
    """One decoded segment file."""

    path: Path
    reports: tuple[TestReport, ...]


def segment_names(directory: Path) -> list[str]:
    """The live segment file names in ``directory``, sorted."""
    try:
        names = os.listdir(directory)
    except OSError:
        return []
    return sorted(name for name in names if name.endswith(SEGMENT_SUFFIX))


def quarantined_names(directory: Path) -> list[str]:
    """The quarantined (``*.corrupt``) file names in ``directory``."""
    try:
        names = os.listdir(directory)
    except OSError:
        return []
    return sorted(name for name in names if name.endswith(".corrupt"))


def write_segment(directory: Path, reports: list[TestReport]) -> Path:
    """Atomically publish ``reports`` as a new segment in ``directory``
    and return its path. OSErrors (real or injected at ``store.write``)
    propagate — the caller keeps its buffer and may retry; an injected
    ``corrupt`` spec publishes damaged bytes instead (the read path
    quarantines them later)."""
    payload = dumps_reports(reports)
    digest = hashlib.sha256(payload).hexdigest()[:12]
    path = directory / f"seg-{os.getpid()}-{next(_SEQUENCE):06d}-{digest}.seg"
    spec = faults.trip("store.write", key=f"{directory.name}/{path.name}")
    blob = seal_payload(payload)
    if spec is not None:  # "corrupt": damage our own bytes, then publish
        blob = b"0" * 64 + b"\n" + payload[: len(payload) // 2]
    atomic_write_bytes(path, blob)
    return path


def read_segment(path: Path) -> Segment:
    """Decode one segment.

    Raises :class:`FileNotFoundError` when the segment vanished (e.g.
    compacted away by a concurrent writer), :class:`OSError` when the
    file is unreadable, and :class:`SegmentCorrupt` — after moving the
    file aside as ``*.corrupt`` — when the checksum or the document
    fails to verify.
    """
    spec = faults.trip("store.read", key=path.name)
    blob = path.read_bytes()
    payload = None if spec is not None else open_sealed(blob)
    if payload is not None:
        try:
            return Segment(path=path, reports=tuple(loads_reports(payload)))
        except CodecError:
            pass  # checksum ok but undecodable: quarantine below
    quarantine_file(path)
    raise SegmentCorrupt(path)
