"""The persistent sharded test-report store.

Figure 3's test-report database, grown past one process: reports are
sharded by a *stable* hash of their unit name across directories of
checksummed, atomically-published segment files, so any number of
debug sessions — threads or separate processes — can share one store
on disk. Per shard the store keeps

* a **write-ahead batch buffer** — ``add`` is an in-memory append;
  reports hit disk as one new segment when the buffer reaches
  ``flush_threshold``, on :meth:`~ShardedReportStore.flush`, or on
  :meth:`~ShardedReportStore.close` (unflushed reports are still
  served to lookups in this process);
* an **LRU read cache** over ``(unit, frame_key)`` entries, validated
  against the shard's current segment listing so segments published by
  other processes are picked up on the next lookup.

The store is a drop-in :class:`~repro.tgen.lookup.ReportBackend`: hand
it to :class:`~repro.tgen.lookup.TestCaseLookup` (or
``GadtSystem.store_lookup``) exactly where the in-memory
:class:`~repro.tgen.reports.TestReportDatabase` goes. Layout, codec,
and crash-safety guarantees are documented in ``docs/TESTDB.md``.
"""

from __future__ import annotations

import hashlib
import json
import os
import threading
from collections import OrderedDict
from pathlib import Path
from typing import Iterable, Iterator

from repro import obs
from repro.cache import atomic_write_bytes
from repro.store.segments import (
    SegmentCorrupt,
    quarantined_names,
    read_segment,
    segment_names,
    write_segment,
)
from repro.tgen.reports import TestReport, Verdict, combine_verdicts

STORE_FORMAT = "gadt-testdb/1"

#: default shard count — small enough that ``stats`` stays readable,
#: large enough that concurrent sessions rarely contend on one lock
DEFAULT_SHARDS = 8


class StoreError(Exception):
    """The store directory is unusable (bad meta, format mismatch)."""


def shard_of(unit: str, shards: int) -> int:
    """The shard index of ``unit``: a *stable* content hash, identical
    across processes and Python runs (``hash(str)`` is salted, so the
    builtin would scatter one unit over different shards per process)."""
    digest = hashlib.sha256(unit.encode("utf-8")).digest()
    return int.from_bytes(digest[:8], "big") % shards


class _Shard:
    """One shard: a directory of segments plus in-memory caches.

    All state is guarded by ``lock``; every public method of the store
    takes it before touching the shard.
    """

    __slots__ = (
        "directory", "lock", "buffer", "lru", "cached_names",
        "capacity", "lru_hits", "scans", "segment_reads", "flushes",
        "corrupt_segments", "read_errors",
    )

    def __init__(self, directory: Path, capacity: int):
        self.directory = directory
        self.lock = threading.RLock()
        self.buffer: list[TestReport] = []
        #: (unit, frame_key) -> tuple of segment-resident reports;
        #: negative entries (empty tuples) cache known-absent frames
        self.lru: OrderedDict[tuple[str, tuple[str, ...]], tuple[TestReport, ...]] = (
            OrderedDict()
        )
        #: segment listing the LRU contents were computed against
        self.cached_names: tuple[str, ...] | None = None
        self.capacity = capacity
        self.lru_hits = 0
        self.scans = 0
        self.segment_reads = 0
        self.flushes = 0
        self.corrupt_segments = 0
        self.read_errors = 0

    # -- reading -------------------------------------------------------

    def lookup(self, unit: str, frame_key: tuple[str, ...]) -> list[TestReport]:
        key = (unit, frame_key)
        with self.lock:
            buffered = [
                report
                for report in self.buffer
                if report.unit == unit and report.frame_key == frame_key
            ]
            if self.cached_names is not None and self.cached_names == tuple(
                segment_names(self.directory)
            ):
                entry = self.lru.get(key)
                if entry is not None:
                    self.lru.move_to_end(key)
                    self.lru_hits += 1
                    obs.add("store.lru_hits")
                    return list(entry) + buffered
            errors_before = self.read_errors
            index = self._scan()
            if self.read_errors == errors_before:
                # Only a clean scan may feed the cache: caching the
                # result of a failed read would turn a transient I/O
                # error into a sticky wrong answer.
                self._refill_lru(index, key)
            return list(index.get(key, ())) + buffered

    def _scan(
        self, counted: bool = True
    ) -> dict[tuple[str, tuple[str, ...]], list[TestReport]]:
        """Read every live segment, quarantining damage as it surfaces.
        ``counted=False`` keeps maintenance reads (stats, compaction)
        out of the hit-rate accounting."""
        index: dict[tuple[str, tuple[str, ...]], list[TestReport]] = {}
        for name in segment_names(self.directory):
            try:
                segment = read_segment(self.directory / name)
            except SegmentCorrupt:
                self.corrupt_segments += 1
                obs.add("store.corrupt_segments")
                continue
            except FileNotFoundError:
                continue  # compacted away under us
            except OSError:
                self.read_errors += 1
                obs.add("store.read_errors")
                continue
            self.segment_reads += 1
            for report in segment.reports:
                index.setdefault((report.unit, report.frame_key), []).append(report)
        if counted:
            self.scans += 1
            obs.add("store.scans")
        return index

    def _refill_lru(self, index, requested_key) -> None:
        """Rebuild the LRU from a fresh scan: every scanned frame, the
        requested one (even when absent — a negative entry) most recent,
        evicting down to capacity."""
        self.lru.clear()
        for key, reports in index.items():
            if key != requested_key:
                self.lru[key] = tuple(reports)
        self.lru[requested_key] = tuple(index.get(requested_key, ()))
        while len(self.lru) > self.capacity:
            self.lru.popitem(last=False)
        self.cached_names = tuple(segment_names(self.directory))

    def all_reports(self) -> list[TestReport]:
        with self.lock:
            index = self._scan(counted=False)
            reports = [
                report for group in index.values() for report in group
            ]
            reports.extend(self.buffer)
            return reports

    # -- writing -------------------------------------------------------

    def add(self, report: TestReport, threshold: int) -> None:
        with self.lock:
            self.buffer.append(report)
            if len(self.buffer) >= threshold:
                self.flush()

    def flush(self) -> int:
        """Publish the buffer as one new segment; the buffer survives a
        failed write so nothing is lost to a transient error."""
        with self.lock:
            if not self.buffer:
                return 0
            path = write_segment(self.directory, self.buffer)
            flushed = list(self.buffer)
            self.buffer.clear()
            if self.cached_names is not None:
                # Fold the flushed reports into the cache instead of
                # invalidating it wholesale: the new segment contains
                # exactly this buffer.
                for report in flushed:
                    key = (report.unit, report.frame_key)
                    if key in self.lru:
                        self.lru[key] = self.lru[key] + (report,)
                self.cached_names = tuple(
                    sorted((*self.cached_names, path.name))
                )
            self.flushes += 1
            obs.add("store.flushes")
            obs.add("store.reports_written", len(flushed))
            return len(flushed)

    def compact(self) -> tuple[int, int]:
        """Merge all live segments (and the buffer) into one segment,
        dropping exact-duplicate rows; returns (segments_before,
        segments_after)."""
        with self.lock:
            before = segment_names(self.directory)
            index = self._scan(counted=False)
            merged: dict[TestReport, None] = {}
            for group in index.values():
                for report in group:
                    merged[report] = None
            for report in self.buffer:
                merged[report] = None
            self.buffer.clear()
            survivors = list(merged)
            if survivors:
                kept = write_segment(self.directory, survivors)
            for name in before:
                if survivors and name == kept.name:
                    continue
                try:
                    os.unlink(self.directory / name)
                except OSError:
                    pass
            self.lru.clear()
            self.cached_names = None
            return len(before), (1 if survivors else 0)

    def stats(self) -> dict:
        with self.lock:
            index = self._scan(counted=False)
            frames = set(index)
            frames.update(
                (report.unit, report.frame_key) for report in self.buffer
            )
            return {
                "segments": len(segment_names(self.directory)),
                "reports": sum(len(group) for group in index.values())
                + len(self.buffer),
                "frames": len(frames),
                "buffered": len(self.buffer),
                "quarantined": len(quarantined_names(self.directory)),
            }


class ShardedReportStore:
    """Durable, sharded, batched drop-in for ``TestReportDatabase``.

    ``shards`` only matters on first creation — reopening an existing
    store reads the count from ``meta.json`` (reports must stay in the
    shard their unit hashed into).
    """

    def __init__(
        self,
        directory: str | os.PathLike,
        shards: int = DEFAULT_SHARDS,
        flush_threshold: int = 256,
        cache_capacity: int = 128,
    ):
        if shards < 1:
            raise StoreError(f"shards must be >= 1, got {shards}")
        if flush_threshold < 1:
            raise StoreError(f"flush_threshold must be >= 1, got {flush_threshold}")
        self.directory = Path(directory)
        self.directory.mkdir(parents=True, exist_ok=True)
        self.shards = self._load_or_init_meta(shards)
        self.flush_threshold = flush_threshold
        self._shards = []
        for index in range(self.shards):
            shard_dir = self.directory / f"shard-{index:03d}"
            shard_dir.mkdir(exist_ok=True)
            self._shards.append(_Shard(shard_dir, cache_capacity))
        self._closed = False

    def _load_or_init_meta(self, shards: int) -> int:
        meta_path = self.directory / "meta.json"
        if meta_path.exists():
            try:
                meta = json.loads(meta_path.read_text())
            except (OSError, json.JSONDecodeError) as error:
                raise StoreError(f"unreadable store meta: {error}") from error
            if meta.get("format") != STORE_FORMAT:
                raise StoreError(
                    f"store format {meta.get('format')!r} is not {STORE_FORMAT!r}"
                )
            return int(meta["shards"])
        blob = json.dumps(
            {"format": STORE_FORMAT, "shards": shards}, sort_keys=True
        ).encode("utf-8")
        atomic_write_bytes(meta_path, blob)
        return shards

    # -- lifecycle -----------------------------------------------------

    @property
    def closed(self) -> bool:
        return self._closed

    def flush(self) -> int:
        """Publish every shard's buffer; returns reports written."""
        self._require_open()
        return sum(shard.flush() for shard in self._shards)

    def close(self) -> None:
        """Flush and seal the store object (the directory stays valid;
        reopen with a new :class:`ShardedReportStore`)."""
        if self._closed:
            return
        try:
            self.flush()
        finally:
            self._closed = True

    def __enter__(self) -> "ShardedReportStore":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()

    def _require_open(self) -> None:
        if self._closed:
            raise StoreError("store is closed")

    def _shard_for(self, unit: str) -> _Shard:
        return self._shards[shard_of(unit, self.shards)]

    def shard_of(self, unit: str) -> int:
        """The shard index serving ``unit`` (batching groups by this)."""
        return shard_of(unit, self.shards)

    # -- the TestReportDatabase API ------------------------------------

    def add(self, report: TestReport) -> None:
        self._require_open()
        self._shard_for(report.unit).add(report, self.flush_threshold)

    def lookup(self, unit: str, frame_key: tuple[str, ...]) -> list[TestReport]:
        self._require_open()
        obs.add("store.lookups")
        return self._shard_for(unit).lookup(unit, frame_key)

    def verdict_for(self, unit: str, frame_key: tuple[str, ...]) -> Verdict | None:
        return combine_verdicts(self.lookup(unit, frame_key))

    def units(self) -> set[str]:
        return {report.unit for report in self.all_reports()}

    def frames_of(self, unit: str) -> list[tuple[str, ...]]:
        shard = self._shard_for(unit)
        self._require_open()
        seen: dict[tuple[str, ...], None] = {}
        for report in shard.all_reports():
            if report.unit == unit:
                seen[report.frame_key] = None
        return list(seen)

    def all_reports(self) -> list[TestReport]:
        self._require_open()
        return [
            report for shard in self._shards for report in shard.all_reports()
        ]

    def __len__(self) -> int:
        return len(self.all_reports())

    # -- maintenance ---------------------------------------------------

    def import_reports(self, reports: Iterable[TestReport], budget=None) -> int:
        """Bulk-add ``reports`` and flush; returns the count imported.
        ``budget`` (a :class:`repro.resilience.Budget`) is checked every
        64 reports so an armed deadline bounds a huge import."""
        self._require_open()
        count = 0
        for report in reports:
            if budget is not None and count % 64 == 0:
                budget.check()
            self.add(report)
            count += 1
        self.flush()
        return count

    def compact(self, budget=None) -> dict:
        """Merge each shard down to one segment, dropping exact-duplicate
        rows; returns ``{"segments_before": ..., "segments_after": ...}``."""
        self._require_open()
        before = after = 0
        for shard in self._shards:
            if budget is not None:
                budget.check()
            shard_before, shard_after = shard.compact()
            before += shard_before
            after += shard_after
        return {"segments_before": before, "segments_after": after}

    def stats(self) -> dict:
        """Aggregated store statistics (the ``repro testdb stats`` body):
        shard/segment/report/frame counts, buffer depth, read-cache hit
        rate, and quarantined-segment count."""
        self._require_open()
        per_shard = [shard.stats() for shard in self._shards]
        lru_hits = sum(shard.lru_hits for shard in self._shards)
        scans = sum(shard.scans for shard in self._shards)
        lookups = lru_hits + scans
        return {
            "format": STORE_FORMAT,
            "shards": self.shards,
            "segments": sum(item["segments"] for item in per_shard),
            "reports": sum(item["reports"] for item in per_shard),
            "frames": sum(item["frames"] for item in per_shard),
            "buffered": sum(item["buffered"] for item in per_shard),
            "quarantined": sum(item["quarantined"] for item in per_shard),
            "lru_hits": lru_hits,
            "scans": scans,
            "hit_rate": (lru_hits / lookups) if lookups else 0.0,
            "flushes": sum(shard.flushes for shard in self._shards),
            "corrupt_segments": sum(
                shard.corrupt_segments for shard in self._shards
            ),
            "read_errors": sum(shard.read_errors for shard in self._shards),
        }

    def iter_shard_stats(self) -> Iterator[tuple[int, dict]]:
        """Per-shard stats rows (``repro testdb stats --per-shard``)."""
        for index, shard in enumerate(self._shards):
            yield index, shard.stats()
