"""T-GEN: the extended category-partition testing method (paper §2).

Implements Ostrand & Balcer's category-partition test generation plus
the paper's T-GEN extensions: test scripts, result categories, test
cases, and test reports.

* :mod:`repro.tgen.spec_parser` — the test-specification language
  (categories, choices, ``property`` lists, ``if`` selector expressions,
  ``scripts`` and ``result`` sections — the shape of the paper's Fig. 1);
* :mod:`repro.tgen.frames` — test-frame generation with selector
  filtering and SINGLE-property handling;
* :mod:`repro.tgen.cases` — executable test cases and the case runner;
* :mod:`repro.tgen.reports` — the test-report database;
* :mod:`repro.tgen.lookup` — the debugger-facing test-case lookup
  component (paper §5.3.2);
* :mod:`repro.tgen.corpus` — the adversarial Mini-Pascal program
  corpus feeding the goto-elimination differential harness
  (``benchmarks/run_corpus.py``, docs/CORPUS.md).
"""

from repro.tgen.spec_ast import (
    Category,
    Choice,
    ResultChoice,
    ScriptDef,
    Selector,
    TestSpec,
)
from repro.tgen.spec_parser import parse_spec
from repro.tgen.frames import TestFrame, frame_for_choices, generate_frames
from repro.tgen.scripts import assign_scripts, frames_by_script
from repro.tgen.cases import CaseRunner, TestCase, instantiate_cases
from repro.tgen.reports import (
    TestReport,
    TestReportDatabase,
    Verdict,
    combine_verdicts,
)
from repro.tgen.lookup import (
    FRAME_SELECTORS,
    FrameSelector,
    ReportBackend,
    TestCaseLookup,
    register_frame_selector,
)
from repro.tgen.menu import TerminalMenu
from repro.tgen.corpus import (
    CASE_PROGRAMS,
    CorpusConfig,
    case_program,
    generate_program,
    iter_corpus,
    minimize_program,
)

__all__ = [
    "CASE_PROGRAMS",
    "CaseRunner",
    "CorpusConfig",
    "Category",
    "Choice",
    "FRAME_SELECTORS",
    "FrameSelector",
    "ReportBackend",
    "ResultChoice",
    "ScriptDef",
    "Selector",
    "TestCase",
    "TestCaseLookup",
    "TestFrame",
    "TerminalMenu",
    "TestReport",
    "TestReportDatabase",
    "TestSpec",
    "Verdict",
    "assign_scripts",
    "case_program",
    "combine_verdicts",
    "frame_for_choices",
    "frames_by_script",
    "generate_frames",
    "generate_program",
    "instantiate_cases",
    "iter_corpus",
    "minimize_program",
    "parse_spec",
    "register_frame_selector",
]
