"""Executable test cases and the case runner (paper §2).

"By extending the test specification with declarations and executable
statements the system can generate executable test cases from test
frames."

A frame is abstract (one choice per category); an *instantiator* — the
tester's executable knowledge — turns it into concrete argument values
and an expected outcome. Running a case calls the unit in isolation
through the interpreter and records a :class:`TestReport`.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Iterable, Mapping

from repro.pascal.errors import PascalError
from repro.pascal.interpreter import Interpreter, PascalIO, UnitCallResult
from repro.pascal.semantics import AnalyzedProgram
from repro.pascal.values import format_value, values_equal
from repro.tgen.frames import TestFrame
from repro.tgen.reports import TestReport, TestReportDatabase, Verdict
from repro.tgen.scripts import assign_scripts
from repro.tgen.spec_ast import TestSpec

#: Decides whether a unit-call outcome is correct. Either a mapping of
#: expected values — keys are output-parameter names, ``result`` for a
#: function result, or ``global:<name>`` — or an arbitrary predicate.
Expectation = Mapping[str, object] | Callable[[UnitCallResult], bool]

#: Turns one frame into zero or more concrete test cases.
Instantiator = Callable[[TestFrame], "Iterable[TestCase]"]


#: classifies an outcome into a result-category choice name (paper §2:
#: "The results of a program can also be divided into categories and
#: choices by selector expressions.")
ResultClassifier = Callable[[UnitCallResult], str | None]


@dataclass
class TestCase:
    """One concrete, runnable test for a unit."""

    frame: TestFrame
    args: list[object] = field(default_factory=list)
    globals_in: dict[str, object] = field(default_factory=dict)
    expected: Expectation = field(default_factory=dict)
    script: str | None = None
    #: result-category choice the outcome must fall into (checked when
    #: the runner has a classifier), or None
    expected_result_choice: str | None = None

    @property
    def unit(self) -> str:
        return self.frame.unit


def instantiate_cases(
    spec: TestSpec, frames: Iterable[TestFrame], instantiator: Instantiator
) -> list[TestCase]:
    """Generate executable cases for every frame, tagging scripts."""
    cases: list[TestCase] = []
    for frame in frames:
        for case in instantiator(frame):
            if case.script is None:
                scripts = assign_scripts(spec, frame)
                case.script = scripts[0] if scripts else None
            cases.append(case)
    return cases


class CaseRunner:
    """Executes test cases against a program's units.

    ``result_classifier`` (optional) maps each outcome to a
    result-category choice; cases carrying ``expected_result_choice``
    then also verify the classification.
    """

    def __init__(
        self,
        analysis: AnalyzedProgram,
        step_limit: int = 500_000,
        result_classifier: ResultClassifier | None = None,
    ):
        self.analysis = analysis
        self.step_limit = step_limit
        self.result_classifier = result_classifier

    def run(self, case: TestCase) -> TestReport:
        try:
            interpreter = Interpreter(
                self.analysis, io=PascalIO(), step_limit=self.step_limit
            )
            outcome = interpreter.call_routine_by_name(
                case.unit, list(case.args), globals_in=dict(case.globals_in)
            )
        except PascalError as error:
            return TestReport(
                unit=case.unit,
                frame_key=case.frame.key,
                verdict=Verdict.ERROR,
                case_args=tuple(case.args),
                detail=str(error),
                script=case.script,
            )
        passed, detail = self._check(case.expected, outcome)
        if passed and case.expected_result_choice is not None:
            if self.result_classifier is None:
                passed, detail = False, "no result classifier configured"
            else:
                actual_choice = self.result_classifier(outcome)
                if actual_choice != case.expected_result_choice:
                    passed = False
                    detail = (
                        f"result category: expected "
                        f"{case.expected_result_choice!r}, got {actual_choice!r}"
                    )
        return TestReport(
            unit=case.unit,
            frame_key=case.frame.key,
            verdict=Verdict.PASS if passed else Verdict.FAIL,
            case_args=tuple(case.args),
            outputs=self._outputs_of(outcome),
            detail=detail,
            script=case.script,
        )

    def run_all(
        self, cases: Iterable[TestCase], database: TestReportDatabase | None = None
    ) -> TestReportDatabase:
        db = database if database is not None else TestReportDatabase()
        for case in cases:
            db.add(self.run(case))
        return db

    # ------------------------------------------------------------------

    @staticmethod
    def _outputs_of(outcome: UnitCallResult) -> tuple[tuple[str, object], ...]:
        outputs: list[tuple[str, object]] = list(outcome.out_values.items())
        if outcome.result is not None:
            outputs.append(("result", outcome.result))
        return tuple(outputs)

    @staticmethod
    def _check(expected: Expectation, outcome: UnitCallResult) -> tuple[bool, str]:
        if callable(expected):
            return (True, "") if expected(outcome) else (False, "predicate failed")
        for key, want in expected.items():
            if key == "result":
                got = outcome.result
            elif key.startswith("global:"):
                got = outcome.globals_after.get(key[len("global:"):])
            else:
                got = outcome.out_values.get(key)
            if got is None or not values_equal(got, want):
                return False, (
                    f"{key}: expected {format_value(want)}, "
                    f"got {format_value(got) if got is not None else '<missing>'}"
                )
        return True, ""
