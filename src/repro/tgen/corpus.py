"""Adversarial Mini-Pascal corpus generation.

The generator emits goto-dense, globals-heavy, deeply nested programs
for differential testing of the transformation pipeline (see
``docs/CORPUS.md``). It is deliberately stdlib-only (seeded
:class:`random.Random`, no hypothesis) so the corpus is importable from
benchmarks and reproducible from a single integer seed.

Every generated program is safe by construction:

* **terminating** — loops are bounded ``for`` loops or counter-guarded
  ``while`` loops, backward gotos are guarded by dedicated countdown
  counters, and global gotos only jump forward to landing labels in the
  program tail;
* **defined** — every variable is assigned before any use on every
  path (forward jumps can only skip code that is not needed by the
  target's continuation reads... concretely: everything is initialized
  up front);
* **total** — division and modulo only ever see nonzero literal
  divisors.

:data:`CASE_PROGRAMS` holds one hand-written canonical program per
taxonomy case; the files under ``tests/corpus/`` are generated from it.
"""

from __future__ import annotations

from collections.abc import Callable, Iterator
from dataclasses import dataclass
from random import Random

__all__ = [
    "CASE_PROGRAMS",
    "CorpusConfig",
    "case_program",
    "generate_program",
    "iter_corpus",
    "minimize_program",
]


@dataclass(frozen=True)
class CorpusConfig:
    """Knobs for :func:`generate_program` (documented in docs/CORPUS.md)."""

    #: global integer variables shared between main and the procedures
    globals_count: int = 4
    #: procedures declared at the top level (each may nest one inner)
    routines: int = 2
    #: top-level pattern slots in the main body
    statements: int = 8
    #: probability that a slot emits a goto pattern rather than plain code
    goto_density: float = 0.5
    #: maximum structured nesting depth for plain-code slots
    max_depth: int = 3
    #: iteration bound for generated loops and backward-goto counters
    max_span: int = 4
    #: emit guarded never-taken jumps into/between blocks (the
    #: irreducible taxonomy cases)
    include_irreducible: bool = True
    #: let procedures jump to landing labels in enclosing routines
    include_global_gotos: bool = True


def generate_program(seed: int, config: CorpusConfig | None = None) -> str:
    """A random adversarial program, reproducible from ``seed``."""
    return _Gen(Random(seed), config or CorpusConfig()).program(seed)


def iter_corpus(
    count: int, start: int = 0, config: CorpusConfig | None = None
) -> Iterator[tuple[int, str]]:
    """``count`` programs with seeds ``start .. start+count-1``."""
    for seed in range(start, start + count):
        yield seed, generate_program(seed, config)


# ----------------------------------------------------------------------
# the generator


class _Gen:
    def __init__(self, rng: Random, config: CorpusConfig):
        self.rng = rng
        self.config = config
        self.globals = [f"gv{i}" for i in range(config.globals_count)]
        self._var_counter = 0
        self._label_counter = 9  # labels 10, 11, ... program-wide unique
        self.extra_vars: list[str] = []
        #: main labels reserved as global-goto landing sites
        self.landing_labels: list[str] = []

    # -- small pieces

    def _fresh_var(self, prefix: str) -> str:
        self._var_counter += 1
        name = f"{prefix}{self._var_counter}"
        self.extra_vars.append(name)
        return name

    def _fresh_label(self, labels: list[str]) -> str:
        """A program-wide unique label, registered in the declaring
        routine's ``labels`` list. Uniqueness matters: labels are
        per-routine scoped, so a procedure reusing main's label number
        would capture gotos meant to be global."""
        self._label_counter += 1
        label = str(self._label_counter)
        labels.append(label)
        return label

    def _operand(self, names: list[str]) -> str:
        if names and self.rng.random() < 0.7:
            return self.rng.choice(names)
        return str(self.rng.randint(-9, 9))

    def _expr(self, names: list[str], depth: int = 2) -> str:
        if depth == 0:
            return self._operand(names)
        kind = self.rng.choice(["binary", "binary", "divmod", "abs", "leaf"])
        if kind == "leaf":
            return self._operand(names)
        if kind == "abs":
            return f"abs({self._expr(names, depth - 1)})"
        if kind == "divmod":
            op = self.rng.choice(["div", "mod"])
            return f"({self._expr(names, depth - 1)}) {op} {self.rng.randint(2, 7)}"
        op = self.rng.choice(["+", "-", "*"])
        return f"({self._expr(names, depth - 1)}) {op} ({self._expr(names, depth - 1)})"

    def _cond(self, names: list[str]) -> str:
        op = self.rng.choice(["<", "<=", ">", ">=", "=", "<>"])
        return f"({self._expr(names, 1)}) {op} ({self._expr(names, 1)})"

    def _assign(self, names: list[str]) -> str:
        # Damped so iterated assignments in loops stay far from the
        # interpreter's checked 64-bit range: every variable remains in
        # (-9973, 9973), so even depth-2 products of variables fit.
        target = self.rng.choice(names)
        return f"{target} := ({self._expr(names)}) mod 9973"

    # -- plain structured code (no gotos)

    def _plain(self, names: list[str], depth: int) -> str:
        kinds = ["assign", "assign", "assign"]
        if depth > 0:
            kinds += ["if", "ifelse", "for", "while"]
        kind = self.rng.choice(kinds)
        if kind == "assign":
            return self._assign(names)
        if kind == "if":
            return (
                f"if {self._cond(names)} then begin "
                f"{self._plain(names, depth - 1)} end"
            )
        if kind == "ifelse":
            return (
                f"if {self._cond(names)} then begin "
                f"{self._plain(names, depth - 1)} end else begin "
                f"{self._plain(names, depth - 1)} end"
            )
        if kind == "for":
            loop_var = self._fresh_var("ix")
            low = self.rng.randint(0, 2)
            high = low + self.rng.randint(0, self.config.max_span)
            return (
                f"for {loop_var} := {low} to {high} do begin "
                f"{self._plain(names, depth - 1)} end"
            )
        counter = self._fresh_var("wc")
        bound = self.rng.randint(1, self.config.max_span)
        return (
            f"begin {counter} := {bound}; while {counter} > 0 do begin "
            f"{counter} := {counter} - 1; {self._plain(names, depth - 1)} end end"
        )

    # -- goto patterns; each returns statements for one slot and may
    #    register labels via the `labels` list it receives

    def _pat_forward(self, names: list[str], labels: list[str]) -> list[str]:
        """forward_same_block: conditional or bare jump over plain code."""
        label = self._fresh_label(labels)
        out: list[str] = []
        if self.rng.random() < 0.8:
            out.append(f"if {self._cond(names)} then goto {label}")
        else:
            out.append(f"goto {label}")
        for _ in range(self.rng.randint(1, 3)):
            out.append(self._plain(names, 1))
        out.append(f"{label}: {self._assign(names)}")
        return out

    def _pat_backward(self, names: list[str], labels: list[str]) -> list[str]:
        """backward_same_block: a countdown-guarded backward jump."""
        label = self._fresh_label(labels)
        counter = self._fresh_var("bk")
        return [
            f"{counter} := {self.rng.randint(1, self.config.max_span)}",
            f"{label}: {self._assign(names)}",
            self._plain(names, 1),
            f"{counter} := {counter} - 1",
            f"if {counter} > 0 then goto {label}",
        ]

    def _pat_out_of_loop(self, names: list[str], labels: list[str]) -> list[str]:
        """forward_out_of_loop: escape from a while loop, possibly from
        inside a conditional nested in the loop body."""
        label = self._fresh_label(labels)
        counter = self._fresh_var("lc")
        escape = f"if {self._cond(names)} then goto {label}"
        if self.rng.random() < 0.5:
            escape = (
                f"if {self._cond(names)} then begin "
                f"{self._plain(names, 0)}; {escape} end"
            )
        return [
            f"{counter} := {self.rng.randint(2, self.config.max_span + 1)}",
            f"while {counter} > 0 do begin {counter} := {counter} - 1; "
            f"{self._plain(names, 1)}; {escape} end",
            self._plain(names, 1),
            f"{label}: {self._assign(names)}",
        ]

    def _pat_backward_out_of_loop(
        self, names: list[str], labels: list[str]
    ) -> list[str]:
        """backward_out_of_loop: jump from a loop body back before it,
        guarded by a countdown so the cycle is bounded."""
        label = self._fresh_label(labels)
        guard = self._fresh_var("bg")
        counter = self._fresh_var("lc")
        return [
            f"{guard} := {self.rng.randint(1, 3)}",
            f"{label}: {guard} := {guard} - 1",
            f"{counter} := {self.rng.randint(1, self.config.max_span)}",
            f"while {counter} > 0 do begin {counter} := {counter} - 1; "
            f"{self._plain(names, 1)}; "
            f"if {guard} > 0 then goto {label} end",
        ]

    def _pat_out_of_cond(self, names: list[str], labels: list[str]) -> list[str]:
        """forward_out_of_cond: jump from inside nested conditionals."""
        label = self._fresh_label(labels)
        inner = f"if {self._cond(names)} then goto {label}"
        body = f"begin {self._plain(names, 0)}; {inner} end"
        if self.rng.random() < 0.4:
            body = f"begin if {self._cond(names)} then {body} end"
        return [
            f"if {self._cond(names)} then {body}",
            self._plain(names, 1),
            f"{label}: {self._assign(names)}",
        ]

    def _pat_multi_goto(self, names: list[str], labels: list[str]) -> list[str]:
        """multi_goto_label: several jumps converging on one label."""
        label = self._fresh_label(labels)
        out: list[str] = []
        for _ in range(self.rng.randint(2, 3)):
            out.append(f"if {self._cond(names)} then goto {label}")
            out.append(self._plain(names, 1))
        out.append(f"{label}: {self._assign(names)}")
        return out

    def _pat_irreducible(self, names: list[str], labels: list[str]) -> list[str]:
        """Guarded never-taken jumps into / between blocks. The guard
        variable is pinned to 0 right before the jump, so the goto is
        dynamically dead but statically a full into-block/sibling case."""
        label = self._fresh_label(labels)
        guard = self._fresh_var("nv")
        shape = self.rng.choice(["into", "sibling", "backward_into"])
        pin = f"{guard} := 0"
        jump = f"if {guard} = 1 then goto {label}"
        target_block = (
            f"begin {self._plain(names, 0)}; "
            f"{label}: {self._plain(names, 0)} end"
        )
        if shape == "into":
            return [pin, jump, self._plain(names, 1), target_block]
        if shape == "sibling":
            return [
                pin,
                f"begin {self._plain(names, 0)}; {jump} end",
                target_block,
            ]
        return [pin, target_block, self._plain(names, 1), jump]

    # -- routines

    def _procedure(
        self, index: int, callables: list[str], nested: bool
    ) -> str:
        """One procedure; reads/writes globals, may carry local gotos, a
        nested inner procedure, and global gotos to landing labels."""
        config = self.config
        name = f"proc{index}"
        labels: list[str] = []
        local = f"loc{index}"
        names = self.globals + [local, "r"]
        body: list[str] = [
            f"{local} := (a + {self.rng.choice(self.globals)}) mod 9973"
        ]
        saved_vars = self.extra_vars
        self.extra_vars = []

        inner_text = ""
        if nested:
            # the inner procedure jumps to the outer's landing label
            # (one global level) or straight to main (two levels).
            outer_landing = self._fresh_label(labels)
            inner_targets = [outer_landing]
            if config.include_global_gotos and self.landing_labels:
                inner_targets.append(self.rng.choice(self.landing_labels))
            target = self.rng.choice(inner_targets)
            inner_text = (
                f"procedure inner{index}(k: integer);\n"
                "begin\n"
                f"  {local} := {local} + k;\n"
                f"  if {local} > {self.rng.randint(6, 12)} then goto {target}\n"
                "end;\n"
            )
            body.append(f"inner{index}({self.rng.randint(1, 3)})")
            body.append(self._plain(names, 1))
            body.append(f"{outer_landing}: {local} := {local} + 1")

        body.append(self._assign(names))
        if config.include_global_gotos and self.landing_labels:
            target = self.rng.choice(self.landing_labels)
            escape = f"if {self._cond(names)} then goto {target}"
            if self.rng.random() < 0.5:
                # global_out_of_loop: the global escape fires inside a loop
                counter = self._fresh_var("pc")
                body.append(
                    f"{counter} := {self.rng.randint(1, config.max_span)}"
                )
                body.append(
                    f"while {counter} > 0 do begin {counter} := {counter} - 1; "
                    f"{self._plain(names, 0)}; {escape} end"
                )
            else:
                body.append(escape)
        if callables and self.rng.random() < 0.6:
            body.append(f"{self.rng.choice(callables)}({self._expr(names, 1)}, r)")
        if self.rng.random() < 0.5:
            body.extend(self._pat_forward(names, labels))
        writable = self.rng.choice(self.globals)
        body.append(f"{writable} := ({writable} + {local}) mod 9973")
        body.append(f"r := ({self._expr(names, 1)}) mod 9973")

        local_vars = [local] + self.extra_vars
        self.extra_vars = saved_vars
        label_decl = f"label {', '.join(labels)};\n" if labels else ""
        return (
            f"procedure {name}(a: integer; var r: integer);\n"
            f"{label_decl}"
            f"var {', '.join(local_vars)}: integer;\n"
            f"{inner_text}"
            "begin\n  "
            + ";\n  ".join(body)
            + "\nend;\n"
        )

    def program(self, seed: int) -> str:
        config = self.config
        rng = self.rng
        main_labels: list[str] = []
        # landing labels live in the program tail; reserve them first so
        # procedures can target them.
        if config.include_global_gotos:
            for _ in range(max(1, config.routines // 2)):
                self.landing_labels.append(self._fresh_label(main_labels))

        procedures: list[str] = []
        callables: list[str] = []
        for index in range(config.routines):
            # the inner->outer jump is itself a global goto, so nesting
            # is only available when global gotos are enabled
            nested = (
                index == 0
                and config.routines > 0
                and config.include_global_gotos
                and rng.random() < 0.6
            )
            procedures.append(self._procedure(index, list(callables), nested))
            callables.append(f"proc{index}")

        names = list(self.globals)
        body: list[str] = [
            f"{name} := {rng.randint(-5, 5)}" for name in self.globals
        ]
        patterns: list[Callable[[list[str], list[str]], list[str]]] = [
            self._pat_forward,
            self._pat_backward,
            self._pat_out_of_loop,
            self._pat_backward_out_of_loop,
            self._pat_out_of_cond,
            self._pat_multi_goto,
        ]
        if config.include_irreducible:
            patterns.append(self._pat_irreducible)
        body.append("res := 0")
        for _ in range(config.statements):
            if rng.random() < config.goto_density:
                body.extend(rng.choice(patterns)(names, main_labels))
            elif callables and rng.random() < 0.4:
                body.append(f"{rng.choice(callables)}({self._expr(names, 1)}, res)")
                body.append(f"{rng.choice(self.globals)} := res")
            else:
                body.append(self._plain(names, config.max_depth))
        # the tail: landing labels, then observable output
        for label in self.landing_labels:
            body.append(f"{label}: res := res + 1")
        for name in self.globals + ["res"]:
            body.append(f"writeln({name})")

        label_decl = (
            f"label {', '.join(main_labels)};\n" if main_labels else ""
        )
        var_names = self.globals + ["res"] + self.extra_vars
        return (
            f"program corpus{seed};\n"
            f"{label_decl}"
            f"var {', '.join(var_names)}: integer;\n"
            + "\n".join(procedures)
            + "\nbegin\n  "
            + ";\n  ".join(body)
            + "\nend.\n"
        )


# ----------------------------------------------------------------------
# canonical per-case programs (committed under tests/corpus/)

CASE_PROGRAMS: dict[str, str] = {
    "forward_same_block": """\
program fwdsame;
label 10;
var x, y: integer;
begin
  x := 3;
  y := 0;
  if x > 2 then goto 10;
  y := 99;
10: y := y + x;
  writeln(x);
  writeln(y)
end.
""",
    "backward_same_block": """\
program bwdsame;
label 10;
var i, s: integer;
begin
  i := 0;
  s := 0;
10: i := i + 1;
  s := s + i;
  if i < 5 then goto 10;
  writeln(s)
end.
""",
    "forward_out_of_cond": """\
program fwdcond;
label 10;
var x, y: integer;
begin
  x := 4;
  y := 1;
  if x > 0 then begin
    y := y + 1;
    if x > 3 then goto 10;
    y := y + 10
  end;
  y := y + 100;
10: writeln(y)
end.
""",
    "backward_out_of_cond": """\
program bwdcond;
label 10;
var n, s: integer;
begin
  n := 3;
  s := 0;
10: s := s + n;
  n := n - 1;
  if s < 50 then begin
    s := s + 1;
    if n > 0 then goto 10
  end;
  writeln(s)
end.
""",
    "forward_out_of_loop": """\
program fwdloop;
label 10;
var i, s: integer;
begin
  s := 0;
  i := 6;
  while i > 0 do begin
    i := i - 1;
    s := s + i;
    if s > 7 then goto 10;
    s := s + 1
  end;
  s := -s;
10: writeln(i);
  writeln(s)
end.
""",
    "backward_out_of_loop": """\
program bwdloop;
label 10;
var g, c, s: integer;
begin
  g := 2;
  s := 0;
10: g := g - 1;
  c := 3;
  while c > 0 do begin
    c := c - 1;
    s := s + 1;
    if g > 0 then goto 10
  end;
  writeln(s)
end.
""",
    "forward_into_block": """\
program fwdinto;
label 10;
var v, w: integer;
begin
  v := 0;
  if v = 1 then goto 10;
  w := 5;
  begin
    w := w + 1;
10: w := w + 2
  end;
  writeln(w)
end.
""",
    "backward_into_block": """\
program bwdinto;
label 10;
var v, w: integer;
begin
  v := 0;
  begin
    w := 1;
10: w := w + 3
  end;
  w := w * 2;
  if v = 1 then goto 10;
  writeln(w)
end.
""",
    "sibling_blocks": """\
program sibling;
label 10;
var v, w: integer;
begin
  v := 0;
  begin
    w := 2;
    if v = 1 then goto 10
  end;
  begin
    w := w + 5;
10: w := w + 7
  end;
  writeln(w)
end.
""",
    "global_out_of_routine": """\
program glbroutine;
label 90;
var g: integer;

procedure escape(k: integer);
begin
  g := g + k;
  if g > 4 then goto 90
end;

begin
  g := 0;
  escape(2);
  escape(3);
  escape(5);
  g := -100;
90: writeln(g)
end.
""",
    "global_out_of_loop": """\
program glbloop;
label 90;
var g: integer;

procedure drain(k: integer);
var c: integer;
begin
  c := k;
  while c > 0 do begin
    c := c - 1;
    g := g + 2;
    if g > 6 then goto 90
  end
end;

begin
  g := 1;
  drain(5);
  g := -100;
90: writeln(g)
end.
""",
    "multi_goto_label": """\
program multigoto;
label 10;
var x, y: integer;
begin
  x := 2;
  y := 0;
  if x > 5 then goto 10;
  y := y + 1;
  if x > 1 then goto 10;
  y := y + 10;
10: y := y + 100;
  writeln(y)
end.
""",
}


def case_program(case: object) -> str:
    """The canonical program for a taxonomy case (enum member or name)."""
    key = getattr(case, "value", case)
    return CASE_PROGRAMS[str(key)]


# ----------------------------------------------------------------------
# minimization


def minimize_program(
    source: str, still_fails: Callable[[str], bool], max_rounds: int = 20
) -> str:
    """Shrink a failing program by line deletion (ddmin-style).

    Repeatedly deletes contiguous line chunks (halving the chunk size
    down to single lines); a candidate is accepted when it still parses
    and analyzes cleanly AND ``still_fails`` returns True for it. The
    predicate should capture the complete failure condition (e.g. "the
    transformed output differs from the original output").
    """
    from repro.pascal import analyze, parse_program

    def valid(candidate: str) -> bool:
        try:
            analyze(parse_program(candidate))
        except Exception:
            return False
        return True

    lines = source.splitlines()
    for _ in range(max_rounds):
        shrunk = False
        chunk = max(len(lines) // 2, 1)
        while chunk >= 1:
            start = 0
            while start < len(lines):
                candidate_lines = lines[:start] + lines[start + chunk :]
                candidate = _rejoin(candidate_lines)
                if valid(candidate) and still_fails(candidate):
                    lines = candidate_lines
                    shrunk = True
                else:
                    start += chunk
            chunk //= 2
        if not shrunk:
            break
    return _rejoin(lines)


def _rejoin(lines: list[str]) -> str:
    """Glue candidate lines back into parseable text, tolerating the
    dangling separators line deletion leaves behind."""
    text = "\n".join(lines)
    # `x := 1;\n<deleted>\ny := 2` leaves `;` before `end` etc. — the
    # parser tolerates empty statements, so no fixup is needed here;
    # callers rely on the validity check instead.
    return text + ("\n" if not text.endswith("\n") else "")
