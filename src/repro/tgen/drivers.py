"""Generation of executable test-case driver programs (paper §2).

"By extending the test specification with declarations and executable
statements the system can generate executable test cases from test
frames."

:func:`generate_driver` emits a *Mini-Pascal program* that exercises the
unit under test with every case's concrete values and prints one
``pass``/``fail`` verdict line per case; :func:`run_driver` executes the
driver and turns its output back into :class:`TestReport` rows — the
same executable-test-case round trip T-GEN performs.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.pascal import ast_nodes as ast
from repro.pascal.errors import PascalError
from repro.pascal.interpreter import run_source
from repro.pascal.pretty import PrettyPrinter, print_routine
from repro.pascal.semantics import AnalyzedProgram
from repro.pascal.symbols import ArrayTypeInfo, BOOLEAN, INTEGER
from repro.pascal.values import ArrayValue, UNDEFINED
from repro.tgen.cases import TestCase
from repro.tgen.reports import TestReport, TestReportDatabase, Verdict


class DriverError(Exception):
    """Raised when a driver cannot be generated for the given cases."""


@dataclass
class DriverProgram:
    """A generated executable test driver."""

    source: str
    unit: str
    cases: list[TestCase]

    @property
    def case_count(self) -> int:
        return len(self.cases)


def generate_driver(
    analysis: AnalyzedProgram, unit: str, cases: list[TestCase]
) -> DriverProgram:
    """Emit a runnable Mini-Pascal driver for ``cases`` against ``unit``.

    The driver copies the host program's declarations (types, constants,
    and every routine) and replaces the main body with one block per
    case: argument setup, the unit call, and an expected-value check
    printing ``pass <n>`` / ``fail <n>``.
    """
    info = analysis.routine_named(unit)
    if info.is_main:
        raise DriverError("cannot generate a driver for the main program")
    for case in cases:
        if case.unit != unit:
            raise DriverError(
                f"case for {case.unit!r} given to a driver for {unit!r}"
            )
        if case.globals_in:
            raise DriverError(
                "driver generation does not support seeded globals"
            )

    printer = PrettyPrinter()
    lines: list[str] = [f"program drive_{unit};"]
    block = analysis.program.block
    if block.consts:
        lines.append("const")
        for const in block.consts:
            lines.append(f"  {const.name} = {printer.format_expr(const.value)};")
    if block.types:
        lines.append("type")
        for decl in block.types:
            lines.append(f"  {decl.name} = {printer.format_type(decl.type_expr)};")

    declarations: list[str] = []
    body: list[str] = []
    for index, case in enumerate(cases, start=1):
        declarations.extend(_case_declarations(info, index, printer))
        body.extend(_case_statements(info, case, index))

    if declarations:
        lines.append("var")
        lines.extend(f"  {declaration}" for declaration in declarations)
    for routine in block.routines:
        lines.append(print_routine(routine).rstrip())
    lines.append("begin")
    for statement in body:
        lines.append(f"  {statement}")
    if body and lines[-1].endswith(";"):
        lines[-1] = lines[-1][:-1]
    lines.append("end.")
    return DriverProgram(
        source="\n".join(lines) + "\n", unit=unit, cases=list(cases)
    )


def _case_declarations(info, index: int, printer: PrettyPrinter) -> list[str]:
    declarations = []
    for position, param in enumerate(info.params):
        decl = param.decl
        assert isinstance(decl, ast.Param)
        declarations.append(
            f"arg{index}_{position}: {printer.format_type(decl.type_expr)};"
        )
    if info.result_symbol is not None:
        result_type = "boolean" if info.result_symbol.type is BOOLEAN else "integer"
        declarations.append(f"res{index}: {result_type};")
    return declarations


def _literal(value: object) -> str:
    if isinstance(value, bool):
        return "true" if value else "false"
    if isinstance(value, int):
        return str(value)
    raise DriverError(f"cannot render {value!r} as a Pascal literal")


def _case_statements(info, case: TestCase, index: int) -> list[str]:
    statements: list[str] = []
    arg_names: list[str] = []
    for position, (param, value) in enumerate(zip(info.params, case.args)):
        name = f"arg{index}_{position}"
        arg_names.append(name)
        if value is UNDEFINED:
            continue
        if isinstance(value, ArrayValue):
            for element_index in range(value.low, value.high + 1):
                element = value.get(element_index)
                if element is UNDEFINED:
                    continue
                statements.append(
                    f"{name}[{element_index}] := {_literal(element)};"
                )
        else:
            statements.append(f"{name} := {_literal(value)};")

    call = f"{info.name}({', '.join(arg_names)})"
    if info.result_symbol is not None:
        statements.append(f"res{index} := {call};")
    else:
        statements.append(f"{call};")

    checks = _expected_checks(info, case, index)
    if checks:
        condition = " and ".join(checks)
        statements.append(
            f"if {condition} then writeln('pass {index}') "
            f"else writeln('fail {index}');"
        )
    else:
        statements.append(f"writeln('pass {index}');")
    return statements


def _expected_checks(info, case: TestCase, index: int) -> list[str]:
    if callable(case.expected):
        raise DriverError(
            "predicate expectations cannot be compiled into a driver; "
            "use a mapping of expected values"
        )
    checks: list[str] = []
    param_positions = {param.name: pos for pos, param in enumerate(info.params)}
    for key, expected in case.expected.items():
        if key == "result":
            checks.append(f"(res{index} = {_literal(expected)})")
        elif key in param_positions:
            position = param_positions[key]
            checks.append(f"(arg{index}_{position} = {_literal(expected)})")
        else:
            raise DriverError(f"expected key {key!r} is not an output of {info.name}")
    return checks


def run_driver(
    driver: DriverProgram, database: TestReportDatabase | None = None
) -> TestReportDatabase:
    """Execute a generated driver and collect its verdicts as reports."""
    db = database if database is not None else TestReportDatabase()
    try:
        result = run_source(driver.source)
        lines = result.io.lines
    except PascalError as error:
        for case in driver.cases:
            db.add(
                TestReport(
                    unit=driver.unit,
                    frame_key=case.frame.key,
                    verdict=Verdict.ERROR,
                    case_args=tuple(case.args),
                    detail=f"driver crashed: {error}",
                    script=case.script,
                )
            )
        return db

    verdicts: dict[int, str] = {}
    for line in lines:
        parts = line.split()
        if len(parts) == 2 and parts[0] in ("pass", "fail") and parts[1].isdigit():
            verdicts[int(parts[1])] = parts[0]
    for index, case in enumerate(driver.cases, start=1):
        verdict_text = verdicts.get(index)
        verdict = {
            "pass": Verdict.PASS,
            "fail": Verdict.FAIL,
            None: Verdict.ERROR,
        }[verdict_text]
        db.add(
            TestReport(
                unit=driver.unit,
                frame_key=case.frame.key,
                verdict=verdict,
                case_args=tuple(case.args),
                detail="" if verdict_text else "no verdict line in driver output",
                script=case.script,
            )
        )
    return db
