"""Test-frame generation (paper §2).

"If the categories and choices for a program have been defined, then
T-GEN is able to generate all the possible test frames. A test frame
contains exactly one choice from each category. ... A choice can be made
in a test frame if the selector expression associated with the choice is
true. ... Only one frame is generated for each choice associated with
the SINGLE property."

Selector evaluation follows Ostrand & Balcer: categories are processed
in declaration order, and a choice's selector sees the properties
contributed by the choices already placed in the partial frame.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.tgen.spec_ast import Category, Choice, TestSpec


@dataclass(frozen=True)
class TestFrame:
    """One generated frame: a choice name per category, in spec order."""

    unit: str
    choices: tuple[str, ...]
    categories: tuple[str, ...]
    properties: frozenset[str]

    @property
    def key(self) -> tuple[str, ...]:
        """The frame's coded form, used to index the report database."""
        return self.choices

    def choice_of(self, category: str) -> str:
        try:
            index = self.categories.index(category)
        except ValueError:
            raise KeyError(f"frame has no category {category!r}") from None
        return self.choices[index]

    def render(self) -> str:
        return "(" + ", ".join(self.choices) + ")"

    def __str__(self) -> str:
        return f"{self.unit}{self.render()}"


def generate_frames(spec: TestSpec) -> list[TestFrame]:
    """All frames of ``spec``: the selector-filtered cartesian product over
    non-SINGLE choices, plus exactly one frame per SINGLE choice."""
    category_names = tuple(category.name for category in spec.categories)
    frames: list[TestFrame] = []

    def emit(choices: list[Choice]) -> None:
        properties: set[str] = set()
        for choice in choices:
            properties |= set(choice.visible_properties)
        frames.append(
            TestFrame(
                unit=spec.unit,
                choices=tuple(choice.name for choice in choices),
                categories=category_names,
                properties=frozenset(properties),
            )
        )

    def expand(index: int, partial: list[Choice], properties: set[str]) -> None:
        if index == len(spec.categories):
            emit(partial)
            return
        for choice in spec.categories[index].choices:
            if choice.is_single:
                continue
            if not choice.selector.evaluate(properties):
                continue
            expand(
                index + 1,
                partial + [choice],
                properties | set(choice.visible_properties),
            )

    expand(0, [], set())

    # One frame per SINGLE choice: the single choice plus, for every other
    # category, the first eligible non-SINGLE choice.
    for position, category in enumerate(spec.categories):
        for single_choice in category.choices:
            if not single_choice.is_single:
                continue
            frame = _single_frame(spec, position, single_choice)
            if frame is not None:
                frames.append(frame)
    return frames


def _single_frame(
    spec: TestSpec, single_position: int, single_choice: Choice
) -> TestFrame | None:
    choices: list[Choice] = []
    properties: set[str] = set()
    for index, category in enumerate(spec.categories):
        if index == single_position:
            if not single_choice.selector.evaluate(properties):
                return None
            choices.append(single_choice)
            properties |= set(single_choice.visible_properties)
            continue
        picked = _first_eligible(category, properties)
        if picked is None:
            return None
        choices.append(picked)
        properties |= set(picked.visible_properties)
    return TestFrame(
        unit=spec.unit,
        choices=tuple(choice.name for choice in choices),
        categories=tuple(category.name for category in spec.categories),
        properties=frozenset(properties),
    )


def _first_eligible(category: Category, properties: set[str]) -> Choice | None:
    for choice in category.choices:
        if choice.is_single:
            continue
        if choice.selector.evaluate(properties):
            return choice
    return None


def frame_for_choices(spec: TestSpec, choice_names: dict[str, str]) -> TestFrame:
    """Build (and validate) the frame selecting ``choice_names[category]``
    for each category — used by frame-selector functions and the menu
    interaction of the test-case lookup."""
    choices: list[Choice] = []
    properties: set[str] = set()
    for category in spec.categories:
        name = choice_names.get(category.name)
        if name is None:
            raise KeyError(f"no choice given for category {category.name!r}")
        choice = category.choice_named(name)
        if not choice.selector.evaluate(properties):
            raise ValueError(
                f"choice {name!r} of category {category.name!r} is not "
                "admissible given the earlier choices"
            )
        choices.append(choice)
        properties |= set(choice.visible_properties)
    return TestFrame(
        unit=spec.unit,
        choices=tuple(choice.name for choice in choices),
        categories=tuple(category.name for category in spec.categories),
        properties=frozenset(properties),
    )
