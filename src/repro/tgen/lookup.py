"""Test-case lookup: the debugger-facing component (paper §5.3.2).

During debugging the concrete input values of a queried unit are known.
Two ways to find the corresponding test frame:

* "For many procedures a function can be defined which automatically
  selects the suitable test frame" — a registered :data:`FrameSelector`;
* otherwise "the test specification can be used in the user interactions
  to select the correct test frame ... from a menu" — a pluggable menu
  callback (one *light* interaction instead of a correctness judgment).

A frame with a good (passing) report answers the query *yes* without the
user; a missing frame or a failing report leaves the query open ("the
debugging must go on inside the procedure").
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field
from typing import Callable, Mapping, Protocol, runtime_checkable

from repro.tgen.frames import TestFrame
from repro.tgen.reports import TestReport, Verdict
from repro.tgen.spec_ast import TestSpec


@runtime_checkable
class ReportBackend(Protocol):
    """What the lookup needs from a report database: the in-memory
    :class:`~repro.tgen.reports.TestReportDatabase` and the persistent
    :class:`repro.store.ShardedReportStore` both satisfy it."""

    def lookup(self, unit: str, frame_key: tuple[str, ...]) -> list[TestReport]:
        ...

    def verdict_for(self, unit: str, frame_key: tuple[str, ...]) -> Verdict | None:
        ...

#: Maps concrete input values (by parameter name) to the matching frame,
#: or None when the inputs fall outside the specified categories.
FrameSelector = Callable[[Mapping[str, object]], TestFrame | None]

#: Menu interaction: given the spec and inputs, let the user pick a frame.
MenuCallback = Callable[[TestSpec, Mapping[str, object]], TestFrame | None]

#: Built-in frame selectors by unit name. Workload modules register the
#: selector that pairs with their spec (``repro.workloads.arrsum_spec``
#: does for ``arrsum``), so consumers that only receive spec *files* —
#: the ``repro debug --testdb --spec`` path — can still answer queries
#: automatically instead of falling back to the menu or the user.
FRAME_SELECTORS: dict[str, FrameSelector] = {}


def register_frame_selector(unit: str, selector: FrameSelector) -> FrameSelector:
    """Register ``selector`` as the built-in selector for ``unit``."""
    FRAME_SELECTORS[unit] = selector
    return selector


class LookupStatus(enum.Enum):
    VERIFIED = "verified"  # good report: the query is answered 'yes'
    FAILED_REPORT = "failed-report"  # frame known but a test failed
    CONFLICTING_REPORTS = "conflicting-reports"  # reports disagree
    NO_REPORT = "no-report"  # frame identified, never tested
    NO_FRAME = "no-frame"  # could not map the inputs to a frame
    NO_SPEC = "no-spec"  # unit has no test specification


@dataclass(frozen=True)
class LookupOutcome:
    status: LookupStatus
    frame: TestFrame | None = None
    detail: str = ""

    @property
    def answers_yes(self) -> bool:
        return self.status is LookupStatus.VERIFIED


@dataclass
class TestCaseLookup:
    """Holds specs, selectors, and the report database for one program."""

    database: ReportBackend
    specs: dict[str, TestSpec] = field(default_factory=dict)
    selectors: dict[str, FrameSelector] = field(default_factory=dict)
    menu: MenuCallback | None = None
    #: statistics the benchmarks report
    consultations: int = 0
    hits: int = 0
    menu_interactions: int = 0
    #: frames whose reports disagreed (see :data:`Verdict.INCONCLUSIVE`)
    conflicts: int = 0

    def register(
        self,
        spec: TestSpec,
        selector: FrameSelector | None = None,
    ) -> None:
        self.specs[spec.unit] = spec
        if selector is not None:
            self.selectors[spec.unit] = selector

    def consult(self, unit: str, inputs: Mapping[str, object]) -> LookupOutcome:
        """Try to answer "is this call of ``unit`` correct?" from tests."""
        self.consultations += 1
        spec = self.specs.get(unit)
        if spec is None:
            return LookupOutcome(LookupStatus.NO_SPEC)
        frame = self._find_frame(unit, spec, inputs)
        if frame is None:
            return LookupOutcome(LookupStatus.NO_FRAME)
        verdict = self.database.verdict_for(unit, frame.key)
        if verdict is None:
            return LookupOutcome(
                LookupStatus.NO_REPORT,
                frame=frame,
                detail=f"frame {frame.render()} has no test report",
            )
        if verdict is Verdict.PASS:
            self.hits += 1
            return LookupOutcome(
                LookupStatus.VERIFIED,
                frame=frame,
                detail=f"frame {frame.render()} passed its tests",
            )
        if verdict is Verdict.INCONCLUSIVE:
            # Conflicting reports prove nothing: surface the conflict
            # instead of silently trusting either side, and leave the
            # query for the next answer source.
            self.conflicts += 1
            return LookupOutcome(
                LookupStatus.CONFLICTING_REPORTS,
                frame=frame,
                detail=f"frame {frame.render()} has conflicting reports",
            )
        return LookupOutcome(
            LookupStatus.FAILED_REPORT,
            frame=frame,
            detail=f"frame {frame.render()} has a {verdict.value} report",
        )

    def _find_frame(
        self, unit: str, spec: TestSpec, inputs: Mapping[str, object]
    ) -> TestFrame | None:
        selector = self.selectors.get(unit)
        if selector is not None:
            return selector(inputs)
        if self.menu is not None:
            self.menu_interactions += 1
            return self.menu(spec, inputs)
        return None
