"""Menu-based frame selection (paper §5.3.2).

"For some procedures we cannot define such [automatic frame-selector]
functions. In this case, the test specification can be used in the user
interactions to select the correct test frame. The interactions based on
the test specification are much more convenient for the user, because
he/she can select the suitable choices from a menu."

:class:`TerminalMenu` walks the specification category by category,
offering only the choices whose selectors are satisfied by the picks
made so far, and returns the completed frame (or None if the user
abandons the menu).
"""

from __future__ import annotations

from typing import Callable, Mapping, TextIO

from repro.pascal.values import format_value
from repro.tgen.frames import TestFrame
from repro.tgen.spec_ast import Category, Choice, TestSpec


class TerminalMenu:
    """Interactive choice-per-category frame selection.

    Accepts a choice by number or name; empty input or ``q`` abandons
    the menu (the lookup then reports ``NO_FRAME`` and the debugger asks
    the user the original question instead).
    """

    def __init__(
        self,
        input_fn: Callable[[str], str] = input,
        output: TextIO | None = None,
    ):
        self._input = input_fn
        self._output = output

    def _emit(self, text: str) -> None:
        if self._output is not None:
            self._output.write(text + "\n")

    def __call__(
        self, spec: TestSpec, inputs: Mapping[str, object]
    ) -> TestFrame | None:
        self._emit(f"Select the test frame for {spec.unit} with inputs:")
        for name, value in inputs.items():
            try:
                rendered = format_value(value)
            except TypeError:
                rendered = repr(value)
            self._emit(f"  {name} = {rendered}")

        picked: list[Choice] = []
        properties: set[str] = set()
        for category in spec.categories:
            choice = self._pick(category, properties)
            if choice is None:
                self._emit("menu abandoned")
                return None
            picked.append(choice)
            properties |= set(choice.visible_properties)
        frame = TestFrame(
            unit=spec.unit,
            choices=tuple(choice.name for choice in picked),
            categories=tuple(category.name for category in spec.categories),
            properties=frozenset(properties),
        )
        self._emit(f"selected frame {frame.render()}")
        return frame

    def _pick(self, category: Category, properties: set[str]) -> Choice | None:
        admissible = [
            choice
            for choice in category.choices
            if choice.selector.evaluate(properties)
        ]
        if not admissible:
            return None
        if len(admissible) == 1:
            self._emit(
                f"category {category.name}: only {admissible[0].name!r} fits"
            )
            return admissible[0]
        self._emit(f"category {category.name}:")
        for position, choice in enumerate(admissible, start=1):
            self._emit(f"  {position}. {choice.name}")
        while True:
            raw = self._input(f"{category.name}> ").strip().lower()
            if raw in ("", "q", "quit"):
                return None
            if raw.isdigit() and 1 <= int(raw) <= len(admissible):
                return admissible[int(raw) - 1]
            for choice in admissible:
                if choice.name == raw:
                    return choice
            self._emit(
                "pick a number or a choice name "
                f"(1..{len(admissible)}), or q to abandon"
            )
