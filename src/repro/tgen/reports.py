"""The test-report database (paper §2, §5.3.2).

"During the execution of the test cases, test reports are produced in a
database. These test reports can easily be accessed by using a coded
form of the test frames."
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field

from repro.pascal.values import format_value


class Verdict(enum.Enum):
    PASS = "pass"
    FAIL = "fail"
    ERROR = "error"  # the case itself crashed (bad index, step limit, ...)


@dataclass(frozen=True)
class TestReport:
    """One executed test case's outcome."""

    unit: str
    frame_key: tuple[str, ...]
    verdict: Verdict
    case_args: tuple[object, ...] = ()
    outputs: tuple[tuple[str, object], ...] = ()
    detail: str = ""
    script: str | None = None

    def render(self) -> str:
        args = ", ".join(format_value(value) for value in self.case_args)
        return (
            f"{self.unit}({args}) frame=({', '.join(self.frame_key)}) "
            f"-> {self.verdict.value}"
            + (f" [{self.detail}]" if self.detail else "")
        )


@dataclass
class TestReportDatabase:
    """Reports indexed by (unit, coded frame)."""

    _reports: dict[tuple[str, tuple[str, ...]], list[TestReport]] = field(
        default_factory=dict
    )

    def add(self, report: TestReport) -> None:
        key = (report.unit, report.frame_key)
        self._reports.setdefault(key, []).append(report)

    def lookup(self, unit: str, frame_key: tuple[str, ...]) -> list[TestReport]:
        return list(self._reports.get((unit, frame_key), ()))

    def verdict_for(self, unit: str, frame_key: tuple[str, ...]) -> Verdict | None:
        """The combined verdict for a frame: PASS only if every report
        passed; FAIL/ERROR if any did; None if the frame was never run."""
        reports = self._reports.get((unit, frame_key))
        if not reports:
            return None
        if any(report.verdict is Verdict.ERROR for report in reports):
            return Verdict.ERROR
        if any(report.verdict is Verdict.FAIL for report in reports):
            return Verdict.FAIL
        return Verdict.PASS

    def units(self) -> set[str]:
        return {unit for unit, _ in self._reports}

    def frames_of(self, unit: str) -> list[tuple[str, ...]]:
        return [key for u, key in self._reports if u == unit]

    def all_reports(self) -> list[TestReport]:
        return [report for reports in self._reports.values() for report in reports]

    def __len__(self) -> int:
        return sum(len(reports) for reports in self._reports.values())
