"""The test-report database (paper §2, §5.3.2).

"During the execution of the test cases, test reports are produced in a
database. These test reports can easily be accessed by using a coded
form of the test frames."
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field
from typing import Iterable

from repro.pascal.values import format_value


class Verdict(enum.Enum):
    PASS = "pass"
    FAIL = "fail"
    ERROR = "error"  # the case itself crashed (bad index, step limit, ...)
    #: combined verdict for a frame whose reports *disagree* (some pass,
    #: some fail/error): the frame proves nothing either way, so the
    #: query it would have answered stays open instead of silently
    #: trusting one side of the conflict
    INCONCLUSIVE = "inconclusive"


def combine_verdicts(reports: "Iterable[TestReport]") -> Verdict | None:
    """The combined verdict of a frame's reports, shared by the
    in-memory database and the sharded on-disk store so both backends
    agree report-for-report.

    PASS only if every report passed; ERROR/FAIL when every report
    agrees the frame is bad (ERROR dominates FAIL); None with no
    reports. Disagreement — passing and non-passing reports for the
    same frame — is an explicit :data:`Verdict.INCONCLUSIVE`, never a
    silent preference for one side.
    """
    saw_pass = saw_fail = saw_error = False
    for report in reports:
        if report.verdict is Verdict.PASS:
            saw_pass = True
        elif report.verdict is Verdict.FAIL:
            saw_fail = True
        elif report.verdict is Verdict.ERROR:
            saw_error = True
        else:  # a stored INCONCLUSIVE taints the whole frame
            return Verdict.INCONCLUSIVE
    if not (saw_pass or saw_fail or saw_error):
        return None
    if saw_pass and (saw_fail or saw_error):
        return Verdict.INCONCLUSIVE
    if saw_error:
        return Verdict.ERROR
    if saw_fail:
        return Verdict.FAIL
    return Verdict.PASS


@dataclass(frozen=True)
class TestReport:
    """One executed test case's outcome."""

    unit: str
    frame_key: tuple[str, ...]
    verdict: Verdict
    case_args: tuple[object, ...] = ()
    outputs: tuple[tuple[str, object], ...] = ()
    detail: str = ""
    script: str | None = None

    def render(self) -> str:
        args = ", ".join(format_value(value) for value in self.case_args)
        return (
            f"{self.unit}({args}) frame=({', '.join(self.frame_key)}) "
            f"-> {self.verdict.value}"
            + (f" [{self.detail}]" if self.detail else "")
        )


@dataclass
class TestReportDatabase:
    """Reports indexed by (unit, coded frame)."""

    _reports: dict[tuple[str, tuple[str, ...]], list[TestReport]] = field(
        default_factory=dict
    )

    def add(self, report: TestReport) -> None:
        key = (report.unit, report.frame_key)
        self._reports.setdefault(key, []).append(report)

    def lookup(self, unit: str, frame_key: tuple[str, ...]) -> list[TestReport]:
        return list(self._reports.get((unit, frame_key), ()))

    def verdict_for(self, unit: str, frame_key: tuple[str, ...]) -> Verdict | None:
        """The combined verdict for a frame (see :func:`combine_verdicts`):
        PASS only if every report passed, FAIL/ERROR when the reports
        agree the frame is bad, INCONCLUSIVE when they conflict, None if
        the frame was never run."""
        return combine_verdicts(self._reports.get((unit, frame_key), ()))

    def units(self) -> set[str]:
        return {unit for unit, _ in self._reports}

    def frames_of(self, unit: str) -> list[tuple[str, ...]]:
        return [key for u, key in self._reports if u == unit]

    def all_reports(self) -> list[TestReport]:
        return [report for reports in self._reports.values() for report in reports]

    def __len__(self) -> int:
        return sum(len(reports) for reports in self._reports.values())
