"""Test scripts and result categories (T-GEN's extensions, paper §2).

"Running test cases in applications usually necessitates time-consuming
installation of environment parameters. The test frames using the same
environment can be divided into test scripts by way of selector
expressions."
"""

from __future__ import annotations

from repro.tgen.frames import TestFrame
from repro.tgen.spec_ast import TestSpec


def assign_scripts(spec: TestSpec, frame: TestFrame) -> list[str]:
    """Names of the scripts whose selectors accept the frame."""
    return [
        script.name
        for script in spec.scripts
        if script.selector.evaluate(set(frame.properties))
    ]


def frames_by_script(
    spec: TestSpec, frames: list[TestFrame]
) -> dict[str, list[TestFrame]]:
    """Partition generated frames into the spec's scripts."""
    assignment: dict[str, list[TestFrame]] = {
        script.name: [] for script in spec.scripts
    }
    for frame in frames:
        for name in assign_scripts(spec, frame):
            assignment[name].append(frame)
    return assignment


def result_choices_for(spec: TestSpec, frame: TestFrame) -> list[str]:
    """Expected-result choices applicable to the frame."""
    return [
        result.name
        for result in spec.results
        if result.selector.evaluate(set(frame.properties))
    ]
