"""Data model for T-GEN test specifications (paper §2, Figure 1).

A specification for one unit under test consists of

* **categories** — the critical properties of the input parameters, each
  divided into **choices** ("presuming that the behavior of the elements
  of one choice is identical from the point of view of the test process");
* per-choice **property names** — logical variables that become true when
  a frame contains that choice — and **selector expressions** over those
  properties which gate when a choice may appear in a frame;
* **scripts** — selector-defined groups of frames sharing a test
  environment;
* **result choices** — selector-defined categories of expected results.

The special property ``SINGLE`` marks choices for which only one test
frame is generated.
"""

from __future__ import annotations

from dataclasses import dataclass, field

SINGLE = "single"


class Selector:
    """A boolean expression over property names."""

    def evaluate(self, properties: set[str]) -> bool:
        raise NotImplementedError

    def mentioned(self) -> set[str]:
        raise NotImplementedError


@dataclass(frozen=True)
class PropRef(Selector):
    name: str

    def evaluate(self, properties: set[str]) -> bool:
        return self.name in properties

    def mentioned(self) -> set[str]:
        return {self.name}

    def __str__(self) -> str:
        return self.name.upper()


@dataclass(frozen=True)
class Not(Selector):
    operand: Selector

    def evaluate(self, properties: set[str]) -> bool:
        return not self.operand.evaluate(properties)

    def mentioned(self) -> set[str]:
        return self.operand.mentioned()

    def __str__(self) -> str:
        return f"not {self.operand}"


@dataclass(frozen=True)
class And(Selector):
    left: Selector
    right: Selector

    def evaluate(self, properties: set[str]) -> bool:
        return self.left.evaluate(properties) and self.right.evaluate(properties)

    def mentioned(self) -> set[str]:
        return self.left.mentioned() | self.right.mentioned()

    def __str__(self) -> str:
        return f"({self.left} and {self.right})"


@dataclass(frozen=True)
class Or(Selector):
    left: Selector
    right: Selector

    def evaluate(self, properties: set[str]) -> bool:
        return self.left.evaluate(properties) or self.right.evaluate(properties)

    def mentioned(self) -> set[str]:
        return self.left.mentioned() | self.right.mentioned()

    def __str__(self) -> str:
        return f"({self.left} or {self.right})"


@dataclass(frozen=True)
class Always(Selector):
    def evaluate(self, properties: set[str]) -> bool:
        return True

    def mentioned(self) -> set[str]:
        return set()

    def __str__(self) -> str:
        return "true"


@dataclass
class Choice:
    """One choice of a category, e.g. ``mixed : if MORE property MIXED``."""

    name: str
    selector: Selector = field(default_factory=Always)
    properties: frozenset[str] = frozenset()

    @property
    def is_single(self) -> bool:
        return SINGLE in self.properties

    @property
    def visible_properties(self) -> frozenset[str]:
        return frozenset(p for p in self.properties if p != SINGLE)


@dataclass
class Category:
    """One input-parameter category, e.g. ``size_of_array``."""

    name: str
    choices: list[Choice] = field(default_factory=list)

    def choice_named(self, name: str) -> Choice:
        for choice in self.choices:
            if choice.name == name:
                return choice
        raise KeyError(f"category {self.name!r} has no choice {name!r}")


@dataclass
class ScriptDef:
    """A test script: groups frames sharing an environment."""

    name: str
    selector: Selector = field(default_factory=Always)


@dataclass
class ResultChoice:
    """An expected-result category choice."""

    name: str
    selector: Selector = field(default_factory=Always)


@dataclass
class TestSpec:
    """A complete test specification for one unit."""

    unit: str
    categories: list[Category] = field(default_factory=list)
    scripts: list[ScriptDef] = field(default_factory=list)
    results: list[ResultChoice] = field(default_factory=list)

    def category_named(self, name: str) -> Category:
        for category in self.categories:
            if category.name == name:
                return category
        raise KeyError(f"spec for {self.unit!r} has no category {name!r}")

    def all_properties(self) -> set[str]:
        names: set[str] = set()
        for category in self.categories:
            for choice in category.choices:
                names |= set(choice.visible_properties)
        return names
