"""Parser for the T-GEN test-specification language.

Grammar (a cleaned-up rendering of the paper's Figure 1 syntax):

    spec      ::= 'test' IDENT ';' section*
    section   ::= category | scripts | results
    category  ::= 'category' IDENT ';' choice*
    choice    ::= IDENT ':' clause* ';'
    clause    ::= 'if' selector | 'property' IDENT (',' IDENT)*
    scripts   ::= 'scripts' entry*
    results   ::= 'result' entry* | 'results' entry*
    entry     ::= IDENT ':' ['if' selector] ';'
    selector  ::= disjunction of conjunctions of [not] IDENT / ( selector )

Property names and identifiers are case-insensitive (the paper writes
properties in upper case: ``if MIXED property MIXED``).
"""

from __future__ import annotations

import re

from repro.tgen.spec_ast import (
    Always,
    And,
    Category,
    Choice,
    Not,
    Or,
    PropRef,
    ResultChoice,
    ScriptDef,
    Selector,
    TestSpec,
)


class SpecError(Exception):
    """Raised when a test specification cannot be parsed or is inconsistent."""


_TOKEN_RE = re.compile(
    r"""
    (?P<comment>\{[^}]*\}|\(\*.*?\*\))
  | (?P<ident>[A-Za-z_][A-Za-z0-9_]*)
  | (?P<punct>[;:,()])
  | (?P<space>\s+)
  | (?P<bad>.)
    """,
    re.VERBOSE | re.DOTALL,
)

_KEYWORDS = {
    "test",
    "category",
    "scripts",
    "result",
    "results",
    "if",
    "property",
    "and",
    "or",
    "not",
}


def _tokenize(text: str) -> list[str]:
    tokens: list[str] = []
    for match in _TOKEN_RE.finditer(text):
        kind = match.lastgroup
        if kind in ("space", "comment"):
            continue
        if kind == "bad":
            raise SpecError(f"unexpected character {match.group()!r} in test spec")
        value = match.group()
        tokens.append(value.lower() if kind == "ident" else value)
    return tokens


class _SpecParser:
    def __init__(self, tokens: list[str]):
        self._tokens = tokens
        self._pos = 0

    def _peek(self) -> str | None:
        return self._tokens[self._pos] if self._pos < len(self._tokens) else None

    def _next(self) -> str:
        token = self._peek()
        if token is None:
            raise SpecError("unexpected end of test spec")
        self._pos += 1
        return token

    def _expect(self, expected: str) -> None:
        token = self._next()
        if token != expected:
            raise SpecError(f"expected {expected!r}, found {token!r}")

    def _expect_ident(self) -> str:
        token = self._next()
        if not token[0].isalpha() and token[0] != "_":
            raise SpecError(f"expected a name, found {token!r}")
        return token

    # ------------------------------------------------------------------

    def parse(self) -> TestSpec:
        self._expect("test")
        unit = self._expect_ident()
        self._skip_separator()
        spec = TestSpec(unit=unit)
        while self._peek() is not None:
            section = self._next()
            if section == "category":
                spec.categories.append(self._parse_category())
            elif section == "scripts":
                spec.scripts.extend(
                    ScriptDef(name=name, selector=selector)
                    for name, selector in self._parse_entries()
                )
            elif section in ("result", "results"):
                spec.results.extend(
                    ResultChoice(name=name, selector=selector)
                    for name, selector in self._parse_entries()
                )
            else:
                raise SpecError(f"unexpected section {section!r}")
        self._validate(spec)
        return spec

    def _skip_separator(self) -> None:
        if self._peek() in (";", ","):
            self._next()

    def _parse_category(self) -> Category:
        name = self._expect_ident()
        self._skip_separator()
        category = Category(name=name)
        while self._peek() is not None and self._peek() not in (
            "category",
            "scripts",
            "result",
            "results",
        ):
            category.choices.append(self._parse_choice())
        if not category.choices:
            raise SpecError(f"category {name!r} has no choices")
        return category

    def _parse_choice(self) -> Choice:
        name = self._expect_ident()
        self._expect(":")
        selector: Selector = Always()
        properties: set[str] = set()
        while self._peek() not in (";", ",", None):
            clause = self._next()
            if clause == "if":
                selector = self._parse_selector()
            elif clause == "property":
                properties.add(self._expect_ident())
                while self._peek() == ",":
                    # A comma either separates properties or ends the choice;
                    # look ahead for "ident :" to disambiguate.
                    save = self._pos
                    self._next()
                    if (
                        self._peek() is not None
                        and self._pos + 1 < len(self._tokens)
                        and self._tokens[self._pos + 1] == ":"
                    ):
                        self._pos = save
                        break
                    properties.add(self._expect_ident())
            else:
                raise SpecError(f"unexpected token {clause!r} in choice {name!r}")
        self._skip_separator()
        return Choice(
            name=name, selector=selector, properties=frozenset(properties)
        )

    def _parse_entries(self) -> list[tuple[str, Selector]]:
        entries: list[tuple[str, Selector]] = []
        while self._peek() is not None and self._peek() not in (
            "category",
            "scripts",
            "result",
            "results",
        ):
            name = self._expect_ident()
            self._expect(":")
            selector: Selector = Always()
            if self._peek() == "if":
                self._next()
                selector = self._parse_selector()
            self._skip_separator()
            entries.append((name, selector))
        return entries

    # ------------------------------------------------------------------
    # selector expressions

    def _parse_selector(self) -> Selector:
        left = self._parse_conjunction()
        while self._peek() == "or":
            self._next()
            left = Or(left, self._parse_conjunction())
        return left

    def _parse_conjunction(self) -> Selector:
        left = self._parse_atom()
        while self._peek() == "and":
            self._next()
            left = And(left, self._parse_atom())
        return left

    def _parse_atom(self) -> Selector:
        token = self._peek()
        if token == "not":
            self._next()
            return Not(self._parse_atom())
        if token == "(":
            self._next()
            inner = self._parse_selector()
            self._expect(")")
            return inner
        return PropRef(self._expect_ident())

    # ------------------------------------------------------------------

    @staticmethod
    def _validate(spec: TestSpec) -> None:
        seen_categories: set[str] = set()
        for category in spec.categories:
            if category.name in seen_categories:
                raise SpecError(f"duplicate category {category.name!r}")
            seen_categories.add(category.name)
            seen_choices: set[str] = set()
            for choice in category.choices:
                if choice.name in seen_choices:
                    raise SpecError(
                        f"duplicate choice {choice.name!r} in {category.name!r}"
                    )
                seen_choices.add(choice.name)
        declared = spec.all_properties()
        for category in spec.categories:
            for choice in category.choices:
                for name in choice.selector.mentioned():
                    if name not in declared:
                        raise SpecError(
                            f"selector of choice {choice.name!r} mentions "
                            f"unknown property {name.upper()!r}"
                        )
        for entry in list(spec.scripts) + list(spec.results):
            for name in entry.selector.mentioned():
                if name not in declared:
                    raise SpecError(
                        f"selector of {entry.name!r} mentions unknown "
                        f"property {name.upper()!r}"
                    )


def parse_spec(text: str) -> TestSpec:
    """Parse a T-GEN test specification."""
    return _SpecParser(_tokenize(text)).parse()
