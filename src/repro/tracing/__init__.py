"""Tracing phase (paper §5.2): execution trees and dynamic dependences.

The tracer runs a program under the interpreter's hooks and produces

* an :class:`~repro.tracing.execution_tree.ExecutionTree` whose nodes are
  unit activations (procedure/function calls, loop units, and loop
  iterations) annotated with input and output values, and
* a :class:`~repro.tracing.dynamic_deps.DynamicDependenceGraph` over
  statement occurrences, the raw material for interprocedural dynamic
  slicing (paper §7).
"""

from repro.tracing.execution_tree import Binding, ExecutionTree, ExecNode, NodeKind
from repro.tracing.dynamic_deps import DynamicDependenceGraph, Occurrence
from repro.tracing.tracer import TraceResult, Tracer, trace_program, trace_source

__all__ = [
    "Binding",
    "DynamicDependenceGraph",
    "ExecNode",
    "ExecutionTree",
    "NodeKind",
    "Occurrence",
    "TraceResult",
    "Tracer",
    "trace_program",
    "trace_source",
]
