"""Dynamic dependence recording for interprocedural dynamic slicing.

Each executed atomic statement is an *occurrence*. The graph records,
per occurrence:

* **data dependences** — the occurrence that last wrote each storage
  location (cell, element) this occurrence read; ``var`` parameter
  aliasing is free because locations are physical interpreter cells;
* **control dependences** — the most recent occurrence, in the same
  activation, of the statement's statically controlling predicate;
* **call/parameter dependences** — binding a parameter attributes the
  incoming value to the call-site occurrence, and reading a function's
  result attributes it to the occurrences that assigned the result.

A backward closure over these edges is exactly the dynamic slice of
Kamkar's interprocedural dynamic slicing, which the paper's slicing
component applies to prune the execution tree (paper §7).
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.pascal import ast_nodes as ast


@dataclass(eq=False)
class Occurrence:
    """One execution of an atomic statement (or predicate evaluation)."""

    occ_id: int
    stmt_id: int
    exec_node_id: int
    location_line: int = 0

    def __hash__(self) -> int:
        return self.occ_id

    def __repr__(self) -> str:
        return f"<occ {self.occ_id} stmt@{self.location_line} in node {self.exec_node_id}>"


@dataclass
class DynamicDependenceGraph:
    """Occurrences plus data/control/call dependence edges between them."""

    occurrences: dict[int, Occurrence] = field(default_factory=dict)
    #: occ id -> set of occ ids it depends on
    deps: dict[int, set[int]] = field(default_factory=dict)

    def new_occurrence(
        self, stmt: ast.Stmt | None, exec_node_id: int, occ_id: int
    ) -> Occurrence:
        occ = Occurrence(
            occ_id=occ_id,
            stmt_id=stmt.node_id if stmt is not None else -1,
            exec_node_id=exec_node_id,
            location_line=stmt.location.line if stmt is not None else 0,
        )
        self.occurrences[occ_id] = occ
        self.deps[occ_id] = set()
        return occ

    def add_dep(self, from_occ: int, to_occ: int) -> None:
        if from_occ != to_occ:
            self.deps[from_occ].add(to_occ)

    def backward_slice(self, seeds: set[int]) -> set[int]:
        """All occurrences the seed occurrences transitively depend on."""
        visited = set(seeds)
        stack = list(seeds)
        while stack:
            occ = stack.pop()
            for dep in self.deps.get(occ, ()):
                if dep not in visited:
                    visited.add(dep)
                    stack.append(dep)
        return visited

    def __len__(self) -> int:
        return len(self.occurrences)
