"""Dynamic dependence recording for interprocedural dynamic slicing.

Each executed atomic statement is an *occurrence*. The graph records,
per occurrence:

* **data dependences** — the occurrence that last wrote each storage
  location (cell, element) this occurrence read; ``var`` parameter
  aliasing is free because locations are physical interpreter cells;
* **control dependences** — the most recent occurrence, in the same
  activation, of the statement's statically controlling predicate;
* **call/parameter dependences** — binding a parameter attributes the
  incoming value to the call-site occurrence, and reading a function's
  result attributes it to the occurrences that assigned the result.

A backward closure over these edges is exactly the dynamic slice of
Kamkar's interprocedural dynamic slicing, which the paper's slicing
component applies to prune the execution tree (paper §7).

Representation: occurrence ids are dense (the tracer numbers them 1..N
in execution order), so the adjacency structure is an **array** indexed
by occurrence id — a ``list[list[int]]`` instead of the former
``dict[int, set[int]]`` — and :class:`Occurrence` carries ``__slots__``.
Together these cut per-occurrence memory by roughly 4× and make
:meth:`DynamicDependenceGraph.backward_slice` a flat array walk with a
``bytearray`` visited mask.
"""

from __future__ import annotations

from repro.pascal import ast_nodes as ast


class Occurrence:
    """One execution of an atomic statement (or predicate evaluation)."""

    __slots__ = ("occ_id", "stmt_id", "exec_node_id", "location_line")

    def __init__(
        self,
        occ_id: int,
        stmt_id: int,
        exec_node_id: int,
        location_line: int = 0,
    ):
        self.occ_id = occ_id
        self.stmt_id = stmt_id
        self.exec_node_id = exec_node_id
        self.location_line = location_line

    def __hash__(self) -> int:
        return self.occ_id

    def __repr__(self) -> str:
        return f"<occ {self.occ_id} stmt@{self.location_line} in node {self.exec_node_id}>"


class DynamicDependenceGraph:
    """Occurrences plus data/control/call dependence edges between them."""

    __slots__ = ("occurrences", "_adj")

    def __init__(self):
        #: occ id -> Occurrence
        self.occurrences: dict[int, Occurrence] = {}
        #: occ id -> list of occ ids it depends on (index 0 unused;
        #: ``None`` marks ids never registered via :meth:`new_occurrence`)
        self._adj: list[list[int] | None] = [None]

    def new_occurrence(
        self, stmt: ast.Stmt | None, exec_node_id: int, occ_id: int
    ) -> Occurrence:
        occ = Occurrence(
            occ_id=occ_id,
            stmt_id=stmt.node_id if stmt is not None else -1,
            exec_node_id=exec_node_id,
            location_line=stmt.location.line if stmt is not None else 0,
        )
        self.occurrences[occ_id] = occ
        adj = self._adj
        while len(adj) <= occ_id:
            adj.append(None)
        adj[occ_id] = []
        return occ

    def add_dep(self, from_occ: int, to_occ: int) -> None:
        if from_occ == to_occ:
            return
        edges = self._adj[from_occ]
        if edges is None:
            raise KeyError(from_occ)
        # Edge lists are short (a handful of reads per statement); the
        # linear dedup check beats per-occurrence set overhead.
        if to_occ not in edges:
            edges.append(to_occ)

    def deps_of(self, occ_id: int) -> list[int]:
        """Occurrence ids ``occ_id`` directly depends on (empty if unknown)."""
        adj = self._adj
        if 0 <= occ_id < len(adj):
            edges = adj[occ_id]
            if edges is not None:
                return edges
        return []

    def backward_slice(self, seeds: set[int]) -> set[int]:
        """All occurrences the seed occurrences transitively depend on."""
        adj = self._adj
        size = len(adj)
        visited = bytearray(size)
        result = set(seeds)
        stack = []
        for seed in seeds:
            if 0 <= seed < size:
                visited[seed] = 1
                stack.append(seed)
        while stack:
            edges = adj[stack.pop()]
            if not edges:
                continue
            for dep in edges:
                if not visited[dep]:
                    visited[dep] = 1
                    result.add(dep)
                    stack.append(dep)
        return result

    def edge_count(self) -> int:
        """Total number of dependence edges (diagnostics/benchmarks)."""
        return sum(len(edges) for edges in self._adj if edges)

    def __len__(self) -> int:
        return len(self.occurrences)
