"""Execution trees (paper §5.2).

An execution tree records "information about the program's actual
execution": one node per *unit* activation — a procedure call, a
function call, a loop unit, or one loop iteration — each annotated with
the values flowing in and out. The algorithmic debugger traverses this
tree; the slicing component prunes it.
"""

from __future__ import annotations

import enum
import itertools
from dataclasses import dataclass, field
from typing import Callable, Iterator

from repro.pascal.symbols import Symbol
from repro.pascal.values import format_value

_NODE_IDS = itertools.count(1)


class NodeKind(enum.Enum):
    MAIN = "main"
    CALL = "call"
    LOOP = "loop"
    ITERATION = "iteration"


class BindingMode(enum.Enum):
    IN = "In"
    OUT = "Out"
    RESULT = "Result"


@dataclass(frozen=True, slots=True)
class Binding:
    """One named value crossing a unit boundary, e.g. ``In y: 3``."""

    name: str
    mode: BindingMode
    value: object
    is_global: bool = False

    def render(self) -> str:
        if self.mode is BindingMode.RESULT:
            return format_value(self.value)
        return f"{self.mode.value} {self.name}: {format_value(self.value)}"


@dataclass(eq=False, slots=True)
class ExecNode:
    """One unit activation in the execution tree (slotted: trees carry
    one node per activation, so per-node dict overhead adds up fast)."""

    kind: NodeKind
    unit_name: str
    routine: Symbol | None = None
    loop_stmt_id: int | None = None
    iteration: int | None = None
    call_site_id: int | None = None
    parent: "ExecNode | None" = None
    children: list["ExecNode"] = field(default_factory=list)
    inputs: list[Binding] = field(default_factory=list)
    outputs: list[Binding] = field(default_factory=list)
    via_goto: str | None = None
    #: statement-occurrence ids executed directly in this activation
    occurrence_ids: list[int] = field(default_factory=list)
    node_id: int = field(default_factory=lambda: next(_NODE_IDS))

    # ------------------------------------------------------------------

    @property
    def is_unit(self) -> bool:
        """Iteration nodes are sub-steps of a loop unit, not units themselves."""
        return self.kind is not NodeKind.ITERATION

    def add_child(self, child: "ExecNode") -> None:
        child.parent = self
        self.children.append(child)

    def walk(self) -> Iterator["ExecNode"]:
        """This node and all descendants, pre-order."""
        yield self
        for child in self.children:
            yield from child.walk()

    def ancestors(self) -> Iterator["ExecNode"]:
        node = self.parent
        while node is not None:
            yield node
            node = node.parent

    def subtree_size(self) -> int:
        return sum(1 for _ in self.walk())

    def output_binding(self, name: str) -> Binding:
        for binding in self.outputs:
            if binding.name == name:
                return binding
        raise KeyError(f"{self.unit_name} has no output named {name!r}")

    def input_binding(self, name: str) -> Binding:
        for binding in self.inputs:
            if binding.name == name:
                return binding
        raise KeyError(f"{self.unit_name} has no input named {name!r}")

    def output_position(self, position: int) -> Binding:
        """1-based output selection ("error on first output variable")."""
        if not 1 <= position <= len(self.outputs):
            raise IndexError(
                f"{self.unit_name} has {len(self.outputs)} outputs, not {position}"
            )
        return self.outputs[position - 1]

    def render_head(self) -> str:
        """Paper-style one-line rendering: ``computs(In y: 3, Out r1: 12)``."""
        if self.kind is NodeKind.MAIN:
            return self.unit_name.capitalize()
        result_bindings = [b for b in self.outputs if b.mode is BindingMode.RESULT]
        plain = [b for b in self.inputs] + [
            b for b in self.outputs if b.mode is not BindingMode.RESULT
        ]
        inner = ", ".join(binding.render() for binding in plain)
        if self.kind is NodeKind.ITERATION:
            return f"{self.unit_name}[iteration {self.iteration}]" + (
                f"({inner})" if inner else ""
            )
        text = f"{self.unit_name}({inner})"
        if result_bindings:
            text += f"={format_value(result_bindings[0].value)}"
        if self.via_goto is not None:
            # Exit side effects are "treated as one of the results from
            # the procedure call" (paper §6.1).
            text += f" [exits via goto {self.via_goto}]"
        return text

    def __repr__(self) -> str:
        return f"<ExecNode #{self.node_id} {self.render_head()}>"


@dataclass
class ExecutionTree:
    """The whole tree plus indexes used by the debugger and the slicer."""

    root: ExecNode
    #: occurrence id -> owning ExecNode
    occurrence_owner: dict[int, ExecNode] = field(default_factory=dict)
    #: (exec node id, output name) -> occurrence ids that last wrote it
    output_writers: dict[tuple[int, str], set[int]] = field(default_factory=dict)

    def walk(self) -> Iterator[ExecNode]:
        return self.root.walk()

    def size(self) -> int:
        return self.root.subtree_size()

    def find(self, unit_name: str, occurrence: int = 1) -> ExecNode:
        """The nth activation (pre-order) of the named unit."""
        count = 0
        for node in self.walk():
            if node.unit_name == unit_name:
                count += 1
                if count == occurrence:
                    return node
        raise KeyError(f"no activation #{occurrence} of unit {unit_name!r}")

    def render(
        self,
        max_depth: int | None = None,
        root: ExecNode | None = None,
        keep: Callable[[ExecNode], bool] | None = None,
    ) -> str:
        """ASCII rendering in the style of the paper's Figures 7–9.

        ``root`` restricts the rendering to a subtree; ``keep`` renders a
        pruned view (nodes failing the predicate are omitted).
        """
        lines: list[str] = []

        def visit(node: ExecNode, depth: int) -> None:
            if max_depth is not None and depth > max_depth:
                return
            if keep is not None and not keep(node):
                return
            lines.append("  " * depth + node.render_head())
            for child in node.children:
                visit(child, depth + 1)

        visit(root if root is not None else self.root, 0)
        return "\n".join(lines) + "\n"
