"""JSON serialization of execution trees.

Lets a traced run be saved and reloaded — for rendering, archiving, or a
later pure-algorithmic-debugging session. (Dynamic slicing needs the
occurrence-level dependence graph, which lives only in the original
:class:`~repro.tracing.tracer.TraceResult`; a reloaded tree supports
everything else.)
"""

from __future__ import annotations

import json
from typing import Any

from repro.pascal.values import ArrayValue, UNDEFINED
from repro.tracing.execution_tree import (
    Binding,
    BindingMode,
    ExecNode,
    ExecutionTree,
    NodeKind,
)

FORMAT_VERSION = 1


# ----------------------------------------------------------------------
# value codec


def value_to_json(value: object) -> Any:
    if value is UNDEFINED:
        return {"t": "undef"}
    if isinstance(value, bool):
        return {"t": "bool", "v": value}
    if isinstance(value, int):
        return {"t": "int", "v": value}
    if isinstance(value, str):
        return {"t": "str", "v": value}
    if isinstance(value, ArrayValue):
        return {
            "t": "array",
            "low": value.low,
            "elements": [value_to_json(element) for element in value.elements],
        }
    raise TypeError(f"cannot serialize value {value!r}")


def value_from_json(data: Any) -> object:
    kind = data["t"]
    if kind == "undef":
        return UNDEFINED
    if kind in ("bool", "int", "str"):
        return data["v"]
    if kind == "array":
        elements = [value_from_json(element) for element in data["elements"]]
        low = data["low"]
        return ArrayValue(low, low + len(elements) - 1, elements)
    raise ValueError(f"unknown value tag {kind!r}")


# ----------------------------------------------------------------------
# tree codec


def _binding_to_json(binding: Binding) -> dict:
    return {
        "name": binding.name,
        "mode": binding.mode.value,
        "value": value_to_json(binding.value),
        "global": binding.is_global,
    }


def _binding_from_json(data: dict) -> Binding:
    return Binding(
        name=data["name"],
        mode=BindingMode(data["mode"]),
        value=value_from_json(data["value"]),
        is_global=data.get("global", False),
    )


def _node_to_json(node: ExecNode) -> dict:
    return {
        "kind": node.kind.value,
        "unit": node.unit_name,
        "iteration": node.iteration,
        "via_goto": node.via_goto,
        "inputs": [_binding_to_json(binding) for binding in node.inputs],
        "outputs": [_binding_to_json(binding) for binding in node.outputs],
        "children": [_node_to_json(child) for child in node.children],
    }


def _node_from_json(data: dict) -> ExecNode:
    node = ExecNode(
        kind=NodeKind(data["kind"]),
        unit_name=data["unit"],
        iteration=data.get("iteration"),
        via_goto=data.get("via_goto"),
        inputs=[_binding_from_json(binding) for binding in data["inputs"]],
        outputs=[_binding_from_json(binding) for binding in data["outputs"]],
    )
    for child_data in data["children"]:
        node.add_child(_node_from_json(child_data))
    return node


def tree_to_dict(tree: ExecutionTree) -> dict:
    """Serialize an execution tree (structure + bindings) to plain data."""
    return {"version": FORMAT_VERSION, "root": _node_to_json(tree.root)}


def tree_from_dict(data: dict) -> ExecutionTree:
    """Rebuild an execution tree serialized by :func:`tree_to_dict`."""
    version = data.get("version")
    if version != FORMAT_VERSION:
        raise ValueError(f"unsupported execution-tree format {version!r}")
    return ExecutionTree(root=_node_from_json(data["root"]))


def dump_tree(tree: ExecutionTree, indent: int | None = 2) -> str:
    """Execution tree as a JSON string."""
    return json.dumps(tree_to_dict(tree), indent=indent)


def load_tree(text: str) -> ExecutionTree:
    """Execution tree from a JSON string."""
    return tree_from_dict(json.loads(text))
