"""The tracer: builds execution trees and dynamic dependences (paper §5.2).

Implemented as :class:`~repro.pascal.interpreter.ExecutionHooks`. One
``Tracer`` instance observes one program run and yields a
:class:`TraceResult` bundling the execution tree, the dynamic dependence
graph, and the analyses the debugging phase needs.

Loop units: when a :class:`LoopUnitInfo` registry is supplied (produced
by the transformation phase's loop-unit pass), each registered loop
becomes a unit node in the execution tree with per-iteration child nodes
— the paper's treatment of loops as debuggable units (§5.1, §6.1).
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.analysis.sideeffects import SideEffects, analyze_side_effects
from repro.pascal import ast_nodes as ast
from repro.pascal.interpreter import (
    Cell,
    ExecutionHooks,
    ExecutionResult,
    Frame,
    Interpreter,
    PascalIO,
)
from repro.pascal.semantics import AnalyzedProgram, RoutineInfo
from repro.pascal.symbols import Symbol
from repro.pascal.values import UNDEFINED, copy_value
from repro.tracing.dynamic_deps import DynamicDependenceGraph
from repro.tracing.execution_tree import (
    Binding,
    BindingMode,
    ExecNode,
    ExecutionTree,
    NodeKind,
)


@dataclass(frozen=True)
class LoopUnitInfo:
    """Static description of one loop unit (computed by the transformation
    phase): which variables flow in and out of the loop."""

    stmt_id: int
    name: str
    inputs: tuple[Symbol, ...]
    outputs: tuple[Symbol, ...]


@dataclass
class TraceResult:
    """Everything the debugging phase needs from one traced run."""

    analysis: AnalyzedProgram
    side_effects: SideEffects
    tree: ExecutionTree
    dependence_graph: DynamicDependenceGraph
    execution: ExecutionResult
    #: the runtime error that ended the run, when traced tolerantly
    error: Exception | None = None
    #: unit active when the error struck (for the user's orientation)
    crash_unit: str | None = None
    #: the trace blew its resource budget and this is a salvaged,
    #: depth-capped partial tree (see docs/ROBUSTNESS.md)
    degraded: bool = False
    degraded_reason: str | None = None
    #: activations dropped when capping the salvaged tree's depth
    truncated_nodes: int = 0
    #: which execution backend produced this trace ("interp" | "compiled")
    backend: str = "interp"

    @property
    def root(self) -> ExecNode:
        return self.tree.root

    @property
    def crashed(self) -> bool:
        return self.error is not None


class Tracer(ExecutionHooks):
    def __init__(
        self,
        analysis: AnalyzedProgram,
        side_effects: SideEffects | None = None,
        loop_units: dict[int, LoopUnitInfo] | None = None,
        max_tree_nodes: int | None = None,
        profiler=None,
    ):
        self.analysis = analysis
        self.side_effects = (
            side_effects if side_effects is not None else analyze_side_effects(analysis)
        )
        self.loop_units = loop_units or {}
        self.interpreter: Interpreter | None = None
        #: memory guard: abort the trace when the tree outgrows this
        self.max_tree_nodes = max_tree_nodes
        self._node_count = 0
        #: optional hot-spot profiler observing activation boundaries
        #: (:class:`repro.obs.profiler.HotspotProfiler`)
        self.profiler = profiler

        self.ddg = DynamicDependenceGraph()
        self._occ_counter = 0
        self._occ_stack: list[int] = []
        #: (cell id, element index or None) -> last writing occurrence id
        self._last_writer: dict[tuple[int, int | None], int] = {}
        #: pin cells so id() keys stay unique for the lifetime of the trace
        self._pinned_cells: dict[int, Cell] = {}

        self._entry_live_cache: dict[Symbol, set[Symbol]] = {}
        self._print_occs: set[int] = set()
        self.last_active_node_id: int = 0
        self._root: ExecNode | None = None
        self._node_stack: list[ExecNode] = []
        self._tree_index: dict[int, ExecNode] = {}
        self._output_writers: dict[tuple[int, str], set[int]] = {}
        #: open loop/iteration bookkeeping: loop stmt id -> (loop node, iter node)
        self._open_loops: list[tuple[ExecNode, ExecNode | None]] = []

    # ------------------------------------------------------------------
    # wiring

    def attach(self, interpreter: Interpreter) -> None:
        self.interpreter = interpreter

    def result(self, execution: ExecutionResult) -> TraceResult:
        assert self._root is not None, "no traced run"
        tree = ExecutionTree(root=self._root)
        tree.occurrence_owner = {
            occ_id: self._tree_index[occ.exec_node_id]
            for occ_id, occ in self.ddg.occurrences.items()
            if occ.exec_node_id in self._tree_index
        }
        tree.output_writers = dict(self._output_writers)
        return TraceResult(
            analysis=self.analysis,
            side_effects=self.side_effects,
            tree=tree,
            dependence_graph=self.ddg,
            execution=execution,
        )

    def _count_node(self) -> None:
        """Memory guard: a tree node pins bindings and dependence
        bookkeeping, so runaway traces are aborted (and salvaged by
        :func:`trace_program` when degradation is enabled)."""
        self._node_count += 1
        if self.max_tree_nodes is not None and self._node_count > self.max_tree_nodes:
            from repro.resilience.errors import TraceAborted

            raise TraceAborted(
                f"execution tree exceeded {self.max_tree_nodes} activations",
                reason="tree-nodes",
            )

    # ------------------------------------------------------------------
    # occurrences

    def _current_node_id(self) -> int:
        return self._node_stack[-1].node_id if self._node_stack else 0

    def _push_occurrence(self, stmt: ast.Stmt | None) -> int:
        self._occ_counter += 1
        occ = self.ddg.new_occurrence(stmt, self._current_node_id(), self._occ_counter)
        if self._occ_stack:
            # Control/nesting dependence on the enclosing occurrence.
            self.ddg.add_dep(occ.occ_id, self._occ_stack[-1])
        if self._node_stack:
            self._node_stack[-1].occurrence_ids.append(occ.occ_id)
        self._occ_stack.append(occ.occ_id)
        return occ.occ_id

    def before_stmt(self, stmt: ast.Stmt, frame: Frame) -> None:
        self.last_active_node_id = self._current_node_id()
        self._push_occurrence(stmt)

    def after_stmt(self, stmt: ast.Stmt, frame: Frame) -> None:
        self._occ_stack.pop()

    def cell_read(self, cell: Cell, index: int | None) -> None:
        if not self._occ_stack:
            return
        current = self._occ_stack[-1]
        writer = self._last_writer.get((id(cell), index))
        if writer is not None:
            self.ddg.add_dep(current, writer)
        if index is not None:
            # An element read also depends on whole-array writes.
            whole = self._last_writer.get((id(cell), None))
            if whole is not None:
                self.ddg.add_dep(current, whole)

    def io_write(self, text: str) -> None:
        # The program's printed output "depends on" every occurrence
        # that wrote a chunk of it — making the output sliceable.
        if self._occ_stack:
            self._print_occs.add(self._occ_stack[-1])

    def cell_write(self, cell: Cell, index: int | None, value: object) -> None:
        if not self._occ_stack:
            return
        self._pinned_cells[id(cell)] = cell
        self._last_writer[(id(cell), index)] = self._occ_stack[-1]
        if index is None:
            # A whole write supersedes element writes.
            stale = [
                key
                for key in self._last_writer
                if key[0] == id(cell) and key[1] is not None
            ]
            for key in stale:
                del self._last_writer[key]

    # ------------------------------------------------------------------
    # routine units

    def enter_routine(
        self, call: ast.Node | None, info: RoutineInfo, frame: Frame
    ) -> None:
        self._count_node()
        if info.is_main:
            node = ExecNode(
                kind=NodeKind.MAIN, unit_name=info.name, routine=info.symbol
            )
            self._root = node
        else:
            node = ExecNode(
                kind=NodeKind.CALL,
                unit_name=info.name,
                routine=info.symbol,
                call_site_id=call.node_id if call is not None else None,
            )
            if self._node_stack:
                self._node_stack[-1].add_child(node)
            else:  # isolated unit call (testing/oracle use)
                self._root = node
        self._tree_index[node.node_id] = node
        node.inputs = self._input_bindings(info, frame)
        self._node_stack.append(node)
        if self.profiler is not None:
            self.profiler.enter_unit(info.name)

        # Attribute incoming parameter values to the call-site occurrence.
        if self._occ_stack:
            call_occ = self._occ_stack[-1]
            for param in info.params:
                cell = frame.cells.get(param)
                if cell is None:
                    continue
                self._pinned_cells[id(cell)] = cell
                key = (id(cell), None)
                if param.param_mode == ast.ParamMode.VALUE:
                    self._last_writer[key] = call_occ
                elif key not in self._last_writer:
                    # First sight of a by-reference cell (e.g. seeded input).
                    self._last_writer[key] = call_occ

    def exit_routine(
        self, info: RoutineInfo, frame: Frame, via_goto: Symbol | None
    ) -> None:
        if self.profiler is not None:
            self.profiler.exit_unit()
        node = self._node_stack.pop()
        node.via_goto = via_goto.name if via_goto is not None else None
        node.outputs = self._output_bindings(info, frame)
        self._record_output_writers(node, info, frame)
        # Reading the function result happens at the caller's occurrence.
        if frame.result_cell is not None and self._occ_stack:
            writer = self._last_writer.get((id(frame.result_cell), None))
            if writer is not None:
                self.ddg.add_dep(self._occ_stack[-1], writer)

    # ------------------------------------------------------------------
    # loop units

    def loop_enter(self, stmt: ast.Stmt, frame: Frame) -> None:
        unit = self.loop_units.get(stmt.node_id)
        if unit is None:
            return
        self._count_node()
        node = ExecNode(
            kind=NodeKind.LOOP,
            unit_name=unit.name,
            loop_stmt_id=stmt.node_id,
        )
        node.inputs = self._loop_bindings(unit.inputs, frame, BindingMode.IN)
        if self._node_stack:
            self._node_stack[-1].add_child(node)
        self._tree_index[node.node_id] = node
        self._node_stack.append(node)
        self._open_loops.append((node, None))
        if self.profiler is not None:
            self.profiler.enter_unit(unit.name)

    def loop_iteration(self, stmt: ast.Stmt, frame: Frame, iteration: int) -> None:
        unit = self.loop_units.get(stmt.node_id)
        if unit is None:
            return
        self._count_node()
        loop_node, iter_node = self._open_loops[-1]
        if iter_node is not None:
            self._close_iteration(unit, iter_node, frame)
        new_iter = ExecNode(
            kind=NodeKind.ITERATION,
            unit_name=unit.name,
            loop_stmt_id=stmt.node_id,
            iteration=iteration,
        )
        new_iter.inputs = self._loop_bindings(unit.inputs, frame, BindingMode.IN)
        loop_node.add_child(new_iter)
        self._tree_index[new_iter.node_id] = new_iter
        self._node_stack.append(new_iter)
        self._open_loops[-1] = (loop_node, new_iter)

    def loop_exit(self, stmt: ast.Stmt, frame: Frame, iterations: int) -> None:
        unit = self.loop_units.get(stmt.node_id)
        if unit is None:
            return
        if self.profiler is not None:
            self.profiler.exit_unit()
        loop_node, iter_node = self._open_loops.pop()
        if iter_node is not None:
            self._close_iteration(unit, iter_node, frame)
        loop_node.outputs = self._loop_bindings(unit.outputs, frame, BindingMode.OUT)
        self._record_loop_output_writers(loop_node, unit, frame)
        popped = self._node_stack.pop()
        assert popped is loop_node

    def _close_iteration(
        self, unit: LoopUnitInfo, iter_node: ExecNode, frame: Frame
    ) -> None:
        iter_node.outputs = self._loop_bindings(unit.outputs, frame, BindingMode.OUT)
        popped = self._node_stack.pop()
        assert popped is iter_node

    # ------------------------------------------------------------------
    # snapshots

    def _symbol_value(self, symbol: Symbol, frame: Frame) -> object:
        assert self.interpreter is not None
        try:
            cell = self.interpreter._lookup_cell(symbol, frame)
        except Exception:
            return UNDEFINED
        return copy_value(cell.value)

    def _symbol_cell(self, symbol: Symbol, frame: Frame) -> Cell | None:
        assert self.interpreter is not None
        try:
            return self.interpreter._lookup_cell(symbol, frame)
        except Exception:
            return None

    def _entry_live(self, info: RoutineInfo) -> set[Symbol]:
        """Symbols whose *incoming* value the routine may actually use.

        A var parameter (or read global) that is always overwritten before
        any read carries no meaningful input value; live-variables at the
        routine entry is exactly the right filter for "In" bindings.
        """
        cached = self._entry_live_cache.get(info.symbol)
        if cached is not None:
            return cached
        from repro.analysis.cfg import build_cfg
        from repro.analysis.dataflow import live_variables

        cfg = build_cfg(info, self.analysis)
        live = live_variables(cfg, self.side_effects)
        # live *after* the entry node (parameter binding): the incoming
        # values the body may actually read.
        result = set(live.live_out[cfg.entry])
        self._entry_live_cache[info.symbol] = result
        return result

    def _input_bindings(self, info: RoutineInfo, frame: Frame) -> list[Binding]:
        if info.is_main:
            return []
        effects = self.side_effects.of(info.symbol)
        entry_live = self._entry_live(info)
        bindings: list[Binding] = []
        for param in info.params:
            if param.param_mode in (ast.ParamMode.VALUE, ast.ParamMode.IN_):
                bindings.append(
                    Binding(param.name, BindingMode.IN, self._symbol_value(param, frame))
                )
            elif param in effects.ref_params and param in entry_live:
                bindings.append(
                    Binding(param.name, BindingMode.IN, self._symbol_value(param, frame))
                )
        for symbol in sorted(effects.gref, key=lambda s: s.name):
            if symbol in entry_live:
                bindings.append(
                    Binding(
                        symbol.name,
                        BindingMode.IN,
                        self._symbol_value(symbol, frame),
                        is_global=True,
                    )
                )
        return bindings

    def _output_bindings(self, info: RoutineInfo, frame: Frame) -> list[Binding]:
        if info.is_main:
            # The program's observable result is what it printed: that is
            # the "externally visible symptom" the whole session starts
            # from, so the root node carries it as an output.
            assert self.interpreter is not None
            text = self.interpreter.io.text
            if text:
                return [Binding("output", BindingMode.OUT, text)]
            return []
        effects = self.side_effects.of(info.symbol)
        bindings: list[Binding] = []
        for param in info.params:
            if param.param_mode in (ast.ParamMode.VAR, ast.ParamMode.OUT):
                if param in effects.mod_params:
                    bindings.append(
                        Binding(
                            param.name, BindingMode.OUT, self._symbol_value(param, frame)
                        )
                    )
        for symbol in sorted(effects.gmod, key=lambda s: s.name):
            bindings.append(
                Binding(
                    symbol.name,
                    BindingMode.OUT,
                    self._symbol_value(symbol, frame),
                    is_global=True,
                )
            )
        if frame.result_cell is not None:
            bindings.append(
                Binding(
                    info.name, BindingMode.RESULT, copy_value(frame.result_cell.value)
                )
            )
        return bindings

    def _loop_bindings(
        self, symbols: tuple[Symbol, ...], frame: Frame, mode: BindingMode
    ) -> list[Binding]:
        return [
            Binding(symbol.name, mode, self._symbol_value(symbol, frame))
            for symbol in symbols
        ]

    # ------------------------------------------------------------------
    # slice criteria support

    def _writers_of_cell(self, cell: Cell) -> set[int]:
        writers: set[int] = set()
        for (cell_id, _index), occ in self._last_writer.items():
            if cell_id == id(cell):
                writers.add(occ)
        return writers

    def _record_output_writers(
        self, node: ExecNode, info: RoutineInfo, frame: Frame
    ) -> None:
        for binding in node.outputs:
            if info.is_main and binding.name == "output":
                self._output_writers[(node.node_id, "output")] = set(
                    self._print_occs
                )
                continue
            if binding.mode is BindingMode.RESULT:
                cell = frame.result_cell
            else:
                symbol = self._find_output_symbol(info, binding)
                cell = self._symbol_cell(symbol, frame) if symbol is not None else None
            if cell is not None:
                self._output_writers[(node.node_id, binding.name)] = (
                    self._writers_of_cell(cell)
                )

    def _record_loop_output_writers(
        self, node: ExecNode, unit: LoopUnitInfo, frame: Frame
    ) -> None:
        for symbol in unit.outputs:
            cell = self._symbol_cell(symbol, frame)
            if cell is not None:
                self._output_writers[(node.node_id, symbol.name)] = (
                    self._writers_of_cell(cell)
                )

    def _find_output_symbol(
        self, info: RoutineInfo, binding: Binding
    ) -> Symbol | None:
        if binding.is_global:
            effects = self.side_effects.of(info.symbol)
            for symbol in effects.gmod:
                if symbol.name == binding.name:
                    return symbol
            return None
        for param in info.params:
            if param.name == binding.name:
                return param
        return None


def trace_program(
    analysis: AnalyzedProgram,
    inputs: list[object] | None = None,
    side_effects: SideEffects | None = None,
    loop_units: dict[int, LoopUnitInfo] | None = None,
    step_limit: int = 2_000_000,
    tolerate_errors: bool = False,
    budget=None,
    degrade: bool = False,
    backend: str | None = None,
    profiler=None,
) -> TraceResult:
    """Run an analyzed program under the tracer (the paper's tracing phase).

    With ``tolerate_errors``, a run that dies with a runtime error (bad
    index, division by zero, step limit...) still yields its partial
    execution tree: every activation open at the moment of the crash is
    closed with its values as of that moment, so the debugger can chase
    the crash the same way it chases a wrong value.

    ``backend`` selects the execution engine: ``"interp"`` (the
    tree-walking interpreter driving a :class:`Tracer` through hooks) or
    ``"compiled"`` (closures from :mod:`repro.compile` with inline
    event emission). ``None`` defers to ``REPRO_BACKEND``. Both produce
    the same :class:`TraceResult`, bit-for-bit.

    ``budget`` (a :class:`repro.resilience.Budget`) bounds the trace:
    deadline and step/depth limits in the interpreter, plus a tree-node
    cap in the tracer. With ``degrade``, blowing the budget does not
    raise — the partial execution tree built so far is salvaged, capped
    at ``budget.salvage_depth``, and returned with ``degraded`` set, so
    the debugger can still localize on partial information.

    ``profiler`` (a :class:`repro.obs.profiler.HotspotProfiler`)
    observes activation enter/exit boundaries on either backend for
    self-time hot-spot attribution; ``None`` costs nothing.
    """
    from repro import obs
    from repro.pascal.errors import (
        PascalError,
        PascalRuntimeError,
        StepLimitExceeded,
    )
    from repro.resilience import faults
    from repro.resilience.budget import DEFAULT_SALVAGE_DEPTH
    from repro.compile import compiled_trace_session, resolve_backend
    from repro.resilience.errors import BudgetExceeded, TraceAborted

    backend = resolve_backend(backend)
    max_tree_nodes = budget.max_tree_nodes if budget is not None else None
    if backend == "compiled":
        # One object is both the runner and the event collector.
        collector = runner = compiled_trace_session(
            analysis,
            inputs=inputs,
            side_effects=side_effects,
            loop_units=loop_units,
            step_limit=step_limit,
            budget=budget,
            max_tree_nodes=max_tree_nodes,
            profiler=profiler,
        )
    else:
        collector = tracer = Tracer(
            analysis,
            side_effects=side_effects,
            loop_units=loop_units,
            max_tree_nodes=max_tree_nodes,
            profiler=profiler,
        )
        runner = Interpreter(
            analysis, io=PascalIO(inputs), hooks=tracer, step_limit=step_limit,
            budget=budget,
        )
        tracer.attach(runner)
    error: Exception | None = None
    degraded_reason: str | None = None
    with obs.span("trace.execute", program=analysis.program.name, backend=backend):
        spec = faults.fire("trace", key=analysis.program.name)
        if spec is not None:
            raise PascalRuntimeError(f"{spec.message} [trace]")
        try:
            execution = runner.run()
        except PascalError as raised:
            budget_blown = isinstance(
                raised, (BudgetExceeded, TraceAborted, StepLimitExceeded)
            )
            if degrade and budget_blown:
                degraded_reason = str(raised)
            elif not tolerate_errors:
                raise
            error = raised
            frame = runner.globals_frame
            assert frame is not None  # run() builds it before executing
            execution = ExecutionResult(
                io=runner.io, globals_frame=frame, steps=runner.steps
            )
    result = collector.result(execution)
    result.backend = backend
    result.error = error
    if error is not None:
        crash_node = collector._tree_index.get(collector.last_active_node_id)
        result.crash_unit = crash_node.unit_name if crash_node is not None else None
    if degraded_reason is not None:
        from repro.resilience.degrade import cap_depth

        result.degraded = True
        result.degraded_reason = degraded_reason
        salvage_depth = (
            budget.salvage_depth if budget is not None else DEFAULT_SALVAGE_DEPTH
        )
        result.truncated_nodes = cap_depth(result.tree.root, salvage_depth)
        if result.truncated_nodes:
            # Re-anchor the indexes on the surviving activations so the
            # debugger and the slicer never chase a dropped node.
            alive = {node.node_id for node in result.tree.walk()}
            result.tree.occurrence_owner = {
                occ: node
                for occ, node in result.tree.occurrence_owner.items()
                if node.node_id in alive
            }
            result.tree.output_writers = {
                key: writers
                for key, writers in result.tree.output_writers.items()
                if key[0] in alive
            }
        if obs.enabled():
            obs.add("resilience.degraded_traces")
    if obs.enabled():
        # End-of-trace accounting only: the per-statement hot path stays
        # untouched (see the null-hook fast path in the interpreter).
        nodes = result.tree.size()
        occurrences = len(result.dependence_graph)
        edges = result.dependence_graph.edge_count()
        obs.add("trace.runs")
        obs.add("trace.nodes", nodes)
        obs.add("trace.occurrences", occurrences)
        obs.add("trace.dep_edges", edges)
        obs.add("trace.steps", execution.steps)
        obs.add("backend.steps", execution.steps)
        obs.set_max_gauge("trace.peak_nodes", nodes)
        obs.set_max_gauge("trace.peak_occurrences", occurrences)
        obs.set_max_gauge("trace.peak_dep_edges", edges)
        # The journal's trace record. ``root`` anchors replay: node ids
        # are process-global, so a replayer normalizes recorded ids by
        # the difference between its own root id and this one.
        obs.emit(
            "trace",
            program=analysis.program.name,
            backend=backend,
            root=result.tree.root.node_id,
            nodes=nodes,
            occurrences=occurrences,
            dep_edges=edges,
            steps=execution.steps,
            degraded=result.degraded,
            degraded_reason=result.degraded_reason,
        )
    return result


def trace_source(
    source: str,
    inputs: list[object] | None = None,
    step_limit: int = 2_000_000,
    tolerate_errors: bool = False,
    budget=None,
    degrade: bool = False,
    backend: str | None = None,
    profiler=None,
) -> TraceResult:
    """Parse, analyze, and trace a program in one call."""
    from repro.pascal.semantics import analyze_source

    analysis = analyze_source(source)
    return trace_program(
        analysis,
        inputs=inputs,
        step_limit=step_limit,
        tolerate_errors=tolerate_errors,
        budget=budget,
        degrade=degrade,
        backend=backend,
        profiler=profiler,
    )
