"""Transformation phase (paper §5.1, §6).

Takes a program that may contain global side effects and global gotos
and produces an equivalent program without them, suitable for
procedure-level algorithmic debugging:

* :mod:`repro.transform.globals_to_params` — non-local variable accesses
  become ``in``/``out``/``var`` parameters threaded through call chains;
* :mod:`repro.transform.goto_taxonomy` — every goto-label pair is
  classified into an explicit :class:`GotoCase` (forward/backward; same
  block, out of loops/conditionals, into blocks, sibling blocks,
  global), the classify-then-reduce organization of bastors;
* :mod:`repro.transform.goto_elimination` — the reduction passes: same-
  block gotos become structured conditionals/loops, gotos jumping out
  of loops become flag-guarded exits, and global gotos become exit
  parameters plus structured local gotos;
* :mod:`repro.transform.loop_units` — loops are identified as debuggable
  units with their input/output variable sets;
* :mod:`repro.transform.instrument` — trace-generating actions are
  inserted (``gadt_enter_unit`` etc., the paper's ``create_exectree_rec``
  / ``save_incoming_values`` / ``save_outgoing_values``);
* :mod:`repro.transform.mapping` — the original↔transformed construct
  mapping that keeps debugging transparent (paper §6.1);
* :mod:`repro.transform.pipeline` — runs everything in order and
  re-analyzes between passes.
"""

from repro.transform.goto_taxonomy import (
    GotoCase,
    GotoClassification,
    TaxonomyReport,
    classify_program,
)
from repro.transform.mapping import SourceMap
from repro.transform.pipeline import TransformedProgram, transform_program, transform_source

__all__ = [
    "GotoCase",
    "GotoClassification",
    "SourceMap",
    "TaxonomyReport",
    "TransformedProgram",
    "classify_program",
    "transform_program",
    "transform_source",
]
