"""Conversion of global (non-local) variable accesses to parameters.

The paper's first transformation (§6):

    procedure p (var y: ...);          procedure p (var y: ...; in x: ...; out z: ...);
    begin                              begin
      y := x + 1;              ==>       y := x + 1;
      z := y - x                         z := y - x
    end;                               end;

Implementation strategy: every routine whose (transitive) side-effect
summary reads or writes non-local variables gets one added parameter per
such variable, *named like the variable*. Because the parameter shadows
the non-local, the routine body needs no rewriting at all; only
signatures and call sites change. Call sites pass the variable itself,
which in the caller's context resolves either to the caller's own added
parameter (threading the value down the call chain) or to the actual
global. Parameter modes follow the paper: ``in`` for read-only, ``out``
for write-only, ``var`` for read-write.

Limitation (documented): a nested routine assigning an enclosing
*function's result* is a side effect this pass cannot turn into a
parameter; such programs are reported via ``warnings``.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.analysis.sideeffects import SideEffects, analyze_side_effects
from repro.pascal import ast_nodes as ast
from repro.pascal.semantics import AnalyzedProgram
from repro.pascal.symbols import Symbol, SymbolKind
from repro.transform.rewriter import Rewriter


@dataclass
class GlobalsToParamsResult:
    program: ast.Program
    source_map: "SourceMap"
    #: routine name -> [(variable name, mode), ...] parameters added
    added_params: dict[str, list[tuple[str, str]]] = field(default_factory=dict)
    warnings: list[str] = field(default_factory=list)


from repro.transform.mapping import SourceMap  # noqa: E402  (doc order)


class _GlobalsToParams(Rewriter):
    def __init__(self, analysis: AnalyzedProgram, side_effects: SideEffects):
        super().__init__(analysis)
        self.side_effects = side_effects
        self.warnings: list[str] = []
        #: routine symbol -> ordered [(symbol, mode)]
        self.extra: dict[Symbol, list[tuple[Symbol, str]]] = {}
        self.added_params: dict[str, list[tuple[str, str]]] = {}
        self._compute_extra_params()

    # ------------------------------------------------------------------

    def _compute_extra_params(self) -> None:
        for info in self.analysis.user_routines():
            effects = self.side_effects.of(info.symbol)
            variables = {
                symbol
                for symbol in effects.gref | effects.gmod
                if symbol.kind in (SymbolKind.VARIABLE, SymbolKind.PARAMETER)
            }
            results = {
                symbol
                for symbol in effects.gref | effects.gmod
                if symbol.kind is SymbolKind.RESULT
            }
            for symbol in results:
                self.warnings.append(
                    f"routine '{info.name}' side-effects the result of "
                    f"function '{symbol.owner.name if symbol.owner else symbol.name}'; "
                    "result side effects are not converted to parameters"
                )
            ordered: list[tuple[Symbol, str]] = []
            for symbol in sorted(variables, key=lambda s: s.name):
                read = symbol in effects.gref
                written = symbol in effects.gmod
                if read and written:
                    mode = ast.ParamMode.VAR
                elif written:
                    mode = ast.ParamMode.OUT
                else:
                    mode = ast.ParamMode.IN_
                ordered.append((symbol, mode))
            if ordered:
                self.extra[info.symbol] = ordered
                self.added_params[info.name] = [
                    (symbol.name, mode) for symbol, mode in ordered
                ]

    def _param_type_expr(self, symbol: Symbol) -> ast.TypeExpr:
        decl = symbol.decl
        if isinstance(decl, ast.VarDecl):
            return self.copy(decl.type_expr)
        if isinstance(decl, ast.Param):
            return self.copy(decl.type_expr)
        raise TypeError(
            f"cannot derive a type expression for {symbol.qualified_name}"
        )

    # ------------------------------------------------------------------
    # rewriting hooks

    def finish_routine(
        self, new_decl: ast.RoutineDecl, original: ast.RoutineDecl
    ) -> ast.RoutineDecl:
        info = next(
            info
            for info in self.analysis.user_routines()
            if info.decl is original
        )
        for symbol, mode in self.extra.get(info.symbol, ()):
            param = ast.Param(
                name=symbol.name,
                type_expr=self._param_type_expr(symbol),
                mode=mode,
                location=original.location,
            )
            self.source_map.record_synthesized(param)
            new_decl.params.append(param)
        return new_decl

    def _extra_args_for(self, callee: Symbol, location) -> list[ast.Expr]:
        args: list[ast.Expr] = []
        for symbol, _mode in self.extra.get(callee, ()):
            ref = ast.VarRef(name=symbol.name, location=location)
            self.source_map.record_synthesized(ref)
            args.append(ref)
        return args

    def rewrite_proccall(self, stmt: ast.ProcCall) -> ast.Stmt:
        new_stmt = ast.ProcCall(
            name=stmt.name,
            args=[self.rewrite_expr(arg) for arg in stmt.args],
            location=stmt.location,
            label=stmt.label,
        )
        callee = self.analysis.call_target.get(stmt.node_id)
        if callee is not None and callee.kind is SymbolKind.ROUTINE:
            new_stmt.args.extend(self._extra_args_for(callee, stmt.location))
        self.source_map.record(new_stmt, stmt)
        return new_stmt

    def rewrite_expr(self, expr: ast.Expr) -> ast.Expr:
        if isinstance(expr, ast.FuncCall):
            new_expr = ast.FuncCall(
                name=expr.name,
                args=[self.rewrite_expr(arg) for arg in expr.args],
                location=expr.location,
            )
            callee = self.analysis.call_target.get(expr.node_id)
            if callee is not None and callee.kind is SymbolKind.ROUTINE:
                new_expr.args.extend(self._extra_args_for(callee, expr.location))
            self.source_map.record(new_expr, expr)
            return new_expr
        if isinstance(expr, ast.IndexedRef):
            new_expr = ast.IndexedRef(
                base=self.rewrite_expr(expr.base),
                index=self.rewrite_expr(expr.index),
                location=expr.location,
            )
            self.source_map.record(new_expr, expr)
            return new_expr
        if isinstance(expr, (ast.UnaryOp, ast.BinaryOp, ast.ArrayLiteral)):
            if isinstance(expr, ast.UnaryOp):
                new_expr = ast.UnaryOp(
                    op=expr.op,
                    operand=self.rewrite_expr(expr.operand),
                    location=expr.location,
                )
            elif isinstance(expr, ast.BinaryOp):
                new_expr = ast.BinaryOp(
                    op=expr.op,
                    left=self.rewrite_expr(expr.left),
                    right=self.rewrite_expr(expr.right),
                    location=expr.location,
                )
            else:
                new_expr = ast.ArrayLiteral(
                    elements=[self.rewrite_expr(element) for element in expr.elements],
                    location=expr.location,
                )
            self.source_map.record(new_expr, expr)
            return new_expr
        return self.copy(expr)


def convert_globals_to_params(
    analysis: AnalyzedProgram, side_effects: SideEffects | None = None
) -> GlobalsToParamsResult:
    """Run the globals-to-parameters transformation on an analyzed program."""
    effects = (
        side_effects if side_effects is not None else analyze_side_effects(analysis)
    )
    rewriter = _GlobalsToParams(analysis, effects)
    program = rewriter.rewrite_program()
    return GlobalsToParamsResult(
        program=program,
        source_map=rewriter.source_map,
        added_params=rewriter.added_params,
        warnings=rewriter.warnings,
    )
