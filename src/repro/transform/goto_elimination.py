"""Goto restructuring (paper §6), organized as classify-then-reduce.

Every goto-label pair is first classified by
:mod:`repro.transform.goto_taxonomy`; three reduction passes then handle
the reducible cases, each counting what it eliminated per case:

* :func:`reduce_structured_gotos` — same-block gotos become structured
  control flow: a forward conditional goto (``if c then goto L``) whose
  skipped statements define no labels becomes an inverted conditional
  over those statements, and a backward conditional goto that is its
  label's only source becomes a ``repeat ... until not c`` loop.

* :func:`eliminate_loop_gotos` — a goto jumping from inside a while/repeat
  /for loop to a label outside the loop becomes a flag-guarded exit: the
  loop condition tests a ``leave`` flag, the goto sets the flag and jumps
  to a fresh label at the end of the body, and a dispatch after the loop
  re-issues the original goto (the paper's ``whilelab`` example).

* :func:`break_global_gotos` — one round of the paper's global-goto
  breaking: a routine performing a goto to a label declared in an
  enclosing routine gets a ``var exitcond: integer`` parameter; the goto
  becomes ``exitcond := k; goto exitlab`` with ``exitlab`` at the end of
  the body; every call site tests ``exitcond`` and re-issues a local goto.
  If that re-issued goto is itself global, the next round handles it —
  the pipeline iterates to a fixpoint.

Function routines with exit side effects cannot be rewritten this way
(statements cannot be inserted after a call embedded in an expression);
they are reported in ``warnings`` and left untouched, as is any remaining
construct the paper's method excludes (``*_into_block`` and
``sibling_blocks`` jumps — see ``docs/CORPUS.md`` for the taxonomy).
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.pascal import ast_nodes as ast
from repro.pascal.semantics import AnalyzedProgram, RoutineInfo
from repro.pascal.symbols import Symbol, SymbolKind
from repro.transform.goto_taxonomy import GotoCase, carried_gotos, classify_routine
from repro.transform.mapping import SourceMap
from repro.transform.rewriter import Rewriter


@dataclass
class GotoEliminationResult:
    program: ast.Program
    source_map: SourceMap
    changed: bool
    warnings: list[str] = field(default_factory=list)
    #: routine name -> exitcond parameter name (global-goto rounds)
    exit_params: dict[str, str] = field(default_factory=dict)
    #: taxonomy case name -> gotos this pass eliminated
    eliminated: dict[str, int] = field(default_factory=dict)


def _classification_map(analysis: AnalyzedProgram) -> dict[int, GotoCase]:
    """goto node id -> taxonomy case, for every goto in the program."""
    cases: dict[int, GotoCase] = {}
    for info in analysis.all_routines():
        for pair in classify_routine(analysis, info):
            cases[pair.goto_id] = pair.case
    return cases


# ----------------------------------------------------------------------
# helpers


def _fresh_label(analysis: AnalyzedProgram, reserved: set[str]) -> str:
    """An unused numeric label, well away from user labels."""
    used = set(reserved)
    for info in analysis.all_routines():
        used.update(info.labels)
    candidate = 9000
    while str(candidate) in used:
        candidate += 1
    reserved.add(str(candidate))
    return str(candidate)


def _labels_defined_in(stmt: ast.Stmt) -> set[str]:
    return {
        child.label
        for child in ast.iter_statements(stmt)
        if child.label is not None
    }


def _gotos_in(stmt: ast.Stmt) -> list[ast.Goto]:
    return [
        child for child in ast.iter_statements(stmt) if isinstance(child, ast.Goto)
    ]


def _highest_gadt_counter(program: ast.Program) -> int:
    """Highest N among existing gadt_leave_N / gadt_limit_N declarations,
    so repeated passes never collide with their own earlier output."""
    highest = 0
    for node in program.walk():
        if isinstance(node, ast.VarDecl) and node.name.startswith(
            ("gadt_leave_", "gadt_limit_")
        ):
            suffix = node.name.rsplit("_", 1)[-1]
            if suffix.isdigit():
                highest = max(highest, int(suffix))
    return highest


# ----------------------------------------------------------------------
# goto-out-of-loop


class _LoopGotoRewriter(Rewriter):
    """Rewrites loops containing gotos that target labels outside the loop."""

    def __init__(self, analysis: AnalyzedProgram):
        super().__init__(analysis)
        self.changed = False
        self.warnings: list[str] = []
        self.eliminated: dict[str, int] = {}
        self._cases = _classification_map(analysis)
        self._reserved_labels: set[str] = set()
        self._counter = _highest_gadt_counter(analysis.program)
        #: declarations to add per original block node id
        self._new_vars: dict[int, list[ast.VarDecl]] = {}
        self._new_labels: dict[int, list[ast.LabelDecl]] = {}
        self._current_blocks: list[ast.Block] = []

    # -- block bookkeeping

    def rewrite_block(self, block: ast.Block, owner: ast.Node) -> ast.Block:
        self._current_blocks.append(block)
        try:
            return super().rewrite_block(block, owner)
        finally:
            self._current_blocks.pop()

    def finish_block(
        self, new_block: ast.Block, original: ast.Block, owner: ast.Node
    ) -> ast.Block:
        for var in self._new_vars.pop(original.node_id, []):
            new_block.variables.append(var)
        for label in self._new_labels.pop(original.node_id, []):
            new_block.labels.append(label)
        return new_block

    def _declare(self, var: ast.VarDecl | None, label: ast.LabelDecl | None) -> None:
        block = self._current_blocks[-1]
        if var is not None:
            self.synthesize(var)
            self._new_vars.setdefault(block.node_id, []).append(var)
        if label is not None:
            self.synthesize(label)
            self._new_labels.setdefault(block.node_id, []).append(label)

    # -- loop analysis

    def _escaping_gotos(self, loop_body: ast.Stmt) -> list[ast.Goto]:
        """Gotos inside the loop whose target lies outside it.

        Global gotos are included, exactly as in the paper: "If the label
        is declared outside the procedure surrounding the while-statement,
        then the new global goto is handled by a later transformation" —
        this pass moves the jump after the loop; the global-goto pass then
        converts the moved jump into an exit parameter.
        """
        inside = _labels_defined_in(loop_body)
        return [
            goto for goto in _gotos_in(loop_body) if goto.target not in inside
        ]

    # -- synthesized pieces

    def _int_expr(self, value: int) -> ast.IntLiteral:
        literal = ast.IntLiteral(value=value)
        self.source_map.record_synthesized(literal)
        return literal

    def _var(self, name: str) -> ast.VarRef:
        ref = ast.VarRef(name=name)
        self.source_map.record_synthesized(ref)
        return ref

    def _assign(self, name: str, value: int) -> ast.Assign:
        stmt = ast.Assign(target=self._var(name), value=self._int_expr(value))
        self.source_map.record_synthesized(stmt)
        return stmt

    def _synth(self, node: ast.Node) -> ast.Node:
        self.source_map.record_synthesized(node)
        return node

    def _rewrite_loop_with_escapes(
        self,
        stmt: ast.While | ast.Repeat | ast.For,
        escaping: list[ast.Goto],
    ) -> list[ast.Stmt]:
        """The paper's flag-guarded rewrite, generalized to several targets."""
        self.changed = True
        for goto in escaping:
            # Synthesized cascade jumps from an enclosing loop's rewrite
            # are not in the map; the original goto was already counted.
            case = self._cases.get(goto.node_id)
            if case is not None:
                self.eliminated[case.value] = self.eliminated.get(case.value, 0) + 1
        self._counter += 1
        leave = f"gadt_leave_{self._counter}"
        exit_label = _fresh_label(self.analysis, self._reserved_labels)
        targets: dict[str, int] = {}
        for goto in escaping:
            targets.setdefault(goto.target, len(targets) + 1)

        self._declare(
            ast.VarDecl(name=leave, type_expr=ast.NamedType(name="integer")),
            ast.LabelDecl(label=exit_label),
        )

        replacements = {
            goto.node_id: self._escape_replacement(goto, leave, targets, exit_label)
            for goto in escaping
        }
        new_body = self._rewrite_with_replacements(stmt, replacements)

        guard = ast.BinaryOp(
            op="=", left=self._var(leave), right=self._int_expr(0)
        )
        self._synth(guard)
        trailer = ast.EmptyStmt(label=exit_label)
        self._synth(trailer)

        if isinstance(stmt, ast.While):
            loop: ast.Stmt = ast.While(
                condition=ast.BinaryOp(
                    op="and", left=self.rewrite_expr(stmt.condition), right=guard
                ),
                body=self._with_trailer(new_body, trailer),
                location=stmt.location,
                label=stmt.label,
            )
            self._synth(loop.condition)
            self.source_map.record(loop, stmt)
        elif isinstance(stmt, ast.Repeat):
            not_guard = ast.BinaryOp(
                op="<>", left=self._var(leave), right=self._int_expr(0)
            )
            self._synth(not_guard)
            body_list = (
                new_body.statements
                if isinstance(new_body, ast.Compound)
                else [new_body]
            )
            loop = ast.Repeat(
                body=body_list + [trailer],
                condition=ast.BinaryOp(
                    op="or", left=self.rewrite_expr(stmt.condition), right=not_guard
                ),
                location=stmt.location,
                label=stmt.label,
            )
            self._synth(loop.condition)
            self.source_map.record(loop, stmt)
        else:  # For: lower to a while with an explicit counter and limit
            loop = self._lower_for(stmt, new_body, guard, trailer, leave)

        prologue = self._assign(leave, 0)
        dispatch = [
            self._dispatch_if(leave, code, label)
            for label, code in sorted(targets.items(), key=lambda item: item[1])
        ]
        return [prologue, loop, *dispatch]

    def _with_trailer(self, body: ast.Stmt, trailer: ast.Stmt) -> ast.Compound:
        if isinstance(body, ast.Compound):
            body.statements.append(trailer)
            return body
        compound = ast.Compound(statements=[body, trailer])
        self._synth(compound)
        return compound

    def _lower_for(
        self,
        stmt: ast.For,
        new_body: ast.Stmt,
        guard: ast.BinaryOp,
        trailer: ast.Stmt,
        leave: str,
    ) -> ast.Stmt:
        self._counter += 1
        limit = f"gadt_limit_{self._counter}"
        self._declare(
            ast.VarDecl(name=limit, type_expr=ast.NamedType(name="integer")), None
        )
        compare = ">=" if stmt.downto else "<="
        step = -1 if stmt.downto else 1
        condition = ast.BinaryOp(
            op="and",
            left=ast.BinaryOp(
                op=compare, left=self._var(stmt.variable), right=self._var(limit)
            ),
            right=guard,
        )
        self._synth(condition)
        increment = ast.Assign(
            target=self._var(stmt.variable),
            value=ast.BinaryOp(
                op="+", left=self._var(stmt.variable), right=self._int_expr(step)
            ),
        )
        self._synth(increment)
        body = self._with_trailer(new_body, trailer)
        body.statements.append(increment)
        loop = ast.Compound(
            statements=[
                ast.Assign(
                    target=self._var(stmt.variable),
                    value=self.rewrite_expr(stmt.start),
                ),
                ast.Assign(
                    target=self._var(limit), value=self.rewrite_expr(stmt.stop)
                ),
                ast.While(condition=condition, body=body),
            ],
            location=stmt.location,
            label=stmt.label,
        )
        for child in loop.statements:
            self._synth(child)
        self.source_map.record(loop, stmt)
        return loop

    def _escape_replacement(
        self,
        goto: ast.Goto,
        leave: str,
        targets: dict[str, int],
        exit_label: str,
    ) -> ast.Stmt:
        jump = ast.Goto(target=exit_label)
        self._synth(jump)
        replacement = ast.Compound(
            statements=[self._assign(leave, targets[goto.target]), jump],
            location=goto.location,
            label=goto.label,
        )
        self.source_map.record(replacement, goto)
        return replacement

    def _dispatch_if(self, leave: str, code: int, label: str) -> ast.If:
        jump = ast.Goto(target=label)
        self._synth(jump)
        condition = ast.BinaryOp(
            op="=", left=self._var(leave), right=self._int_expr(code)
        )
        self._synth(condition)
        dispatch = ast.If(condition=condition, then_branch=jump)
        self._synth(dispatch)
        return dispatch

    def _rewrite_with_replacements(
        self, loop: ast.While | ast.Repeat | ast.For, replacements: dict[int, ast.Stmt]
    ) -> ast.Stmt:
        """Rewrite the loop body, substituting the escaping gotos."""
        saved = getattr(self, "_replacements", None)
        self._replacements = replacements
        try:
            if isinstance(loop, ast.Repeat):
                body: ast.Stmt = ast.Compound(
                    statements=self.rewrite_stmt_list(loop.body)
                )
                self._synth(body)
            else:
                body = self.as_single(self.rewrite_stmt(loop.body))
        finally:
            self._replacements = saved
        return body

    # -- rewrite hooks

    def rewrite_goto(self, stmt: ast.Goto) -> ast.Stmt:
        replacements = getattr(self, "_replacements", None)
        if replacements and stmt.node_id in replacements:
            return replacements[stmt.node_id]
        return self.default_rewrite_stmt(stmt)

    def rewrite_while(self, stmt: ast.While) -> ast.Stmt | list[ast.Stmt]:
        escaping = self._escaping_gotos(stmt.body)
        if escaping:
            return self._rewrite_loop_with_escapes(stmt, escaping)
        return self.default_rewrite_stmt(stmt)

    def rewrite_repeat(self, stmt: ast.Repeat) -> ast.Stmt | list[ast.Stmt]:
        body = ast.Compound(statements=list(stmt.body))
        escaping = self._escaping_gotos(body)
        if escaping:
            return self._rewrite_loop_with_escapes(stmt, escaping)
        return self.default_rewrite_stmt(stmt)

    def rewrite_for(self, stmt: ast.For) -> ast.Stmt | list[ast.Stmt]:
        escaping = self._escaping_gotos(stmt.body)
        if escaping:
            return self._rewrite_loop_with_escapes(stmt, escaping)
        return self.default_rewrite_stmt(stmt)


def eliminate_loop_gotos(analysis: AnalyzedProgram) -> GotoEliminationResult:
    """Rewrite gotos that jump out of loops into flag-guarded exits."""
    rewriter = _LoopGotoRewriter(analysis)
    program = rewriter.rewrite_program()
    return GotoEliminationResult(
        program=program,
        source_map=rewriter.source_map,
        changed=rewriter.changed,
        warnings=rewriter.warnings,
        eliminated=rewriter.eliminated,
    )


# ----------------------------------------------------------------------
# global gotos


class _GlobalGotoRewriter(Rewriter):
    """One round of breaking global gotos into exit parameters."""

    def __init__(self, analysis: AnalyzedProgram):
        super().__init__(analysis)
        self.changed = False
        self.warnings: list[str] = []
        self.exit_params: dict[str, str] = {}
        self.eliminated: dict[str, int] = {}
        self._cases = _classification_map(analysis)
        self._reserved_labels: set[str] = set()
        #: affected routine symbol -> (param name, exit label, {label name -> code})
        self._plans: dict[Symbol, tuple[str, str, dict[str, int]]] = {}
        self._routine_stack: list[RoutineInfo] = []
        self._new_vars: dict[int, list[ast.VarDecl]] = {}
        self._current_blocks: list[ast.Block] = []
        self._compute_plans()

    def _compute_plans(self) -> None:
        for info in self.analysis.user_routines():
            if not info.global_gotos:
                continue
            if info.symbol.is_function:
                self.warnings.append(
                    f"function '{info.name}' performs a global goto; calls may "
                    "occur inside expressions, so it cannot be transformed"
                )
                continue
            param_name = f"exitcond_{info.name}"
            exit_label = _fresh_label(self.analysis, self._reserved_labels)
            # The exit code *is* the numeric label: unique per target and
            # stable across rounds, so dispatches composed over several
            # rounds can never disagree about what a code means.
            codes: dict[str, int] = {}
            for goto in info.global_gotos:
                codes.setdefault(goto.target, max(int(goto.target), 1))
            self._plans[info.symbol] = (param_name, exit_label, codes)
            self.exit_params[info.name] = param_name
            self.changed = True

    # -- context tracking

    def rewrite_routine(self, decl: ast.RoutineDecl) -> ast.RoutineDecl:
        info = next(
            info for info in self.analysis.user_routines() if info.decl is decl
        )
        self._routine_stack.append(info)
        try:
            return super().rewrite_routine(decl)
        finally:
            self._routine_stack.pop()

    def rewrite_block(self, block: ast.Block, owner: ast.Node) -> ast.Block:
        self._current_blocks.append(block)
        try:
            return super().rewrite_block(block, owner)
        finally:
            self._current_blocks.pop()

    def _current_info(self) -> RoutineInfo:
        return self._routine_stack[-1] if self._routine_stack else self.analysis.main

    # -- routine surgery

    def finish_routine(
        self, new_decl: ast.RoutineDecl, original: ast.RoutineDecl
    ) -> ast.RoutineDecl:
        info = next(
            info for info in self.analysis.user_routines() if info.decl is original
        )
        plan = self._plans.get(info.symbol)
        if plan is None:
            return new_decl
        param_name, exit_label, _codes = plan
        if not any(param.name == param_name for param in new_decl.params):
            param = ast.Param(
                name=param_name,
                type_expr=ast.NamedType(name="integer"),
                mode=ast.ParamMode.VAR,
            )
            self._synth(param)
            self._synth(param.type_expr)
            new_decl.params.append(param)
        if not any(decl.label == exit_label for decl in new_decl.block.labels):
            label_decl = ast.LabelDecl(label=exit_label)
            self._synth(label_decl)
            new_decl.block.labels.append(label_decl)
        first = new_decl.block.body.statements[0] if new_decl.block.body.statements else None
        already_initialized = (
            isinstance(first, ast.Assign)
            and isinstance(first.target, ast.VarRef)
            and first.target.name == param_name
        )
        if not already_initialized:
            init = ast.Assign(
                target=ast.VarRef(name=param_name), value=ast.IntLiteral(value=0)
            )
            for node in init.walk():
                self._synth(node)
            new_decl.block.body.statements.insert(0, init)
        trailer = ast.EmptyStmt(label=exit_label)
        self._synth(trailer)
        new_decl.block.body.statements.append(trailer)
        return new_decl

    def finish_block(
        self, new_block: ast.Block, original: ast.Block, owner: ast.Node
    ) -> ast.Block:
        for var in self._new_vars.pop(original.node_id, []):
            if not any(existing.name == var.name for existing in new_block.variables):
                new_block.variables.append(var)
        return new_block

    # -- goto rewriting inside affected routines

    def rewrite_goto(self, stmt: ast.Goto) -> ast.Stmt | list[ast.Stmt]:
        info = self._current_info()
        plan = self._plans.get(info.symbol) if not info.is_main else None
        if (
            plan is not None
            and self.analysis.goto_is_global.get(stmt.node_id, False)
        ):
            case = self._cases.get(stmt.node_id, GotoCase.GLOBAL_OUT_OF_ROUTINE)
            self.eliminated[case.value] = self.eliminated.get(case.value, 0) + 1
            param_name, exit_label, codes = plan
            assign = ast.Assign(
                target=ast.VarRef(name=param_name),
                value=ast.IntLiteral(value=codes[stmt.target]),
            )
            jump = ast.Goto(target=exit_label)
            replacement = ast.Compound(
                statements=[assign, jump],
                location=stmt.location,
                label=stmt.label,
            )
            for node in replacement.walk():
                self._synth(node)
            self.source_map.record(replacement, stmt)
            return replacement
        return self.default_rewrite_stmt(stmt)

    # -- call-site rewriting

    def rewrite_proccall(self, stmt: ast.ProcCall) -> ast.Stmt | list[ast.Stmt]:
        callee = self.analysis.call_target.get(stmt.node_id)
        plan = self._plans.get(callee) if callee is not None else None
        new_call = ast.ProcCall(
            name=stmt.name,
            args=[self.copy(arg) for arg in stmt.args],
            location=stmt.location,
            label=stmt.label,
        )
        self.source_map.record(new_call, stmt)
        if plan is None:
            return new_call
        param_name, _exit_label, codes = plan
        already_passed = any(
            isinstance(arg, ast.VarRef) and arg.name == param_name
            for arg in new_call.args
        )
        if not already_passed:
            arg = ast.VarRef(name=param_name)
            self._synth(arg)
            new_call.args.append(arg)
        # The caller needs a local to receive the exit condition.
        block = self._current_blocks[-1]
        var = ast.VarDecl(name=param_name, type_expr=ast.NamedType(name="integer"))
        self._synth(var)
        self._synth(var.type_expr)
        existing = self._new_vars.setdefault(block.node_id, [])
        caller = self._current_info()
        caller_has = any(p.name == param_name for p in caller.params) or any(
            v.name == param_name for v in existing
        )
        if not caller_has:
            existing.append(var)
        dispatch: list[ast.Stmt] = [new_call]
        for label, code in sorted(codes.items(), key=lambda item: item[1]):
            jump = ast.Goto(target=label)
            condition = ast.BinaryOp(
                op="=",
                left=ast.VarRef(name=param_name),
                right=ast.IntLiteral(value=code),
            )
            test = ast.If(condition=condition, then_branch=jump)
            for node in test.walk():
                self._synth(node)
            dispatch.append(test)
        return dispatch

    def _synth(self, node: ast.Node) -> None:
        self.source_map.record_synthesized(node)


def break_global_gotos(analysis: AnalyzedProgram) -> GotoEliminationResult:
    """One round of the global-goto transformation (paper §6).

    Run repeatedly (re-analyzing between rounds) until ``changed`` is
    False; each round peels one level of goto nesting.
    """
    rewriter = _GlobalGotoRewriter(analysis)
    program = rewriter.rewrite_program()
    return GotoEliminationResult(
        program=program,
        source_map=rewriter.source_map,
        changed=rewriter.changed,
        warnings=rewriter.warnings,
        exit_params=rewriter.exit_params,
        eliminated=rewriter.eliminated,
    )


# ----------------------------------------------------------------------
# same-block (structured) gotos


def _defines_labels(stmts: list[ast.Stmt]) -> bool:
    """True if any statement in ``stmts`` defines a label at any depth."""
    return any(
        child.label is not None
        for stmt in stmts
        for child in ast.iter_statements(stmt)
    )


def _expr_is_pure_total(expr: ast.Expr) -> bool:
    """True when evaluating ``expr`` cannot have effects or fail: no
    function calls, no array indexing, and division only by nonzero
    literals. Such an expression may be dropped outright."""
    for node in expr.walk():
        if isinstance(node, (ast.FuncCall, ast.IndexedRef)):
            return False
        if isinstance(node, ast.BinaryOp) and node.op in ("div", "mod"):
            divisor = node.right
            if not (isinstance(divisor, ast.IntLiteral) and divisor.value != 0):
                return False
    return True


class _StructuredGotoRewriter(Rewriter):
    """Reduces same-block gotos to structured control flow.

    Two reductions, both driven by statement-list scanning:

    * *forward*: ``if c then goto L; mid...; L: s`` — when ``mid``
      defines no labels, the skipped statements move into an inverted
      conditional: ``if not c then begin mid... end; L: s``. A bare
      forward ``goto L`` instead deletes the unreachable ``mid``.
    * *backward*: ``L: s...; if c then goto L`` — when the goto is the
      label's only source anywhere in the program and the region defines
      no other top-level labels, the region becomes
      ``L: repeat s... until not c``.
    """

    def __init__(self, analysis: AnalyzedProgram):
        super().__init__(analysis)
        self.changed = False
        self.warnings: list[str] = []
        self.eliminated: dict[str, int] = {}
        self._cases = _classification_map(analysis)
        #: label symbol id -> total gotos targeting it, program-wide
        self._target_counts: dict[int, int] = {}
        for goto_id, symbol in analysis.goto_target.items():
            self._target_counts[id(symbol)] = (
                self._target_counts.get(id(symbol), 0) + 1
            )
        self._routine_stack: list[RoutineInfo] = []

    # -- context tracking

    def rewrite_routine(self, decl: ast.RoutineDecl) -> ast.RoutineDecl:
        info = next(
            info for info in self.analysis.user_routines() if info.decl is decl
        )
        self._routine_stack.append(info)
        try:
            return super().rewrite_routine(decl)
        finally:
            self._routine_stack.pop()

    def _current_info(self) -> RoutineInfo:
        return self._routine_stack[-1] if self._routine_stack else self.analysis.main

    def _count(self, case: GotoCase) -> None:
        self.changed = True
        self.eliminated[case.value] = self.eliminated.get(case.value, 0) + 1

    # -- pattern scanning

    def rewrite_stmt_list(self, statements: list[ast.Stmt]) -> list[ast.Stmt]:
        result: list[ast.Stmt] = []
        index = 0
        while index < len(statements):
            replacement = self._try_reduce(statements, index)
            if replacement is not None:
                new_stmts, resume = replacement
                result.extend(new_stmts)
                index = resume
                continue
            rewritten = self.rewrite_stmt(statements[index])
            if isinstance(rewritten, list):
                result.extend(rewritten)
            else:
                result.append(rewritten)
            index += 1
        return result

    def _try_reduce(
        self, statements: list[ast.Stmt], index: int
    ) -> tuple[list[ast.Stmt], int] | None:
        stmt = statements[index]
        reduced = self._try_forward_conditional(statements, index, stmt)
        if reduced is not None:
            return reduced
        reduced = self._try_forward_bare(statements, index, stmt)
        if reduced is not None:
            return reduced
        if stmt.label is not None:
            return self._try_backward_repeat(statements, index, stmt)
        return None

    def _label_index(
        self, statements: list[ast.Stmt], target: str, start: int
    ) -> int | None:
        for position in range(start, len(statements)):
            if statements[position].label == target:
                return position
        return None

    # -- forward conditional: if c then goto L  /  if c then s else goto L

    def _try_forward_conditional(
        self, statements: list[ast.Stmt], index: int, stmt: ast.Stmt
    ) -> tuple[list[ast.Stmt], int] | None:
        carried = carried_gotos(stmt)
        if len(carried) != 1 or not isinstance(stmt, ast.If):
            return None
        goto = carried[0]
        if self.analysis.goto_is_global.get(goto.node_id, False):
            return None
        target_at = self._label_index(statements, goto.target, index + 1)
        if target_at is None:
            return None
        intermediates = statements[index + 1 : target_at]
        if _defines_labels(intermediates):
            return None
        in_then = self._branch_is_goto(stmt.then_branch, goto)
        other_branch = stmt.else_branch if in_then else stmt.then_branch
        if other_branch is not None and not in_then and stmt.else_branch is None:
            return None  # defensive; cannot happen
        if not intermediates and other_branch is None:
            # `if c then goto L; L: s` — the jump is a no-op; drop the
            # conditional when evaluating c cannot have effects.
            if not _expr_is_pure_total(stmt.condition):
                return None
            if stmt.label is not None:
                keep: ast.Stmt = ast.EmptyStmt(
                    label=stmt.label, location=stmt.location
                )
                self.source_map.record(keep, stmt)
                self._count(GotoCase.FORWARD_SAME_BLOCK)
                return [keep], target_at
            self._count(GotoCase.FORWARD_SAME_BLOCK)
            return [], target_at
        condition = self.rewrite_expr(stmt.condition)
        if in_then:
            condition = ast.UnaryOp(op="not", operand=condition)
            self.source_map.record_synthesized(condition)
        body: list[ast.Stmt] = []
        if other_branch is not None:
            rewritten_other = self.rewrite_stmt(other_branch)
            body.extend(
                rewritten_other
                if isinstance(rewritten_other, list)
                else [rewritten_other]
            )
        body.extend(self.rewrite_stmt_list(intermediates))
        guarded_body: ast.Stmt
        if len(body) == 1 and isinstance(body[0], ast.Compound):
            guarded_body = body[0]
        else:
            guarded_body = ast.Compound(statements=body)
            self.source_map.record_synthesized(guarded_body)
        replacement = ast.If(
            condition=condition,
            then_branch=guarded_body,
            location=stmt.location,
            label=stmt.label,
        )
        self.source_map.record(replacement, stmt)
        self._count(GotoCase.FORWARD_SAME_BLOCK)
        return [replacement], target_at

    def _branch_is_goto(self, branch: ast.Stmt | None, goto: ast.Goto) -> bool:
        if branch is None:
            return False
        if branch is goto:
            return True
        return (
            isinstance(branch, ast.Compound)
            and len(branch.statements) == 1
            and branch.statements[0] is goto
        )

    # -- forward bare goto: unreachable straight-line code

    def _try_forward_bare(
        self, statements: list[ast.Stmt], index: int, stmt: ast.Stmt
    ) -> tuple[list[ast.Stmt], int] | None:
        if not isinstance(stmt, ast.Goto):
            return None
        if self.analysis.goto_is_global.get(stmt.node_id, False):
            return None
        target_at = self._label_index(statements, stmt.target, index + 1)
        if target_at is None:
            return None
        intermediates = statements[index + 1 : target_at]
        if _defines_labels(intermediates):
            return None
        self._count(GotoCase.FORWARD_SAME_BLOCK)
        if stmt.label is not None:
            # `M: goto L` — keep M as an empty landing site.
            keep = ast.EmptyStmt(label=stmt.label, location=stmt.location)
            self.source_map.record(keep, stmt)
            return [keep], target_at
        return [], target_at

    # -- backward conditional goto: region becomes repeat..until

    def _try_backward_repeat(
        self, statements: list[ast.Stmt], index: int, labeled: ast.Stmt
    ) -> tuple[list[ast.Stmt], int] | None:
        label = labeled.label
        info = self._current_info()
        symbol = info.labels.get(label)
        if symbol is None or self._target_counts.get(id(symbol), 0) != 1:
            return None  # label shared, global-targeted, or unused
        for position in range(index + 1, len(statements)):
            candidate = statements[position]
            if candidate.label is not None:
                return None  # another top-level label inside the region
            if (
                isinstance(candidate, ast.If)
                and candidate.else_branch is None
            ):
                carried = carried_gotos(candidate)
                if len(carried) == 1 and carried[0].target == label:
                    if self.analysis.goto_is_global.get(
                        carried[0].node_id, False
                    ):
                        return None
                    return self._build_repeat(
                        statements, index, position, candidate
                    )
        return None

    def _build_repeat(
        self,
        statements: list[ast.Stmt],
        label_at: int,
        goto_at: int,
        carrier: ast.If,
    ) -> tuple[list[ast.Stmt], int]:
        body = self.rewrite_stmt_list(statements[label_at:goto_at])
        label = statements[label_at].label
        body[0].label = None
        condition = ast.UnaryOp(op="not", operand=self.rewrite_expr(carrier.condition))
        self.source_map.record_synthesized(condition)
        loop = ast.Repeat(
            body=body,
            condition=condition,
            location=statements[label_at].location,
            label=label,
        )
        self.source_map.record(loop, carrier)
        self._count(GotoCase.BACKWARD_SAME_BLOCK)
        return [loop], goto_at + 1


def reduce_structured_gotos(analysis: AnalyzedProgram) -> GotoEliminationResult:
    """Rewrite same-block gotos into structured conditionals and loops."""
    rewriter = _StructuredGotoRewriter(analysis)
    program = rewriter.rewrite_program()
    return GotoEliminationResult(
        program=program,
        source_map=rewriter.source_map,
        changed=rewriter.changed,
        warnings=rewriter.warnings,
        eliminated=rewriter.eliminated,
    )
