"""Classify-then-reduce goto taxonomy (paper §6, bastors-style).

The paper's transformation front-end only works if every goto the
debugger will ever meet falls into a case some reduction pass knows how
to handle. This module makes the case analysis *explicit*: every
goto-label pair in a program is classified along three axes —

* **direction** — the goto occurs before (*forward*) or after
  (*backward*) its target label in document order;
* **block relation** — goto and label share a statement list (*same
  block*), the label's list is an ancestor of the goto's (*ancestor
  block*: the goto jumps outward, possibly crossing loops and
  conditionals), the goto's list is an ancestor of the label's (*into
  block*: the jump would enter a nested construct), or neither encloses
  the other (*sibling blocks*);
* **routine relation** — local, or *global* (the label lives in a
  lexically enclosing routine, so the jump unwinds call frames).

The classification drives the reduction passes in
:mod:`repro.transform.goto_elimination` and produces the per-case
counters surfaced by ``repro stats`` and
:class:`repro.transform.TransformedProgram`. Cases whose jumps would
*enter* a block (``*_into_block``, ``sibling_blocks``) are irreducible
and dynamically illegal in this dialect — executing one unwinds past the
target and escapes — but they are statically legal, so the classifier
names them and the corpus pins them (guarded so they never fire).

See ``docs/CORPUS.md`` for the full taxonomy table with one example
program per case.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from enum import Enum

from repro.pascal import ast_nodes as ast
from repro.pascal.semantics import AnalyzedProgram, RoutineInfo


class GotoCase(str, Enum):
    """One taxonomy case for a goto-label pair."""

    FORWARD_SAME_BLOCK = "forward_same_block"
    BACKWARD_SAME_BLOCK = "backward_same_block"
    FORWARD_OUT_OF_COND = "forward_out_of_cond"
    BACKWARD_OUT_OF_COND = "backward_out_of_cond"
    FORWARD_OUT_OF_LOOP = "forward_out_of_loop"
    BACKWARD_OUT_OF_LOOP = "backward_out_of_loop"
    FORWARD_INTO_BLOCK = "forward_into_block"
    BACKWARD_INTO_BLOCK = "backward_into_block"
    SIBLING_BLOCKS = "sibling_blocks"
    GLOBAL_OUT_OF_ROUTINE = "global_out_of_routine"
    GLOBAL_OUT_OF_LOOP = "global_out_of_loop"

    def __str__(self) -> str:  # counters print as bare case names
        return self.value


#: cases the reduction passes rewrite (everything else is either already
#: structured — the interpreter executes it directly — or irreducible)
REDUCIBLE_CASES = frozenset(
    {
        GotoCase.FORWARD_SAME_BLOCK,
        GotoCase.BACKWARD_SAME_BLOCK,
        GotoCase.FORWARD_OUT_OF_LOOP,
        GotoCase.BACKWARD_OUT_OF_LOOP,
        GotoCase.GLOBAL_OUT_OF_ROUTINE,
        GotoCase.GLOBAL_OUT_OF_LOOP,
    }
)

#: cases that are statically classifiable but dynamically illegal here:
#: a goto can only unwind outward to a statement list on the execution
#: stack, never *enter* a nested block
IRREDUCIBLE_CASES = frozenset(
    {
        GotoCase.FORWARD_INTO_BLOCK,
        GotoCase.BACKWARD_INTO_BLOCK,
        GotoCase.SIBLING_BLOCKS,
    }
)


@dataclass(frozen=True)
class GotoClassification:
    """The classified shape of one goto-label pair."""

    routine: str
    target: str
    case: GotoCase
    #: loops (while/repeat/for) the jump exits within its routine
    loops_exited: int = 0
    #: conditionals (if-branches) the jump exits within its routine
    conds_exited: int = 0
    #: routine frames the jump unwinds (0 for local gotos)
    routines_exited: int = 0
    #: the target label is shared with at least one other goto
    shared_label: bool = False
    goto_id: int = field(default=-1, compare=False)


@dataclass
class TaxonomyReport:
    """Classification of every goto-label pair in a program."""

    pairs: list[GotoClassification] = field(default_factory=list)
    #: labels targeted by two or more gotos, per routine
    multi_goto_labels: int = 0

    def counts(self) -> dict[str, int]:
        """Per-case pair counts plus the multi-goto-label count."""
        result: dict[str, int] = {}
        for pair in self.pairs:
            result[pair.case.value] = result.get(pair.case.value, 0) + 1
        if self.multi_goto_labels:
            result["multi_goto_label"] = self.multi_goto_labels
        return result

    def total(self) -> int:
        return len(self.pairs)


# ----------------------------------------------------------------------
# statement-list chains


def _chains_of(body: ast.Compound) -> dict[int, tuple]:
    """Map every statement's node id to its *chain*: the sequence of
    (container statement-list id, enclosing construct) hops from the
    routine body down to the list directly containing the statement.

    Two statements are in the *same block* when their chains are equal;
    one chain being a strict prefix of the other means enclosure.
    """
    chains: dict[int, tuple] = {}
    fresh = iter(range(1 << 30))  # one stable id per statement list

    def visit(statements: list[ast.Stmt], chain: tuple, list_id: int) -> None:
        here = chain + ((list_id, None),)
        for stmt in statements:
            chains[stmt.node_id] = here
            if isinstance(stmt, ast.Compound):
                visit(stmt.statements, _mark(here, stmt, "block"), next(fresh))
            elif isinstance(stmt, ast.If):
                marked = _mark(here, stmt, "cond")
                visit(_as_list(stmt.then_branch), marked, next(fresh))
                if stmt.else_branch is not None:
                    visit(_as_list(stmt.else_branch), marked, next(fresh))
            elif isinstance(stmt, ast.While):
                visit(_as_list(stmt.body), _mark(here, stmt, "loop"), next(fresh))
            elif isinstance(stmt, ast.Repeat):
                visit(stmt.body, _mark(here, stmt, "loop"), next(fresh))
            elif isinstance(stmt, ast.For):
                visit(_as_list(stmt.body), _mark(here, stmt, "loop"), next(fresh))

    def _mark(chain: tuple, stmt: ast.Stmt, kind: str) -> tuple:
        # Replace the terminal hop with one naming the construct the
        # nested list hangs off, so exits can be counted by kind. Each
        # nested path gets its own copy, so a shared hop names the
        # construct leading toward *that* path's next hop.
        return chain[:-1] + ((chain[-1][0], (stmt.node_id, kind)),)

    def _as_list(stmt: ast.Stmt) -> list[ast.Stmt]:
        return stmt.statements if isinstance(stmt, ast.Compound) else [stmt]

    visit(body.statements, (), next(fresh))
    return chains


def _document_order(body: ast.Compound) -> dict[int, int]:
    return {
        stmt.node_id: index
        for index, stmt in enumerate(ast.iter_statements(body))
    }


def _label_definitions(body: ast.Compound) -> dict[str, ast.Stmt]:
    return {
        stmt.label: stmt
        for stmt in ast.iter_statements(body)
        if stmt.label is not None
    }


def _count_kinds(hops: tuple) -> tuple[int, int]:
    loops = conds = 0
    for _list_id, construct in hops:
        if construct is None:
            continue
        _stmt_id, kind = construct
        if kind == "loop":
            loops += 1
        elif kind == "cond":
            conds += 1
    return loops, conds


def _exits_between(chain: tuple, prefix_len: int) -> tuple[int, int]:
    """(loops, conds) crossed leaving ``chain``'s list for the list at
    hop ``prefix_len - 1``. The construct marker lives on the hop
    *above* each nested list, so the divergence hop itself is included
    and the terminal hop (construct always None) is not."""
    return _count_kinds(chain[max(prefix_len - 1, 0) : -1])


def _nesting(chain: tuple) -> tuple[int, int]:
    """(loops, conds) the chain's statement is nested inside."""
    return _count_kinds(chain[:-1])


def _common_prefix_len(left: tuple, right: tuple) -> int:
    length = 0
    for a, b in zip(left, right):
        if a[0] != b[0]:
            break
        length += 1
    return length


def carried_gotos(stmt: ast.Stmt) -> list[ast.Goto]:
    """The gotos carried by a *single-statement conditional goto* — an
    ``if`` either of whose branches is exactly ``goto L`` or
    ``begin goto L end``. bastors' algorithm first normalizes every goto
    to this shape; classification treats the carrier's position as the
    goto's position, so ``if c then goto L`` next to ``L:`` is a
    same-block pair, not a jump out of a conditional."""
    if not isinstance(stmt, ast.If):
        return []
    carried: list[ast.Goto] = []
    for branch in (stmt.then_branch, stmt.else_branch):
        candidate = branch
        if isinstance(candidate, ast.Compound) and len(candidate.statements) == 1:
            candidate = candidate.statements[0]
        if isinstance(candidate, ast.Goto):
            carried.append(candidate)
    return carried


def _carrier_map(body: ast.Compound) -> dict[int, ast.Stmt]:
    """goto node id -> the statement whose position classifies it."""
    carriers: dict[int, ast.Stmt] = {}
    for stmt in ast.iter_statements(body):
        for goto in carried_gotos(stmt):
            carriers[goto.node_id] = stmt
    return carriers


# ----------------------------------------------------------------------
# classification


def classify_routine(
    analysis: AnalyzedProgram, info: RoutineInfo
) -> list[GotoClassification]:
    """Classify every goto declared in ``info``'s body."""
    body = info.block.body
    chains = _chains_of(body)
    order = _document_order(body)
    labels = _label_definitions(body)
    carriers = _carrier_map(body)

    target_counts: dict[str, int] = {}
    gotos = [
        stmt for stmt in ast.iter_statements(body) if isinstance(stmt, ast.Goto)
    ]
    for goto in gotos:
        target_counts[goto.target] = target_counts.get(goto.target, 0) + 1

    results: list[GotoClassification] = []
    for goto in gotos:
        is_global = analysis.goto_is_global.get(goto.node_id, False)
        anchor = carriers.get(goto.node_id, goto)
        goto_chain = chains[anchor.node_id]
        shared = target_counts[goto.target] > 1
        if is_global:
            # Loops exited within *this* routine decide whether the
            # loop-goto pass must fire before the global-goto pass.
            loops, conds = _nesting(goto_chain)
            case = (
                GotoCase.GLOBAL_OUT_OF_LOOP
                if loops
                else GotoCase.GLOBAL_OUT_OF_ROUTINE
            )
            results.append(
                GotoClassification(
                    routine=info.name,
                    target=goto.target,
                    case=case,
                    loops_exited=loops,
                    conds_exited=conds,
                    routines_exited=1,
                    shared_label=shared,
                    goto_id=goto.node_id,
                )
            )
            continue
        labeled = labels.get(goto.target)
        if labeled is None:  # label declared but never defined: semantics
            continue  # already rejected this, defensive only
        label_chain = chains[labeled.node_id]
        forward = order[anchor.node_id] < order[labeled.node_id]
        prefix = _common_prefix_len(goto_chain, label_chain)
        if prefix == len(goto_chain) == len(label_chain):
            case = (
                GotoCase.FORWARD_SAME_BLOCK
                if forward
                else GotoCase.BACKWARD_SAME_BLOCK
            )
            loops = conds = 0
        elif prefix == len(label_chain):
            # label's list encloses the goto's: jump outward
            loops, conds = _exits_between(goto_chain, prefix)
            if loops:
                case = (
                    GotoCase.FORWARD_OUT_OF_LOOP
                    if forward
                    else GotoCase.BACKWARD_OUT_OF_LOOP
                )
            else:
                case = (
                    GotoCase.FORWARD_OUT_OF_COND
                    if forward
                    else GotoCase.BACKWARD_OUT_OF_COND
                )
        elif prefix == len(goto_chain):
            case = (
                GotoCase.FORWARD_INTO_BLOCK
                if forward
                else GotoCase.BACKWARD_INTO_BLOCK
            )
            loops, conds = _exits_between(label_chain, prefix)
        else:
            case = GotoCase.SIBLING_BLOCKS
            loops, conds = _exits_between(goto_chain, prefix)
        results.append(
            GotoClassification(
                routine=info.name,
                target=goto.target,
                case=case,
                loops_exited=loops,
                conds_exited=conds,
                routines_exited=0,
                shared_label=shared,
                goto_id=goto.node_id,
            )
        )
    return results


def classify_program(analysis: AnalyzedProgram) -> TaxonomyReport:
    """Classify every goto-label pair in the program."""
    report = TaxonomyReport()
    for info in analysis.all_routines():
        pairs = classify_routine(analysis, info)
        report.pairs.extend(pairs)
        shared_targets = {
            pair.target for pair in pairs if pair.shared_label
        }
        report.multi_goto_labels += len(shared_targets)
    return report


def classification_for(
    analysis: AnalyzedProgram, info: RoutineInfo, goto: ast.Goto
) -> GotoClassification | None:
    """The classification of one specific goto (by node identity)."""
    for pair in classify_routine(analysis, info):
        if pair.goto_id == goto.node_id:
            return pair
    return None
