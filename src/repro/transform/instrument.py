"""Trace-action instrumentation (paper §6).

The paper augments the transformed program with calls that generate the
execution tree:

    procedure p (var y: ...; in x: ...; out z: ...);
    begin
      create_exectree_rec;
      save_incoming_values(x, y);
      y := x + 1;
      z := y - x;
      save_outgoing_values(y, z)
    end;

This pass inserts the equivalent actions (``gadt_enter_unit`` /
``gadt_exit_unit`` and the ``gadt_loop_*`` family for loop units). The
interpreter executes them as semantic no-ops that forward to the
attached execution hooks, so an instrumented program behaves exactly
like its source; the tracer independently receives the same boundary
events from the interpreter, which keeps tracing robust for abnormal
exits while the inserted calls document the transformation faithfully.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.analysis.sideeffects import SideEffects, analyze_side_effects
from repro.pascal import ast_nodes as ast
from repro.pascal.semantics import AnalyzedProgram, RoutineInfo
from repro.tracing.tracer import LoopUnitInfo
from repro.transform.mapping import SourceMap
from repro.transform.rewriter import Rewriter


@dataclass
class InstrumentResult:
    program: ast.Program
    source_map: SourceMap
    instrumented_units: list[str]


class _Instrumenter(Rewriter):
    def __init__(
        self,
        analysis: AnalyzedProgram,
        side_effects: SideEffects,
        loop_units: dict[int, LoopUnitInfo],
    ):
        super().__init__(analysis)
        self.side_effects = side_effects
        self.loop_units = loop_units
        self.instrumented: list[str] = []

    # ------------------------------------------------------------------

    def _trace_call(self, action: str, tag: str, names: list[str]) -> ast.ProcCall:
        args: list[ast.Expr] = [ast.StringLiteral(value=tag)]
        args.extend(ast.VarRef(name=name) for name in names)
        call = ast.ProcCall(name=action, args=args)
        for node in call.walk():
            self.source_map.record_synthesized(node)
        return call

    def finish_routine(
        self, new_decl: ast.RoutineDecl, original: ast.RoutineDecl
    ) -> ast.RoutineDecl:
        info = next(
            info for info in self.analysis.user_routines() if info.decl is original
        )
        effects = self.side_effects.of(info.symbol)
        incoming = [
            param.name
            for param in info.params
            if param.param_mode in (ast.ParamMode.VALUE, ast.ParamMode.IN_)
            or param in effects.ref_params
        ]
        outgoing = [
            param.name
            for param in info.params
            if param.param_mode in (ast.ParamMode.VAR, ast.ParamMode.OUT)
            and param in effects.mod_params
        ]
        body = new_decl.block.body.statements
        body.insert(0, self._trace_call("gadt_enter_unit", info.name, incoming))
        body.append(self._trace_call("gadt_exit_unit", info.name, outgoing))
        self.instrumented.append(info.name)
        return new_decl

    # ------------------------------------------------------------------
    # loops

    def _instrument_loop(
        self, new_loop: ast.Stmt, unit: LoopUnitInfo
    ) -> list[ast.Stmt]:
        enter = self._trace_call(
            "gadt_loop_enter", unit.name, [s.name for s in unit.inputs]
        )
        leave = self._trace_call(
            "gadt_loop_exit", unit.name, [s.name for s in unit.outputs]
        )
        iter_call = self._trace_call("gadt_loop_iter", unit.name, [])
        self._prepend_to_body(new_loop, iter_call)
        self.instrumented.append(unit.name)
        return [enter, new_loop, leave]

    def _prepend_to_body(self, loop: ast.Stmt, call: ast.ProcCall) -> None:
        if isinstance(loop, (ast.While, ast.For)):
            if isinstance(loop.body, ast.Compound):
                loop.body.statements.insert(0, call)
            else:
                compound = ast.Compound(statements=[call, loop.body])
                self.source_map.record_synthesized(compound)
                loop.body = compound
        elif isinstance(loop, ast.Repeat):
            loop.body.insert(0, call)

    def rewrite_while(self, stmt: ast.While) -> ast.Stmt | list[ast.Stmt]:
        rewritten = self.default_rewrite_stmt(stmt)
        unit = self.loop_units.get(stmt.node_id)
        if unit is not None and isinstance(rewritten, ast.Stmt):
            return self._instrument_loop(rewritten, unit)
        return rewritten

    def rewrite_repeat(self, stmt: ast.Repeat) -> ast.Stmt | list[ast.Stmt]:
        rewritten = self.default_rewrite_stmt(stmt)
        unit = self.loop_units.get(stmt.node_id)
        if unit is not None and isinstance(rewritten, ast.Stmt):
            return self._instrument_loop(rewritten, unit)
        return rewritten

    def rewrite_for(self, stmt: ast.For) -> ast.Stmt | list[ast.Stmt]:
        rewritten = self.default_rewrite_stmt(stmt)
        unit = self.loop_units.get(stmt.node_id)
        if unit is not None and isinstance(rewritten, ast.Stmt):
            return self._instrument_loop(rewritten, unit)
        return rewritten


def instrument_program(
    analysis: AnalyzedProgram,
    side_effects: SideEffects | None = None,
    loop_units: dict[int, LoopUnitInfo] | None = None,
) -> InstrumentResult:
    """Insert trace-generating actions into an analyzed program."""
    effects = (
        side_effects if side_effects is not None else analyze_side_effects(analysis)
    )
    rewriter = _Instrumenter(analysis, effects, loop_units or {})
    program = rewriter.rewrite_program()
    return InstrumentResult(
        program=program,
        source_map=rewriter.source_map,
        instrumented_units=rewriter.instrumented,
    )
