"""Loop units (paper §5.1, §6).

"Loops inside a procedure do not prohibit the algorithmic debugging
process. However, crucial computations are often performed inside loops.
Thus, they deserve to be treated in a similar way as procedures, i.e. as
units for algorithmic debugging."

For every while/repeat/for statement this pass computes a
:class:`~repro.tracing.tracer.LoopUnitInfo`:

* **inputs** — variables the loop may read whose incoming value is live
  at loop entry (the loop's observable arguments),
* **outputs** — variables the loop may write that are live after the
  loop (its observable results).

The tracer uses the registry to create loop-unit nodes with per-iteration
children in the execution tree.
"""

from __future__ import annotations

from repro.analysis.cfg import CFG, CFGNode, NodeKind, build_cfg
from repro.analysis.dataflow import all_def_use, live_variables
from repro.analysis.sideeffects import SideEffects, analyze_side_effects
from repro.pascal import ast_nodes as ast
from repro.pascal.semantics import AnalyzedProgram, RoutineInfo
from repro.pascal.symbols import Symbol
from repro.tracing.tracer import LoopUnitInfo

_LOOP_KEYWORD = {
    ast.While: "while",
    ast.Repeat: "repeat",
    ast.For: "for",
}


def compute_loop_units(
    analysis: AnalyzedProgram, side_effects: SideEffects | None = None
) -> dict[int, LoopUnitInfo]:
    """Build the loop-unit registry: loop statement node id -> unit info."""
    effects = (
        side_effects if side_effects is not None else analyze_side_effects(analysis)
    )
    registry: dict[int, LoopUnitInfo] = {}
    for info in analysis.all_routines():
        registry.update(_units_of_routine(info, analysis, effects))
    return registry


def _units_of_routine(
    info: RoutineInfo, analysis: AnalyzedProgram, effects: SideEffects
) -> dict[int, LoopUnitInfo]:
    loops = [
        stmt
        for stmt in ast.iter_statements(info.block.body)
        if isinstance(stmt, (ast.While, ast.Repeat, ast.For))
    ]
    if not loops:
        return {}

    cfg = build_cfg(info, analysis)
    def_use = all_def_use(cfg, effects)
    live = live_variables(cfg, effects)

    registry: dict[int, LoopUnitInfo] = {}
    counter = 0
    for loop in loops:
        counter += 1
        name = f"{info.name}${_LOOP_KEYWORD[type(loop)]}{counter}"
        loop_nodes = _loop_cfg_nodes(cfg, loop)
        if not loop_nodes:
            continue
        used: set[Symbol] = set()
        defined: set[Symbol] = set()
        for node in loop_nodes:
            used |= def_use[node].uses
            defined |= def_use[node].defs

        entry_node = cfg.node_of_stmt.get(loop.node_id)
        live_at_entry = (
            live.live_in.get(entry_node, set()) if entry_node is not None else set()
        )
        inputs = tuple(sorted(used & live_at_entry, key=lambda s: s.name))

        after_live: set[Symbol] = set()
        for node in loop_nodes:
            for succ in cfg.successors[node]:
                if succ not in loop_nodes:
                    after_live |= live.live_in.get(succ, set())
                    if succ.kind is NodeKind.EXIT:
                        after_live |= def_use[succ].uses
        outputs = tuple(sorted(defined & after_live, key=lambda s: s.name))

        registry[loop.node_id] = LoopUnitInfo(
            stmt_id=loop.node_id, name=name, inputs=inputs, outputs=outputs
        )
    return registry


def _loop_cfg_nodes(cfg: CFG, loop: ast.Stmt) -> set[CFGNode]:
    """All CFG nodes belonging to the loop statement or anything inside it."""
    nodes: set[CFGNode] = set()
    for stmt in ast.iter_statements(loop):
        nodes.update(cfg.nodes_of_stmt.get(stmt.node_id, ()))
    return nodes
