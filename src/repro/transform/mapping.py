"""Original ↔ transformed construct mapping (paper §6.1).

"The debugging system maintains a mapping between the original and the
transformed program constructs. ... Despite the fact that the program is
transformed into an internal form, the debugger still presents the
original program when interacting with the user."

Every transformation pass records, for each node of its output tree, the
node of its *input* tree it descends from (synthesized nodes map to
nothing). Maps compose, so after any number of passes the debugger can
take a transformed construct back to the source the user wrote.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.pascal import ast_nodes as ast


@dataclass
class SourceMap:
    """node id in the transformed tree -> node id in the original tree."""

    to_original: dict[int, int] = field(default_factory=dict)
    #: ids of nodes invented by a transformation (no original counterpart)
    synthesized: set[int] = field(default_factory=set)

    def record(self, new_node: ast.Node, original_node: ast.Node) -> None:
        self.to_original[new_node.node_id] = original_node.node_id

    def record_synthesized(self, new_node: ast.Node) -> None:
        self.synthesized.add(new_node.node_id)

    def original_id(self, new_id: int) -> int | None:
        return self.to_original.get(new_id)

    def is_synthesized(self, new_id: int) -> bool:
        return new_id in self.synthesized

    def compose(self, earlier: "SourceMap") -> "SourceMap":
        """Composition: self maps B->A where ``earlier`` maps A->original.

        Returns a map from B directly to the original tree.
        """
        combined = SourceMap()
        for new_id, mid_id in self.to_original.items():
            if earlier.is_synthesized(mid_id):
                combined.synthesized.add(new_id)
                continue
            original = earlier.original_id(mid_id)
            if original is not None:
                combined.to_original[new_id] = original
            else:
                # The earlier pass never recorded this id: it cannot come
                # from the original tree, so treat it as synthesized.
                combined.synthesized.add(new_id)
        combined.synthesized |= self.synthesized
        return combined

    @classmethod
    def identity(cls, program: ast.Program) -> "SourceMap":
        identity_map = cls()
        for node in program.walk():
            identity_map.to_original[node.node_id] = node.node_id
        return identity_map
