"""The transformation pipeline (paper §5.1).

Order of passes:

1. reduce same-block gotos to structured conditionals and loops (the
   easy taxonomy cases, handled before anything synthesizes new gotos),
2. flag-guard gotos that jump out of loops (prerequisite for loop units),
3. break global gotos into exit parameters — repeated until no global
   goto remains (each round peels one nesting level),
4. convert global-variable accesses to ``in``/``out``/``var`` parameters,
5. compute the loop-unit registry on the final program,
6. insert trace-generating actions (producing the *instrumented* program,
   a display/debug artifact — the tracer itself attaches to interpreter
   hooks and traces the transformed program directly).

Every pass re-analyzes its output and composes its source map with the
accumulated one, so the pipeline result can map any transformed
construct back to the exact original construct the user wrote
(transparent debugging, paper §6.1).
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro import cache as _cache
from repro import obs
from repro.analysis.sideeffects import SideEffects, analyze_side_effects
from repro.pascal import ast_nodes as ast
from repro.pascal.parser import parse_program
from repro.pascal.pretty import print_program, print_routine
from repro.pascal.semantics import AnalyzedProgram, analyze
from repro.tracing.tracer import LoopUnitInfo
from repro.transform.globals_to_params import convert_globals_to_params
from repro.transform.goto_elimination import (
    break_global_gotos,
    eliminate_loop_gotos,
    reduce_structured_gotos,
)
from repro.transform.goto_taxonomy import classify_program
from repro.transform.instrument import instrument_program
from repro.transform.loop_units import compute_loop_units
from repro.transform.mapping import SourceMap


@dataclass
class TransformedProgram:
    """Everything the tracing and debugging phases need."""

    original_analysis: AnalyzedProgram
    analysis: AnalyzedProgram
    side_effects: SideEffects
    source_map: SourceMap
    loop_units: dict[int, LoopUnitInfo] = field(default_factory=dict)
    instrumented_program: ast.Program | None = None
    instrumented_source_map: SourceMap | None = None
    added_params: dict[str, list[tuple[str, str]]] = field(default_factory=dict)
    exit_params: dict[str, str] = field(default_factory=dict)
    warnings: list[str] = field(default_factory=list)
    #: taxonomy case name -> gotos classified in the *original* program
    goto_cases: dict[str, int] = field(default_factory=dict)
    #: taxonomy case name -> gotos the reduction passes eliminated
    goto_eliminated: dict[str, int] = field(default_factory=dict)

    @property
    def program(self) -> ast.Program:
        return self.analysis.program

    def original_node_id(self, transformed_id: int) -> int | None:
        """Map a transformed construct back to the user's source construct."""
        return self.source_map.original_id(transformed_id)

    # ------------------------------------------------------------------
    # growth metrics (paper §9: "Small procedures usually grow less than
    # a factor of two after transformations.")

    def growth_factor(self) -> float:
        """Instrumented-vs-original program size ratio in source lines."""
        original_lines = _line_count(print_program(self.original_analysis.program))
        final = (
            self.instrumented_program
            if self.instrumented_program is not None
            else self.program
        )
        transformed_lines = _line_count(print_program(final))
        return transformed_lines / max(original_lines, 1)

    def routine_growth_factors(self) -> dict[str, float]:
        """Per-routine line-growth ratios."""
        final_analysis = (
            analyze(self.instrumented_program)
            if self.instrumented_program is not None
            else self.analysis
        )
        original = {
            info.qualified_name: _line_count(print_routine(info.decl))
            for info in self.original_analysis.user_routines()
            if isinstance(info.decl, ast.RoutineDecl)
        }
        factors: dict[str, float] = {}
        for info in final_analysis.user_routines():
            if not isinstance(info.decl, ast.RoutineDecl):
                continue
            before = original.get(info.qualified_name)
            if before:
                factors[info.qualified_name] = (
                    _line_count(print_routine(info.decl)) / before
                )
        return factors


def _line_count(text: str) -> int:
    return sum(1 for line in text.splitlines() if line.strip())


def transform_program(
    analysis: AnalyzedProgram,
    instrument: bool = True,
    with_loop_units: bool = True,
    max_goto_rounds: int = 10,
) -> TransformedProgram:
    """Run the full transformation pipeline on an analyzed program."""
    with obs.span("transform.pipeline", program=analysis.program.name):
        return _transform_program(
            analysis,
            instrument=instrument,
            with_loop_units=with_loop_units,
            max_goto_rounds=max_goto_rounds,
        )


def _transform_program(
    analysis: AnalyzedProgram,
    instrument: bool,
    with_loop_units: bool,
    max_goto_rounds: int,
) -> TransformedProgram:
    original = analysis
    warnings: list[str] = []
    accumulated = SourceMap.identity(analysis.program)
    goto_cases = classify_program(analysis).counts()
    goto_eliminated: dict[str, int] = {}

    def _tally(eliminated: dict[str, int]) -> None:
        for case, count in eliminated.items():
            goto_eliminated[case] = goto_eliminated.get(case, 0) + count

    # 1. same-block gotos become structured control flow. Runs before the
    #    loop pass: a backward goto reduced to repeat..until may contain
    #    escaping gotos the loop pass then flag-guards.
    with obs.span("transform.pass.structured_gotos"):
        structured = reduce_structured_gotos(analysis)
        warnings.extend(structured.warnings)
        _tally(structured.eliminated)
        accumulated = structured.source_map.compose(accumulated)
        analysis = analyze(structured.program)

    # 2. gotos out of loops
    with obs.span("transform.pass.loop_gotos"):
        loop_goto = eliminate_loop_gotos(analysis)
        warnings.extend(loop_goto.warnings)
        _tally(loop_goto.eliminated)
        accumulated = loop_goto.source_map.compose(accumulated)
        analysis = analyze(loop_goto.program)

    # 3. global gotos, to a fixpoint. Each round may synthesize dispatch
    #    gotos inside loop bodies (a call in a loop whose callee exits
    #    globally), so the loop-goto pass is interleaved.
    exit_params: dict[str, str] = {}
    with obs.span("transform.pass.global_gotos"):
        for _round in range(max_goto_rounds):
            round_result = break_global_gotos(analysis)
            warnings.extend(round_result.warnings)
            if not round_result.changed:
                break
            exit_params.update(round_result.exit_params)
            _tally(round_result.eliminated)
            accumulated = round_result.source_map.compose(accumulated)
            analysis = analyze(round_result.program)
            loop_round = eliminate_loop_gotos(analysis)
            if loop_round.changed:
                warnings.extend(loop_round.warnings)
                _tally(loop_round.eliminated)
                accumulated = loop_round.source_map.compose(accumulated)
                analysis = analyze(loop_round.program)
        else:
            warnings.append(
                f"global gotos remained after {max_goto_rounds} rounds"
            )

    # 4. globals to parameters
    with obs.span("transform.pass.globals_to_params"):
        side_effects = analyze_side_effects(analysis)
        globals_result = convert_globals_to_params(analysis, side_effects)
        warnings.extend(globals_result.warnings)
        accumulated = globals_result.source_map.compose(accumulated)
        analysis = analyze(globals_result.program)
        side_effects = analyze_side_effects(analysis)

    # 5. loop units on the final program
    with obs.span("transform.pass.loop_units"):
        loop_units = (
            compute_loop_units(analysis, side_effects) if with_loop_units else {}
        )

    # 6. trace instrumentation (display artifact; see module docstring)
    instrumented_program: ast.Program | None = None
    instrumented_map: SourceMap | None = None
    if instrument:
        with obs.span("transform.pass.instrument"):
            instrumented = instrument_program(analysis, side_effects, loop_units)
            instrumented_program = instrumented.program
            instrumented_map = instrumented.source_map.compose(accumulated)

    if obs.enabled():
        obs.add("transform.programs")
        obs.add("transform.loop_units", len(loop_units))
        obs.add("transform.warnings", len(warnings))
        for case, count in goto_cases.items():
            obs.add(f"transform.goto.case.{case}", count)
        for case, count in goto_eliminated.items():
            obs.add(f"transform.goto.eliminated.{case}", count)

    return TransformedProgram(
        original_analysis=original,
        analysis=analysis,
        side_effects=side_effects,
        source_map=accumulated,
        loop_units=loop_units,
        instrumented_program=instrumented_program,
        instrumented_source_map=instrumented_map,
        added_params=globals_result.added_params,
        exit_params=exit_params,
        warnings=warnings,
        goto_cases={case: count for case, count in goto_cases.items() if count},
        goto_eliminated=goto_eliminated,
    )


#: content-addressed cache for :func:`transform_source` (see repro.cache).
#: The whole pipeline (goto rounds, globals→params, loop units,
#: instrumentation, each with a re-analysis) is by far the most
#: expensive pure-function-of-source stage, so benchmarks and mutation
#: sweeps that rebuild systems from identical text hit this hard.
_TRANSFORM_CACHE = _cache.register("transform")


def transform_source(source: str, cached: bool = True, **kwargs) -> TransformedProgram:
    """Parse, analyze, and transform Mini-Pascal source text.

    Results are cached keyed on the source hash plus the pipeline
    options; identical text returns the identical
    :class:`TransformedProgram` (safe: the pipeline output is never
    mutated — tracing and debugging state lives in per-run objects).
    ``cached=False`` forces a fresh run.
    """
    from repro.pascal.semantics import analyze_source

    if not cached:
        return transform_program(analyze(parse_program(source)), **kwargs)
    key = _cache.source_key(source, tuple(sorted(kwargs.items())))
    return _TRANSFORM_CACHE.get_or_build(
        key, lambda: transform_program(analyze_source(source), **kwargs)
    )
