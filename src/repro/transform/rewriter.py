"""A reusable copying AST rewriter for transformation passes.

Each pass subclasses :class:`Rewriter` and overrides the hook methods it
cares about. The base class rebuilds the tree node by node, keeping the
*original* node in hand at every step (so node-id-keyed analysis facts
remain usable) and recording the new→old correspondence in a
:class:`~repro.transform.mapping.SourceMap`.
"""

from __future__ import annotations

from repro.pascal import ast_nodes as ast
from repro.pascal.semantics import AnalyzedProgram
from repro.transform.mapping import SourceMap


class Rewriter:
    def __init__(self, analysis: AnalyzedProgram):
        self.analysis = analysis
        self.source_map = SourceMap()

    # ------------------------------------------------------------------
    # entry point

    def rewrite_program(self) -> ast.Program:
        program = self.analysis.program
        new_block = self.rewrite_block(program.block, program)
        new_program = ast.Program(
            name=program.name, block=new_block, location=program.location
        )
        self.source_map.record(new_program, program)
        return new_program

    # ------------------------------------------------------------------
    # structure

    def rewrite_block(self, block: ast.Block, owner: ast.Node) -> ast.Block:
        new_block = ast.Block(
            labels=[self.copy(decl) for decl in block.labels],
            consts=[self.copy(decl) for decl in block.consts],
            types=[self.copy(decl) for decl in block.types],
            variables=[self.copy(decl) for decl in block.variables],
            routines=[self.rewrite_routine(decl) for decl in block.routines],
            body=self.expect_compound(self.rewrite_stmt(block.body)),
            location=block.location,
        )
        self.source_map.record(new_block, block)
        return self.finish_block(new_block, block, owner)

    def finish_block(
        self, new_block: ast.Block, original: ast.Block, owner: ast.Node
    ) -> ast.Block:
        """Hook: adjust a rebuilt block (add declarations, wrap body...)."""
        return new_block

    def rewrite_routine(self, decl: ast.RoutineDecl) -> ast.RoutineDecl:
        new_decl = ast.RoutineDecl(
            name=decl.name,
            params=[self.copy(param) for param in decl.params],
            result_type=(
                self.copy(decl.result_type) if decl.result_type is not None else None
            ),
            block=self.rewrite_block(decl.block, decl),
            location=decl.location,
        )
        self.source_map.record(new_decl, decl)
        return self.finish_routine(new_decl, decl)

    def finish_routine(
        self, new_decl: ast.RoutineDecl, original: ast.RoutineDecl
    ) -> ast.RoutineDecl:
        """Hook: adjust a rebuilt routine (extend parameter list...)."""
        return new_decl

    # ------------------------------------------------------------------
    # statements

    def rewrite_stmt(self, stmt: ast.Stmt) -> ast.Stmt | list[ast.Stmt]:
        """Rewrite one statement; may expand into several."""
        method = getattr(self, f"rewrite_{type(stmt).__name__.lower()}", None)
        if method is not None:
            return method(stmt)
        return self.default_rewrite_stmt(stmt)

    def default_rewrite_stmt(self, stmt: ast.Stmt) -> ast.Stmt | list[ast.Stmt]:
        if isinstance(stmt, ast.Compound):
            new_stmt: ast.Stmt = ast.Compound(
                statements=self.rewrite_stmt_list(stmt.statements),
                location=stmt.location,
                label=stmt.label,
            )
        elif isinstance(stmt, ast.If):
            new_stmt = ast.If(
                condition=self.rewrite_expr(stmt.condition),
                then_branch=self.as_single(self.rewrite_stmt(stmt.then_branch)),
                else_branch=(
                    self.as_single(self.rewrite_stmt(stmt.else_branch))
                    if stmt.else_branch is not None
                    else None
                ),
                location=stmt.location,
                label=stmt.label,
            )
        elif isinstance(stmt, ast.While):
            new_stmt = ast.While(
                condition=self.rewrite_expr(stmt.condition),
                body=self.as_single(self.rewrite_stmt(stmt.body)),
                location=stmt.location,
                label=stmt.label,
            )
        elif isinstance(stmt, ast.Repeat):
            new_stmt = ast.Repeat(
                body=self.rewrite_stmt_list(stmt.body),
                condition=self.rewrite_expr(stmt.condition),
                location=stmt.location,
                label=stmt.label,
            )
        elif isinstance(stmt, ast.For):
            new_stmt = ast.For(
                variable=stmt.variable,
                start=self.rewrite_expr(stmt.start),
                stop=self.rewrite_expr(stmt.stop),
                downto=stmt.downto,
                body=self.as_single(self.rewrite_stmt(stmt.body)),
                location=stmt.location,
                label=stmt.label,
            )
        elif isinstance(stmt, ast.Assign):
            new_stmt = ast.Assign(
                target=self.rewrite_expr(stmt.target),
                value=self.rewrite_expr(stmt.value),
                location=stmt.location,
                label=stmt.label,
            )
        elif isinstance(stmt, ast.ProcCall):
            new_stmt = ast.ProcCall(
                name=stmt.name,
                args=[self.rewrite_expr(arg) for arg in stmt.args],
                location=stmt.location,
                label=stmt.label,
            )
        elif isinstance(stmt, (ast.EmptyStmt, ast.Goto)):
            new_stmt = self.copy(stmt)
            new_stmt.label = stmt.label
            return new_stmt
        else:
            raise TypeError(f"cannot rewrite {type(stmt).__name__}")
        self.source_map.record(new_stmt, stmt)
        return new_stmt

    def rewrite_stmt_list(self, statements: list[ast.Stmt]) -> list[ast.Stmt]:
        result: list[ast.Stmt] = []
        for stmt in statements:
            rewritten = self.rewrite_stmt(stmt)
            if isinstance(rewritten, list):
                result.extend(rewritten)
            else:
                result.append(rewritten)
        return result

    # ------------------------------------------------------------------
    # expressions

    def rewrite_expr(self, expr: ast.Expr) -> ast.Expr:
        new_expr = self.copy(expr)
        return new_expr

    # ------------------------------------------------------------------
    # helpers

    def copy(self, node):
        """Deep copy a subtree, recording every copied node in the map."""
        if node is None:
            return None
        new_node = ast.clone(node)
        for original_sub, new_sub in zip(node.walk(), new_node.walk()):
            self.source_map.record(new_sub, original_sub)
        return new_node

    def synthesize(self, node: ast.Node) -> ast.Node:
        """Mark a freshly invented subtree as having no original."""
        for sub in node.walk():
            self.source_map.record_synthesized(sub)
        return node

    def as_single(self, rewritten: ast.Stmt | list[ast.Stmt]) -> ast.Stmt:
        if isinstance(rewritten, list):
            if len(rewritten) == 1:
                return rewritten[0]
            compound = ast.Compound(statements=rewritten)
            self.source_map.record_synthesized(compound)
            return compound
        return rewritten

    def expect_compound(self, rewritten: ast.Stmt | list[ast.Stmt]) -> ast.Compound:
        single = self.as_single(rewritten)
        if isinstance(single, ast.Compound):
            return single
        compound = ast.Compound(statements=[single], location=single.location)
        self.source_map.record_synthesized(compound)
        return compound
