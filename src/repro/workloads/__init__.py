"""Workloads: the paper's example programs and synthetic program generators."""

from repro.workloads.paper_programs import (
    ARRSUM_SOURCE,
    FIGURE2_SOURCE,
    FIGURE2_SLICED_SOURCE,
    FIGURE4_FIXED_SOURCE,
    FIGURE4_SOURCE,
    SECTION3_SOURCE,
)
from repro.workloads.generator import (
    CallChainSpec,
    CallTreeSpec,
    generate_call_chain_program,
    generate_call_tree_program,
    generate_irrelevant_siblings_program,
)
from repro.workloads.ledger import ledger_program

__all__ = [
    "ARRSUM_SOURCE",
    "CallChainSpec",
    "CallTreeSpec",
    "FIGURE2_SLICED_SOURCE",
    "FIGURE2_SOURCE",
    "FIGURE4_FIXED_SOURCE",
    "FIGURE4_SOURCE",
    "SECTION3_SOURCE",
    "generate_call_chain_program",
    "generate_call_tree_program",
    "generate_irrelevant_siblings_program",
    "ledger_program",
]
