"""The paper's Figure 1: the ``arrsum`` test specification, plus the
automatic frame-selector function and a case instantiator.

The spec below is the paper's, with one clarification: the paper states
that ``script_1`` contains exactly the frames ``(more, mixed, large)``
and ``(more, mixed, average)``; for that to hold, the ``small`` deviation
choice must be restricted to non-mixed arrays (``if not MIXED``), which
Figure 1's OCR-garbled listing leaves implicit. EXPERIMENTS.md records
this interpretation.

The paper: "it is easy to define a function which gives the correct test
frame for an input array using the test specification in Figure 1.
These functions are called during the debugging process." —
:func:`arrsum_frame_selector` is that function.
"""

from __future__ import annotations

from typing import Iterable, Mapping

from repro.pascal.values import ArrayValue, UNDEFINED
from repro.tgen.cases import TestCase
from repro.tgen.frames import TestFrame, frame_for_choices
from repro.tgen.lookup import register_frame_selector
from repro.tgen.spec_ast import TestSpec
from repro.tgen.spec_parser import parse_spec

ARRSUM_SPEC_TEXT = """
test arrsum;
category size_of_array;
  zero : property SINGLE;
  one  : property SINGLE;
  two  : ;
  more : property MORE;
category type_of_elements;
  positive : ;
  negative : ;
  mixed    : if MORE property MIXED;
category deviation;
  small   : if not MIXED;
  large   : if MIXED;
  average : if MIXED;
scripts
  script_1 : if MIXED;
  script_2 : if not MIXED;
result
  result_1 : if MIXED;
"""


def arrsum_spec() -> TestSpec:
    """Parse the Figure 1 specification."""
    return parse_spec(ARRSUM_SPEC_TEXT)


def classify_arrsum_inputs(a: ArrayValue, n: int) -> dict[str, str]:
    """Map concrete (array, count) inputs to a choice per category."""
    if n <= 0:
        size = "zero"
    elif n == 1:
        size = "one"
    elif n == 2:
        size = "two"
    else:
        size = "more"

    elements = [
        value
        for value in a.elements[: max(n, 0)]
        if value is not UNDEFINED and isinstance(value, int)
    ]
    if elements and all(value > 0 for value in elements):
        kind = "positive"
    elif elements and all(value < 0 for value in elements):
        kind = "negative"
    else:
        kind = "mixed" if n > 2 else "positive"

    if kind != "mixed":
        deviation = "small"
    else:
        spread = (max(elements) - min(elements)) if elements else 0
        if spread > 100:
            deviation = "large"
        elif spread > 10:
            deviation = "average"
        else:
            deviation = "large"  # mixed arrays must pick large or average
    return {
        "size_of_array": size,
        "type_of_elements": kind,
        "deviation": deviation,
    }


def arrsum_frame_selector(inputs: Mapping[str, object]) -> TestFrame | None:
    """The automatic frame-selector function for arrsum (paper §5.3.2)."""
    a = inputs.get("a")
    n = inputs.get("n")
    if not isinstance(a, ArrayValue) or not isinstance(n, int):
        return None
    try:
        return frame_for_choices(arrsum_spec(), classify_arrsum_inputs(a, n))
    except (KeyError, ValueError):
        return None


register_frame_selector("arrsum", arrsum_frame_selector)


# ----------------------------------------------------------------------
# case instantiation

_SAMPLE_ELEMENTS = {
    ("zero",): [],
    ("one",): [7],
    ("two", "positive"): [3, 4],
    ("two", "negative"): [-3, -4],
    ("more", "positive"): [1, 2, 3, 4],
    ("more", "negative"): [-1, -2, -3, -4],
    ("more", "mixed", "large"): [-200, 5, 150, 1],
    ("more", "mixed", "average"): [-20, 5, 15, 1],
}


def make_arrsum_instantiator(high: int = 10):
    """Build an instantiator for an arrsum whose array type is
    ``array[1..high] of integer`` (the Figure 4 program declares 1..2,
    the standalone host program 1..10)."""

    def instantiate(frame: TestFrame) -> Iterable[TestCase]:
        size = frame.choice_of("size_of_array")
        kind = frame.choice_of("type_of_elements")
        deviation = frame.choice_of("deviation")
        for key, elements in _SAMPLE_ELEMENTS.items():
            if key[0] != size:
                continue
            if len(key) > 1 and key[1] != kind:
                continue
            if len(key) > 2 and key[2] != deviation:
                continue
            if len(elements) > high:
                continue  # frame not realizable at this array size
            array = ArrayValue(1, high)
            for index, value in enumerate(elements):
                array.set(1 + index, value)
            yield TestCase(
                frame=frame,
                args=[array, len(elements), UNDEFINED],
                expected={"b": sum(elements)},
            )
            return

    return instantiate


#: Default instantiator for the 1..10 host program.
arrsum_instantiator = make_arrsum_instantiator(10)
