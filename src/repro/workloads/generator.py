"""Synthetic program generators for scaling experiments.

The paper's central claim is qualitative: slicing and test-case lookup cut
the number of user interactions during bug localization. These generators
produce families of programs whose *shape* controls exactly what each
technique can exploit:

* :func:`generate_call_chain_program` — a linear chain of ``depth``
  procedures; every call is relevant, so the win comes from search
  strategy and test lookup, not slicing.
* :func:`generate_irrelevant_siblings_program` — the paper's Figure 5
  scenario: ``p`` calls many independent workers and then one relevant
  computation; slicing should prune every worker.
* :func:`generate_call_tree_program` — a balanced tree of combining
  procedures with a bug planted in one leaf; measures how query counts
  grow with tree size for each strategy.

Every generator returns a :class:`GeneratedProgram` holding the buggy
source, the corrected reference source (for the simulated-user oracle),
and the name of the routine that actually contains the bug, so tests and
benchmarks can assert correct localization.
"""

from __future__ import annotations

from dataclasses import dataclass


@dataclass(frozen=True)
class GeneratedProgram:
    """A synthetic buggy program plus its bug-free reference version."""

    source: str
    fixed_source: str
    buggy_unit: str
    description: str


@dataclass(frozen=True)
class CallChainSpec:
    """Parameters for :func:`generate_call_chain_program`."""

    depth: int = 8
    bug_depth: int | None = None  # defaults to the leaf
    seed_value: int = 3


@dataclass(frozen=True)
class CallTreeSpec:
    """Parameters for :func:`generate_call_tree_program`."""

    depth: int = 3  # leaf count is 2**depth
    buggy_leaf: int = 0
    seed_value: int = 3


def generate_call_chain_program(spec: CallChainSpec = CallChainSpec()) -> GeneratedProgram:
    """A chain main -> c1 -> c2 -> ... -> c<depth>, every link relevant.

    Each ``ck`` adds 1 to its callee's result; the leaf doubles its input.
    The bug (an off-by-one) sits in ``c<bug_depth>`` (default: the leaf).
    """
    depth = spec.depth
    if depth < 1:
        raise ValueError("chain depth must be >= 1")
    bug_depth = spec.bug_depth if spec.bug_depth is not None else depth
    if not 1 <= bug_depth <= depth:
        raise ValueError(f"bug_depth must be in 1..{depth}")

    def routine(k: int, buggy: bool) -> str:
        if k == depth:
            body = "y := x * 2"
            if buggy:
                body = "y := x * 2 + 1"
            return (
                f"procedure c{k}(x: integer; var y: integer);\n"
                f"begin\n  {body}\nend;\n"
            )
        extra = " + 1" if buggy else ""
        return (
            f"procedure c{k}(x: integer; var y: integer);\n"
            f"var t: integer;\n"
            f"begin\n"
            f"  c{k + 1}(x, t);\n"
            f"  y := t + 1{extra}\n"
            f"end;\n"
        )

    def build(plant_bug: bool) -> str:
        routines = [
            routine(k, plant_bug and k == bug_depth) for k in range(depth, 0, -1)
        ]
        return (
            "program chain;\n"
            "var r: integer;\n"
            + "\n".join(routines)
            + "\nbegin\n"
            f"  c1({spec.seed_value}, r);\n"
            "  writeln(r)\n"
            "end.\n"
        )

    return GeneratedProgram(
        source=build(True),
        fixed_source=build(False),
        buggy_unit=f"c{bug_depth}",
        description=f"call chain, depth {depth}, bug at c{bug_depth}",
    )


def generate_irrelevant_siblings_program(
    workers: int = 10, seed_value: int = 3
) -> GeneratedProgram:
    """The paper's Figure 5 shape: many irrelevant calls before the relevant one.

    ``p`` calls ``work1..work<workers>`` (each computes an independent
    global result), then ``relevant(x, y)``, which alone determines the
    erroneous output. ``relevant`` delegates to ``helper`` where the bug
    lives, so pure AD must wade through every worker while slicing on ``y``
    prunes straight to the relevant subtree.
    """
    if workers < 0:
        raise ValueError("workers must be >= 0")

    def build(plant_bug: bool) -> str:
        helper_expr = "u + 1" if plant_bug else "u - 1"
        worker_decls = "".join(
            f"procedure work{i}(u: integer; var v: integer);\n"
            f"begin\n  v := u * {i}\nend;\n\n"
            for i in range(1, workers + 1)
        )
        worker_vars = "".join(f"  w{i}: integer;\n" for i in range(1, workers + 1))
        worker_calls = "".join(
            f"  work{i}(a, w{i});\n" for i in range(1, workers + 1)
        )
        worker_sum = (
            " + ".join(f"w{i}" for i in range(1, workers + 1)) if workers else "0"
        )
        return (
            "program siblings;\n"
            "var y, noise: integer;\n\n"
            f"{worker_decls}"
            "function helper(u: integer): integer;\n"
            f"begin\n  helper := {helper_expr}\nend;\n\n"
            "procedure relevant(x: integer; var y: integer);\n"
            "begin\n  y := helper(x) * 2\nend;\n\n"
            "procedure p(a, x: integer; var y, noise: integer);\n"
            "var\n"
            f"{worker_vars}"
            "  dummy: integer;\n"
            "begin\n"
            f"{worker_calls}"
            f"  noise := {worker_sum};\n"
            "  relevant(x, y)\n"
            "end;\n\n"
            "begin\n"
            f"  p(2, {seed_value}, y, noise);\n"
            "  writeln(y);\n"
            "  writeln(noise)\n"
            "end.\n"
        )

    return GeneratedProgram(
        source=build(True),
        fixed_source=build(False),
        buggy_unit="helper",
        description=f"irrelevant siblings, {workers} workers, bug in helper",
    )


def generate_call_tree_program(spec: CallTreeSpec = CallTreeSpec()) -> GeneratedProgram:
    """A balanced binary tree of procedures with a bug in one leaf.

    Internal node ``t_<d>_<i>`` calls its two children and sums their
    results; leaves compute ``x + 1`` (the buggy leaf computes ``x + 2``).
    """
    depth = spec.depth
    if depth < 0:
        raise ValueError("tree depth must be >= 0")
    leaves = 2**depth
    if not 0 <= spec.buggy_leaf < leaves:
        raise ValueError(f"buggy_leaf must be in 0..{leaves - 1}")

    def build(plant_bug: bool) -> str:
        decls: list[str] = []
        # Leaves first (declaration before use).
        for i in range(leaves):
            buggy = plant_bug and i == spec.buggy_leaf
            body = "y := x + 2" if buggy else "y := x + 1"
            decls.append(
                f"procedure t_{depth}_{i}(x: integer; var y: integer);\n"
                f"begin\n  {body}\nend;\n"
            )
        for level in range(depth - 1, -1, -1):
            for i in range(2**level):
                decls.append(
                    f"procedure t_{level}_{i}(x: integer; var y: integer);\n"
                    f"var l, r: integer;\n"
                    f"begin\n"
                    f"  t_{level + 1}_{2 * i}(x, l);\n"
                    f"  t_{level + 1}_{2 * i + 1}(x, r);\n"
                    f"  y := l + r\n"
                    f"end;\n"
                )
        return (
            "program tree;\n"
            "var r: integer;\n"
            + "\n".join(decls)
            + "\nbegin\n"
            f"  t_0_0({spec.seed_value}, r);\n"
            "  writeln(r)\n"
            "end.\n"
        )

    return GeneratedProgram(
        source=build(True),
        fixed_source=build(False),
        buggy_unit=f"t_{depth}_{spec.buggy_leaf}",
        description=f"balanced call tree, depth {depth}, bug in leaf {spec.buggy_leaf}",
    )
