"""A realistic multi-layer workload: a small banking ledger.

The paper's long-range goal is "a semi-automatic debugging and testing
system which can be used during large-scale program development of
non-trivial programs". This workload is a non-trivial Mini-Pascal
program (global state, arrays, loops, four call layers) with a choice of
planted bugs, plus a category-partition specification for its fee
computation — the shape of program GADT is meant for.

Structure::

    main
      setup                    initialize the accounts array
      apply_transactions       loop over a transaction batch
        execute(kind, ...)     dispatch one transaction
          deposit / withdraw   balance updates (withdraw charges a fee)
            fee(amount)        tiered fee computation     <- bug 'fee'
          transfer             withdraw + deposit pair    <- bug 'transfer'
      accrue_interest          per-account percentage     <- bug 'interest'
      summarize                totals and minimum balance
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.workloads.generator import GeneratedProgram

_LEDGER_TEMPLATE = """
program ledger;
const accounts = 4;
type balancelist = array[1..4] of integer;
var
  balance: balancelist;
  total, lowest: integer;

function fee(amount: integer): integer;
begin
  if amount <= 100 then
    fee := 1
  else if amount <= 1000 then
    fee := {fee_mid}
  else
    fee := amount div 100
end;

procedure deposit(acct, amount: integer);
begin
  balance[acct] := balance[acct] + amount
end;

procedure withdraw(acct, amount: integer);
begin
  balance[acct] := balance[acct] - amount - fee(amount)
end;

procedure transfer(src, dst, amount: integer);
begin
  {transfer_body}
end;

procedure execute(kind, a, b, amount: integer);
begin
  if kind = 1 then
    deposit(a, amount)
  else if kind = 2 then
    withdraw(a, amount)
  else
    transfer(a, b, amount)
end;

procedure setup;
var i: integer;
begin
  for i := 1 to accounts do
    balance[i] := 1000
end;

procedure apply_transactions;
begin
  execute(1, 1, 0, 500);
  execute(2, 2, 0, 200);
  execute(3, 1, 3, 400);
  execute(2, 4, 0, 50);
  execute(3, 2, 4, 150)
end;

procedure accrue_interest(rate: integer);
var i: integer;
begin
  for i := 1 to accounts do
    balance[i] := balance[i] + {interest_expr}
end;

procedure summarize(var total, lowest: integer);
var i: integer;
begin
  total := 0;
  lowest := balance[1];
  for i := 1 to accounts do begin
    total := total + balance[i];
    if balance[i] < lowest then
      lowest := balance[i]
  end
end;

begin
  setup;
  apply_transactions;
  accrue_interest(5);
  summarize(total, lowest);
  writeln(total);
  writeln(lowest)
end.
"""

_CORRECT = {
    "fee_mid": "2 + amount div 200",
    "transfer_body": "withdraw(src, amount);\n  deposit(dst, amount)",
    "interest_expr": "balance[i] * rate div 100",
}

_BUGS = {
    # fee: the middle tier forgets the base charge
    "fee": ("fee_mid", "amount div 200"),
    # transfer: deposits the gross amount plus the fee the source paid
    "transfer": (
        "transfer_body",
        "withdraw(src, amount);\n  deposit(dst, amount + fee(amount))",
    ),
    # interest: rounds with the wrong divisor
    "interest": ("interest_expr", "balance[i] * rate div 10"),
}

#: the unit each bug lives in
BUG_UNITS = {"fee": "fee", "transfer": "transfer", "interest": "accrue_interest"}


def ledger_program(bug: str | None = None) -> GeneratedProgram:
    """The ledger program with ``bug`` planted (or none).

    ``bug`` is one of ``'fee'``, ``'transfer'``, ``'interest'``.
    """
    substitutions = dict(_CORRECT)
    if bug is not None:
        if bug not in _BUGS:
            raise ValueError(f"unknown bug {bug!r}; choose from {sorted(_BUGS)}")
        key, text = _BUGS[bug]
        substitutions[key] = text
    source = _LEDGER_TEMPLATE.format(**substitutions)
    fixed = _LEDGER_TEMPLATE.format(**_CORRECT)
    return GeneratedProgram(
        source=source,
        fixed_source=fixed,
        buggy_unit=BUG_UNITS.get(bug or "", ""),
        description=f"ledger with bug {bug!r}" if bug else "correct ledger",
    )


# ----------------------------------------------------------------------
# category-partition specification for fee (paper §2 style)

FEE_SPEC_TEXT = """
test fee;
category tier;
  low  : ;
  mid  : property MID;
  high : property HIGH;
category position;
  interior : ;
  boundary : property BOUNDARY;
result
  rounded : if HIGH;
"""

#: concrete amount per (tier, position), plus the correct fee
FEE_SAMPLES = {
    ("low", "interior"): (40, 1),
    ("low", "boundary"): (100, 1),
    ("mid", "interior"): (400, 4),
    ("mid", "boundary"): (1000, 7),
    ("high", "interior"): (2500, 25),
    ("high", "boundary"): (1001, 10),
}


def fee_spec():
    from repro.tgen.spec_parser import parse_spec

    return parse_spec(FEE_SPEC_TEXT)


def fee_instantiator(frame):
    """Instantiate one executable case per fee frame."""
    from repro.tgen.cases import TestCase

    key = (frame.choice_of("tier"), frame.choice_of("position"))
    amount, expected = FEE_SAMPLES[key]
    yield TestCase(frame=frame, args=[amount], expected={"result": expected})


def fee_frame_selector(inputs):
    """Map a concrete fee query to its frame (paper §5.3.2)."""
    from repro.tgen.frames import frame_for_choices

    amount = inputs.get("amount")
    if not isinstance(amount, int):
        return None
    if amount <= 100:
        tier = "low"
        boundary = amount == 100
    elif amount <= 1000:
        tier = "mid"
        boundary = amount == 1000
    else:
        tier = "high"
        boundary = amount == 1001
    return frame_for_choices(
        fee_spec(),
        {"tier": tier, "position": "boundary" if boundary else "interior"},
    )
